/**
 * @file
 * Ablation: the cost of Bonsai-style Merkle integrity verification
 * over the encryption counters. The paper's performance numbers treat
 * verification as speculative/amortized (Sec. 2.4 cites [43]); this
 * bench measures what the counter-tree traffic would add.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_integrity");
    printHeader("Ablation: Merkle (BMT) verification traffic on top "
                "of memory encryption");

    const char *benchmarks[] = {"bwaves", "mcf", "milc", "soplex",
                                "hmmer"};

    std::printf("%-12s %12s %14s %12s %12s\n", "Benchmark",
                "EncOnly%", "Enc+Merkle%", "BmtFetches",
                "BmtWrites");
    std::printf("%.*s\n", 66,
                "----------------------------------------------------"
                "--------------");

    struct Row
    {
        RunOutcome out;
        double bmtFetches = 0;
        double bmtWritebacks = 0;
    };
    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        cfgs.push_back(makeConfig(ProtectionMode::Unprotected, name));
        cfgs.push_back(
            makeConfig(ProtectionMode::EncryptionOnly, name));
        SystemConfig cfg =
            makeConfig(ProtectionMode::EncryptionOnly, name);
        cfg.encryption.integrity = true;
        cfgs.push_back(cfg);
    }
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            Row row;
            row.out = out;
            if (sys.encryptionEngine()) {
                row.bmtFetches =
                    sys.encryptionEngine()->stats().scalarValue(
                        "bmtFetches");
                row.bmtWritebacks =
                    sys.encryptionEngine()->stats().scalarValue(
                        "bmtWritebacks");
            }
            return row;
        });

    int n = 0;
    for (const char *name : benchmarks) {
        const Row *row = &rows[3 * n];
        Tick base = row[0].out.result.execTicks;
        Tick enc = row[1].out.result.execTicks;
        const Row &merkle = row[2];
        double merkle_pct =
            overheadPct(merkle.out.result.execTicks, base);

        std::printf("%-12s %12.1f %14.1f %12.0f %12.0f\n", name,
                    overheadPct(enc, base), merkle_pct,
                    merkle.bmtFetches, merkle.bmtWritebacks);
        jsonRow("ablation_integrity", "enc_plus_merkle", name,
                merkle.out.result.execTicks, merkle_pct,
                merkle.out.wallMs);
        ++n;
    }

    std::printf("\nThe Merkle tree's node fetches ride the same "
                "memory path (and are themselves\nobfuscated under "
                "ObfusMem); verification is off the critical path "
                "because fetched\ncounters are used speculatively "
                "while the walk completes.\n");
    return 0;
}
