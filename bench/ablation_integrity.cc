/**
 * @file
 * Ablation: the cost of Bonsai-style Merkle integrity verification
 * over the encryption counters. The paper's performance numbers treat
 * verification as speculative/amortized (Sec. 2.4 cites [43]); this
 * bench measures what the counter-tree traffic would add.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Ablation: Merkle (BMT) verification traffic on top "
                "of memory encryption");

    const char *benchmarks[] = {"bwaves", "mcf", "milc", "soplex",
                                "hmmer"};

    std::printf("%-12s %12s %14s %12s %12s\n", "Benchmark",
                "EncOnly%", "Enc+Merkle%", "BmtFetches",
                "BmtWrites");
    std::printf("%.*s\n", 66,
                "----------------------------------------------------"
                "--------------");

    for (const char *name : benchmarks) {
        Tick base = run(ProtectionMode::Unprotected, name).execTicks;
        Tick enc =
            run(ProtectionMode::EncryptionOnly, name).execTicks;

        SystemConfig cfg =
            makeConfig(ProtectionMode::EncryptionOnly, name);
        cfg.encryption.integrity = true;
        System sys(cfg);
        auto r = sys.run();
        double fetches = sys.encryptionEngine()->stats().scalarValue(
            "bmtFetches");
        double wbs = sys.encryptionEngine()->stats().scalarValue(
            "bmtWritebacks");

        std::printf("%-12s %12.1f %14.1f %12.0f %12.0f\n", name,
                    overheadPct(enc, base),
                    overheadPct(r.execTicks, base), fetches, wbs);
    }

    std::printf("\nThe Merkle tree's node fetches ride the same "
                "memory path (and are themselves\nobfuscated under "
                "ObfusMem); verification is off the critical path "
                "because fetched\ncounters are used speculatively "
                "while the walk completes.\n");
    return 0;
}
