/**
 * @file
 * Ablation: Start-Gap wear leveling in the PCM module's controller
 * logic (the Sec. 2.2 context: NVM modules already need such logic,
 * which is why a logic layer exists for ObfusMem's crypto to share).
 * Measures the row-copy overhead and shows that ObfusMem's dummy
 * traffic composes with wear leveling without extra cell writes.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_wear_leveling");
    printHeader("Ablation: Start-Gap wear leveling in the PCM "
                "controller");

    const char *benchmarks[] = {"lbm", "milc", "libquantum"};

    std::printf("%-12s %-14s %11s %12s %10s %12s\n", "Benchmark",
                "Config", "Overhead%", "CellWrites", "GapMoves",
                "EnergyPj");
    std::printf("%.*s\n", 76,
                "----------------------------------------------------"
                "------------------------");

    struct Variant
    {
        const char *label;
        ProtectionMode mode;
        bool leveling;
    };
    const Variant variants[] = {
        {"obfusmem", ProtectionMode::ObfusMemAuth, false},
        {"obfusmem+SG", ProtectionMode::ObfusMemAuth, true},
        {"plain+SG", ProtectionMode::Unprotected, true},
    };

    struct Row
    {
        RunOutcome out;
        double gapMoves = 0;
    };
    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        cfgs.push_back(makeConfig(ProtectionMode::Unprotected, name));
        for (const Variant &v : variants) {
            SystemConfig cfg = makeConfig(v.mode, name);
            cfg.pcm.wearLeveling = v.leveling;
            // Aggressive gap movement so the mechanism is visible in
            // a short run (production period would be ~100).
            cfg.pcm.gapMovePeriod = 8;
            cfgs.push_back(cfg);
        }
    }
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            Row row;
            row.out = out;
            for (auto &pcm : sys.pcmControllers())
                row.gapMoves += pcm->stats().scalarValue("gapMoves");
            return row;
        });

    size_t at = 0;
    for (const char *name : benchmarks) {
        Tick base = rows[at++].out.result.execTicks;
        for (const Variant &v : variants) {
            const Row &row = rows[at++];
            const System::RunResult &r = row.out.result;
            double pct = overheadPct(r.execTicks, base);
            std::printf("%-12s %-14s %11.1f %12llu %10.0f %12.0f\n",
                        name, v.label, pct,
                        static_cast<unsigned long long>(r.cellWrites),
                        row.gapMoves, r.pcmEnergyPj);
            jsonRow("ablation_wear_leveling", v.label, name,
                    r.execTicks, pct, row.out.wallMs);
        }
    }

    std::printf("\nGap moves cost one row copy each (read + row "
                "write); because ObfusMem's fixed\ndummies never "
                "reach the banks, the leveler sees the same write "
                "stream as the\nunprotected system.\n");
    return 0;
}
