/**
 * @file
 * Ablation: Start-Gap wear leveling in the PCM module's controller
 * logic (the Sec. 2.2 context: NVM modules already need such logic,
 * which is why a logic layer exists for ObfusMem's crypto to share).
 * Measures the row-copy overhead and shows that ObfusMem's dummy
 * traffic composes with wear leveling without extra cell writes.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Ablation: Start-Gap wear leveling in the PCM "
                "controller");

    const char *benchmarks[] = {"lbm", "milc", "libquantum"};

    std::printf("%-12s %-14s %11s %12s %10s %12s\n", "Benchmark",
                "Config", "Overhead%", "CellWrites", "GapMoves",
                "EnergyPj");
    std::printf("%.*s\n", 76,
                "----------------------------------------------------"
                "------------------------");

    for (const char *name : benchmarks) {
        Tick base = run(ProtectionMode::Unprotected, name).execTicks;

        struct Variant
        {
            const char *label;
            ProtectionMode mode;
            bool leveling;
        };
        const Variant variants[] = {
            {"obfusmem", ProtectionMode::ObfusMemAuth, false},
            {"obfusmem+SG", ProtectionMode::ObfusMemAuth, true},
            {"plain+SG", ProtectionMode::Unprotected, true},
        };

        for (const Variant &v : variants) {
            SystemConfig cfg = makeConfig(v.mode, name);
            cfg.pcm.wearLeveling = v.leveling;
            // Aggressive gap movement so the mechanism is visible in
            // a short run (production period would be ~100).
            cfg.pcm.gapMovePeriod = 8;
            System sys(cfg);
            auto r = sys.run();
            double moves = 0;
            for (auto &pcm : sys.pcmControllers())
                moves += pcm->stats().scalarValue("gapMoves");
            std::printf("%-12s %-14s %11.1f %12llu %10.0f %12.0f\n",
                        name, v.label, overheadPct(r.execTicks, base),
                        static_cast<unsigned long long>(r.cellWrites),
                        moves, r.pcmEnergyPj);
        }
    }

    std::printf("\nGap moves cost one row copy each (read + row "
                "write); because ObfusMem's fixed\ndummies never "
                "reach the banks, the leveler sees the same write "
                "stream as the\nunprotected system.\n");
    return 0;
}
