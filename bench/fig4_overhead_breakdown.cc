/**
 * @file
 * Reproduces Figure 4: execution-time overhead of increasing levels
 * of protection, normalized to the unprotected system - memory
 * encryption only, plain ObfusMem, and ObfusMem with authenticated
 * communication.
 *
 * Paper reference averages: 2.2% / 8.3% / 10.9% (Observation 5:
 * roughly a quarter of the overhead is memory encryption, and
 * authentication adds only slightly because it overlaps encryption).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Figure 4: overhead breakdown by protection level");

    std::printf("%-12s %12s %12s %14s\n", "Benchmark", "EncOnly%",
                "ObfusMem%", "ObfusMem+Auth%");
    std::printf("%.*s\n", 54,
                "----------------------------------------------------"
                "--");

    double sum_enc = 0, sum_obfus = 0, sum_auth = 0;
    int n = 0;
    for (const std::string &name : benchmarkNames()) {
        Tick base = run(ProtectionMode::Unprotected, name).execTicks;
        Tick enc =
            run(ProtectionMode::EncryptionOnly, name).execTicks;
        Tick obfus = run(ProtectionMode::ObfusMem, name).execTicks;
        Tick auth =
            run(ProtectionMode::ObfusMemAuth, name).execTicks;

        double enc_pct = overheadPct(enc, base);
        double obfus_pct = overheadPct(obfus, base);
        double auth_pct = overheadPct(auth, base);
        std::printf("%-12s %12.1f %12.1f %14.1f\n", name.c_str(),
                    enc_pct, obfus_pct, auth_pct);
        sum_enc += enc_pct;
        sum_obfus += obfus_pct;
        sum_auth += auth_pct;
        ++n;
    }

    std::printf("%.*s\n", 54,
                "----------------------------------------------------"
                "--");
    std::printf("%-12s %12.1f %12.1f %14.1f\n", "Avg", sum_enc / n,
                sum_obfus / n, sum_auth / n);
    std::printf("%-12s %12.1f %12.1f %14.1f   (paper)\n", "", 2.2,
                8.3, 10.9);
    return 0;
}
