/**
 * @file
 * Reproduces Figure 4: execution-time overhead of increasing levels
 * of protection, normalized to the unprotected system - memory
 * encryption only, plain ObfusMem, and ObfusMem with authenticated
 * communication.
 *
 * Paper reference averages: 2.2% / 8.3% / 10.9% (Observation 5:
 * roughly a quarter of the overhead is memory encryption, and
 * authentication adds only slightly because it overlaps encryption).
 */

#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "crypto/aes128.hh"
#include "secure/pad_prefetcher.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

namespace {

/** "aes=<impl>,prefetch=<depth>,batch=<0|1>": host crypto config. */
std::string
hostCryptoConfig()
{
    return std::string("aes=") +
           crypto::aesImplName(crypto::Aes128::defaultImpl()) +
           ",prefetch=" + std::to_string(defaultPadPrefetchDepth()) +
           ",batch=" +
           (env::u64("OBFUSMEM_BURST_BATCH", 1) != 0 ? "1" : "0");
}

} // namespace

int
main()
{
    bench::Session session("fig4_overhead_breakdown");
    printHeader("Figure 4: overhead breakdown by protection level");

    std::printf("%-12s %12s %12s %14s\n", "Benchmark", "EncOnly%",
                "ObfusMem%", "ObfusMem+Auth%");
    std::printf("%.*s\n", 54,
                "----------------------------------------------------"
                "--");

    const std::vector<std::string> names = benchmarkNames();
    const ProtectionMode modes[] = {
        ProtectionMode::Unprotected, ProtectionMode::EncryptionOnly,
        ProtectionMode::ObfusMem, ProtectionMode::ObfusMemAuth};
    std::vector<SystemConfig> cfgs;
    for (const std::string &name : names)
        for (ProtectionMode mode : modes)
            cfgs.push_back(makeConfig(mode, name));
    const auto outcomes = sweepOutcomes(cfgs);

    double sum_enc = 0, sum_obfus = 0, sum_auth = 0;
    int n = 0;
    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const RunOutcome *row = &outcomes[4 * i];
        Tick base = row[0].result.execTicks;
        Tick enc = row[1].result.execTicks;
        Tick obfus = row[2].result.execTicks;
        Tick auth = row[3].result.execTicks;

        double enc_pct = overheadPct(enc, base);
        double obfus_pct = overheadPct(obfus, base);
        double auth_pct = overheadPct(auth, base);
        std::printf("%-12s %12.1f %12.1f %14.1f\n", name.c_str(),
                    enc_pct, obfus_pct, auth_pct);
        jsonRow("fig4_overhead_breakdown", "encryption_only", name,
                enc, enc_pct, row[1].wallMs);
        jsonRow("fig4_overhead_breakdown", "obfusmem", name, obfus,
                obfus_pct, row[2].wallMs);
        jsonRow("fig4_overhead_breakdown", "obfusmem_auth", name,
                auth, auth_pct, row[3].wallMs);
        sum_enc += enc_pct;
        sum_obfus += obfus_pct;
        sum_auth += auth_pct;
        ++n;
    }

    std::printf("%.*s\n", 54,
                "----------------------------------------------------"
                "--");
    std::printf("%-12s %12.1f %12.1f %14.1f\n", "Avg", sum_enc / n,
                sum_obfus / n, sum_auth / n);
    std::printf("%-12s %12.1f %12.1f %14.1f   (paper)\n", "", 2.2,
                8.3, 10.9);

    // Summary row tagged with the host crypto config so A/B runs
    // (OBFUSMEM_AES_IMPL / OBFUSMEM_PAD_PREFETCH) can be compared by
    // total host wall time in BENCH_PR4.json. Simulated ticks are
    // identical across configs by construction.
    double totalWallMs = 0;
    for (const RunOutcome &out : outcomes)
        totalWallMs += out.wallMs;
    std::printf("\nhost crypto config: %s, total wall time: %.1f ms\n",
                hostCryptoConfig().c_str(), totalWallMs);
    jsonRow("fig4_overhead_breakdown", hostCryptoConfig(),
            "total_wall", outcomes.back().result.execTicks,
            sum_auth / n, totalWallMs);
    return 0;
}
