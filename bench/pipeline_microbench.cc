/**
 * @file
 * Host-side microbenchmark of the protection hot path: the work the
 * processor-side controller does to put one request group on the wire
 * (six CTR pads, two headers, one 64-byte payload, two MACs).
 *
 * Two legs over identical inputs:
 *  - scalar: the per-message path — single-pad AES calls, scalar MD5
 *    MACs, each frame built to completion before the next
 *    (makeHeaderMessage / makeDataMessage + attachMac);
 *  - batch: the structure-of-arrays pipeline — batched pad
 *    generation (genGroupPads), FrameBatch staging, one
 *    MacEngine::computeBatch across the whole batch (vectorized MD5
 *    lanes), stage-wise sealing.
 *
 * The legs must produce bit-identical frames (verified before
 * timing); the figure of merit is groups/second and the batch/scalar
 * ratio, emitted as a `speedup_x` JSONL row. The run fails (exit 1)
 * when the request-group speedup drops below
 * OBFUSMEM_PIPELINE_MIN_SPEEDUP (default 5; 0 disables the gate) —
 * this is the CI tripwire for regressions that serialize the batch
 * pipeline back into per-message work.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hh"
#include "crypto/ctr_mode.hh"
#include "obfusmem/mac_engine.hh"
#include "obfusmem/wire_format.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

namespace {

crypto::Aes128::Key
benchKey()
{
    crypto::Aes128::Key k{};
    for (size_t i = 0; i < k.size(); ++i)
        k[i] = static_cast<uint8_t>(0xa0 + i);
    return k;
}

/** Deterministic per-group request shape (addresses, tag, payload). */
struct GroupShape
{
    WireHeader read;
    WireHeader write;
    DataBlock payload;
};

GroupShape
shapeFor(uint64_t g)
{
    uint64_t r = g * 6364136223846793005ULL + 1442695040888963407ULL;
    GroupShape s;
    s.read.cmd = MemCmd::Read;
    s.read.addr = (r >> 8) & ~uint64_t{63};
    s.read.tag = static_cast<uint16_t>(g);
    s.write.cmd = MemCmd::Write;
    s.write.addr = (r >> 20) & ~uint64_t{63};
    s.write.tag = static_cast<uint16_t>(g + 1);
    s.write.dummy = true;
    for (size_t i = 0; i < s.payload.size(); ++i)
        s.payload[i] = static_cast<uint8_t>(r >> (i % 8 * 8));
    return s;
}

/** Per-message leg: 2 frames per group, everything one at a time. */
void
scalarGroups(const crypto::AesCtr &ctr, const MacEngine &mac,
             uint64_t first, uint64_t count, WireMessage *out)
{
    for (uint64_t g = 0; g < count; ++g) {
        const GroupShape s = shapeFor(first + g);
        const uint64_t base = (first + g) * countersPerRequestGroup;
        crypto::Block128 pads[countersPerRequestGroup];
        for (uint64_t i = 0; i < countersPerRequestGroup; ++i)
            pads[i] = ctr.pad(base + i);
        WireMessage m0 = makeHeaderMessage(pads[0], s.read);
        attachMac(m0, mac.compute(s.read, base));
        WireMessage m1 =
            makeDataMessage(pads[1], &pads[2], s.write, s.payload);
        attachMac(m1, mac.compute(s.write, base + 1));
        out[2 * g] = m0;
        out[2 * g + 1] = m1;
    }
}

/**
 * SoA leg: fill the flush window's pad arena with one widened genPads
 * call (the groups' counters are contiguous), stage every frame, then
 * one MAC batch + one stage-wise seal.
 */
void
batchGroups(const crypto::AesCtr &ctr, const MacEngine &mac,
            FrameBatch &frames, std::vector<crypto::Md5Digest> &macs,
            std::vector<crypto::Block128> &arena, uint64_t first,
            uint64_t count, WireMessage *out)
{
    arena.resize(count * countersPerRequestGroup);
    ctr.genPads(first * countersPerRequestGroup, arena.data(),
                arena.size());
    for (uint64_t g = 0; g < count; ++g) {
        const GroupShape s = shapeFor(first + g);
        const uint64_t base = (first + g) * countersPerRequestGroup;
        const crypto::Block128 *pads =
            arena.data() + g * countersPerRequestGroup;
        frames.stageHeaderFrame(pads[0], s.read, base);
        frames.stageDataFrame(pads[1], &pads[2], s.write, s.payload,
                              base + 1);
    }
    const size_t n = frames.size();
    macs.resize(n);
    mac.computeBatch(frames.headers(), frames.macCounters(),
                     macs.data(), n);
    frames.seal(macs.data(), out);
}

bool
sameMessage(const WireMessage &a, const WireMessage &b)
{
    return a.cipherHeader == b.cipherHeader && a.hasData == b.hasData
           && a.cipherData == b.cipherData && a.hasMac == b.hasMac
           && a.mac == b.mac;
}

/** Fold the frames into a checksum so the work cannot be elided. */
uint64_t
foldMessages(const WireMessage *msgs, size_t n)
{
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
        acc ^= crypto::loadLe64(msgs[i].cipherHeader.data());
        acc ^= crypto::loadLe64(msgs[i].mac.data());
    }
    return acc;
}

} // namespace

int
main()
{
    bench::Session session("pipeline_microbench");

    const bool quick = env::flag("OBFUSMEM_QUICK");
    const uint64_t groups = quick ? 40 * 1000 : 400 * 1000;
    /** Groups staged per FrameBatch flush (matches a deep burst). */
    const uint64_t groupsPerFlush = 32;

    const crypto::AesCtr ctr(benchKey(), 2);
    const MacEngine mac(MacEngine::Params{});
    FrameBatch frames;
    std::vector<crypto::Md5Digest> macs;
    std::vector<crypto::Block128> arena;
    std::vector<WireMessage> scalarOut(2 * groupsPerFlush);
    std::vector<WireMessage> batchOut(2 * groupsPerFlush);

    // Bit-identity first: timing a pipeline that emits different
    // frames would be meaningless.
    scalarGroups(ctr, mac, 0, groupsPerFlush, scalarOut.data());
    batchGroups(ctr, mac, frames, macs, arena, 0, groupsPerFlush,
                batchOut.data());
    for (uint64_t i = 0; i < 2 * groupsPerFlush; ++i) {
        if (!sameMessage(scalarOut[i], batchOut[i])) {
            std::fprintf(stderr,
                         "FAIL: batch frame %llu differs from the "
                         "scalar frame\n",
                         static_cast<unsigned long long>(i));
            return 1;
        }
    }

    std::printf("\n=== pipeline microbench: request-group hot path "
                "===\n");
    std::printf("(groups: %llu, %llu per flush; OBFUSMEM_QUICK=1 "
                "shrinks)\n\n",
                static_cast<unsigned long long>(groups),
                static_cast<unsigned long long>(groupsPerFlush));

    uint64_t sink = 0;

    // Warm-up (pad memo-free path; both legs touch the same tables).
    scalarGroups(ctr, mac, 0, groupsPerFlush, scalarOut.data());
    batchGroups(ctr, mac, frames, macs, arena, 0, groupsPerFlush,
                batchOut.data());

    // Alternate the legs across repetitions and keep each leg's best
    // wall time. A single timing window per leg lets one scheduler
    // hiccup (this often runs on one-core CI runners) land entirely
    // in one leg and swing the ratio; the per-leg minimum over
    // interleaved windows is the stable estimate of each leg's true
    // cost.
    const int reps = static_cast<int>(
        env::u64("OBFUSMEM_PIPELINE_REPS", 3));
    double scalarMs = 1e300, batchMs = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (uint64_t g = 0; g < groups; g += groupsPerFlush) {
            scalarGroups(ctr, mac, g, groupsPerFlush,
                         scalarOut.data());
            sink ^= foldMessages(scalarOut.data(),
                                 2 * groupsPerFlush);
        }
        const auto t1 = std::chrono::steady_clock::now();
        for (uint64_t g = 0; g < groups; g += groupsPerFlush) {
            batchGroups(ctr, mac, frames, macs, arena, g,
                        groupsPerFlush, batchOut.data());
            sink ^= foldMessages(batchOut.data(), 2 * groupsPerFlush);
        }
        const auto t2 = std::chrono::steady_clock::now();
        scalarMs = std::min(
            scalarMs,
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
        batchMs = std::min(
            batchMs,
            std::chrono::duration<double, std::milli>(t2 - t1)
                .count());
    }

    // Both legs produce identical frames, so the folds cancel; a
    // nonzero sink means divergence crept in mid-run.
    if (sink != 0) {
        std::fprintf(stderr,
                     "FAIL: leg checksums diverged (0x%llx)\n",
                     static_cast<unsigned long long>(sink));
        return 1;
    }
    const double scalarRate = groups / scalarMs * 1e3;
    const double batchRate = groups / batchMs * 1e3;
    const double speedup = scalarMs / batchMs;

    std::printf("%-8s %12s %14s %12s\n", "leg", "groups", "Mgroups/s",
                "wall ms");
    std::printf("%-8s %12llu %14.2f %12.1f\n", "scalar",
                static_cast<unsigned long long>(groups),
                scalarRate / 1e6, scalarMs);
    std::printf("%-8s %12llu %14.2f %12.1f\n", "batch",
                static_cast<unsigned long long>(groups),
                batchRate / 1e6, batchMs);
    std::printf("\nbatch pipeline speedup: %.2fx\n", speedup);

    jsonSpeedupRow("pipeline_microbench", "batch_vs_scalar",
                   "request-groups", groups, speedup, batchMs);

    const double minSpeedup =
        env::f64("OBFUSMEM_PIPELINE_MIN_SPEEDUP", 5.0);
    if (minSpeedup > 0 && speedup < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: %.2fx below the %.1fx floor "
                     "(OBFUSMEM_PIPELINE_MIN_SPEEDUP)\n",
                     speedup, minSpeedup);
        return 1;
    }
    return 0;
}
