/**
 * @file
 * Ablation: the paper's optimistic fixed-2500ns ORAM model versus a
 * detailed Path ORAM that issues every bucket-block transfer against
 * the PCM substrate. The paper notes its latency assumption is
 * optimistic (unlimited bandwidth, unconstrained PCM write power);
 * this bench quantifies how much the device-level costs add for a
 * small tree.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Ablation: fixed-latency ORAM model vs detailed "
                "Path ORAM (small tree)");

    const char *benchmarks[] = {"milc", "sjeng", "hmmer"};

    std::printf("%-12s %14s %16s %14s %14s\n", "Benchmark",
                "FixedORAM%", "DetailedORAM%", "Blocks/acc",
                "MaxStash");
    std::printf("%.*s\n", 74,
                "----------------------------------------------------"
                "----------------------");

    for (const char *name : benchmarks) {
        SystemConfig base_cfg =
            makeConfig(ProtectionMode::Unprotected, name);
        base_cfg.instrPerCore =
            std::min<uint64_t>(base_cfg.instrPerCore, 30000);
        Tick base = runConfig(base_cfg).execTicks;

        SystemConfig fixed_cfg = base_cfg;
        fixed_cfg.mode = ProtectionMode::OramFixed;
        Tick fixed = runConfig(fixed_cfg).execTicks;

        SystemConfig det_cfg = base_cfg;
        det_cfg.mode = ProtectionMode::OramDetailed;
        det_cfg.oramDetailed.oram.levels = 12;
        det_cfg.oramDetailed.oram.stashLimit = 4000;
        System det_sys(det_cfg);
        auto det = det_sys.run();

        uint64_t accesses = det_sys.oramDetailed()->oram().accesses();
        double blocks_per_access =
            accesses ? static_cast<double>(
                           det_sys.oramDetailed()->blocksTransferred())
                           / accesses
                     : 0.0;

        std::printf("%-12s %14.0f %16.0f %14.1f %14zu\n", name,
                    overheadPct(fixed, base),
                    overheadPct(det.execTicks, base),
                    blocks_per_access,
                    det_sys.oramDetailed()->oram().maxStashSize());
    }

    std::printf("\nThe detailed model (L=12 tree, ~52 blocks per "
                "path each way) already exceeds\nthe fixed 2500 ns "
                "model once real bus/bank contention is paid; the "
                "paper's\nfull-scale L=24 tree would roughly double "
                "the per-access traffic again.\n");
    return 0;
}
