/**
 * @file
 * Ablation: the paper's optimistic fixed-2500ns ORAM model versus a
 * detailed Path ORAM that issues every bucket-block transfer against
 * the PCM substrate. The paper notes its latency assumption is
 * optimistic (unlimited bandwidth, unconstrained PCM write power);
 * this bench quantifies how much the device-level costs add for a
 * small tree.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_oram_model");
    printHeader("Ablation: fixed-latency ORAM model vs detailed "
                "Path ORAM (small tree)");

    const char *benchmarks[] = {"milc", "sjeng", "hmmer"};

    std::printf("%-12s %14s %16s %14s %14s\n", "Benchmark",
                "FixedORAM%", "DetailedORAM%", "Blocks/acc",
                "MaxStash");
    std::printf("%.*s\n", 74,
                "----------------------------------------------------"
                "----------------------");

    struct Row
    {
        RunOutcome out;
        uint64_t accesses = 0;
        uint64_t blocksTransferred = 0;
        size_t maxStash = 0;
    };
    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        SystemConfig base_cfg =
            makeConfig(ProtectionMode::Unprotected, name);
        base_cfg.instrPerCore =
            std::min<uint64_t>(base_cfg.instrPerCore, 30000);
        cfgs.push_back(base_cfg);

        SystemConfig fixed_cfg = base_cfg;
        fixed_cfg.mode = ProtectionMode::OramFixed;
        cfgs.push_back(fixed_cfg);

        SystemConfig det_cfg = base_cfg;
        det_cfg.mode = ProtectionMode::OramDetailed;
        det_cfg.oramDetailed.oram.levels = 12;
        det_cfg.oramDetailed.oram.stashLimit = 4000;
        cfgs.push_back(det_cfg);
    }
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            Row row;
            row.out = out;
            if (sys.oramDetailed()) {
                row.accesses = sys.oramDetailed()->oram().accesses();
                row.blocksTransferred =
                    sys.oramDetailed()->blocksTransferred();
                row.maxStash =
                    sys.oramDetailed()->oram().maxStashSize();
            }
            return row;
        });

    int n = 0;
    for (const char *name : benchmarks) {
        const Row *row = &rows[3 * n];
        Tick base = row[0].out.result.execTicks;
        Tick fixed = row[1].out.result.execTicks;
        const Row &det = row[2];

        double blocks_per_access =
            det.accesses ? static_cast<double>(det.blocksTransferred)
                               / det.accesses
                         : 0.0;

        std::printf("%-12s %14.0f %16.0f %14.1f %14zu\n", name,
                    overheadPct(fixed, base),
                    overheadPct(det.out.result.execTicks, base),
                    blocks_per_access, det.maxStash);
        jsonRow("ablation_oram_model", "oram_detailed", name,
                det.out.result.execTicks,
                overheadPct(det.out.result.execTicks, base),
                det.out.wallMs);
        ++n;
    }

    std::printf("\nThe detailed model (L=12 tree, ~52 blocks per "
                "path each way) already exceeds\nthe fixed 2500 ns "
                "model once real bus/bank contention is paid; the "
                "paper's\nfull-scale L=24 tree would roughly double "
                "the per-access traffic again.\n");
    return 0;
}
