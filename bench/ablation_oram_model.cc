/**
 * @file
 * Ablation: the paper's optimistic fixed-2500ns ORAM model versus the
 * ORAM models that issue every block transfer against the PCM
 * substrate - a detailed Path ORAM (small tree) and the two
 * write-only competitors (Flat ORAM, deterministic stash-free
 * write-only ORAM). The paper notes its latency assumption is
 * optimistic (unlimited bandwidth, unconstrained PCM write power);
 * this bench quantifies how much the device-level costs add, and how
 * far the write-only relaxation undercuts both.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_oram_model");
    printHeader("Ablation: fixed-latency ORAM model vs detailed "
                "ORAM models (small tree)");

    const char *benchmarks[] = {"milc", "sjeng", "hmmer"};

    std::printf("%-10s %11s %13s %10s %9s %9s %9s %8s\n", "Benchmark",
                "FixedORAM%", "DetailedORAM%", "Blocks/acc",
                "PeakStash", "FlatORAM%", "WoORAM%", "WoBlk/W");
    std::printf("%.*s\n", 86,
                "----------------------------------------------------"
                "----------------------------------");

    struct Row
    {
        RunOutcome out;
        uint64_t accesses = 0;
        uint64_t blocksTransferred = 0;
        size_t maxStash = 0;
        uint64_t logicalWrites = 0;
        uint64_t physicalWrites = 0;
    };
    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        SystemConfig base_cfg =
            makeConfig(ProtectionMode::Unprotected, name);
        base_cfg.instrPerCore =
            std::min<uint64_t>(base_cfg.instrPerCore, 30000);
        cfgs.push_back(base_cfg);

        SystemConfig fixed_cfg = base_cfg;
        fixed_cfg.mode = ProtectionMode::OramFixed;
        cfgs.push_back(fixed_cfg);

        SystemConfig det_cfg = base_cfg;
        det_cfg.mode = ProtectionMode::OramDetailed;
        det_cfg.oramDetailed.oram.levels = 12;
        det_cfg.oramDetailed.oram.stashLimit = 4000;
        // This ablation deliberately undersizes the tree relative to
        // the workload's footprint to expose the stash inflation (the
        // MaxStash column); opt out of the fail-stop default so the
        // overflow is measured rather than aborted on.
        det_cfg.oramDetailed.oram.failOnOverflow = false;
        cfgs.push_back(det_cfg);

        SystemConfig flat_cfg = base_cfg;
        flat_cfg.mode = ProtectionMode::FlatOram;
        cfgs.push_back(flat_cfg);

        SystemConfig wo_cfg = base_cfg;
        wo_cfg.mode = ProtectionMode::WriteOnlyOram;
        cfgs.push_back(wo_cfg);
    }
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            Row row;
            row.out = out;
            if (sys.oramDetailed()) {
                row.accesses = sys.oramDetailed()->oram().accesses();
                row.blocksTransferred =
                    sys.oramDetailed()->blocksTransferred();
                // Report the mid-access transient peak, not the
                // post-eviction residue: the transient is what a
                // hardware stash must physically hold.
                row.maxStash =
                    sys.oramDetailed()->oram().maxTransientStashSize();
            }
            if (sys.flatOramCtl()) {
                row.accesses = sys.flatOramCtl()->oram().accesses();
                row.blocksTransferred =
                    sys.flatOramCtl()->blocksTransferred();
            }
            if (sys.writeOnlyOramCtl()) {
                const WriteOnlyOram &wo =
                    sys.writeOnlyOramCtl()->oram();
                row.accesses = wo.accesses();
                row.blocksTransferred =
                    sys.writeOnlyOramCtl()->blocksTransferred();
                row.logicalWrites = wo.logicalWrites();
                row.physicalWrites = wo.physicalWrites();
            }
            return row;
        });

    constexpr size_t kStride = 5;
    int n = 0;
    for (const char *name : benchmarks) {
        const Row *row = &rows[kStride * n];
        Tick base = row[0].out.result.execTicks;
        Tick fixed = row[1].out.result.execTicks;
        const Row &det = row[2];
        const Row &flat = row[3];
        const Row &wo = row[4];

        double blocks_per_access =
            det.accesses ? static_cast<double>(det.blocksTransferred)
                               / det.accesses
                         : 0.0;
        double wo_blocks_per_write =
            wo.logicalWrites
                ? static_cast<double>(wo.physicalWrites)
                      / wo.logicalWrites
                : 0.0;

        std::printf("%-10s %11.0f %13.0f %10.1f %9zu %9.1f %9.1f "
                    "%8.1f\n",
                    name, overheadPct(fixed, base),
                    overheadPct(det.out.result.execTicks, base),
                    blocks_per_access, det.maxStash,
                    overheadPct(flat.out.result.execTicks, base),
                    overheadPct(wo.out.result.execTicks, base),
                    wo_blocks_per_write);
        jsonRow("ablation_oram_model", "oram_detailed", name,
                det.out.result.execTicks,
                overheadPct(det.out.result.execTicks, base),
                det.out.wallMs);
        jsonRow("ablation_oram_model", "flat_oram", name,
                flat.out.result.execTicks,
                overheadPct(flat.out.result.execTicks, base),
                flat.out.wallMs);
        jsonRow("ablation_oram_model", "wo_oram", name,
                wo.out.result.execTicks,
                overheadPct(wo.out.result.execTicks, base),
                wo.out.wallMs);
        ++n;
    }

    std::printf("\nThe detailed Path ORAM (L=12 tree, ~52 blocks per "
                "path each way) already exceeds\nthe fixed 2500 ns "
                "model once real bus/bank contention is paid; the "
                "paper's\nfull-scale L=24 tree would roughly double "
                "the per-access traffic again. The\nwrite-only "
                "relaxation removes the path entirely: Flat ORAM "
                "moves 1 block per\naccess, the deterministic WoORAM "
                "exactly 2 per write - which is why their\noverhead "
                "sits orders of magnitude below the path-based "
                "tree.\n");
    return 0;
}
