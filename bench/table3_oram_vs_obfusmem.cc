/**
 * @file
 * Reproduces Table 3 and extends it into the backend shoot-out: the
 * execution-time overhead of every protection backend over
 * unprotected execution, per SPEC workload. The paper's two columns
 * (the optimistic fixed-2500ns ORAM model and ObfusMem+Auth) keep
 * their reference values; the extra columns place plain memory
 * encryption and the two real write-only ORAM competitors (Flat ORAM
 * and the deterministic stash-free write-only ORAM) on the same
 * baseline, since those are the schemes ObfusMem actually competes
 * with at low overhead.
 *
 * Paper reference values: ORAM avg 946.1%, ObfusMem+Auth avg 10.9%,
 * speedup avg 9.1x.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

namespace {

struct PaperRow
{
    const char *name;
    double oram;
    double obfus;
    double speedup;
};

const PaperRow paperRows[] = {
    {"bwaves", 1561.0, 18.9, 14.0}, {"mcf", 1133.3, 32.1, 9.3},
    {"lbm", 1298.6, 12.5, 12.4},    {"zeus", 1644.3, 14.9, 15.2},
    {"milc", 1846.6, 28.4, 15.2},   {"xalan", 137.7, 0.8, 2.4},
    {"omnetpp", 64.96, 1.2, 1.6},   {"soplex", 1878.6, 15.7, 17.1},
    {"libquantum", 604.8, 2.9, 6.8}, {"sjeng", 152.5, 1.1, 2.5},
    {"leslie3d", 1626.6, 15.1, 15.0}, {"astar", 30.7, 0.1, 1.3},
    {"hmmer", 86.6, 0.0, 1.9},      {"cactus", 784.8, 5.2, 8.4},
    {"gems", 1340.9, 14.3, 12.6},
};

/** The protected configurations, in column order after the base. */
struct Contender
{
    ProtectionMode mode;
    /** JSONL `config` spelling (historical underscore style). */
    const char *jsonName;
};

const Contender contenders[] = {
    {ProtectionMode::OramFixed, "oram_fixed"},
    {ProtectionMode::ObfusMemAuth, "obfusmem_auth"},
    {ProtectionMode::EncryptionOnly, "encryption_only"},
    {ProtectionMode::FlatOram, "flat_oram"},
    {ProtectionMode::WriteOnlyOram, "wo_oram"},
};
constexpr size_t kContenders =
    sizeof(contenders) / sizeof(contenders[0]);

} // namespace

int
main()
{
    bench::Session session("table3_oram_vs_obfusmem");
    printHeader("Table 3: execution time overhead, ORAM vs "
                "ObfusMem+Auth vs write-only ORAMs");

    std::printf("%-11s | %8s %8s | %7s %7s | %7s %8s %8s | %7s %7s\n",
                "Benchmark", "ORAM%", "paper%", "ObfMem%", "paper%",
                "Enc%", "FlatOR%", "WoORAM%", "Speedup", "paper");
    std::printf("%.*s\n", 95,
                "----------------------------------------------------"
                "--------------------------------------------");

    double sums[kContenders] = {};
    double sum_speedup = 0;
    double paper_oram = 0, paper_obfus = 0, paper_speedup = 0;
    int n = 0;

    // Base + every contender per benchmark, batched through the
    // sweep runner.
    std::vector<SystemConfig> cfgs;
    for (const PaperRow &row : paperRows) {
        cfgs.push_back(
            makeConfig(ProtectionMode::Unprotected, row.name));
        for (const Contender &c : contenders)
            cfgs.push_back(makeConfig(c.mode, row.name));
    }
    const auto outcomes = sweepOutcomes(cfgs);

    size_t idx = 0;
    for (const PaperRow &row : paperRows) {
        Tick base = outcomes[idx++].result.execTicks;
        double pct[kContenders];
        for (size_t c = 0; c < kContenders; ++c) {
            const RunOutcome &out = outcomes[idx++];
            pct[c] = overheadPct(out.result.execTicks, base);
            sums[c] += pct[c];
            jsonRow("table3_oram_vs_obfusmem", contenders[c].jsonName,
                    row.name, out.result.execTicks, pct[c],
                    out.wallMs);
        }
        // Speedup of ObfusMem+Auth over the fixed ORAM model, as in
        // the paper.
        double speedup = (100.0 + pct[0]) / (100.0 + pct[1]);

        std::printf("%-11s | %8.1f %8.1f | %7.1f %7.1f | %7.1f %8.1f "
                    "%8.1f | %6.1fx %6.1fx\n",
                    row.name, pct[0], row.oram, pct[1], row.obfus,
                    pct[2], pct[3], pct[4], speedup, row.speedup);

        sum_speedup += speedup;
        paper_oram += row.oram;
        paper_obfus += row.obfus;
        paper_speedup += row.speedup;
        ++n;
    }

    std::printf("%.*s\n", 95,
                "----------------------------------------------------"
                "--------------------------------------------");
    std::printf("%-11s | %8.1f %8.1f | %7.1f %7.1f | %7.1f %8.1f "
                "%8.1f | %6.1fx %6.1fx\n",
                "Avg", sums[0] / n, paper_oram / n, sums[1] / n,
                paper_obfus / n, sums[2] / n, sums[3] / n, sums[4] / n,
                sum_speedup / n, paper_speedup / n);
    std::printf(
        "\nClaim check: ObfusMem+Auth is roughly an order of "
        "magnitude faster than ORAM\n(paper: 946.1%% vs 10.9%% "
        "average overhead, 9.1x average speedup).\nThe write-only "
        "ORAMs (Flat ORAM, deterministic WoORAM) land between "
        "plain\nencryption and full ORAM: they protect writes only, "
        "at 1x / 2x write cost.\n");
    return 0;
}
