/**
 * @file
 * Reproduces Table 3: execution-time overhead of ORAM (the paper's
 * optimistic fixed-2500ns model) and ObfusMem+Auth over unprotected
 * execution, and the resulting speedup of ObfusMem over ORAM.
 *
 * Paper reference values: ORAM avg 946.1%, ObfusMem+Auth avg 10.9%,
 * speedup avg 9.1x.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

namespace {

struct PaperRow
{
    const char *name;
    double oram;
    double obfus;
    double speedup;
};

const PaperRow paperRows[] = {
    {"bwaves", 1561.0, 18.9, 14.0}, {"mcf", 1133.3, 32.1, 9.3},
    {"lbm", 1298.6, 12.5, 12.4},    {"zeus", 1644.3, 14.9, 15.2},
    {"milc", 1846.6, 28.4, 15.2},   {"xalan", 137.7, 0.8, 2.4},
    {"omnetpp", 64.96, 1.2, 1.6},   {"soplex", 1878.6, 15.7, 17.1},
    {"libquantum", 604.8, 2.9, 6.8}, {"sjeng", 152.5, 1.1, 2.5},
    {"leslie3d", 1626.6, 15.1, 15.0}, {"astar", 30.7, 0.1, 1.3},
    {"hmmer", 86.6, 0.0, 1.9},      {"cactus", 784.8, 5.2, 8.4},
    {"gems", 1340.9, 14.3, 12.6},
};

} // namespace

int
main()
{
    bench::Session session("table3_oram_vs_obfusmem");
    printHeader("Table 3: execution time overhead, ORAM vs "
                "ObfusMem+Auth");

    std::printf("%-12s | %9s %9s | %9s %9s | %8s %8s\n", "Benchmark",
                "ORAM%", "paper%", "ObfMem%", "paper%", "Speedup",
                "paper");
    std::printf("%.*s\n", 78,
                "----------------------------------------------------"
                "--------------------------");

    double sum_oram = 0, sum_obfus = 0, sum_speedup = 0;
    double paper_oram = 0, paper_obfus = 0, paper_speedup = 0;
    int n = 0;

    // Three configs per benchmark, batched through the sweep runner.
    std::vector<SystemConfig> cfgs;
    for (const PaperRow &row : paperRows) {
        cfgs.push_back(
            makeConfig(ProtectionMode::Unprotected, row.name));
        cfgs.push_back(makeConfig(ProtectionMode::OramFixed, row.name));
        cfgs.push_back(
            makeConfig(ProtectionMode::ObfusMemAuth, row.name));
    }
    const auto outcomes = sweepOutcomes(cfgs);

    size_t idx = 0;
    for (const PaperRow &row : paperRows) {
        const RunOutcome &base_out = outcomes[idx++];
        const RunOutcome &oram_out = outcomes[idx++];
        const RunOutcome &obfus_out = outcomes[idx++];
        Tick base = base_out.result.execTicks;
        Tick oram = oram_out.result.execTicks;
        Tick obfus = obfus_out.result.execTicks;

        double oram_pct = overheadPct(oram, base);
        double obfus_pct = overheadPct(obfus, base);
        double speedup = static_cast<double>(oram) / obfus;

        std::printf("%-12s | %9.1f %9.1f | %9.1f %9.1f | %7.1fx "
                    "%7.1fx\n",
                    row.name, oram_pct, row.oram, obfus_pct, row.obfus,
                    speedup, row.speedup);
        jsonRow("table3_oram_vs_obfusmem", "oram_fixed", row.name,
                oram, oram_pct, oram_out.wallMs);
        jsonRow("table3_oram_vs_obfusmem", "obfusmem_auth", row.name,
                obfus, obfus_pct, obfus_out.wallMs);

        sum_oram += oram_pct;
        sum_obfus += obfus_pct;
        sum_speedup += speedup;
        paper_oram += row.oram;
        paper_obfus += row.obfus;
        paper_speedup += row.speedup;
        ++n;
    }

    std::printf("%.*s\n", 78,
                "----------------------------------------------------"
                "--------------------------");
    std::printf("%-12s | %9.1f %9.1f | %9.1f %9.1f | %7.1fx %7.1fx\n",
                "Avg", sum_oram / n, paper_oram / n, sum_obfus / n,
                paper_obfus / n, sum_speedup / n, paper_speedup / n);
    std::printf("\nClaim check: ObfusMem+Auth is roughly an order of "
                "magnitude faster than ORAM\n(paper: 946.1%% vs "
                "10.9%% average overhead, 9.1x average speedup).\n");
    return 0;
}
