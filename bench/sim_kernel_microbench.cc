/**
 * @file
 * Microbenchmark of the discrete-event kernel: events/second and
 * allocations/event for the timing-wheel and binary-heap queue
 * implementations (`EvqImpl::Wheel` vs `EvqImpl::Heap`, the
 * `OBFUSMEM_EVQ_IMPL` knob), plus a counting-allocator proof that the
 * steady state never touches the global allocator.
 *
 * Workloads (all self-rescheduling, so the pending population is
 * constant and the pool reaches steady state):
 *  - schedule-heavy: 64k actors with pseudo-random short delays —
 *    the acceptance workload (wheel must beat heap by >= 3x, and
 *    allocations/event must be exactly 0; nonzero exits 1).
 *  - same-tick-burst: all actors collide on the same ticks — stresses
 *    the FIFO bucket chain.
 *  - far-mix: 1/8 of delays land beyond the wheel horizon — stresses
 *    the overflow heap and promotion path.
 *
 * Knobs: OBFUSMEM_QUICK=1 shrinks the event counts (CI/sanitizers);
 * OBFUSMEM_BENCH_JSON appends one JSONL row per (impl, workload) with
 * ticks = events executed and overhead_pct = allocations/event.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_common.hh"
#include "sim/event_queue.hh"

// --- Counting allocator hook ----------------------------------------
// Replaces the global operator new/delete for this binary; every
// heap allocation anywhere in the process bumps the counter, which is
// what lets the rows below claim "0 allocations/event" honestly.

static std::atomic<uint64_t> g_allocs{0};

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace obfusmem;

enum class Workload : uint8_t { ScheduleHeavy, SameTickBurst, FarMix };

constexpr uint64_t lcgMul = 6364136223846793005ULL;
constexpr uint64_t lcgAdd = 1442695040888963407ULL;

/**
 * A self-rescheduling event: executing it schedules a copy of itself
 * at the next pseudo-random tick. 24 bytes — the whole closure lives
 * in the pooled node's inline storage.
 */
struct Actor
{
    EventQueue *eq;
    uint64_t rng;
    Workload wl;

    void
    operator()()
    {
        rng = rng * lcgMul + lcgAdd;
        const uint64_t r = rng >> 33;
        Tick delay;
        switch (wl) {
          case Workload::ScheduleHeavy:
            delay = 1 + (r & 1023); // 1..1024 ticks
            break;
          case Workload::SameTickBurst:
            delay = 1000; // everyone collides on the same ticks
            break;
          case Workload::FarMix:
          default:
            if ((r & 7) == 0) // 1/8 beyond the wheel horizon
                delay = EventQueue::wheelSpan + (r & 0xfffff);
            else
                delay = 1 + (r & 8191);
            break;
        }
        eq->scheduleAfter(delay, *this);
    }
};

struct Row
{
    const char *impl;
    const char *workload;
    uint64_t events;
    double mevPerSec;
    double allocsPerEvent;
    uint64_t promotions;
    size_t poolHighWater;
};

Row
measure(EvqImpl impl, const char *implName, Workload wl,
        const char *wlName, uint64_t population, uint64_t events)
{
    EventQueue eq(impl);
    for (uint64_t i = 0; i < population; ++i)
        eq.schedule(i & 63, Actor{&eq, 0x9e3779b97f4a7c15ULL + i, wl});

    // Warm-up: let the node pool, far-heap vector and bucket chains
    // reach their steady-state capacity before counting.
    for (uint64_t i = 0; i < events / 4; ++i)
        eq.step();

    const uint64_t alloc0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < events; ++i)
        eq.step();
    const auto t1 = std::chrono::steady_clock::now();
    const uint64_t alloc1 = g_allocs.load(std::memory_order_relaxed);

    const double secs = std::chrono::duration<double>(t1 - t0).count();
    Row row;
    row.impl = implName;
    row.workload = wlName;
    row.events = events;
    row.mevPerSec = static_cast<double>(events) / secs / 1e6;
    row.allocsPerEvent =
        static_cast<double>(alloc1 - alloc0) / static_cast<double>(events);
    row.promotions = eq.overflowPromotions();
    row.poolHighWater = eq.poolHighWater();
    return row;
}

} // namespace

int
main()
{
    bench::Session session("sim_kernel_microbench");
    const bool quick = obfusmem::env::flag("OBFUSMEM_QUICK");
    const uint64_t events = quick ? 400 * 1000 : 4 * 1000 * 1000;

    std::printf("\n=== sim kernel microbench ===\n");
    std::printf("(measured events/row: %llu; OBFUSMEM_QUICK=1 "
                "shrinks)\n\n",
                static_cast<unsigned long long>(events));
    std::printf("%-6s %-16s %12s %10s %14s %12s %10s\n", "impl",
                "workload", "events", "Mev/s", "allocs/event",
                "promotions", "highwater");

    struct WlDef
    {
        Workload wl;
        const char *name;
        uint64_t population;
    };
    // schedule-heavy runs a large standing population: that is where
    // the heap pays O(log n) sifts over a multi-MB array while the
    // wheel stays O(1).
    const WlDef workloads[] = {
        {Workload::ScheduleHeavy, "schedule-heavy", 64 * 1024},
        {Workload::SameTickBurst, "same-tick-burst", 8 * 1024},
        {Workload::FarMix, "far-mix", 8 * 1024},
    };
    struct ImplDef
    {
        EvqImpl impl;
        const char *name;
    };
    const ImplDef impls[] = {
        {EvqImpl::Wheel, "wheel"},
        {EvqImpl::Heap, "heap"},
    };

    double scheduleHeavyRate[2] = {0, 0};
    bool steadyStateClean = true;

    for (const auto &w : workloads) {
        for (size_t i = 0; i < 2; ++i) {
            Row row = measure(impls[i].impl, impls[i].name, w.wl,
                              w.name, w.population, events);
            std::printf("%-6s %-16s %12llu %10.2f %14.6f %12llu %10zu\n",
                        row.impl, row.workload,
                        static_cast<unsigned long long>(row.events),
                        row.mevPerSec, row.allocsPerEvent,
                        static_cast<unsigned long long>(row.promotions),
                        row.poolHighWater);
            bench::jsonRow("sim_kernel_microbench", row.impl,
                           row.workload, row.events,
                           row.allocsPerEvent,
                           row.events / row.mevPerSec / 1e3);
            if (w.wl == Workload::ScheduleHeavy) {
                scheduleHeavyRate[i] = row.mevPerSec;
                if (row.allocsPerEvent != 0.0)
                    steadyStateClean = false;
            }
        }
    }

    std::printf("\nwheel speedup on schedule-heavy: %.2fx\n",
                scheduleHeavyRate[0] / scheduleHeavyRate[1]);

    if (!steadyStateClean) {
        std::fprintf(stderr,
                     "FAIL: schedule-heavy steady state touched the "
                     "allocator\n");
        return 1;
    }
    std::printf("steady-state allocations/event: 0 (verified by "
                "counting allocator)\n");
    return 0;
}
