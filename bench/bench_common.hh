/**
 * @file
 * Shared helpers for the reproduction benchmarks: run a configured
 * system, format table rows, and honor the OBFUSMEM_BENCH_INSTRS /
 * OBFUSMEM_QUICK environment knobs.
 */

#ifndef OBFUSMEM_BENCH_COMMON_HH
#define OBFUSMEM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/system.hh"

namespace obfusmem {
namespace bench {

/** Instructions per core for benchmark runs (env-overridable). */
inline uint64_t
instructionsPerCore()
{
    if (const char *env = std::getenv("OBFUSMEM_BENCH_INSTRS"))
        return std::strtoull(env, nullptr, 10);
    if (std::getenv("OBFUSMEM_QUICK"))
        return 40 * 1000;
    return 150 * 1000;
}

/** The 15 benchmark names of Table 1, in the paper's order. */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &p : BenchmarkProfile::spec2006())
        names.push_back(p.name);
    return names;
}

/** Build a config with the paper's defaults for one benchmark. */
inline SystemConfig
makeConfig(ProtectionMode mode, const std::string &benchmark,
           unsigned channels = 1)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = benchmark;
    cfg.channels = channels;
    cfg.instrPerCore = instructionsPerCore();
    cfg.attachObserver = false; // keep perf runs lean
    return cfg;
}

/** Run one configuration to completion. */
inline System::RunResult
runConfig(const SystemConfig &cfg)
{
    System system(cfg);
    return system.run();
}

inline System::RunResult
run(ProtectionMode mode, const std::string &benchmark,
    unsigned channels = 1)
{
    return runConfig(makeConfig(mode, benchmark, channels));
}

/** Percent overhead of `t` versus `base`. */
inline double
overheadPct(Tick t, Tick base)
{
    return 100.0 * (static_cast<double>(t) / base - 1.0);
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(instructions/core: %llu, cores: 4; override with "
                "OBFUSMEM_BENCH_INSTRS)\n\n",
                static_cast<unsigned long long>(
                    instructionsPerCore()));
}

} // namespace bench
} // namespace obfusmem

#endif // OBFUSMEM_BENCH_COMMON_HH
