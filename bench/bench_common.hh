/**
 * @file
 * Shared helpers for the reproduction benchmarks: run a configured
 * system, format table rows, and honor the environment knobs
 * OBFUSMEM_BENCH_INSTRS / OBFUSMEM_QUICK (workload size),
 * OBFUSMEM_BENCH_JOBS (parallel sweep width) and
 * OBFUSMEM_BENCH_JSON (machine-readable result rows).
 */

#ifndef OBFUSMEM_BENCH_COMMON_HH
#define OBFUSMEM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "crypto/aes128.hh"
#include "crypto/cpu_features.hh"
#include "runner/sweep.hh"
#include "system/system.hh"
#include "util/env.hh"

namespace obfusmem {
namespace bench {

/** Instructions per core for benchmark runs (env-overridable). */
inline uint64_t
instructionsPerCore()
{
    uint64_t def = env::flag("OBFUSMEM_QUICK") ? 40 * 1000 : 150 * 1000;
    return env::u64("OBFUSMEM_BENCH_INSTRS", def);
}

/** Sweep width from OBFUSMEM_BENCH_JOBS (1 = serial, the default). */
inline unsigned
benchJobs()
{
    return runner::jobsFromEnv();
}

/** The 15 benchmark names of Table 1, in the paper's order. */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &p : BenchmarkProfile::spec2006())
        names.push_back(p.name);
    return names;
}

/** Build a config with the paper's defaults for one benchmark. */
inline SystemConfig
makeConfig(ProtectionMode mode, const std::string &benchmark,
           unsigned channels = 1)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.benchmark = benchmark;
    cfg.channels = channels;
    cfg.instrPerCore = instructionsPerCore();
    cfg.attachObserver = false; // keep perf runs lean
    return cfg;
}

/** One sweep point: the simulation result plus host wall time. */
struct RunOutcome
{
    System::RunResult result;
    double wallMs = 0;
};

/**
 * Run every config through the parallel sweep runner and map each
 * finished System through @p extract on the worker thread (that is
 * the only moment the System is still alive, so per-component stats
 * must be pulled there). Results come back in config order and are
 * bit-identical to a serial sweep (see src/runner/sweep.hh).
 *
 * @p extract has signature R(System &, const RunOutcome &).
 */
template <typename Extract>
auto
sweep(const std::vector<SystemConfig> &configs, Extract &&extract)
    -> std::vector<std::decay_t<decltype(extract(
        std::declval<System &>(),
        std::declval<const RunOutcome &>()))>>
{
    return runner::parallelIndexMap(
        configs.size(), benchJobs(), [&](size_t i) {
            auto start = std::chrono::steady_clock::now();
            System system(configs[i]);
            RunOutcome out;
            out.result = system.run();
            out.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return extract(system, out);
        });
}

/** Sweep that only needs the RunResults (plus wall time). */
inline std::vector<RunOutcome>
sweepOutcomes(const std::vector<SystemConfig> &configs)
{
    return sweep(configs,
                 [](System &, const RunOutcome &out) { return out; });
}

/** Run one configuration to completion (serial, on this thread). */
inline System::RunResult
runConfig(const SystemConfig &cfg)
{
    System system(cfg);
    return system.run();
}

inline System::RunResult
run(ProtectionMode mode, const std::string &benchmark,
    unsigned channels = 1)
{
    return runConfig(makeConfig(mode, benchmark, channels));
}

/** Percent overhead of `t` versus `base`. */
inline double
overheadPct(Tick t, Tick base)
{
    return 100.0 * (static_cast<double>(t) / base - 1.0);
}

// --- Machine-readable output (OBFUSMEM_BENCH_JSON) ------------------

namespace detail {

/** Escape a string for a JSON value (names here are plain ASCII). */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out.push_back(c);
    }
    return out;
}

/** The shared JSONL sink, opened on first row (append mode). */
inline std::FILE *
jsonFile()
{
    static std::FILE *f = []() -> std::FILE * {
        const char *path = env::raw("OBFUSMEM_BENCH_JSON");
        return path ? std::fopen(path, "a") : nullptr;
    }();
    return f;
}

inline std::mutex &
jsonMutex()
{
    static std::mutex m;
    return m;
}

} // namespace detail

/**
 * Append one JSONL result row to $OBFUSMEM_BENCH_JSON (no-op when the
 * knob is unset). Thread-safe: sweep extractors may call this from
 * worker threads; each row is written and flushed atomically.
 */
inline void
jsonRow(const std::string &bench, const std::string &config,
        const std::string &workload, Tick ticks, double overhead_pct,
        double wall_ms)
{
    std::FILE *f = detail::jsonFile();
    if (!f)
        return;
    std::lock_guard<std::mutex> lock(detail::jsonMutex());
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"config\":\"%s\","
                 "\"workload\":\"%s\",\"ticks\":%llu,"
                 "\"overhead_pct\":%.4f,\"wall_ms\":%.3f}\n",
                 detail::jsonEscape(bench).c_str(),
                 detail::jsonEscape(config).c_str(),
                 detail::jsonEscape(workload).c_str(),
                 static_cast<unsigned long long>(ticks), overhead_pct,
                 wall_ms);
    std::fflush(f);
}

/**
 * Append one JSONL row whose figure of merit is a speedup ratio
 * rather than a percent overhead. Distinct `speedup_x` field so
 * consumers never have to guess which meaning `overhead_pct` carries
 * for a given bench (the historical crypto_microbench overload).
 */
inline void
jsonSpeedupRow(const std::string &bench, const std::string &config,
               const std::string &workload, uint64_t units,
               double speedup_x, double wall_ms)
{
    std::FILE *f = detail::jsonFile();
    if (!f)
        return;
    std::lock_guard<std::mutex> lock(detail::jsonMutex());
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"config\":\"%s\","
                 "\"workload\":\"%s\",\"ticks\":%llu,"
                 "\"speedup_x\":%.4f,\"wall_ms\":%.3f}\n",
                 detail::jsonEscape(bench).c_str(),
                 detail::jsonEscape(config).c_str(),
                 detail::jsonEscape(workload).c_str(),
                 static_cast<unsigned long long>(units), speedup_x,
                 wall_ms);
    std::fflush(f);
}

/**
 * Per-binary bookkeeping for OBFUSMEM_BENCH_JSON runs. Construct one
 * at the top of a benchmark's main():
 *  - on construction it appends a host-metadata row (probed CPU
 *    feature flags, the resolved AES lane, sweep job count) so
 *    baselines recorded on different machines are comparable;
 *  - on destruction it appends a `total_wall` summary row covering
 *    the binary's whole lifetime, which is what the CI perf budget
 *    compares against the checked-in baseline.
 */
class Session
{
  public:
    explicit Session(const std::string &bench)
        : benchName(bench), start(std::chrono::steady_clock::now())
    {
        std::FILE *f = detail::jsonFile();
        if (!f)
            return;
        std::lock_guard<std::mutex> lock(detail::jsonMutex());
        std::fprintf(f,
                     "{\"bench\":\"%s\",\"config\":\"host\","
                     "\"workload\":\"meta\",\"cpu_features\":\"%s\","
                     "\"aes_impl\":\"%s\",\"jobs\":%u}\n",
                     detail::jsonEscape(benchName).c_str(),
                     detail::jsonEscape(
                         crypto::cpuFeatureSummary()).c_str(),
                     crypto::aesImplName(
                         crypto::Aes128::defaultImpl()),
                     benchJobs());
        std::fflush(f);
    }

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    ~Session()
    {
        double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        jsonRow(benchName, "host", "total_wall", 0, 0.0, wall_ms);
    }

  private:
    std::string benchName;
    std::chrono::steady_clock::time_point start;
};

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(instructions/core: %llu, cores: 4, sweep jobs: %u; "
                "override with OBFUSMEM_BENCH_INSTRS / "
                "OBFUSMEM_BENCH_JOBS)\n\n",
                static_cast<unsigned long long>(
                    instructionsPerCore()),
                benchJobs());
}

} // namespace bench
} // namespace obfusmem

#endif // OBFUSMEM_BENCH_COMMON_HH
