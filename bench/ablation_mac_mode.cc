/**
 * @file
 * Ablation of Section 3.5's MAC composition: the paper's
 * encrypt-and-MAC (overlapped with encryption) versus the rejected
 * encrypt-then-MAC, whose 64-stage MD5 pipeline serializes on the
 * request path (Observation 4).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_mac_mode");
    printHeader("Ablation (Sec 3.5): encrypt-and-MAC vs "
                "encrypt-then-MAC");

    const char *benchmarks[] = {"bwaves", "mcf", "milc", "soplex",
                                "sjeng"};

    std::printf("%-12s %12s %16s %16s\n", "Benchmark", "NoAuth%",
                "Encrypt&MAC%", "EncryptThenMAC%");
    std::printf("%.*s\n", 60,
                "----------------------------------------------------"
                "--------");

    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        cfgs.push_back(makeConfig(ProtectionMode::Unprotected, name));
        cfgs.push_back(makeConfig(ProtectionMode::ObfusMem, name));
        SystemConfig and_cfg =
            makeConfig(ProtectionMode::ObfusMemAuth, name);
        and_cfg.obfusmem.mac.mode = MacMode::EncryptAndMac;
        cfgs.push_back(and_cfg);
        SystemConfig then_cfg =
            makeConfig(ProtectionMode::ObfusMemAuth, name);
        then_cfg.obfusmem.mac.mode = MacMode::EncryptThenMac;
        cfgs.push_back(then_cfg);
    }
    const auto outcomes = sweepOutcomes(cfgs);

    double sum_and = 0, sum_then = 0;
    int n = 0;
    for (const char *name : benchmarks) {
        const RunOutcome *row = &outcomes[4 * n];
        Tick base = row[0].result.execTicks;
        Tick none = row[1].result.execTicks;
        Tick and_mac = row[2].result.execTicks;
        Tick then_mac = row[3].result.execTicks;

        std::printf("%-12s %12.1f %16.1f %16.1f\n", name,
                    overheadPct(none, base),
                    overheadPct(and_mac, base),
                    overheadPct(then_mac, base));
        jsonRow("ablation_mac_mode", "encrypt_and_mac", name, and_mac,
                overheadPct(and_mac, base), row[2].wallMs);
        jsonRow("ablation_mac_mode", "encrypt_then_mac", name,
                then_mac, overheadPct(then_mac, base), row[3].wallMs);
        sum_and += overheadPct(and_mac, base);
        sum_then += overheadPct(then_mac, base);
        ++n;
    }

    std::printf("%.*s\n", 60,
                "----------------------------------------------------"
                "--------");
    std::printf("%-12s %12s %16.1f %16.1f\n", "Avg", "", sum_and / n,
                sum_then / n);
    std::printf("\nClaim check (Observation 4): overlapping the MAC "
                "with encryption keeps\nauthentication nearly free; "
                "serializing the full MD5 pipeline does not.\n");
    return 0;
}
