/**
 * @file
 * Reproduces Figure 5: the impact of the number of memory channels
 * on ObfusMem's overhead, for the UNOPT (dummies on every other
 * channel) and OPT (dummies on idle channels only) inter-channel
 * obfuscation schemes, with and without authentication. Each point
 * is normalized to the unprotected system with the same number of
 * channels.
 *
 * Paper reference: at 8 channels UNOPT reaches 18.8%/16.3% (with/
 * without auth) while OPT stays at 13.2%/10.1% (Observation 6).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("fig5_channels");
    printHeader("Figure 5: channel-count sweep, UNOPT vs OPT "
                "(averaged over all 15 benchmarks)");

    const unsigned channel_counts[] = {1, 2, 4, 8};

    std::printf("%-9s %12s %12s %14s %14s\n", "Channels", "UNOPT%",
                "OPT%", "UNOPT+Auth%", "OPT+Auth%");
    std::printf("%.*s\n", 66,
                "----------------------------------------------------"
                "--------------");

    // Five configs per (channel count, benchmark) point: the
    // unprotected baseline plus the four mode/scheme combinations.
    // The whole grid goes through the sweep runner as one batch.
    const std::vector<std::string> names = benchmarkNames();
    std::vector<SystemConfig> cfgs;
    for (unsigned channels : channel_counts) {
        for (const std::string &name : names) {
            cfgs.push_back(makeConfig(ProtectionMode::Unprotected,
                                      name, channels));
            for (ProtectionMode mode :
                 {ProtectionMode::ObfusMem,
                  ProtectionMode::ObfusMemAuth}) {
                for (ChannelScheme scheme :
                     {ChannelScheme::Unopt, ChannelScheme::Opt}) {
                    SystemConfig cfg = makeConfig(mode, name,
                                                  channels);
                    cfg.obfusmem.channelScheme = scheme;
                    cfgs.push_back(cfg);
                }
            }
        }
    }
    const auto outcomes = sweepOutcomes(cfgs);

    static const char *const variant_names[4] = {
        "obfusmem_unopt", "obfusmem_opt", "obfusmem_auth_unopt",
        "obfusmem_auth_opt"};
    size_t at = 0;
    for (unsigned channels : channel_counts) {
        double sums[4] = {0, 0, 0, 0};
        int n = 0;
        for (const std::string &name : names) {
            Tick base = outcomes[at++].result.execTicks;
            for (int idx = 0; idx < 4; ++idx) {
                const RunOutcome &out = outcomes[at++];
                double pct =
                    overheadPct(out.result.execTicks, base);
                sums[idx] += pct;
                jsonRow("fig5_channels",
                        std::string(variant_names[idx]) + "_ch"
                            + std::to_string(channels),
                        name, out.result.execTicks, pct, out.wallMs);
            }
            ++n;
        }
        // sums: [ObfusMem/UNOPT, ObfusMem/OPT, Auth/UNOPT, Auth/OPT]
        std::printf("%-9u %12.1f %12.1f %14.1f %14.1f\n", channels,
                    sums[0] / n, sums[1] / n, sums[2] / n,
                    sums[3] / n);
    }

    std::printf("\nPaper (8 channels): UNOPT 16.3%% / OPT 10.1%% "
                "without auth; UNOPT 18.8%% / OPT 13.2%% with auth.\n"
                "Claim check: OPT <= UNOPT, with the gap growing in "
                "the channel count.\n");
    return 0;
}
