/**
 * @file
 * Reproduces Table 1: characteristics of the evaluated benchmarks
 * (IPC, LLC MPKI, average memory-request gap) measured on the
 * unprotected system, next to the paper's reported values.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("table1_characteristics");
    printHeader("Table 1: characteristics of the evaluated benchmarks "
                "(measured vs paper)");

    std::printf("%-12s %8s %8s | %8s %8s | %10s %10s\n", "Benchmark",
                "IPC", "paper", "MPKI", "paper", "AvgGap(ns)",
                "paper");
    std::printf("%.*s\n", 76,
                "----------------------------------------------------"
                "------------------------");

    const auto profiles = BenchmarkProfile::spec2006();
    std::vector<SystemConfig> cfgs;
    for (const auto &profile : profiles)
        cfgs.push_back(
            makeConfig(ProtectionMode::Unprotected, profile.name));
    const auto outcomes = sweepOutcomes(cfgs);

    for (size_t i = 0; i < profiles.size(); ++i) {
        const auto &profile = profiles[i];
        const System::RunResult &r = outcomes[i].result;
        std::printf("%-12s %8.2f %8.2f | %8.2f %8.2f | %10.1f "
                    "%10.1f\n",
                    profile.name.c_str(), r.ipc, profile.paperIpc,
                    r.mpki, profile.paperMpki, r.avgGapNs,
                    profile.paperGapNs);
        jsonRow("table1_characteristics", "unprotected", profile.name,
                r.execTicks, 0.0, outcomes[i].wallMs);
    }

    std::printf("\nNotes: IPC and MPKI are calibration targets; the "
                "gap column emerges from\nthe generated traffic "
                "(demand misses + writebacks per core).\n");
    return 0;
}
