/**
 * @file
 * Reproduces Table 4: the ORAM vs ObfusMem comparison. The
 * quantitative rows (execution overhead, storage overhead, write
 * amplification, deadlock) are measured from this repository's
 * implementations; the qualitative rows are derived from the
 * mechanisms exercised by the test suite.
 */

#include <cstdio>

#include "bench_common.hh"
#include "oram/path_oram.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("table4_comparison");
    printHeader("Table 4: comparing ORAM and ObfusMem");

    // --- Execution-time overhead (subset average for speed) --------
    const char *probe_benchmarks[] = {"bwaves", "mcf", "milc",
                                      "soplex", "sjeng", "hmmer"};
    std::vector<SystemConfig> probe_cfgs;
    for (const char *name : probe_benchmarks) {
        probe_cfgs.push_back(
            makeConfig(ProtectionMode::Unprotected, name));
        probe_cfgs.push_back(
            makeConfig(ProtectionMode::OramFixed, name));
        probe_cfgs.push_back(
            makeConfig(ProtectionMode::ObfusMemAuth, name));
    }
    const auto probe_outcomes = sweepOutcomes(probe_cfgs);

    double oram_sum = 0, obfus_sum = 0;
    int n = 0;
    for (const char *name : probe_benchmarks) {
        const RunOutcome *row = &probe_outcomes[3 * n];
        Tick base = row[0].result.execTicks;
        double oram_pct =
            overheadPct(row[1].result.execTicks, base);
        double obfus_pct =
            overheadPct(row[2].result.execTicks, base);
        oram_sum += oram_pct;
        obfus_sum += obfus_pct;
        jsonRow("table4_comparison", "oram_fixed", name,
                row[1].result.execTicks, oram_pct, row[1].wallMs);
        jsonRow("table4_comparison", "obfusmem_auth", name,
                row[2].result.execTicks, obfus_pct, row[2].wallMs);
        ++n;
    }

    // --- Storage overhead -------------------------------------------
    PathOram::Params oram_params;
    oram_params.levels = 24;
    PathOram oram_tree(oram_params);
    double oram_storage =
        100.0
        * (static_cast<double>(oram_tree.physicalBlocks())
               / oram_tree.capacityBlocks()
           - 1.0);
    SystemConfig cfg = makeConfig(ProtectionMode::ObfusMemAuth,
                                  "milc", 8);
    double obfus_storage = 100.0 * (8.0 * blockBytes)
                           / cfg.capacityBytes;

    // --- Write amplification ----------------------------------------
    // The ORAM counters live on the System, so they are pulled by the
    // sweep extractor while the worker still owns it.
    struct AmpRow
    {
        System::RunResult result;
        uint64_t oramBlocksWritten = 0;
        uint64_t oramAccesses = 0;
    };
    const std::vector<SystemConfig> amp_cfgs = {
        makeConfig(ProtectionMode::OramFixed, "milc"),
        makeConfig(ProtectionMode::ObfusMemAuth, "milc"),
        makeConfig(ProtectionMode::Unprotected, "milc"),
    };
    const auto amp_rows =
        sweep(amp_cfgs, [](System &sys, const RunOutcome &out) {
            AmpRow row;
            row.result = out.result;
            if (sys.oramFixed()) {
                row.oramBlocksWritten =
                    sys.oramFixed()->blocksWritten();
                row.oramAccesses = sys.oramFixed()->accessCount();
            }
            return row;
        });
    double oram_amp =
        static_cast<double>(amp_rows[0].oramBlocksWritten)
        / amp_rows[0].oramAccesses;
    const System::RunResult &obfus_result = amp_rows[1].result;
    const System::RunResult &base_result = amp_rows[2].result;
    double obfus_amp =
        base_result.cellWrites > 0
            ? static_cast<double>(obfus_result.cellWrites)
                  / base_result.cellWrites
            : 1.0;

    // --- Deadlock possibility ---------------------------------------
    // Stress a small tree past its design point: Path ORAM's stash
    // can overflow (reshuffling cannot proceed); ObfusMem has no
    // analogous structure.
    PathOram::Params stress;
    stress.levels = 4;
    stress.stashLimit = 8;
    PathOram stressed(stress);
    DataBlock d{};
    for (int i = 0; i < 300; ++i)
        stressed.write(i, d);
    bool oram_can_deadlock = stressed.stashOverflows() > 0;

    // --- Command authentication --------------------------------------
    // ObfusMem's MAC detects tampering (exercised in the test suite);
    // typical ORAM implementations carry no equivalent.
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.addr = 0x1000;
    bool detects = !mac.verify(hdr, 1, mac.compute(hdr, 0));

    std::printf("%-24s | %-22s | %-22s\n", "Aspect", "ORAM",
                "ObfusMem");
    std::printf("%.*s\n", 74,
                "----------------------------------------------------"
                "----------------------");
    std::printf("%-24s | %-22s | %-22s\n", "Spatial pattern", "Full",
                "Full (AES-CTR addr)");
    std::printf("%-24s | %-22s | %-22s\n", "Temporal pattern", "Full",
                "Full (fresh pads)");
    std::printf("%-24s | %-22s | %-22s\n", "Read vs write",
                "Full (uniform paths)", "Full (dummy pairing)");
    std::printf("%-24s | %-22s | %-22s\n", "Command authentication",
                "No", detects ? "Yes (MAC verified)" : "BROKEN");
    std::printf("%-24s | %-22s | %-22s\n", "TCB", "Proc only",
                "Proc+Mem");
    std::printf("%-24s | %17.0f%%    | %17.1f%%\n",
                "Exe time overheads", oram_sum / n, obfus_sum / n);
    std::printf("%-24s | %17.0f%%    | %17.4f%%\n",
                "Storage overheads", oram_storage, obfus_storage);
    std::printf("%-24s | %16.0fx    | %16.2fx\n",
                "Write amplification", oram_amp, obfus_amp);
    std::printf("%-24s | %-22s | %-22s\n", "Deadlock possibility",
                oram_can_deadlock ? "Low (stash overflow)" : "None",
                "Zero (no reshuffling)");
    std::printf("%-24s | %-22s | %-22s\n", "Component upgrade",
                "Easy", "Harder (spare keys)");
    std::printf("\nPaper row values: 946%% vs 11%% overhead, 100%% vs "
                "0%% storage,\n~100x vs none write amplification.\n");
    return 0;
}
