/**
 * @file
 * Reproduces Table 4: the ORAM vs ObfusMem comparison, extended with
 * the write-only ORAM competitors (Flat ORAM and the deterministic
 * stash-free write-only ORAM) and plain encryption. The quantitative
 * rows (execution overhead, storage overhead, write amplification,
 * deadlock) are measured from this repository's implementations; the
 * qualitative rows are derived from the mechanisms exercised by the
 * test suite.
 */

#include <cstdio>

#include "bench_common.hh"
#include "oram/flat_oram.hh"
#include "oram/path_oram.hh"
#include "oram/write_only_oram.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("table4_comparison");
    printHeader("Table 4: comparing ORAM, write-only ORAMs and "
                "ObfusMem");

    // --- Execution-time overhead (subset average for speed) --------
    const char *probe_benchmarks[] = {"bwaves", "mcf", "milc",
                                      "soplex", "sjeng", "hmmer"};
    struct Contender
    {
        ProtectionMode mode;
        const char *jsonName;
    };
    const Contender contenders[] = {
        {ProtectionMode::OramFixed, "oram_fixed"},
        {ProtectionMode::ObfusMemAuth, "obfusmem_auth"},
        {ProtectionMode::EncryptionOnly, "encryption_only"},
        {ProtectionMode::FlatOram, "flat_oram"},
        {ProtectionMode::WriteOnlyOram, "wo_oram"},
    };
    constexpr size_t kContenders =
        sizeof(contenders) / sizeof(contenders[0]);
    constexpr size_t kStride = 1 + kContenders;

    std::vector<SystemConfig> probe_cfgs;
    for (const char *name : probe_benchmarks) {
        probe_cfgs.push_back(
            makeConfig(ProtectionMode::Unprotected, name));
        for (const Contender &c : contenders)
            probe_cfgs.push_back(makeConfig(c.mode, name));
    }
    const auto probe_outcomes = sweepOutcomes(probe_cfgs);

    double sums[kContenders] = {};
    int n = 0;
    for (const char *name : probe_benchmarks) {
        const RunOutcome *row = &probe_outcomes[kStride * n];
        Tick base = row[0].result.execTicks;
        for (size_t c = 0; c < kContenders; ++c) {
            double pct =
                overheadPct(row[1 + c].result.execTicks, base);
            sums[c] += pct;
            jsonRow("table4_comparison", contenders[c].jsonName, name,
                    row[1 + c].result.execTicks, pct,
                    row[1 + c].wallMs);
        }
        ++n;
    }

    // --- Storage overhead -------------------------------------------
    PathOram::Params oram_params;
    oram_params.levels = 24;
    PathOram oram_tree(oram_params);
    double oram_storage =
        100.0
        * (static_cast<double>(oram_tree.physicalBlocks())
               / oram_tree.capacityBlocks()
           - 1.0);
    FlatOram::Params flat_params;
    FlatOram flat(flat_params);
    double flat_storage =
        100.0
        * (static_cast<double>(flat.physicalBlocks())
               / flat.capacityBlocks()
           - 1.0);
    WriteOnlyOram::Params wo_params;
    WriteOnlyOram wo(wo_params);
    double wo_storage =
        100.0
        * (static_cast<double>(wo.physicalBlocks())
               / wo.capacityBlocks()
           - 1.0);
    SystemConfig cfg = makeConfig(ProtectionMode::ObfusMemAuth,
                                  "milc", 8);
    double obfus_storage = 100.0 * (8.0 * blockBytes)
                           / cfg.capacityBytes;

    // --- Write amplification ----------------------------------------
    // The scheme counters live on the System, so they are pulled by
    // the sweep extractor while the worker still owns it.
    struct AmpRow
    {
        System::RunResult result;
        uint64_t blocksWritten = 0;
        uint64_t accesses = 0;
        uint64_t logicalWrites = 0;
    };
    const std::vector<SystemConfig> amp_cfgs = {
        makeConfig(ProtectionMode::OramFixed, "milc"),
        makeConfig(ProtectionMode::ObfusMemAuth, "milc"),
        makeConfig(ProtectionMode::Unprotected, "milc"),
        makeConfig(ProtectionMode::FlatOram, "milc"),
        makeConfig(ProtectionMode::WriteOnlyOram, "milc"),
    };
    const auto amp_rows =
        sweep(amp_cfgs, [](System &sys, const RunOutcome &out) {
            AmpRow row;
            row.result = out.result;
            if (sys.oramFixed()) {
                row.blocksWritten = sys.oramFixed()->blocksWritten();
                row.accesses = sys.oramFixed()->accessCount();
            }
            if (sys.flatOramCtl()) {
                const FlatOram &f = sys.flatOramCtl()->oram();
                row.blocksWritten = f.physicalWrites();
                row.logicalWrites = f.physicalWrites();
            }
            if (sys.writeOnlyOramCtl()) {
                const WriteOnlyOram &w =
                    sys.writeOnlyOramCtl()->oram();
                row.blocksWritten = w.physicalWrites();
                row.logicalWrites = w.logicalWrites();
            }
            return row;
        });
    double oram_amp =
        static_cast<double>(amp_rows[0].blocksWritten)
        / amp_rows[0].accesses;
    const System::RunResult &obfus_result = amp_rows[1].result;
    const System::RunResult &base_result = amp_rows[2].result;
    double obfus_amp =
        base_result.cellWrites > 0
            ? static_cast<double>(obfus_result.cellWrites)
                  / base_result.cellWrites
            : 1.0;
    // The write-only structures report exact per-logical-write costs.
    double flat_amp =
        amp_rows[3].logicalWrites > 0
            ? static_cast<double>(amp_rows[3].blocksWritten)
                  / amp_rows[3].logicalWrites
            : 1.0;
    double wo_amp =
        amp_rows[4].logicalWrites > 0
            ? static_cast<double>(amp_rows[4].blocksWritten)
                  / amp_rows[4].logicalWrites
            : 2.0;

    // --- Deadlock possibility ---------------------------------------
    // Stress a small tree past its design point: Path ORAM's stash
    // can overflow (reshuffling cannot proceed). The production
    // default is fail-stop; the probe opts out to *measure* the
    // overflow instead of aborting. Neither write-only ORAM has a
    // stash (Flat ORAM has only its 2^-128 probe bound; the
    // deterministic WoORAM has no probabilistic structure at all),
    // and ObfusMem has no analogous structure either.
    PathOram::Params stress;
    stress.levels = 4;
    stress.stashLimit = 8;
    stress.failOnOverflow = false;
    PathOram stressed(stress);
    DataBlock d{};
    for (int i = 0; i < 300; ++i)
        stressed.write(i, d);
    bool oram_can_deadlock = stressed.stashOverflows() > 0;

    // --- Command authentication --------------------------------------
    // ObfusMem's MAC detects tampering (exercised in the test suite);
    // typical ORAM implementations carry no equivalent.
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.addr = 0x1000;
    bool detects = !mac.verify(hdr, 1, mac.compute(hdr, 0));

    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n", "Aspect",
                "ORAM (Path)", "Flat ORAM", "Det. WoORAM",
                "ObfusMem");
    std::printf("%.*s\n", 96,
                "----------------------------------------------------"
                "--------------------------------------------");
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n",
                "Spatial pattern", "Full", "Writes only",
                "Writes only", "Full (AES-CTR)");
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n",
                "Temporal pattern", "Full", "Writes only",
                "Writes only", "Full (fresh pads)");
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n",
                "Read vs write", "Full (uniform)", "No", "No",
                "Full (dummies)");
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n",
                "Command auth", "No", "No", "No",
                detects ? "Yes (MAC)" : "BROKEN");
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n", "TCB",
                "Proc only", "Proc only", "Proc only", "Proc+Mem");
    std::printf("%-22s | %14.0f%% | %12.1f%% | %12.1f%% | %16.1f%%\n",
                "Exe time overheads", sums[0] / n, sums[3] / n,
                sums[4] / n, sums[1] / n);
    std::printf("   %-19s | %16s | %14s | %14s | %15.1f%%\n",
                "(encryption only)", "", "", "", sums[2] / n);
    std::printf("%-22s | %14.0f%% | %12.0f%% | %12.0f%% | %16.4f%%\n",
                "Storage overheads", oram_storage, flat_storage,
                wo_storage, obfus_storage);
    std::printf("%-22s | %13.0fx  | %11.2fx  | %11.2fx  | %15.2fx\n",
                "Write amplification", oram_amp, flat_amp, wo_amp,
                obfus_amp);
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n",
                "Deadlock possibility",
                oram_can_deadlock ? "Low (stash)" : "None",
                "~0 (2^-128)", "None (determ.)", "Zero");
    std::printf("%-22s | %-16s | %-14s | %-14s | %-18s\n",
                "Component upgrade", "Easy", "Easy", "Easy",
                "Harder (keys)");
    std::printf("\nPaper row values: 946%% vs 11%% overhead, 100%% vs "
                "0%% storage,\n~100x vs none write amplification. The "
                "write-only ORAMs trade read-pattern\nprotection for "
                "1x/2x write cost and 100%% storage.\n");
    return 0;
}
