/**
 * @file
 * Ablation of the paper's Section 7 comparison with InvisiMem:
 * ObfusMem's split read-then-write dummy pairs (with request
 * dropping and real-request substitution) versus uniform-size
 * packets where every request carries a payload and every request
 * gets a full reply. The paper argues the split scheme uses the bus
 * better under heavy read/write load.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_packet_scheme");
    printHeader("Ablation (Sec 7): split dummy pairs vs uniform "
                "packets (InvisiMem-style)");

    const char *benchmarks[] = {"bwaves", "mcf", "milc", "lbm",
                                "soplex", "gems"};

    std::printf("%-12s %10s %12s | %14s %14s\n", "Benchmark",
                "Split%", "Uniform%", "SplitBusByte/i",
                "UnifBusByte/i");
    std::printf("%.*s\n", 70,
                "----------------------------------------------------"
                "------------------");

    struct Row
    {
        RunOutcome out;
        double busBytesPerInstr = 0;
    };
    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        cfgs.push_back(makeConfig(ProtectionMode::Unprotected, name));
        for (bool uniform : {false, true}) {
            SystemConfig cfg =
                makeConfig(ProtectionMode::ObfusMemAuth, name);
            cfg.obfusmem.uniformPackets = uniform;
            cfg.attachObserver = true;
            cfgs.push_back(cfg);
        }
    }
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            Row row;
            row.out = out;
            if (sys.observer() && out.result.instructions) {
                row.busBytesPerInstr =
                    static_cast<double>(
                        sys.observer()->bytesToMemory()
                        + sys.observer()->bytesToProcessor())
                    / out.result.instructions;
            }
            return row;
        });

    double sum_split = 0, sum_uniform = 0;
    int n = 0;
    for (const char *name : benchmarks) {
        const Row *row = &rows[3 * n];
        Tick base = row[0].out.result.execTicks;
        double split_pct =
            overheadPct(row[1].out.result.execTicks, base);
        double uniform_pct =
            overheadPct(row[2].out.result.execTicks, base);
        std::printf("%-12s %10.1f %12.1f | %14.3f %14.3f\n", name,
                    split_pct, uniform_pct, row[1].busBytesPerInstr,
                    row[2].busBytesPerInstr);
        jsonRow("ablation_packet_scheme", "split", name,
                row[1].out.result.execTicks, split_pct,
                row[1].out.wallMs);
        jsonRow("ablation_packet_scheme", "uniform", name,
                row[2].out.result.execTicks, uniform_pct,
                row[2].out.wallMs);
        sum_split += split_pct;
        sum_uniform += uniform_pct;
        ++n;
    }

    std::printf("%.*s\n", 70,
                "----------------------------------------------------"
                "------------------");
    std::printf("%-12s %10.1f %12.1f\n", "Avg", sum_split / n,
                sum_uniform / n);
    std::printf("\nClaim check: the split scheme's droppable dummies "
                "and real-request\nsubstitution keep bus bytes per "
                "instruction at or below the uniform scheme's.\n");
    return 0;
}
