/**
 * @file
 * Ablation of the paper's Section 7 comparison with InvisiMem:
 * ObfusMem's split read-then-write dummy pairs (with request
 * dropping and real-request substitution) versus uniform-size
 * packets where every request carries a payload and every request
 * gets a full reply. The paper argues the split scheme uses the bus
 * better under heavy read/write load.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Ablation (Sec 7): split dummy pairs vs uniform "
                "packets (InvisiMem-style)");

    const char *benchmarks[] = {"bwaves", "mcf", "milc", "lbm",
                                "soplex", "gems"};

    std::printf("%-12s %10s %12s | %14s %14s\n", "Benchmark",
                "Split%", "Uniform%", "SplitBusByte/i",
                "UnifBusByte/i");
    std::printf("%.*s\n", 70,
                "----------------------------------------------------"
                "------------------");

    double sum_split = 0, sum_uniform = 0;
    int n = 0;
    for (const char *name : benchmarks) {
        Tick base = run(ProtectionMode::Unprotected, name).execTicks;

        auto measure = [&](bool uniform) {
            SystemConfig cfg =
                makeConfig(ProtectionMode::ObfusMemAuth, name);
            cfg.obfusmem.uniformPackets = uniform;
            cfg.attachObserver = true;
            System sys(cfg);
            auto r = sys.run();
            double bytes = 0;
            if (sys.observer()) {
                bytes = static_cast<double>(
                            sys.observer()->bytesToMemory()
                            + sys.observer()->bytesToProcessor())
                        / r.instructions;
            }
            return std::make_pair(overheadPct(r.execTicks, base),
                                  bytes);
        };

        auto [split_pct, split_bytes] = measure(false);
        auto [uniform_pct, uniform_bytes] = measure(true);
        std::printf("%-12s %10.1f %12.1f | %14.3f %14.3f\n", name,
                    split_pct, uniform_pct, split_bytes,
                    uniform_bytes);
        sum_split += split_pct;
        sum_uniform += uniform_pct;
        ++n;
    }

    std::printf("%.*s\n", 70,
                "----------------------------------------------------"
                "------------------");
    std::printf("%-12s %10.1f %12.1f\n", "Avg", sum_split / n,
                sum_uniform / n);
    std::printf("\nClaim check: the split scheme's droppable dummies "
                "and real-request\nsubstitution keep bus bytes per "
                "instruction at or below the uniform scheme's.\n");
    return 0;
}
