/**
 * @file
 * Reproduces the Section 5.2 analysis: the impact of ORAM vs
 * ObfusMem on PCM energy and lifetime, combining the paper's
 * analytical recipe with counts measured from this repository's
 * simulations.
 *
 * Paper claims: a basic ORAM costs ~(1+6.8)*100 = 780x the read
 * energy per access vs ObfusMem's (1+6.8)/2 = 3.9x (a ~200x PCM
 * energy reduction); ObfusMem adds no extra writes (~100x lifetime);
 * ORAM needs ~800 pads per access vs 16 (one busy channel) to 64
 * (4 idle channels) for ObfusMem.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("sec52_energy_lifetime");
    printHeader("Section 5.2: memory energy and lifetime");

    PcmParams pcm;
    const double w_over_r = pcm.writeEnergyPj / pcm.readEnergyPj;

    // --- Analytical recipe (paper's own arithmetic) -----------------
    const double path_blocks = 100.0; // L=24, Z=4
    double oram_energy_x = (1.0 + w_over_r) * path_blocks;
    double obfus_energy_x = (1.0 + w_over_r) / 2.0;
    std::printf("PCM access energy per request (in units of one "
                "block read):\n");
    std::printf("  ORAM (read+evict %g blocks)        : %8.1fx "
                "(paper: 780x)\n", path_blocks, oram_energy_x);
    std::printf("  ObfusMem (50:50 read/write mix)    : %8.1fx "
                "(paper: 3.9x)\n", obfus_energy_x);
    std::printf("  reduction                          : %8.1fx "
                "(paper: 200x)\n\n",
                oram_energy_x / obfus_energy_x);

    // --- Pad accounting ----------------------------------------------
    double oram_pads = 2 * path_blocks * 4; // en/decrypt 4 pads/block
    std::printf("128-bit encryption pads per access:\n");
    std::printf("  ORAM (decrypt+encrypt %g blocks)   : %8.0f "
                "(paper: 800)\n", path_blocks, oram_pads);
    std::printf("  ObfusMem busy channels             : %8.0f "
                "(paper: 16)\n",
                static_cast<double>(countersPerRequestGroup
                                    + countersPerReply)
                    + 5.0); // 6 req + 5 reply at proc, 6 at memory...
    std::printf("  ObfusMem 4 channels all idle       : %8.0f "
                "(paper: 64)\n", 16.0 * 4);
    std::printf("  reduction (worst case)             : %8.1fx "
                "(paper: 12.5x)\n\n", oram_pads / 64.0);

    // --- Measured: write traffic and lifetime ------------------------
    std::printf("Measured on the milc workload:\n");
    struct MeasuredRow
    {
        System::RunResult result;
        uint64_t oramBlocksWritten = 0;
        uint64_t oramAccesses = 0;
    };
    const std::vector<SystemConfig> cfgs = {
        makeConfig(ProtectionMode::Unprotected, "milc"),
        makeConfig(ProtectionMode::ObfusMemAuth, "milc"),
        makeConfig(ProtectionMode::OramFixed, "milc"),
    };
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            MeasuredRow row;
            row.result = out.result;
            if (sys.oramFixed()) {
                row.oramBlocksWritten =
                    sys.oramFixed()->blocksWritten();
                row.oramAccesses = sys.oramFixed()->accessCount();
            }
            return row;
        });
    const System::RunResult &base_result = rows[0].result;
    const System::RunResult &obfus_result = rows[1].result;
    uint64_t oram_block_writes = rows[2].oramBlocksWritten;
    uint64_t oram_accesses = rows[2].oramAccesses;
    jsonRow("sec52_energy_lifetime", "unprotected", "milc",
            base_result.execTicks, 0.0, 0.0);
    jsonRow("sec52_energy_lifetime", "obfusmem_auth", "milc",
            obfus_result.execTicks,
            overheadPct(obfus_result.execTicks,
                        base_result.execTicks),
            0.0);

    std::printf("  unprotected PCM cell writes        : %8llu\n",
                static_cast<unsigned long long>(
                    base_result.cellWrites));
    std::printf("  ObfusMem PCM cell writes           : %8llu "
                "(amplification %.2fx)\n",
                static_cast<unsigned long long>(
                    obfus_result.cellWrites),
                base_result.cellWrites
                    ? static_cast<double>(obfus_result.cellWrites)
                          / base_result.cellWrites
                    : 0.0);
    std::printf("  ORAM block writes (path evictions) : %8llu "
                "(%.0f per access)\n",
                static_cast<unsigned long long>(oram_block_writes),
                static_cast<double>(oram_block_writes)
                    / oram_accesses);
    double lifetime_x =
        static_cast<double>(oram_block_writes)
        / std::max<uint64_t>(obfus_result.cellWrites, 1);
    std::printf("  lifetime advantage of ObfusMem     : %8.0fx "
                "(paper: ~100x)\n", lifetime_x);

    std::printf("\n  measured PCM array energy: unprotected %.0f pJ, "
                "ObfusMem %.0f pJ (+%.1f%%)\n",
                base_result.pcmEnergyPj, obfus_result.pcmEnergyPj,
                100.0 * (obfus_result.pcmEnergyPj
                             / base_result.pcmEnergyPj
                         - 1.0));
    std::printf("\nClaim check: ObfusMem neither amplifies writes "
                "nor burns path-sized energy;\nORAM moves ~200 "
                "blocks per access regardless of type.\n");
    return 0;
}
