/**
 * @file
 * Google-benchmark microbenchmarks of the cryptographic substrate:
 * the functional engines whose synthesized-hardware parameters the
 * timing model uses (AES-CTR pads, MD5 MACs) plus the boot-time
 * public-key operations and a Path ORAM access.
 *
 * A custom main also hand-times the AES implementations against each
 * other and appends the speedups as OBFUSMEM_BENCH_JSON rows: each
 * hardware lane (aesni, aesni4, vaes) versus the T-table path, with
 * the ratio in a dedicated `speedup_x` field (`ticks` carries the
 * blocks processed). Earlier baselines (BENCH_PR4.json) overloaded
 * `overhead_pct` with this ratio; consumers should prefer
 * `speedup_x` and treat the old field as legacy.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "crypto/aes128.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/dh.hh"
#include "crypto/hmac.hh"
#include "crypto/md5.hh"
#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "obfusmem/mac_engine.hh"
#include "oram/path_oram.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::crypto;

namespace {

Aes128::Key
key()
{
    Aes128::Key k{};
    for (size_t i = 0; i < k.size(); ++i)
        k[i] = static_cast<uint8_t>(i);
    return k;
}

constexpr AesImpl implForArg[] = {AesImpl::Reference, AesImpl::Ttable,
                                  AesImpl::Aesni, AesImpl::Aesni4,
                                  AesImpl::Vaes};

/** True when `impl` can run on this host/build (Skip otherwise). */
bool
implAvailable(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Aesni:
      case AesImpl::Aesni4:
        return Aes128::aesniAvailable();
      case AesImpl::Vaes:
        return Aes128::vaesAvailable();
      default:
        return true;
    }
}

void
BM_AesEncryptBlock(benchmark::State &state)
{
    Aes128 aes(key());
    Block128 block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

// The implementations side by side: the AES-NI hardware path and the
// fused T-table fast path against the byte-oriented structural
// reference both are pinned to.
void
BM_AesEncryptBlockImpl(benchmark::State &state)
{
    AesImpl impl = implForArg[state.range(0)];
    if (!implAvailable(impl)) {
        state.SkipWithError("impl unavailable on this host/build");
        return;
    }
    Aes128 aes(key());
    aes.setImpl(impl);
    Block128 block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
    state.SetLabel(aesImplName(impl));
}
BENCHMARK(BM_AesEncryptBlockImpl)->Arg(0)->Arg(1)->Arg(2);

// Batched pad-sized bursts (48 blocks = one prefetch refill of eight
// 6-pad request groups): where the AES-NI 8-wide pipelining shows.
void
BM_AesEncryptBlocksImpl(benchmark::State &state)
{
    AesImpl impl = implForArg[state.range(0)];
    if (!implAvailable(impl)) {
        state.SkipWithError("impl unavailable on this host/build");
        return;
    }
    Aes128 aes(key());
    aes.setImpl(impl);
    Block128 blocks[48] = {};
    for (auto _ : state) {
        aes.encryptBlocks(blocks, blocks, 48);
        benchmark::DoNotOptimize(blocks);
    }
    state.SetBytesProcessed(state.iterations() * 48 * 16);
    state.SetLabel(aesImplName(impl));
}
BENCHMARK(BM_AesEncryptBlocksImpl)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void
BM_AesCtrPad(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint64_t counter = 0;
    for (auto _ : state) {
        Block128 pad = ctr.pad(counter++);
        benchmark::DoNotOptimize(pad);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesCtrPad);

// Pad generation one counter at a time vs the batched genPads call
// that the wire protocol's request groups (6 pads) and replies (5
// pads) use. Bytes/s is directly comparable between the two.
void
BM_AesCtrPadSingle6(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint64_t counter = 0;
    Block128 pads[6];
    for (auto _ : state) {
        for (int i = 0; i < 6; ++i)
            pads[i] = ctr.pad(counter + i);
        counter += 6;
        benchmark::DoNotOptimize(pads);
    }
    state.SetBytesProcessed(state.iterations() * 6 * 16);
}
BENCHMARK(BM_AesCtrPadSingle6);

void
BM_AesCtrPadBatched6(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint64_t counter = 0;
    Block128 pads[6];
    for (auto _ : state) {
        ctr.genPads(counter, pads, 6);
        counter += 6;
        benchmark::DoNotOptimize(pads);
    }
    state.SetBytesProcessed(state.iterations() * 6 * 16);
}
BENCHMARK(BM_AesCtrPadBatched6);

void
BM_AesCtr64ByteBlock(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint8_t buf[64] = {};
    uint64_t counter = 0;
    for (auto _ : state) {
        ctr.applyKeystream(buf, sizeof(buf), counter);
        counter += 4;
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AesCtr64ByteBlock);

void
BM_Md5Digest64B(benchmark::State &state)
{
    uint8_t buf[64] = {};
    for (auto _ : state) {
        auto d = Md5::digest(buf, sizeof(buf));
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Md5Digest64B);

void
BM_Sha1Digest64B(benchmark::State &state)
{
    uint8_t buf[64] = {};
    for (auto _ : state) {
        auto d = Sha1::digest(buf, sizeof(buf));
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Sha1Digest64B);

void
BM_HmacMd5(benchmark::State &state)
{
    uint8_t k[16] = {1, 2, 3};
    uint8_t msg[64] = {};
    for (auto _ : state) {
        auto d = hmacMd5(k, sizeof(k), msg, sizeof(msg));
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_HmacMd5);

void
BM_BusMacComputeVerify(benchmark::State &state)
{
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.addr = 0xdeadbee0;
    uint64_t ctr = 0;
    for (auto _ : state) {
        auto tag = mac.compute(hdr, ctr);
        bool ok = mac.verify(hdr, ctr, tag);
        benchmark::DoNotOptimize(ok);
        ++ctr;
    }
}
BENCHMARK(BM_BusMacComputeVerify);

void
BM_DhHandshakeTestGroup(benchmark::State &state)
{
    Random rng(1);
    const DhGroup &group = DhGroup::testGroup256();
    for (auto _ : state) {
        DhEndpoint a(group, rng), b(group, rng);
        auto s = a.computeShared(b.publicValue());
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_DhHandshakeTestGroup);

void
BM_DhHandshakeModp2048(benchmark::State &state)
{
    Random rng(2);
    const DhGroup &group = DhGroup::modp2048();
    for (auto _ : state) {
        DhEndpoint a(group, rng), b(group, rng);
        auto s = a.computeShared(b.publicValue());
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_DhHandshakeModp2048);

void
BM_RsaSignVerify256(benchmark::State &state)
{
    Random rng(3);
    RsaKeyPair kp = RsaKeyPair::generate(256, rng);
    uint8_t msg[32] = {};
    for (auto _ : state) {
        auto sig = kp.sign(msg, sizeof(msg));
        bool ok = RsaKeyPair::verify(kp.publicKey(), msg,
                                     sizeof(msg), sig);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_RsaSignVerify256);

void
BM_PathOramAccess(benchmark::State &state)
{
    PathOram::Params params;
    params.levels = static_cast<unsigned>(state.range(0));
    PathOram oram(params);
    Random rng(4);
    DataBlock d{};
    uint64_t blocks = oram.capacityBlocks();
    for (auto _ : state) {
        oram.write(rng.randUnder(blocks), d);
    }
    state.counters["blocks/access"] =
        static_cast<double>(oram.pathBlocks());
}
BENCHMARK(BM_PathOramAccess)->Arg(10)->Arg(16)->Arg(20);

// --- AES speedup summary (OBFUSMEM_BENCH_JSON) ----------------------

/** Blocks/second of `impl` encrypting `batch`-block bursts. */
double
aesBlocksPerSec(AesImpl impl, size_t batch, uint64_t blocks)
{
    Aes128 aes(key());
    aes.setImpl(impl);
    std::vector<Block128> buf(batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t done = 0; done < blocks; done += batch)
        aes.encryptBlocks(buf.data(), buf.data(), batch);
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(blocks) /
           std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Hand-timed hardware-lane-vs-ttable comparison, independent of the
 * Google benchmark harness so the rows land in OBFUSMEM_BENCH_JSON:
 * one row per (lane, shape) with the ratio in `speedup_x`, the blocks
 * processed in `ticks` and the lane leg's wall time in `wall_ms`.
 */
void
emitAesSpeedupRows()
{
    const uint64_t blocks =
        obfusmem::env::flag("OBFUSMEM_QUICK") ? 400 * 1000
                                              : 4 * 1000 * 1000;
    std::printf("\n=== AES implementation speedup (%llu blocks) ===\n",
                static_cast<unsigned long long>(blocks));
    if (!Aes128::aesniAvailable()) {
        std::printf("AES-NI unavailable on this host/build; "
                    "skipping speedup rows\n");
        return;
    }
    struct Shape
    {
        const char *name;
        size_t batch;
    };
    // batch 1 = the single-block acceptance shape; batch 48 = one
    // prefetch refill of eight 6-pad request groups (also enough to
    // fill the 16-block VAES lanes three times over).
    const Shape shapes[] = {{"single-block", 1}, {"batch48", 48}};
    const AesImpl lanes[] = {AesImpl::Aesni, AesImpl::Aesni4,
                             AesImpl::Vaes};
    for (const auto &s : shapes) {
        const double ttable =
            aesBlocksPerSec(AesImpl::Ttable, s.batch, blocks);
        for (AesImpl lane : lanes) {
            if (!implAvailable(lane))
                continue;
            const double rate = aesBlocksPerSec(lane, s.batch, blocks);
            const double speedup = rate / ttable;
            std::printf("%-12s  ttable %8.1f Mblk/s   %-6s %8.1f "
                        "Mblk/s   speedup %.2fx\n",
                        s.name, ttable / 1e6, aesImplName(lane),
                        rate / 1e6, speedup);
            bench::jsonSpeedupRow(
                "crypto_microbench",
                std::string(aesImplName(lane)) + "_vs_ttable", s.name,
                blocks, speedup,
                static_cast<double>(blocks) / rate * 1e3);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session("crypto_microbench");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitAesSpeedupRows();
    return 0;
}
