/**
 * @file
 * Google-benchmark microbenchmarks of the cryptographic substrate:
 * the functional engines whose synthesized-hardware parameters the
 * timing model uses (AES-CTR pads, MD5 MACs) plus the boot-time
 * public-key operations and a Path ORAM access.
 */

#include <benchmark/benchmark.h>

#include "crypto/aes128.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/dh.hh"
#include "crypto/hmac.hh"
#include "crypto/md5.hh"
#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "obfusmem/mac_engine.hh"
#include "oram/path_oram.hh"
#include "util/random.hh"

using namespace obfusmem;
using namespace obfusmem::crypto;

namespace {

Aes128::Key
key()
{
    Aes128::Key k{};
    for (size_t i = 0; i < k.size(); ++i)
        k[i] = static_cast<uint8_t>(i);
    return k;
}

void
BM_AesEncryptBlock(benchmark::State &state)
{
    Aes128 aes(key());
    Block128 block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

// The two implementations side by side: the fused T-table fast path
// against the byte-oriented structural reference it is pinned to.
void
BM_AesEncryptBlockImpl(benchmark::State &state)
{
    Aes128 aes(key());
    aes.setImpl(state.range(0) ? AesImpl::Ttable
                               : AesImpl::Reference);
    Block128 block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
    state.SetLabel(state.range(0) ? "ttable" : "reference");
}
BENCHMARK(BM_AesEncryptBlockImpl)->Arg(0)->Arg(1);

void
BM_AesCtrPad(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint64_t counter = 0;
    for (auto _ : state) {
        Block128 pad = ctr.pad(counter++);
        benchmark::DoNotOptimize(pad);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesCtrPad);

// Pad generation one counter at a time vs the batched genPads call
// that the wire protocol's request groups (6 pads) and replies (5
// pads) use. Bytes/s is directly comparable between the two.
void
BM_AesCtrPadSingle6(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint64_t counter = 0;
    Block128 pads[6];
    for (auto _ : state) {
        for (int i = 0; i < 6; ++i)
            pads[i] = ctr.pad(counter + i);
        counter += 6;
        benchmark::DoNotOptimize(pads);
    }
    state.SetBytesProcessed(state.iterations() * 6 * 16);
}
BENCHMARK(BM_AesCtrPadSingle6);

void
BM_AesCtrPadBatched6(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint64_t counter = 0;
    Block128 pads[6];
    for (auto _ : state) {
        ctr.genPads(counter, pads, 6);
        counter += 6;
        benchmark::DoNotOptimize(pads);
    }
    state.SetBytesProcessed(state.iterations() * 6 * 16);
}
BENCHMARK(BM_AesCtrPadBatched6);

void
BM_AesCtr64ByteBlock(benchmark::State &state)
{
    AesCtr ctr(key(), 7);
    uint8_t buf[64] = {};
    uint64_t counter = 0;
    for (auto _ : state) {
        ctr.applyKeystream(buf, sizeof(buf), counter);
        counter += 4;
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AesCtr64ByteBlock);

void
BM_Md5Digest64B(benchmark::State &state)
{
    uint8_t buf[64] = {};
    for (auto _ : state) {
        auto d = Md5::digest(buf, sizeof(buf));
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Md5Digest64B);

void
BM_Sha1Digest64B(benchmark::State &state)
{
    uint8_t buf[64] = {};
    for (auto _ : state) {
        auto d = Sha1::digest(buf, sizeof(buf));
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Sha1Digest64B);

void
BM_HmacMd5(benchmark::State &state)
{
    uint8_t k[16] = {1, 2, 3};
    uint8_t msg[64] = {};
    for (auto _ : state) {
        auto d = hmacMd5(k, sizeof(k), msg, sizeof(msg));
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_HmacMd5);

void
BM_BusMacComputeVerify(benchmark::State &state)
{
    MacEngine mac(MacEngine::Params{});
    WireHeader hdr;
    hdr.addr = 0xdeadbee0;
    uint64_t ctr = 0;
    for (auto _ : state) {
        auto tag = mac.compute(hdr, ctr);
        bool ok = mac.verify(hdr, ctr, tag);
        benchmark::DoNotOptimize(ok);
        ++ctr;
    }
}
BENCHMARK(BM_BusMacComputeVerify);

void
BM_DhHandshakeTestGroup(benchmark::State &state)
{
    Random rng(1);
    const DhGroup &group = DhGroup::testGroup256();
    for (auto _ : state) {
        DhEndpoint a(group, rng), b(group, rng);
        auto s = a.computeShared(b.publicValue());
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_DhHandshakeTestGroup);

void
BM_DhHandshakeModp2048(benchmark::State &state)
{
    Random rng(2);
    const DhGroup &group = DhGroup::modp2048();
    for (auto _ : state) {
        DhEndpoint a(group, rng), b(group, rng);
        auto s = a.computeShared(b.publicValue());
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_DhHandshakeModp2048);

void
BM_RsaSignVerify256(benchmark::State &state)
{
    Random rng(3);
    RsaKeyPair kp = RsaKeyPair::generate(256, rng);
    uint8_t msg[32] = {};
    for (auto _ : state) {
        auto sig = kp.sign(msg, sizeof(msg));
        bool ok = RsaKeyPair::verify(kp.publicKey(), msg,
                                     sizeof(msg), sig);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_RsaSignVerify256);

void
BM_PathOramAccess(benchmark::State &state)
{
    PathOram::Params params;
    params.levels = static_cast<unsigned>(state.range(0));
    PathOram oram(params);
    Random rng(4);
    DataBlock d{};
    uint64_t blocks = oram.capacityBlocks();
    for (auto _ : state) {
        oram.write(rng.randUnder(blocks), d);
    }
    state.counters["blocks/access"] =
        static_cast<double>(oram.pathBlocks());
}
BENCHMARK(BM_PathOramAccess)->Arg(10)->Arg(16)->Arg(20);

} // namespace
