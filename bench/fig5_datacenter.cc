/**
 * @file
 * Datacenter-scale companion to Figure 5: the UNOPT vs OPT
 * inter-channel obfuscation gap when the channel count is scaled into
 * the hundreds by ganging sockets into a multi-tenant rack
 * (system/topology.hh) under the sharded simulation kernel.
 *
 * Per sweep point the rack runs three protection configurations —
 * unprotected (normalization baseline), ObfusMem+Auth UNOPT, and
 * ObfusMem+Auth OPT — and reports the makespan overhead of each
 * scheme. UNOPT pads every request with dummies on every other
 * channel of its socket, so its cost keeps growing with the channel
 * count; OPT's does not (Observation 3/6 at rack scale).
 *
 * Modes:
 *   (default)          channel-count sweep, table + JSONL rows
 *   --trace-out PATH   one small fixed rack; dump wire traces + stats
 *                      to PATH (CI byte-compares across shard counts)
 *   --scaling          one rack at shards=1 then shards=N; reports the
 *                      kernel speedup, gated by the env knob
 *                      OBFUSMEM_DATACENTER_MIN_SPEEDUP (default: off)
 *
 * Knobs: OBFUSMEM_SIM_SHARDS (0 = one per hardware thread),
 * OBFUSMEM_DATACENTER_REQS (requests per tenant), OBFUSMEM_QUICK.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_common.hh"
#include "system/topology.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

namespace {

struct RackShape
{
    unsigned sockets;
    unsigned tenantsPerSocket;
    uint64_t requestsPerTenant;
};

RackShape
shapeFromEnv(bool quick)
{
    RackShape shape;
    shape.sockets = quick ? 2 : 8;
    shape.tenantsPerSocket = quick ? 2 : 4;
    shape.requestsPerTenant = env::u64("OBFUSMEM_DATACENTER_REQS",
                                       quick ? 500 : 40 * 1000);
    return shape;
}

TopologyConfig
makeTopo(const RackShape &shape, unsigned channels,
         ProtectionMode mode, ChannelScheme scheme, unsigned shards)
{
    TopologyConfig tc;
    tc.sockets = shape.sockets;
    tc.channelsPerSocket = channels;
    tc.tenantsPerSocket = shape.tenantsPerSocket;
    tc.mode = mode;
    tc.channelScheme = scheme;
    tc.shards = shards;
    return tc;
}

TenantParams
makeTenant(const RackShape &shape)
{
    TenantParams tp;
    tp.requests = shape.requestsPerTenant;
    return tp;
}

MultiTenantTopology::Result
runRack(const TopologyConfig &tc, const TenantParams &tp)
{
    MultiTenantTopology rack(tc, tp);
    return rack.run();
}

int
traceMode(const std::string &path, unsigned shards)
{
    RackShape shape = shapeFromEnv(true);
    // Four sockets so a --shards 4 leg gets a real four-way split.
    shape.sockets = 4;
    TopologyConfig tc =
        makeTopo(shape, 2, ProtectionMode::ObfusMemAuth,
                 ChannelScheme::Opt, shards);
    tc.recordTraces = true;
    MultiTenantTopology rack(tc, makeTenant(shape));
    MultiTenantTopology::Result res = rack.run();

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    rack.dumpWireTraces(out);
    out << "=== stats ===\n";
    rack.dumpStats(out);
    std::printf("trace mode: %llu requests, %llu epochs, %llu cross "
                "messages, shards=%u -> %s\n",
                (unsigned long long)res.requestsCompleted,
                (unsigned long long)res.epochs,
                (unsigned long long)res.crossMessages,
                rack.kernel().shards(), path.c_str());
    return 0;
}

int
scalingMode(unsigned shards)
{
    const bool quick = env::flag("OBFUSMEM_QUICK");
    RackShape shape = shapeFromEnv(quick);
    const unsigned channels = quick ? 4 : 16;
    TenantParams tp = makeTenant(shape);

    TopologyConfig serial =
        makeTopo(shape, channels, ProtectionMode::ObfusMemAuth,
                 ChannelScheme::Opt, 1);
    MultiTenantTopology::Result r1 = runRack(serial, tp);

    TopologyConfig sharded = serial;
    sharded.shards = shards;
    MultiTenantTopology::Result rn = runRack(sharded, tp);

    const double speedup = r1.wallMs / rn.wallMs;
    std::printf("scaling: %u sockets x %u channels, %llu requests\n"
                "  shards=1: %.1f ms   shards=%u: %.1f ms   "
                "speedup %.2fx\n",
                shape.sockets, channels,
                (unsigned long long)r1.requestsCompleted, r1.wallMs,
                shards, rn.wallMs, speedup);
    jsonSpeedupRow("fig5_datacenter",
                   "scaling_shards" + std::to_string(shards),
                   "rack", rn.requestsCompleted, speedup, rn.wallMs);

    if (r1.lastCompletionTick != rn.lastCompletionTick
        || r1.crossMessages != rn.crossMessages) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: shards=1 vs %u results "
                     "differ\n", shards);
        return 1;
    }
    const char *gate = env::raw("OBFUSMEM_DATACENTER_MIN_SPEEDUP");
    if (gate) {
        const double min_speedup = std::strtod(gate, nullptr);
        if (speedup < min_speedup) {
            std::fprintf(stderr,
                         "speedup %.2fx below required %.2fx\n",
                         speedup, min_speedup);
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Session session("fig5_datacenter");

    unsigned shards = ShardedKernel::shardsFromEnv();
    std::string trace_path;
    bool scaling = false;
    bool quick = env::flag("OBFUSMEM_QUICK");
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--scaling")) {
            scaling = true;
        } else if (!std::strcmp(argv[i], "--shards")
                   && i + 1 < argc) {
            shards = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--trace-out")
                   && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--scaling] "
                         "[--shards N] [--trace-out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    if (!trace_path.empty())
        return traceMode(trace_path, shards);
    if (scaling)
        return scalingMode(shards ? shards : 1);

    RackShape shape = shapeFromEnv(quick);
    std::printf("\n=== Figure 5 at rack scale: %u sockets, %u "
                "tenants/socket, %llu requests/tenant, shards=%u ===\n",
                shape.sockets, shape.tenantsPerSocket,
                (unsigned long long)shape.requestsPerTenant, shards);

    const std::vector<unsigned> channel_counts =
        quick ? std::vector<unsigned>{2, 4}
              : std::vector<unsigned>{4, 16, 64};

    std::printf("\n%-10s %-10s %12s %12s %14s\n", "Channels",
                "(total)", "UNOPT+Auth%", "OPT+Auth%", "cross msgs");
    std::printf("%.*s\n", 62,
                "----------------------------------------------------"
                "----------");

    uint64_t total_requests = 0;
    TenantParams tp = makeTenant(shape);
    for (unsigned channels : channel_counts) {
        MultiTenantTopology::Result base = runRack(
            makeTopo(shape, channels, ProtectionMode::Unprotected,
                     ChannelScheme::None, shards),
            tp);
        MultiTenantTopology::Result unopt = runRack(
            makeTopo(shape, channels, ProtectionMode::ObfusMemAuth,
                     ChannelScheme::Unopt, shards),
            tp);
        MultiTenantTopology::Result opt = runRack(
            makeTopo(shape, channels, ProtectionMode::ObfusMemAuth,
                     ChannelScheme::Opt, shards),
            tp);
        total_requests += base.requestsCompleted
                          + unopt.requestsCompleted
                          + opt.requestsCompleted;

        const double unopt_pct = overheadPct(
            unopt.lastCompletionTick, base.lastCompletionTick);
        const double opt_pct = overheadPct(opt.lastCompletionTick,
                                           base.lastCompletionTick);
        std::printf("%-10u %-10u %12.1f %12.1f %14llu\n", channels,
                    channels * shape.sockets, unopt_pct, opt_pct,
                    (unsigned long long)unopt.crossMessages);

        const std::string suffix = "_ch" + std::to_string(channels)
                                   + "_s"
                                   + std::to_string(shape.sockets);
        jsonRow("fig5_datacenter", "unprotected" + suffix, "rack",
                base.lastCompletionTick, 0.0, base.wallMs);
        jsonRow("fig5_datacenter", "unopt_auth" + suffix, "rack",
                unopt.lastCompletionTick, unopt_pct, unopt.wallMs);
        jsonRow("fig5_datacenter", "opt_auth" + suffix, "rack",
                opt.lastCompletionTick, opt_pct, opt.wallMs);
    }

    std::printf("\ntotal simulated requests: %llu\n"
                "Claim check: OPT <= UNOPT, with the gap growing in "
                "the per-socket channel count.\n",
                (unsigned long long)total_requests);
    return 0;
}
