/**
 * @file
 * Ablation of the paper's Sec. 6.2 sketch for timing-channel
 * protection: issue exactly one request group per epoch on every
 * channel (dummies filling empty slots, never dropped at the
 * memory), so request *timing* reveals nothing. Measures what that
 * obliviousness costs on top of plain ObfusMem for several epochs.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_timing");
    printHeader("Ablation (Sec 6.2): timing-oblivious ObfusMem");

    const char *benchmarks[] = {"milc", "libquantum", "sjeng",
                                "hmmer"};
    const Tick epochs_ns[] = {40, 60, 100};

    std::printf("%-12s %14s | %14s %14s %14s\n", "Benchmark",
                "ObfusMem%", "oblivious@40ns", "@60ns", "@100ns");
    std::printf("%.*s\n", 74,
                "----------------------------------------------------"
                "----------------------");

    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        cfgs.push_back(makeConfig(ProtectionMode::Unprotected, name));
        cfgs.push_back(makeConfig(ProtectionMode::ObfusMemAuth, name));
        for (Tick epoch : epochs_ns) {
            SystemConfig cfg =
                makeConfig(ProtectionMode::ObfusMemAuth, name);
            cfg.obfusmem.timingOblivious = true;
            cfg.obfusmem.issueEpoch = epoch * tickPerNs;
            cfgs.push_back(cfg);
        }
    }
    const auto outcomes = sweepOutcomes(cfgs);

    int n = 0;
    for (const char *name : benchmarks) {
        const RunOutcome *row = &outcomes[5 * n];
        Tick base = row[0].result.execTicks;
        Tick plain = row[1].result.execTicks;

        double oblivious[3];
        for (int i = 0; i < 3; ++i) {
            oblivious[i] =
                overheadPct(row[2 + i].result.execTicks, base);
            jsonRow("ablation_timing",
                    "oblivious_" + std::to_string(epochs_ns[i])
                        + "ns",
                    name, row[2 + i].result.execTicks, oblivious[i],
                    row[2 + i].wallMs);
        }

        std::printf("%-12s %14.1f | %14.1f %14.1f %14.1f\n", name,
                    overheadPct(plain, base), oblivious[0],
                    oblivious[1], oblivious[2]);
        ++n;
    }

    std::printf("\nTiming obliviousness trades throughput (slow "
                "epochs throttle bursts) against\nwasted bandwidth "
                "and PCM energy (fast epochs issue more undroppable "
                "dummies);\nthe paper argues ObfusMem's low baseline "
                "overhead leaves room for this.\n");
    return 0;
}
