/**
 * @file
 * Ablation of the paper's Sec. 6.2 sketch for timing-channel
 * protection: issue exactly one request group per epoch on every
 * channel (dummies filling empty slots, never dropped at the
 * memory), so request *timing* reveals nothing. Measures what that
 * obliviousness costs on top of plain ObfusMem for several epochs.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Ablation (Sec 6.2): timing-oblivious ObfusMem");

    const char *benchmarks[] = {"milc", "libquantum", "sjeng",
                                "hmmer"};
    const Tick epochs_ns[] = {40, 60, 100};

    std::printf("%-12s %14s | %14s %14s %14s\n", "Benchmark",
                "ObfusMem%", "oblivious@40ns", "@60ns", "@100ns");
    std::printf("%.*s\n", 74,
                "----------------------------------------------------"
                "----------------------");

    for (const char *name : benchmarks) {
        Tick base = run(ProtectionMode::Unprotected, name).execTicks;
        Tick plain =
            run(ProtectionMode::ObfusMemAuth, name).execTicks;

        double oblivious[3];
        int i = 0;
        for (Tick epoch : epochs_ns) {
            SystemConfig cfg =
                makeConfig(ProtectionMode::ObfusMemAuth, name);
            cfg.obfusmem.timingOblivious = true;
            cfg.obfusmem.issueEpoch = epoch * tickPerNs;
            oblivious[i++] =
                overheadPct(runConfig(cfg).execTicks, base);
        }

        std::printf("%-12s %14.1f | %14.1f %14.1f %14.1f\n", name,
                    overheadPct(plain, base), oblivious[0],
                    oblivious[1], oblivious[2]);
    }

    std::printf("\nTiming obliviousness trades throughput (slow "
                "epochs throttle bursts) against\nwasted bandwidth "
                "and PCM energy (fast epochs issue more undroppable "
                "dummies);\nthe paper argues ObfusMem's low baseline "
                "overhead leaves room for this.\n");
    return 0;
}
