/**
 * @file
 * Ablation of Section 3.3's dummy-address design choices: random
 * address, original address, and the paper's chosen fixed address
 * (which enables dropping dummies at the memory). Reports execution
 * time, PCM cell writes (wear) and array energy for each policy.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    printHeader("Ablation (Sec 3.3): dummy-address policy");

    const char *benchmarks[] = {"bwaves", "milc", "lbm", "soplex"};

    std::printf("%-10s %-9s %11s %12s %14s %12s\n", "Benchmark",
                "Policy", "Overhead%", "CellWrites", "EnergyPj",
                "DummyPCM");
    std::printf("%.*s\n", 72,
                "----------------------------------------------------"
                "--------------------");

    for (const char *name : benchmarks) {
        Tick base = run(ProtectionMode::Unprotected, name).execTicks;

        for (DummyPolicy policy :
             {DummyPolicy::Fixed, DummyPolicy::Original,
              DummyPolicy::Random}) {
            SystemConfig cfg =
                makeConfig(ProtectionMode::ObfusMemAuth, name);
            cfg.obfusmem.dummyPolicy = policy;
            System sys(cfg);
            auto r = sys.run();
            double dummy_pcm = 0;
            for (auto &side : sys.memSides()) {
                dummy_pcm += side->stats().scalarValue(
                    "dummyPcmAccesses");
            }
            const char *policy_name =
                policy == DummyPolicy::Fixed
                    ? "fixed"
                    : policy == DummyPolicy::Original ? "original"
                                                      : "random";
            std::printf("%-10s %-9s %11.1f %12llu %14.0f %12.0f\n",
                        name, policy_name,
                        overheadPct(r.execTicks, base),
                        static_cast<unsigned long long>(r.cellWrites),
                        r.pcmEnergyPj, dummy_pcm);
        }
    }

    std::printf("\nClaim check (Observation 2): the fixed-address "
                "design drops every dummy at the\nmemory - zero "
                "dummy PCM accesses, no extra wear or energy; the "
                "alternatives pay\nreal row accesses (and 'random' "
                "also destroys row-buffer locality).\n");
    return 0;
}
