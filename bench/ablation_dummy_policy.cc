/**
 * @file
 * Ablation of Section 3.3's dummy-address design choices: random
 * address, original address, and the paper's chosen fixed address
 * (which enables dropping dummies at the memory). Reports execution
 * time, PCM cell writes (wear) and array energy for each policy.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace obfusmem;
using namespace obfusmem::bench;

int
main()
{
    bench::Session session("ablation_dummy_policy");
    printHeader("Ablation (Sec 3.3): dummy-address policy");

    const char *benchmarks[] = {"bwaves", "milc", "lbm", "soplex"};

    std::printf("%-10s %-9s %11s %12s %14s %12s\n", "Benchmark",
                "Policy", "Overhead%", "CellWrites", "EnergyPj",
                "DummyPCM");
    std::printf("%.*s\n", 72,
                "----------------------------------------------------"
                "--------------------");

    const DummyPolicy policies[] = {DummyPolicy::Fixed,
                                    DummyPolicy::Original,
                                    DummyPolicy::Random};
    struct Row
    {
        RunOutcome out;
        double dummyPcm = 0;
    };
    std::vector<SystemConfig> cfgs;
    for (const char *name : benchmarks) {
        cfgs.push_back(makeConfig(ProtectionMode::Unprotected, name));
        for (DummyPolicy policy : policies) {
            SystemConfig cfg =
                makeConfig(ProtectionMode::ObfusMemAuth, name);
            cfg.obfusmem.dummyPolicy = policy;
            cfgs.push_back(cfg);
        }
    }
    const auto rows =
        sweep(cfgs, [](System &sys, const RunOutcome &out) {
            Row row;
            row.out = out;
            for (auto &side : sys.memSides()) {
                row.dummyPcm += side->stats().scalarValue(
                    "dummyPcmAccesses");
            }
            return row;
        });

    size_t at = 0;
    for (const char *name : benchmarks) {
        Tick base = rows[at++].out.result.execTicks;
        for (DummyPolicy policy : policies) {
            const Row &row = rows[at++];
            const System::RunResult &r = row.out.result;
            const char *policy_name =
                policy == DummyPolicy::Fixed
                    ? "fixed"
                    : policy == DummyPolicy::Original ? "original"
                                                      : "random";
            double pct = overheadPct(r.execTicks, base);
            std::printf("%-10s %-9s %11.1f %12llu %14.0f %12.0f\n",
                        name, policy_name, pct,
                        static_cast<unsigned long long>(r.cellWrites),
                        r.pcmEnergyPj, row.dummyPcm);
            jsonRow("ablation_dummy_policy",
                    std::string("dummy_") + policy_name, name,
                    r.execTicks, pct, row.out.wallMs);
        }
    }

    std::printf("\nClaim check (Observation 2): the fixed-address "
                "design drops every dummy at the\nmemory - zero "
                "dummy PCM accesses, no extra wear or energy; the "
                "alternatives pay\nreal row accesses (and 'random' "
                "also destroys row-buffer locality).\n");
    return 0;
}
