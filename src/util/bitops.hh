/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef OBFUSMEM_UTIL_BITOPS_HH
#define OBFUSMEM_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace obfusmem {

/** True if x is a (nonzero) power of two. */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); x must be nonzero. */
constexpr unsigned
floorLog2(uint64_t x)
{
    return 63 - std::countl_zero(x);
}

/** Ceil of log2(x); x must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** Extract bits [first, first+count) of val. */
constexpr uint64_t
bits(uint64_t val, unsigned first, unsigned count)
{
    if (count == 0)
        return 0;
    if (count >= 64)
        return val >> first;
    return (val >> first) & ((uint64_t{1} << count) - 1);
}

/** Round x up to the next multiple of align (align must be pow2). */
constexpr uint64_t
roundUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Round x down to a multiple of align (align must be pow2). */
constexpr uint64_t
roundDown(uint64_t x, uint64_t align)
{
    return x & ~(align - 1);
}

/** Integer division rounding up. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace obfusmem

#endif // OBFUSMEM_UTIL_BITOPS_HH
