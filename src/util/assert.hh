/**
 * @file
 * Invariant-assertion macros layered on top of util/logging.hh.
 *
 * Two families, following the usual DCHECK convention:
 *
 *  - OBF_ASSERT(cond, ...): always compiled in. For invariants whose
 *    violation means the simulation state is already corrupt and
 *    continuing would silently produce wrong results.
 *
 *  - OBF_DCHECK(cond, ...): compiled in debug and sanitizer builds
 *    (no NDEBUG, or -DOBFUSMEM_ENABLE_DCHECK), compiled out of
 *    release builds. For invariants on hot paths - counter
 *    discipline, pad accounting, queue bookkeeping - where the check
 *    is wanted under ASan/UBSan CI but not in RelWithDebInfo
 *    benchmark runs.
 *
 * Both abort via panic() so a failure is a hard stop with file/line,
 * which is what lets sanitizer CI exercise the same invariants the
 * trace auditor (src/check/) verifies from the outside.
 */

#ifndef OBFUSMEM_UTIL_ASSERT_HH
#define OBFUSMEM_UTIL_ASSERT_HH

#include "util/logging.hh"

/** Hard invariant: always checked, aborts on violation. */
#define OBF_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            panic("assertion failed: " #cond " - ", __VA_ARGS__);          \
        }                                                                  \
    } while (0)

#if !defined(NDEBUG) || defined(OBFUSMEM_ENABLE_DCHECK)
#define OBFUSMEM_DCHECK_ACTIVE 1
/** Debug invariant: checked in debug/sanitizer builds only. */
#define OBF_DCHECK(cond, ...) OBF_ASSERT(cond, __VA_ARGS__)
#else
#define OBFUSMEM_DCHECK_ACTIVE 0
#define OBF_DCHECK(cond, ...)                                              \
    do {                                                                   \
    } while (0)
#endif

#endif // OBFUSMEM_UTIL_ASSERT_HH
