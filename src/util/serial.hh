/**
 * @file
 * Tiny binary stream-serialization helpers for checkpoint/restore.
 *
 * The ObliviousBackend vtable's serialize half (system/
 * oblivious_backend.hh) and the functional ORAM structures write
 * host-endian fixed-width fields through these; a checkpoint is a
 * same-host artifact (resume-from-checkpoint on the machine that
 * wrote it), so no endian conversion is performed. Readers return
 * false on a short or malformed stream instead of throwing, letting
 * deserialize() report a clean failure.
 */

#ifndef OBFUSMEM_UTIL_SERIAL_HH
#define OBFUSMEM_UTIL_SERIAL_HH

#include <cstdint>
#include <istream>
#include <ostream>

namespace obfusmem {
namespace serial {

inline void
putU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

inline bool
getU64(std::istream &is, uint64_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

inline void
putBytes(std::ostream &os, const void *data, size_t len)
{
    os.write(static_cast<const char *>(data),
             static_cast<std::streamsize>(len));
}

inline bool
getBytes(std::istream &is, void *data, size_t len)
{
    is.read(static_cast<char *>(data),
            static_cast<std::streamsize>(len));
    return static_cast<bool>(is);
}

/** Read a u64 and check it equals @p expect (format/version tags). */
inline bool
expectU64(std::istream &is, uint64_t expect)
{
    uint64_t v = 0;
    return getU64(is, v) && v == expect;
}

} // namespace serial
} // namespace obfusmem

#endif // OBFUSMEM_UTIL_SERIAL_HH
