/**
 * @file
 * Source annotations for the secret-flow analyzer
 * (tools/analysis/secret_flow.py).
 *
 * ObfusMem's obliviousness argument covers what an off-chip snooper
 * sees on the wire; it says nothing about the *implementation* of the
 * endpoints. A secret-dependent branch, a secret-indexed table load
 * or a variable-time library call inside the crypto layer reopens
 * exactly the timing side channels a Membuster-style bus adversary
 * amplifies. The analyzer performs interprocedural taint propagation
 * from declarations marked OBF_SECRET to dangerous sinks and fails CI
 * on any finding that is neither fixed nor baselined with a written
 * justification (tools/analysis/baseline.txt).
 *
 * Annotation taxonomy (DESIGN.md Sec. 11):
 *
 *   OBF_SECRET      the value (or every value stored in the member)
 *                   is key material, a MAC tag, a pad, or plaintext
 *                   whose confidentiality the threat model assumes:
 *                   AES keys and round keys, CTR pads, HMAC keys,
 *                   DH/RSA private exponents, decrypted payloads.
 *   OBF_PUBLIC      the declaration looks secret-adjacent (it sits in
 *                   a crypto type, or receives data derived from a
 *                   secret) but is public by design: DH public
 *                   values, RSA public keys, counters that appear on
 *                   the wire in the clear. OBF_PUBLIC stops taint
 *                   propagation at this declaration.
 *   OBF_DECLASSIFY  an expression whose secret-derived value is
 *                   deliberately released with a written reason, e.g.
 *                   a ciphertext after encryption, or the comparison
 *                   result of crypto::ctEqual. The analyzer suppresses
 *                   findings on the carrying source line and records
 *                   the reason in its report.
 *
 * Under clang the markers compile to [[clang::annotate]] attributes so
 * the analyzer's clang -ast-dump=json frontend sees them natively; on
 * other compilers they vanish. The analyzer's built-in "lite" frontend
 * reads the markers straight from the source text, so annotations work
 * identically on toolchains without clang. Either way the generated
 * code is unchanged — annotating is always ABI- and codegen-neutral.
 */

#ifndef OBFUSMEM_UTIL_SECRET_HH
#define OBFUSMEM_UTIL_SECRET_HH

#if defined(__clang__)
#define OBF_SECRET [[clang::annotate("obf_secret")]]
#define OBF_PUBLIC [[clang::annotate("obf_public")]]
#else
#define OBF_SECRET
#define OBF_PUBLIC
#endif

/**
 * Deliberately release a secret-derived value. The reason is a string
 * literal and is mandatory; the analyzer reports declassification
 * sites together with their reasons so reviews can audit them.
 * Evaluates to exactly `expr` on every compiler.
 */
#define OBF_DECLASSIFY(expr, reason) (expr)

#endif // OBFUSMEM_UTIL_SECRET_HH
