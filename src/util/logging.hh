/**
 * @file
 * Status/error reporting helpers, following the gem5 conventions:
 * panic() for internal invariant violations (aborts), fatal() for
 * user/configuration errors (clean exit), warn()/inform() for
 * non-fatal diagnostics.
 */

#ifndef OBFUSMEM_UTIL_LOGGING_HH
#define OBFUSMEM_UTIL_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <string>

namespace obfusmem {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a log message; Fatal exits the process with status 1, Panic
 * calls std::abort(). Exposed so that macros below stay tiny.
 *
 * @param level Message severity.
 * @param file Source file emitting the message.
 * @param line Source line emitting the message.
 * @param msg Pre-formatted message body.
 */
[[noreturn]] void logTerminate(LogLevel level, const char *file, int line,
                               const std::string &msg);

/** Non-terminating variant of logTerminate() for Inform/Warn. */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

namespace logging_detail {

/** Build a message string from stream-style arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace logging_detail

} // namespace obfusmem

/** Internal bug: condition that should never happen. Aborts. */
#define panic(...)                                                         \
    ::obfusmem::logTerminate(::obfusmem::LogLevel::Panic, __FILE__,        \
        __LINE__, ::obfusmem::logging_detail::concat(__VA_ARGS__))

/** Unrecoverable user/configuration error. Exits with status 1. */
#define fatal(...)                                                         \
    ::obfusmem::logTerminate(::obfusmem::LogLevel::Fatal, __FILE__,        \
        __LINE__, ::obfusmem::logging_detail::concat(__VA_ARGS__))

/** Something looks wrong but simulation can continue. */
#define warn(...)                                                          \
    ::obfusmem::logMessage(::obfusmem::LogLevel::Warn, __FILE__,           \
        __LINE__, ::obfusmem::logging_detail::concat(__VA_ARGS__))

/** Normal operating status message. */
#define inform(...)                                                        \
    ::obfusmem::logMessage(::obfusmem::LogLevel::Inform, __FILE__,         \
        __LINE__, ::obfusmem::logging_detail::concat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            panic(__VA_ARGS__);                                            \
        }                                                                  \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            fatal(__VA_ARGS__);                                            \
        }                                                                  \
    } while (0)

#endif // OBFUSMEM_UTIL_LOGGING_HH
