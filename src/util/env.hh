/**
 * @file
 * Centralized parsing of the OBFUSMEM_* environment knobs.
 *
 * Every knob used to hand-roll its own std::getenv + conversion
 * (aes128, event_queue, the sweep runner, the benches), with silently
 * divergent behavior on malformed values. These helpers give one
 * place for the conventions: values are read once per knob (stable
 * across threads, like the existing defaultImpl() latches), invalid
 * values warn once and fall back to the documented default, and an
 * empty string counts as unset.
 */

#ifndef OBFUSMEM_UTIL_ENV_HH
#define OBFUSMEM_UTIL_ENV_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <string_view>
#include <thread>

#include "util/logging.hh"

namespace obfusmem {
namespace env {

/** Raw value of a knob, or nullptr when unset or empty. */
inline const char *
raw(const char *name)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : nullptr;
}

/** Boolean knob: true when set to any non-empty value. */
inline bool
flag(const char *name)
{
    return raw(name) != nullptr;
}

/**
 * Unsigned integer knob. Warns (once per call site pattern is not
 * tracked; callers latch the result) and returns @p def on a value
 * that is not a plain non-negative decimal number.
 */
inline uint64_t
u64(const char *name, uint64_t def)
{
    const char *v = raw(name);
    if (!v)
        return def;
    // strtoull is laxer than the documented contract: it skips
    // leading whitespace, accepts '+'/'-', and clamps overflow to
    // ULLONG_MAX with errno=ERANGE. Require a leading digit and a
    // clean errno so all of those take the warn-and-default path.
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (v[0] < '0' || v[0] > '9' || end == v || *end != '\0'
        || errno == ERANGE) {
        warn(name, "=\"", v, "\" is not a valid number; using default ",
             def);
        return def;
    }
    return parsed;
}

/**
 * Floating-point knob (for probabilities and ratios). Same contract
 * as u64: a plain non-negative decimal (fractional part allowed),
 * warn-and-default on anything else, including non-finite results.
 */
inline double
f64(const char *name, double def)
{
    const char *v = raw(name);
    if (!v)
        return def;
    char *end = nullptr;
    errno = 0;
    double parsed = std::strtod(v, &end);
    bool leading_digit = (v[0] >= '0' && v[0] <= '9') || v[0] == '.';
    if (!leading_digit || end == v || *end != '\0' || errno == ERANGE
        || !std::isfinite(parsed) || parsed < 0) {
        warn(name, "=\"", v, "\" is not a valid number; using default ",
             def);
        return def;
    }
    return parsed;
}

/**
 * Worker-count knob (OBFUSMEM_BENCH_JOBS, OBFUSMEM_SIM_SHARDS):
 * parsed like u64, but 0 means "one per hardware thread" (with a
 * fallback of 1 when the runtime cannot report concurrency), and the
 * result is clamped to @p cap — neither a sweep nor a shard set ever
 * usefully exceeds a couple hundred workers, and a typo'd huge value
 * would otherwise try to spawn that many threads.
 */
inline unsigned
jobs(const char *name, unsigned def, unsigned cap = 256)
{
    uint64_t parsed = u64(name, def);
    if (parsed == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1u;
    }
    return static_cast<unsigned>(parsed > cap ? cap : parsed);
}

/**
 * Enumerated knob: returns the index of @p value's match in
 * @p allowed, or @p def_index after warning when the value is set
 * but matches nothing. Index 0..n-1 follows the order of @p allowed.
 */
inline size_t
choice(const char *name, std::initializer_list<const char *> allowed,
       size_t def_index)
{
    const char *v = raw(name);
    if (!v)
        return def_index;
    size_t i = 0;
    for (const char *a : allowed) {
        if (std::string_view(v) == a)
            return i;
        ++i;
    }
    std::string options;
    for (const char *a : allowed) {
        if (!options.empty())
            options += ", ";
        options += a;
    }
    warn(name, "=\"", v, "\" is not one of {", options,
         "}; using the default");
    return def_index;
}

} // namespace env
} // namespace obfusmem

#endif // OBFUSMEM_UTIL_ENV_HH
