/**
 * @file
 * Statistics package implementation.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "util/logging.hh"

namespace obfusmem {
namespace statistics {

Histogram::Histogram(double min, double max, size_t num_buckets)
    : lo(min), hi(max), width((max - min) / num_buckets),
      counts(num_buckets, 0)
{
    panic_if(max <= min || num_buckets == 0,
             "invalid histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count;
    if (!std::isfinite(v)) {
        // A NaN would fall past both bound checks below into the
        // bucket-index cast (UB); infinities would poison sum and
        // min/max. Route them to the under/overflow buckets and keep
        // them out of the finite aggregates.
        if (v < lo)
            ++under;
        else
            ++over;
        return;
    }
    if (finite == 0) {
        minSeen = maxSeen = v;
    } else {
        minSeen = std::min(minSeen, v);
        maxSeen = std::max(maxSeen, v);
    }
    ++finite;
    sum += v;

    if (v < lo) {
        ++under;
    } else if (v >= hi) {
        ++over;
    } else {
        size_t idx = static_cast<size_t>((v - lo) / width);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        ++counts[idx];
    }
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    under = over = count = finite = 0;
    sum = minSeen = maxSeen = 0;
}

Group::Group(std::string name, Group *parent)
    : parent(parent)
{
    qualified = parent ? parent->qualified + "." + name : name;
    if (parent)
        parent->children.push_back(this);
}

void
Group::addScalar(const std::string &name, const Scalar *s,
                 const std::string &desc)
{
    scalars.push_back({name, s, desc});
}

void
Group::addAverage(const std::string &name, const Average *a,
                  const std::string &desc)
{
    averages.push_back({name, a, desc});
}

void
Group::addHistogram(const std::string &name, const Histogram *h,
                    const std::string &desc)
{
    histograms.push_back({name, h, desc});
}

void
Group::dump(std::ostream &os) const
{
    auto prefix = [&](const std::string &name) -> std::ostream & {
        return os << std::left << std::setw(48)
                  << (qualified + "." + name) << std::right
                  << std::setw(16);
    };
    auto line = [&](const std::string &name, double value,
                    const std::string &desc) {
        prefix(name) << std::fixed << std::setprecision(2) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << "\n";
    };
    // An empty histogram has no min/max; "-" beats a misleading 0.00.
    auto blank = [&](const std::string &name) {
        prefix(name) << "-" << "\n";
    };

    for (const auto &e : scalars)
        line(e.name, e.stat->value(), e.desc);
    for (const auto &e : averages)
        line(e.name, e.stat->value(), e.desc);
    for (const auto &e : histograms) {
        line(e.name + ".mean", e.stat->mean(), e.desc);
        line(e.name + ".samples",
             static_cast<double>(e.stat->samples()), "");
        if (e.stat->finiteSamples() == 0) {
            blank(e.name + ".min");
            blank(e.name + ".max");
        } else {
            line(e.name + ".min", e.stat->minSample(), "");
            line(e.name + ".max", e.stat->maxSample(), "");
        }
    }
    for (const auto *child : children)
        child->dump(os);
}

double
Group::scalarValue(const std::string &name) const
{
    size_t dot = name.find('.');
    if (dot == std::string::npos) {
        for (const auto &e : scalars) {
            if (e.name == name)
                return e.stat->value();
        }
        panic("no scalar stat named ", name, " in group ", qualified);
    }

    std::string head = name.substr(0, dot);
    std::string rest = name.substr(dot + 1);
    for (const auto *child : children) {
        const std::string &q = child->qualified;
        size_t leaf = q.rfind('.');
        std::string leaf_name =
            leaf == std::string::npos ? q : q.substr(leaf + 1);
        if (leaf_name == head)
            return child->scalarValue(rest);
    }
    panic("no child group named ", head, " in group ", qualified);
}

} // namespace statistics
} // namespace obfusmem
