/**
 * @file
 * Implementation of the status/error reporting helpers.
 */

#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

namespace obfusmem {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

void
emit(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::ostream &out =
        (level == LogLevel::Inform) ? std::cout : std::cerr;
    out << levelName(level) << ": " << msg;
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        out << " @ " << file << ":" << line;
    out << std::endl;
}

} // namespace

void
logTerminate(LogLevel level, const char *file, int line,
             const std::string &msg)
{
    emit(level, file, line, msg);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &msg)
{
    emit(level, file, line, msg);
}

} // namespace obfusmem
