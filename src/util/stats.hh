/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar
 * counters, averages and histograms registered in hierarchical groups,
 * with a text dump at the end of simulation.
 */

#ifndef OBFUSMEM_UTIL_STATS_HH
#define OBFUSMEM_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace obfusmem {
namespace statistics {

/** A named monotonically accumulating scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    void operator++(int) { value_ += 1; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0; }

    double value() const { return value_; }

  private:
    double value_ = 0;
};

/**
 * A scalar counter safe to bump from concurrent shard workers.
 *
 * The plain Scalar is a raw double — two shard threads incrementing
 * one from their epoch loops is a data race (and a lost-update bug,
 * not just a TSan report). ShardedScalar gives every shard its own
 * cache-line-sized counter lane; workers touch only their lane, and
 * the merged value is folded from the lanes in fixed shard order at
 * epoch boundaries (when the workers are quiescent under the barrier)
 * by whoever owns the merge — so the merged total is deterministic
 * and the whole structure is TSan-clean without a single atomic on
 * the hot path.
 */
class ShardedScalar
{
  public:
    /** One lane per shard; shard 0 exists even before resize(). */
    explicit ShardedScalar(unsigned shards = 1) { resize(shards); }

    /**
     * (Re)size to @p shards lanes. Only valid while no worker is
     * running (lanes are reallocated). Existing counts are folded
     * into the merged base so history survives a resize.
     */
    void
    resize(unsigned shards)
    {
        base += laneSum();
        lanes.assign(shards ? shards : 1, Lane{});
    }

    unsigned shards() const
    {
        return static_cast<unsigned>(lanes.size());
    }

    /** Bump shard @p s's lane. Safe concurrently across distinct s. */
    void
    add(unsigned s, uint64_t v = 1)
    {
        lanes[s].count += v;
    }

    /**
     * Fold all lanes into the merged Scalar (fixed lane order). Call
     * only while workers are quiescent — at an epoch barrier or after
     * the run — and register `merged()` with a Group for dumping.
     */
    void
    merge()
    {
        merged_.set(static_cast<double>(base + laneSum()));
    }

    /** Merged value as of the last merge(). */
    uint64_t
    value() const
    {
        return static_cast<uint64_t>(merged_.value());
    }

    /** The Scalar view for Group::addScalar registration. */
    const Scalar *merged() const { return &merged_; }

  private:
    /// Padded so neighboring shards' increments never share a cache
    /// line (false sharing would serialize the epoch hot loops).
    struct alignas(64) Lane
    {
        uint64_t count = 0;
    };

    uint64_t
    laneSum() const
    {
        uint64_t sum = 0;
        for (const Lane &l : lanes)
            sum += l.count;
        return sum;
    }

    std::vector<Lane> lanes;
    uint64_t base = 0;
    Scalar merged_;
};

/** Running average statistic (sum / count). */
class Average
{
  public:
    void sample(double v) { sum += v; count += 1; }
    void reset() { sum = 0; count = 0; }

    double value() const { return count ? sum / count : 0.0; }
    double total() const { return sum; }
    uint64_t samples() const { return count; }

  private:
    double sum = 0;
    uint64_t count = 0;
};

/** Fixed-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param min Lower bound of the first bucket.
     * @param max Upper bound of the last regular bucket.
     * @param num_buckets Number of regular buckets.
     */
    Histogram(double min = 0, double max = 1, size_t num_buckets = 10);

    void sample(double v);
    void reset();

    uint64_t samples() const { return count; }
    uint64_t finiteSamples() const { return finite; }
    double mean() const { return finite ? sum / finite : 0.0; }
    double minSample() const { return minSeen; }
    double maxSample() const { return maxSeen; }
    const std::vector<uint64_t> &buckets() const { return counts; }
    uint64_t underflow() const { return under; }
    uint64_t overflow() const { return over; }
    double bucketLow(size_t i) const { return lo + i * width; }

  private:
    double lo, hi, width;
    std::vector<uint64_t> counts;
    uint64_t under = 0, over = 0;
    uint64_t count = 0;
    uint64_t finite = 0;
    double sum = 0;
    double minSeen = 0, maxSeen = 0;
};

/**
 * A hierarchical group of named statistics. Leaf stats register
 * themselves by pointer; the group formats a dump.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);

    /** Register stats; the group does NOT own them. */
    void addScalar(const std::string &name, const Scalar *s,
                   const std::string &desc = "");
    void addAverage(const std::string &name, const Average *a,
                    const std::string &desc = "");
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc = "");

    /** Dump this group and all children to the stream. */
    void dump(std::ostream &os) const;

    /** Fully qualified dotted name. */
    const std::string &fullName() const { return qualified; }

    /** Look up a registered scalar's value by dotted leaf name. */
    double scalarValue(const std::string &name) const;

  private:
    std::string qualified;
    Group *parent;
    std::vector<Group *> children;

    template <typename T>
    struct Entry { std::string name; const T *stat; std::string desc; };

    std::vector<Entry<Scalar>> scalars;
    std::vector<Entry<Average>> averages;
    std::vector<Entry<Histogram>> histograms;
};

} // namespace statistics
} // namespace obfusmem

#endif // OBFUSMEM_UTIL_STATS_HH
