/**
 * @file
 * xoshiro256** implementation.
 */

#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace obfusmem {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}

uint64_t
Random::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

uint64_t
Random::randUnder(uint64_t bound)
{
    panic_if(bound == 0, "randUnder(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Random::randRange(uint64_t lo, uint64_t hi)
{
    panic_if(lo > hi, "randRange with lo > hi");
    if (lo == 0 && hi == UINT64_MAX)
        return next();
    return lo + randUnder(hi - lo + 1);
}

double
Random::randDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return randDouble() < p;
}

uint64_t
Random::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Inverse-CDF sampling of a geometric with the requested mean.
    const double p = 1.0 / mean;
    double u = randDouble();
    if (u >= 1.0)
        u = 0.9999999999;
    double v = std::log1p(-u) / std::log1p(-p);
    uint64_t k = static_cast<uint64_t>(v) + 1;
    return k == 0 ? 1 : k;
}

void
Random::fillBytes(uint8_t *buf, size_t len)
{
    size_t i = 0;
    while (i + 8 <= len) {
        uint64_t r = next();
        for (int b = 0; b < 8; ++b)
            buf[i++] = static_cast<uint8_t>(r >> (8 * b));
    }
    if (i < len) {
        uint64_t r = next();
        for (int b = 0; i < len; ++b)
            buf[i++] = static_cast<uint8_t>(r >> (8 * b));
    }
}

} // namespace obfusmem
