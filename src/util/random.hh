/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * Uses xoshiro256** (public domain, Blackman & Vigna). All simulator
 * randomness flows through Random instances so that runs are exactly
 * reproducible given a seed.
 */

#ifndef OBFUSMEM_UTIL_RANDOM_HH
#define OBFUSMEM_UTIL_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace obfusmem {

/**
 * Deterministic PRNG (xoshiro256**) with convenience draws.
 */
class Random
{
  public:
    /** Seed with SplitMix64 expansion of a 64-bit seed. */
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound) without modulo bias. */
    uint64_t randUnder(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t randRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double randDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Geometric-ish positive integer with the given mean (>= 1). */
    uint64_t geometric(double mean);

    /** Fill a byte buffer with random data. */
    void fillBytes(uint8_t *buf, size_t len);

    /**
     * Raw engine state, for checkpoint/restore: a restored instance
     * continues the exact same deterministic stream.
     */
    const std::array<uint64_t, 4> &rawState() const { return state; }
    void setRawState(const std::array<uint64_t, 4> &s) { state = s; }

  private:
    std::array<uint64_t, 4> state;
};

} // namespace obfusmem

#endif // OBFUSMEM_UTIL_RANDOM_HH
