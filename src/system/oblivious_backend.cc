/**
 * @file
 * Protection-path backends and their registry.
 */

#include "system/oblivious_backend.hh"

#include <istream>
#include <ostream>

#include "util/env.hh"
#include "util/logging.hh"
#include "util/serial.hh"

namespace obfusmem {

namespace {

/** "OBKNDv1\0" as a little-endian u64 format tag. */
constexpr uint64_t kBackendMagic = 0x003176444e4b424fULL;

std::vector<ChannelBus *>
busPtrs(const BackendContext &ctx)
{
    std::vector<ChannelBus *> ptrs;
    for (auto &bus : ctx.buses)
        ptrs.push_back(bus.get());
    return ptrs;
}

std::vector<PcmController *>
pcmPtrs(const BackendContext &ctx)
{
    std::vector<PcmController *> ptrs;
    for (auto &pcm : ctx.pcms)
        ptrs.push_back(pcm.get());
    return ptrs;
}

std::unique_ptr<PlainPath>
makePlainPath(const BackendContext &ctx)
{
    return std::make_unique<PlainPath>(
        "system.plainPath", ctx.eq, &ctx.root, ctx.map, busPtrs(ctx),
        pcmPtrs(ctx), ctx.pktPool, PlainPath::Params{});
}

// ---------------------------------------------------------------------
// Unprotected / EncryptionOnly
// ---------------------------------------------------------------------

class PlainBackend : public ObliviousBackend
{
  public:
    PlainBackend(const BackendContext &ctx, bool encrypted)
        : ObliviousBackend(encrypted ? ProtectionMode::EncryptionOnly
                                     : ProtectionMode::Unprotected),
          store(ctx.store), dataBytes(ctx.cfg.dataRegionBytes()),
          plainPath(makePlainPath(ctx))
    {
        if (encrypted) {
            encEngine = std::make_unique<MemoryEncryptionEngine>(
                "system.encEngine", ctx.eq, &ctx.root,
                ctx.cfg.encryption, *plainPath, dataBytes,
                ctx.cfg.counterRegionBase(), ctx.cfg.bmtRegionBase(),
                ctx.meeKey);
        }
    }

    MemSink &sink() override
    {
        return encEngine ? static_cast<MemSink &>(*encEngine)
                         : static_cast<MemSink &>(*plainPath);
    }

    std::optional<DataBlock> functionalRead(uint64_t addr) override
    {
        if (encEngine && addr < dataBytes)
            return encEngine->debugDecrypt(addr, store.read(addr));
        return std::nullopt;
    }

    MemoryEncryptionEngine *encryptionEngine() override
    {
        return encEngine.get();
    }

  private:
    BackingStore &store;
    uint64_t dataBytes;
    std::unique_ptr<PlainPath> plainPath;
    std::unique_ptr<MemoryEncryptionEngine> encEngine;
};

// ---------------------------------------------------------------------
// ObfusMem / ObfusMemAuth
// ---------------------------------------------------------------------

class ObfusBackend : public ObliviousBackend
{
  public:
    ObfusBackend(const BackendContext &ctx, bool auth)
        : ObliviousBackend(auth ? ProtectionMode::ObfusMemAuth
                                : ProtectionMode::ObfusMem),
          store(ctx.store), dataBytes(ctx.cfg.dataRegionBytes())
    {
        ObfusMemParams om = ctx.cfg.obfusmem;
        om.auth = auth;

        // Reserved per-channel dummy block: the very top row of the
        // channel, far above every workload/metadata region.
        std::vector<uint64_t> dummy_addrs;
        for (unsigned c = 0; c < ctx.cfg.channels; ++c) {
            DecodedAddr loc;
            loc.channel = c;
            loc.rank = ctx.map.ranksPerChannel() - 1;
            loc.bank = ctx.map.banksPerRank() - 1;
            loc.row = ctx.map.rowsPerBank() - 1;
            loc.column = ctx.map.blocksPerRow() - 1;
            dummy_addrs.push_back(ctx.map.encode(loc));
        }

        obfusProc = std::make_unique<ObfusMemProcSide>(
            "system.obfusProc", ctx.eq, &ctx.root, om, ctx.map,
            ctx.channelKeys, busPtrs(ctx), dummy_addrs);

        for (unsigned c = 0; c < ctx.cfg.channels; ++c) {
            obfusMem.push_back(std::make_unique<ObfusMemMemSide>(
                "system.obfusMem" + std::to_string(c), ctx.eq,
                &ctx.root, om, c, ctx.channelKeys[c], *ctx.buses[c],
                *ctx.pcms[c], ctx.store, dummy_addrs[c]));
            // Production wiring is direct pointers: message delivery
            // is a virtual-free static call, no std::function hop.
            // (Tests that need to intercept frames still use
            // setRequestTarget/setReplyTarget, which override these.)
            ObfusMemMemSide *side = obfusMem.back().get();
            obfusProc->setMemSide(c, side);
            side->setProcSide(obfusProc.get());
        }

        if (ctx.auditor) {
            obfusProc->setAuditHook(ctx.auditor);
            for (auto &side : obfusMem)
                side->setAuditHook(ctx.auditor);
        }

        encEngine = std::make_unique<MemoryEncryptionEngine>(
            "system.encEngine", ctx.eq, &ctx.root, ctx.cfg.encryption,
            *obfusProc, dataBytes, ctx.cfg.counterRegionBase(),
            ctx.cfg.bmtRegionBase(), ctx.meeKey);
    }

    MemSink &sink() override { return *encEngine; }

    std::optional<DataBlock> functionalRead(uint64_t addr) override
    {
        if (addr < dataBytes)
            return encEngine->debugDecrypt(addr, store.read(addr));
        return std::nullopt;
    }

    MemoryEncryptionEngine *encryptionEngine() override
    {
        return encEngine.get();
    }

    ObfusMemProcSide *procSide() override { return obfusProc.get(); }

    std::vector<std::unique_ptr<ObfusMemMemSide>> *memSides() override
    {
        return &obfusMem;
    }

  private:
    BackingStore &store;
    uint64_t dataBytes;
    std::unique_ptr<ObfusMemProcSide> obfusProc;
    std::vector<std::unique_ptr<ObfusMemMemSide>> obfusMem;
    std::unique_ptr<MemoryEncryptionEngine> encEngine;
};

// ---------------------------------------------------------------------
// OramFixed
// ---------------------------------------------------------------------

class OramFixedBackend : public ObliviousBackend
{
  public:
    explicit OramFixedBackend(const BackendContext &ctx)
        : ObliviousBackend(ProtectionMode::OramFixed)
    {
        ctl = std::make_unique<OramFixedLatency>(
            "system.oram", ctx.eq, &ctx.root, ctx.cfg.oramFixed,
            ctx.store);
    }

    MemSink &sink() override { return *ctl; }
    OramFixedLatency *oramFixed() override { return ctl.get(); }

  private:
    std::unique_ptr<OramFixedLatency> ctl;
};

// ---------------------------------------------------------------------
// OramDetailed
// ---------------------------------------------------------------------

class OramDetailedBackend : public ObliviousBackend
{
  public:
    explicit OramDetailedBackend(const BackendContext &ctx)
        : ObliviousBackend(ProtectionMode::OramDetailed),
          plainPath(makePlainPath(ctx))
    {
        OramDetailed::Params op = ctx.cfg.oramDetailed;
        if (op.treeBase == 0)
            op.treeBase = ctx.cfg.oramTreeBase();
        ctl = std::make_unique<OramDetailed>("system.oram", ctx.eq,
                                             &ctx.root, op,
                                             *plainPath);
    }

    MemSink &sink() override { return *ctl; }
    OramDetailed *oramDetailed() override { return ctl.get(); }

    std::optional<DataBlock> functionalRead(uint64_t addr) override
    {
        // Test-only: the functional tree is authoritative.
        return ctl->oram().read(addr / blockBytes);
    }

    void serialize(std::ostream &os) const override;
    bool deserialize(std::istream &is) override;

  private:
    std::unique_ptr<PlainPath> plainPath;
    std::unique_ptr<OramDetailed> ctl;
};

// ---------------------------------------------------------------------
// FlatOram
// ---------------------------------------------------------------------

class FlatOramBackend : public ObliviousBackend
{
  public:
    explicit FlatOramBackend(const BackendContext &ctx)
        : ObliviousBackend(ProtectionMode::FlatOram),
          plainPath(makePlainPath(ctx))
    {
        FlatOramController::Params fp = ctx.cfg.flatOram;
        if (fp.arrayBase == 0)
            fp.arrayBase = ctx.cfg.oramTreeBase();
        ctl = std::make_unique<FlatOramController>(
            "system.oram", ctx.eq, &ctx.root, fp, *plainPath);
    }

    MemSink &sink() override { return *ctl; }
    FlatOramController *flatOram() override { return ctl.get(); }

    std::optional<DataBlock> functionalRead(uint64_t addr) override
    {
        uint64_t block =
            (addr / blockBytes) % ctl->oram().capacityBlocks();
        return ctl->oram().read(block);
    }

    void serialize(std::ostream &os) const override;
    bool deserialize(std::istream &is) override;

  private:
    std::unique_ptr<PlainPath> plainPath;
    std::unique_ptr<FlatOramController> ctl;
};

// ---------------------------------------------------------------------
// WriteOnlyOram
// ---------------------------------------------------------------------

class WriteOnlyOramBackend : public ObliviousBackend
{
  public:
    explicit WriteOnlyOramBackend(const BackendContext &ctx)
        : ObliviousBackend(ProtectionMode::WriteOnlyOram),
          plainPath(makePlainPath(ctx))
    {
        WriteOnlyOramController::Params wp = ctx.cfg.writeOnlyOram;
        if (wp.areaBase == 0)
            wp.areaBase = ctx.cfg.oramTreeBase();
        ctl = std::make_unique<WriteOnlyOramController>(
            "system.oram", ctx.eq, &ctx.root, wp, *plainPath);
    }

    MemSink &sink() override { return *ctl; }
    WriteOnlyOramController *writeOnlyOram() override
    {
        return ctl.get();
    }

    std::optional<DataBlock> functionalRead(uint64_t addr) override
    {
        uint64_t block =
            (addr / blockBytes) % ctl->oram().capacityBlocks();
        return ctl->oram().read(block);
    }

    void serialize(std::ostream &os) const override;
    bool deserialize(std::istream &is) override;

  private:
    std::unique_ptr<PlainPath> plainPath;
    std::unique_ptr<WriteOnlyOramController> ctl;
};

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

template <class Backend, bool Flag>
std::unique_ptr<ObliviousBackend>
makeFlagged(const BackendContext &ctx)
{
    return std::make_unique<Backend>(ctx, Flag);
}

template <class Backend>
std::unique_ptr<ObliviousBackend>
make(const BackendContext &ctx)
{
    return std::make_unique<Backend>(ctx);
}

} // namespace

// ---------------------------------------------------------------------
// ObliviousBackend base serialize
// ---------------------------------------------------------------------

void
ObliviousBackend::serialize(std::ostream &os) const
{
    serial::putU64(os, kBackendMagic);
    serial::putU64(os, static_cast<uint64_t>(mode));
}

bool
ObliviousBackend::deserialize(std::istream &is)
{
    return serial::expectU64(is, kBackendMagic)
           && serial::expectU64(is, static_cast<uint64_t>(mode));
}

void
OramDetailedBackend::serialize(std::ostream &os) const
{
    ObliviousBackend::serialize(os);
    ctl->oram().serialize(os);
}

bool
OramDetailedBackend::deserialize(std::istream &is)
{
    return ObliviousBackend::deserialize(is)
           && ctl->oram().deserialize(is);
}

void
FlatOramBackend::serialize(std::ostream &os) const
{
    ObliviousBackend::serialize(os);
    ctl->oram().serialize(os);
}

bool
FlatOramBackend::deserialize(std::istream &is)
{
    return ObliviousBackend::deserialize(is)
           && ctl->oram().deserialize(is);
}

void
WriteOnlyOramBackend::serialize(std::ostream &os) const
{
    ObliviousBackend::serialize(os);
    ctl->oram().serialize(os);
}

bool
WriteOnlyOramBackend::deserialize(std::istream &is)
{
    return ObliviousBackend::deserialize(is)
           && ctl->oram().deserialize(is);
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

const std::vector<ObliviousBackendInfo> &
allBackendInfos()
{
    static const std::vector<ObliviousBackendInfo> infos = {
        {ProtectionMode::Unprotected, "unprotected",
         /*needsBuses=*/true, /*obfuscatedWire=*/false,
         makeFlagged<PlainBackend, false>},
        {ProtectionMode::EncryptionOnly, "encryption-only", true,
         false, makeFlagged<PlainBackend, true>},
        {ProtectionMode::ObfusMem, "obfusmem", true, true,
         makeFlagged<ObfusBackend, false>},
        {ProtectionMode::ObfusMemAuth, "obfusmem+auth", true, true,
         makeFlagged<ObfusBackend, true>},
        {ProtectionMode::OramFixed, "oram-fixed", false, false,
         make<OramFixedBackend>},
        {ProtectionMode::OramDetailed, "oram-detailed", true, false,
         make<OramDetailedBackend>},
        {ProtectionMode::FlatOram, "flat-oram", true, false,
         make<FlatOramBackend>},
        {ProtectionMode::WriteOnlyOram, "wo-oram", true, false,
         make<WriteOnlyOramBackend>},
    };
    return infos;
}

const ObliviousBackendInfo &
backendInfo(ProtectionMode mode)
{
    for (const auto &info : allBackendInfos()) {
        if (info.mode == mode)
            return info;
    }
    panic("no backend registered for mode ",
          static_cast<int>(mode));
}

const ObliviousBackendInfo *
backendInfoByName(std::string_view name)
{
    for (const auto &info : allBackendInfos()) {
        if (name == info.name)
            return &info;
    }
    // Documented aliases (older bench spellings).
    if (name == "encryption")
        return &backendInfo(ProtectionMode::EncryptionOnly);
    if (name == "obfusmem-auth")
        return &backendInfo(ProtectionMode::ObfusMemAuth);
    if (name == "write-only-oram")
        return &backendInfo(ProtectionMode::WriteOnlyOram);
    return nullptr;
}

const char *
protectionModeName(ProtectionMode mode)
{
    return backendInfo(mode).name;
}

ProtectionMode
protectionModeFromEnv(ProtectionMode fallback)
{
    const char *v = env::raw("OBFUSMEM_BACKEND");
    if (!v)
        return fallback;
    if (const ObliviousBackendInfo *info = backendInfoByName(v))
        return info->mode;
    std::string options;
    for (const auto &info : allBackendInfos()) {
        if (!options.empty())
            options += ", ";
        options += info.name;
    }
    warn("OBFUSMEM_BACKEND=\"", v, "\" is not one of {", options,
         "}; using ", protectionModeName(fallback));
    return fallback;
}

} // namespace obfusmem
