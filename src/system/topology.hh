/**
 * @file
 * Datacenter-scale multi-tenant topology: N sockets, each a complete
 * System (own event queue, channel keys, memory path, PCM substrate),
 * running under the sharded simulation kernel. Each socket hosts M
 * closed-loop tenant drivers that issue an LLC-miss-like request
 * stream straight into the socket's protection path; a fraction of
 * every tenant's requests crosses the socket interconnect to a remote
 * socket's memory (NUMA-style), which is the traffic the kernel's
 * cross-shard mailboxes carry.
 *
 * The topology is the workload for bench/fig5_datacenter.cc: the
 * UNOPT inter-channel scheme pads every request with dummies on every
 * other channel of its socket, so its cost grows with the per-socket
 * channel count while OPT's does not (the paper's Observation 3 at
 * rack scale). Simulated results are bit-identical for any
 * OBFUSMEM_SIM_SHARDS setting; see sim/sharded_kernel.hh.
 */

#ifndef OBFUSMEM_SYSTEM_TOPOLOGY_HH
#define OBFUSMEM_SYSTEM_TOPOLOGY_HH

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/channel_bus.hh"
#include "sim/sharded_kernel.hh"
#include "system/system.hh"
#include "util/random.hh"

namespace obfusmem {

/** Per-tenant workload mix (one closed-loop driver). */
struct TenantParams
{
    /** Requests this tenant issues over the run. */
    uint64_t requests = 20 * 1000;
    /** Closed-loop window: requests kept in flight. */
    unsigned outstanding = 4;
    /** Fraction of requests that are stores. */
    double storeFraction = 0.3;
    /** Fraction routed to a uniformly chosen remote socket. */
    double remoteFraction = 0.05;
    /** Idle gap inserted after each completion (0 = immediate). */
    Tick thinkTime = 0;
    /** Working-set blocks inside the tenant's address slice. */
    uint64_t footprintBlocks = 1ull << 16;
};

/** Shape and protection of the simulated rack. */
struct TopologyConfig
{
    unsigned sockets = 2;
    unsigned channelsPerSocket = 2;
    unsigned tenantsPerSocket = 2;
    ProtectionMode mode = ProtectionMode::ObfusMemAuth;
    ChannelScheme channelScheme = ChannelScheme::Opt;
    uint64_t seed = 42;
    /**
     * One-way socket-interconnect latency. Doubles as the kernel's
     * conservative lookahead window, so it must stay >= the epoch
     * length; the constructor uses it as the epoch length directly.
     */
    Tick linkLatency = 500 * tickPerNs;
    /** Worker shards (resolve 0/auto before constructing). */
    unsigned shards = 1;
    /** Record every socket's wire trace (determinism CI legs). */
    bool recordTraces = false;
    /** Per-socket memory capacity (Table 2 default). */
    uint64_t capacityBytes = 8ull << 30;

    unsigned totalChannels() const { return sockets * channelsPerSocket; }
    unsigned totalTenants() const { return sockets * tenantsPerSocket; }
};

class MultiTenantTopology;

/**
 * One tenant: a closed-loop request generator bound to a home socket.
 * All member state is only ever touched from the home socket's shard
 * (issues and completions run on the home event queue).
 */
class TenantDriver
{
  public:
    TenantDriver(MultiTenantTopology &topo, unsigned socket,
                 unsigned slot, const TenantParams &params,
                 uint64_t seed);

    /** Schedule the initial request window on the home queue. */
    void start();

    /**
     * Account a completion; called on the home shard. @p window is
     * true when the completion frees a closed-loop window slot (reads
     * only: writes are posted like cache writebacks and never hold a
     * slot, so the protection layers' write buffering/substitution
     * moves write traffic around without distorting the makespan).
     */
    void complete(Tick issue_tick, bool window);

    unsigned homeSocket() const { return home; }
    uint64_t issuedCount() const { return issued; }
    uint64_t completedCount() const { return completed; }
    uint64_t remoteCount() const { return remoteIssued; }
    uint64_t latencySum() const { return latencySumTicks; }
    Tick lastCompletion() const { return lastCompletionTick; }

  private:
    void issueNext();

    MultiTenantTopology &topo;
    unsigned home;
    unsigned slot;
    TenantParams params;
    Random rng;

    /** Tenant's slice of the home socket's data region. */
    uint64_t addrBase = 0;
    uint64_t footprintBytes = 0;

    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t remoteIssued = 0;
    uint64_t latencySumTicks = 0;
    Tick lastCompletionTick = 0;
};

/**
 * Passive per-socket wire recorder in the audit tool's trace format
 * (`when dir channel bytes W/R hexaddr`); the determinism CI leg
 * byte-compares dumps across shard counts.
 */
class WireTraceRecorder : public BusProbe
{
  public:
    void observe(const BusSnoop &snoop) override
    {
        out << snoop.when << ' '
            << (snoop.dir == BusDir::ToMemory ? "toMem" : "toProc")
            << ' ' << snoop.channel << ' ' << snoop.bytes << ' '
            << (snoop.wireIsWrite ? 'W' : 'R') << ' ' << std::hex
            << snoop.wireAddr << std::dec << '\n';
    }

    std::string text() const { return out.str(); }

  private:
    std::ostringstream out;
};

/**
 * The rack: sockets, tenants, and the sharded kernel tying them
 * together. Single-shot: construct, run(), inspect.
 */
class MultiTenantTopology
{
  public:
    MultiTenantTopology(const TopologyConfig &config,
                        const TenantParams &tenant);
    ~MultiTenantTopology();

    MultiTenantTopology(const MultiTenantTopology &) = delete;
    MultiTenantTopology &operator=(const MultiTenantTopology &) = delete;

    /** Aggregated outcome of one run. */
    struct Result
    {
        uint64_t requestsCompleted = 0;
        uint64_t remoteRequests = 0;
        /** Makespan: last tenant completion (figure of merit). */
        Tick lastCompletionTick = 0;
        double avgLatencyNs = 0;
        uint64_t epochs = 0;
        uint64_t crossMessages = 0;
        uint64_t eventsExecuted = 0;
        double wallMs = 0;
    };

    /** Run every tenant to completion and drain the rack. */
    Result run();

    System &socket(unsigned i) { return *socketsVec[i]; }
    unsigned sockets() const
    {
        return static_cast<unsigned>(socketsVec.size());
    }
    TenantDriver &tenant(unsigned i) { return *tenants[i]; }
    ShardedKernel &kernel() { return theKernel; }
    const TopologyConfig &config() const { return cfg; }
    statistics::Group &rootStats() { return root; }

    /** Concatenated per-socket wire traces (recordTraces only). */
    void dumpWireTraces(std::ostream &os) const;

    /** Topology, kernel, and every socket's stats, in socket order. */
    void dumpStats(std::ostream &os) const;

    // --- TenantDriver plumbing (home-shard context only) -------------

    System &homeSystem(const TenantDriver &drv)
    {
        return *socketsVec[drv.homeSocket()];
    }

    /**
     * Ship a request over the interconnect to @p dst_sock, access its
     * memory there, and post the reply back to the tenant's home
     * socket. Both hops go through the kernel's lookahead-checked
     * mailboxes.
     */
    void remoteIssue(TenantDriver *drv, MemPacket pkt,
                     unsigned dst_sock, Tick issue_tick, bool window);

  private:
    TopologyConfig cfg;
    statistics::Group root;
    ShardedKernel theKernel;
    std::vector<std::unique_ptr<System>> socketsVec;
    std::vector<unsigned> endpointIds;
    std::vector<std::unique_ptr<TenantDriver>> tenants;
    std::vector<std::unique_ptr<WireTraceRecorder>> recorders;
    bool ran = false;
};

} // namespace obfusmem

#endif // OBFUSMEM_SYSTEM_TOPOLOGY_HH
