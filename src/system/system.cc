/**
 * @file
 * System assembly.
 */

#include "system/system.hh"

#include <algorithm>

#include "cpu/trace_workload.hh"
#include "crypto/md5.hh"
#include "trust/boot.hh"
#include "util/logging.hh"

namespace obfusmem {

namespace {

/** Deterministic per-channel session key (when not running boot). */
crypto::Aes128::Key
kdfChannelKey(uint64_t seed, unsigned channel)
{
    uint8_t msg[16];
    crypto::storeLe64(msg, seed);
    crypto::storeLe64(msg + 8, channel);
    crypto::Md5Digest d = crypto::Md5::digest(msg, sizeof(msg));
    crypto::Aes128::Key key;
    std::copy(d.begin(), d.end(), key.begin());
    return key;
}

} // namespace

System::System(const SystemConfig &config)
    : cfg(config), eq(config.evqImpl), root("system", nullptr)
{
    // `eq` is declared before `root`, so its stats group attaches here
    // rather than from an init-list.
    eq.attachStats(root);
    pktPool.attachStats(root);
    map = std::make_unique<AddressMap>(cfg.capacityBytes, cfg.channels);
    store = std::make_unique<BackingStore>(cfg.capacityBytes);

    buildMemoryPath();

    caches = std::make_unique<CacheHierarchy>("system.caches", eq,
                                              &root, cfg.hierarchy,
                                              *memoryPath);
    if (cfg.buildCores)
        buildCores();
}

System::~System() = default;

void
System::buildMemoryPath()
{
    const ObliviousBackendInfo &info = backendInfo(cfg.mode);
    const bool obfus_mode = info.obfuscatedWire;

    if (info.needsBuses) {
        if (cfg.attachObserver)
            busObserver = std::make_unique<BusObserver>(cfg.channels);
        if (cfg.attachAuditor) {
            check::TraceAuditor::Params ap;
            ap.channels = cfg.channels;
            ap.uniformPackets =
                obfus_mode && cfg.obfusmem.uniformPackets;
            ap.channelScheme = obfus_mode
                                   ? cfg.obfusmem.channelScheme
                                   : ChannelScheme::None;
            // Under injected faults with recovery on, recoverable
            // endpoint incidents are the protocol working as designed;
            // the structural wire invariants are still enforced.
            ap.tolerateRecoverableIncidents =
                obfus_mode && cfg.obfusmem.recovery.enabled
                && cfg.faults.any();
            // A retry stall is channel-local (one channel waits out
            // its timeout while the others keep their normal traffic),
            // so solo-busy buckets are expected in proportion to the
            // injected fault rate. Relax the timing-correlation
            // tolerance; shape, length, freshness and counter checks
            // stay strict.
            if (ap.tolerateRecoverableIncidents) {
                ap.maxSoloBucketFraction =
                    std::max(ap.maxSoloBucketFraction, 0.5);
            }
            traceAuditor = std::make_unique<check::TraceAuditor>(ap);
        }
        if (obfus_mode && cfg.faults.any()) {
            faultInjector =
                std::make_unique<FaultInjector>(cfg.faults);
            faultInjector->regStats(root);
        }
        for (unsigned c = 0; c < cfg.channels; ++c) {
            buses.push_back(std::make_unique<ChannelBus>(
                "system.bus" + std::to_string(c), eq, &root, c,
                cfg.bus));
            if (busObserver)
                buses.back()->attachProbe(busObserver.get());
            if (traceAuditor)
                buses.back()->attachProbe(traceAuditor.get());
            if (faultInjector)
                buses.back()->setFaultInjector(faultInjector.get());
            pcms.push_back(std::make_unique<PcmController>(
                "system.pcm" + std::to_string(c), eq, &root, c, *map,
                cfg.pcm, *store));
        }
    }

    // Session keys for the ObfusMem modes.
    if (obfus_mode) {
        if (cfg.runBootProtocol) {
            Random boot_rng(cfg.seed ^ 0xb007b007ULL);
            trust::Manufacturer proc_maker("ProcCorp", 256, boot_rng);
            trust::Manufacturer mem_maker("MemCorp", 256, boot_rng);
            trust::Component proc("cpu0", proc_maker, 256, true,
                                  boot_rng);
            trust::Component mem("dimm0", mem_maker, 256, true,
                                 boot_rng);
            proc.peerKeys().burn(mem.publicKey());
            mem.peerKeys().burn(proc.publicKey());
            trust::BootResult boot = trust::BootProtocol::run(
                trust::BootApproach::TrustedIntegrator, proc, mem,
                cfg.channels, boot_rng);
            fatal_if(!boot.success, "boot protocol failed: ",
                     boot.failureReason);
            channelKeys = boot.channelKeys;
        } else {
            for (unsigned c = 0; c < cfg.channels; ++c)
                channelKeys.push_back(kdfChannelKey(cfg.seed, c));
        }
    }

    BackendContext ctx{cfg,
                       eq,
                       root,
                       pktPool,
                       *map,
                       *store,
                       buses,
                       pcms,
                       traceAuditor.get(),
                       channelKeys,
                       kdfChannelKey(cfg.seed, 0xff)};
    protBackend = info.create(ctx);
    memoryPath = &protBackend->sink();
}

void
System::buildCores()
{
    if (!cfg.traceFile.empty()) {
        std::vector<MemOp> ops = loadTraceFile(cfg.traceFile);
        for (unsigned c = 0; c < cfg.cores; ++c) {
            cores.push_back(std::make_unique<TraceCore>(
                "system.core" + std::to_string(c), eq, &root,
                cfg.core,
                WorkloadGenerator::fromTrace(ops, cfg.traceBaseCpi),
                *caches, static_cast<int>(c), cfg.instrPerCore,
                [this](Tick finish) {
                    ++coresFinished;
                    lastFinish = std::max(lastFinish, finish);
                }));
        }
        return;
    }

    const BenchmarkProfile &profile =
        BenchmarkProfile::byName(cfg.benchmark);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        WorkloadGenerator gen(profile, cfg.workloadBase(c),
                              cfg.workloadRegionBytes(),
                              cfg.seed * 1000003 + c);
        cores.push_back(std::make_unique<TraceCore>(
            "system.core" + std::to_string(c), eq, &root, cfg.core,
            std::move(gen), *caches, static_cast<int>(c),
            cfg.instrPerCore, [this](Tick finish) {
                ++coresFinished;
                lastFinish = std::max(lastFinish, finish);
            }));
    }

    // Warm up, modelling the paper's fast-forward phase. First fill
    // the L3 with the stream blocks each core just passed (dirty at
    // the store fraction, so steady-state writeback traffic starts
    // immediately)...
    uint64_t l3_blocks = cfg.hierarchy.l3.sizeBytes / blockBytes;
    uint64_t per_core = (l3_blocks * 9 / 10) / cfg.cores;
    Random warm_rng(cfg.seed ^ 0x3a3a3a3aULL);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        WorkloadGenerator probe(profile, cfg.workloadBase(c),
                                cfg.workloadRegionBytes(),
                                cfg.seed * 1000003 + c);
        uint64_t region_blocks = probe.streamRegionBlocks();
        uint64_t start = probe.streamStartBlock();
        for (uint64_t i = 1; i <= per_core; ++i) {
            uint64_t block =
                (start + region_blocks - i) % region_blocks;
            uint64_t addr =
                probe.streamRegionBase() + block * blockBytes;
            bool dirty = warm_rng.chance(profile.storeFraction);
            caches->preloadShared(addr, store->read(addr), dirty);
        }
    }

    // ...then the hot working sets, which must stay resident.
    for (unsigned c = 0; c < cfg.cores; ++c) {
        uint64_t base = cfg.workloadBase(c);
        for (uint64_t off = 0; off < profile.hotBytes;
             off += blockBytes) {
            caches->preload(static_cast<int>(c), base + off,
                            store->read(base + off));
        }
    }
}

System::RunResult
System::run()
{
    panic_if(cores.empty(),
             "System::run() on a coreless system (buildCores=false); "
             "drive the memory path directly instead");
    for (auto &core : cores)
        core->start();

    // Run until every core is done, then drain stragglers.
    while (coresFinished < cores.size() && !eq.empty())
        eq.step();
    panic_if(coresFinished < cores.size(),
             "event queue drained before cores finished");
    eq.run();

    RunResult result;
    result.execTicks = lastFinish;
    result.instructions = 0;
    for (auto &core : cores)
        result.instructions += core->instructionsRetired();
    result.llcMisses = caches->llcMissCount();

    double cycles =
        static_cast<double>(lastFinish) / cfg.core.period;
    result.ipc = cycles > 0
                     ? (static_cast<double>(result.instructions)
                        / cores.size())
                           / cycles
                     : 0.0;
    result.mpki = result.instructions > 0
                      ? 1000.0 * result.llcMisses / result.instructions
                      : 0.0;
    // Average per-core gap between memory requests (demand misses
    // plus writebacks), matching Table 1's characterization.
    double mem_reqs_per_core =
        (result.llcMisses
         + caches->stats().scalarValue("writebacks"))
        / static_cast<double>(cores.size());
    result.avgGapNs = mem_reqs_per_core > 0
                          ? ticksToNs(result.execTicks)
                                / mem_reqs_per_core
                          : 0.0;

    for (auto &pcm : pcms) {
        result.cellWrites += pcm->cellBlockWrites();
        result.pcmEnergyPj += pcm->energyPj();
    }
    if (!buses.empty()) {
        double util = 0;
        for (auto &bus : buses)
            util += bus->utilization();
        result.busUtilization = util / buses.size();
    }
    return result;
}

void
System::timedLoad(int core, uint64_t addr, CacheHierarchy::DoneCb cb)
{
    caches->load(core, addr, eq.curTick(), std::move(cb));
}

void
System::timedStore(int core, uint64_t addr, const DataBlock &data,
                   CacheHierarchy::DoneCb cb)
{
    caches->store(core, addr, data, eq.curTick(), std::move(cb));
}

void
System::flushAndDrain()
{
    bool flushed = false;
    caches->flushAll(eq.curTick(), [&flushed](Tick) {
        flushed = true;
    });
    eq.run();
    panic_if(!flushed, "flush did not complete");
}

DataBlock
System::functionalRead(uint64_t addr)
{
    addr = blockAlign(addr);
    DataBlock out;
    if (caches->peekBlock(addr, out))
        return out;

    if (auto resolved = protBackend->functionalRead(addr))
        return *resolved;
    return store->read(addr);
}

} // namespace obfusmem
