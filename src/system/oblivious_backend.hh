/**
 * @file
 * The pluggable protection-path interface.
 *
 * Every protection scheme the simulator evaluates - the plain and
 * encrypted paths, ObfusMem itself, and the ORAM-family competitors -
 * is one implementation of ObliviousBackend: a factory-constructed
 * bundle owning the scheme's components that exposes the MemSink the
 * cache hierarchy talks to, a functional-read hook for verification,
 * and checkpoint/restore of the scheme's functional state.
 *
 * The registry (ObliviousBackendInfo) is a function table in the
 * obfuscator-vtable style: one static row per ProtectionMode carrying
 * the mode's name, its substrate needs, and its create function, so
 * System assembly, the benches' mode sweeps, and the OBFUSMEM_BACKEND
 * environment knob all drive off the same table instead of scattered
 * switch statements.
 */

#ifndef OBFUSMEM_SYSTEM_OBLIVIOUS_BACKEND_HH
#define OBFUSMEM_SYSTEM_OBLIVIOUS_BACKEND_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "check/trace_auditor.hh"
#include "mem/backing_store.hh"
#include "mem/packet_pool.hh"
#include "obfusmem/mem_side.hh"
#include "obfusmem/plain_path.hh"
#include "obfusmem/proc_side.hh"
#include "system/config.hh"

namespace obfusmem {

/**
 * Everything a backend factory may wire against: the shared substrate
 * System builds before selecting a protection path. `buses`/`pcms`
 * are empty when the mode's registry row says needsBuses=false, and
 * `auditor` may be null.
 */
struct BackendContext
{
    const SystemConfig &cfg;
    EventQueue &eq;
    statistics::Group &root;
    PacketPool &pktPool;
    AddressMap &map;
    BackingStore &store;
    std::vector<std::unique_ptr<ChannelBus>> &buses;
    std::vector<std::unique_ptr<PcmController>> &pcms;
    check::TraceAuditor *auditor;
    const std::vector<crypto::Aes128::Key> &channelKeys;
    /** Key of the on-chip memory encryption engine. */
    crypto::Aes128::Key meeKey;
};

/**
 * One assembled protection path.
 */
class ObliviousBackend
{
  public:
    virtual ~ObliviousBackend() = default;

    /** The sink the cache hierarchy (or a tenant generator) drives. */
    virtual MemSink &sink() = 0;

    /**
     * Functional (untimed) read of the logical block at @p addr as
     * this scheme would decrypt/resolve it, or nullopt when the raw
     * backing store already holds the plaintext.
     */
    virtual std::optional<DataBlock> functionalRead(uint64_t /*addr*/)
    {
        return std::nullopt;
    }

    /**
     * Checkpoint the scheme's functional state (position maps,
     * stashes, counters, RNG streams). Stateless schemes write only
     * the format tag. This is the serialize half of the vtable that
     * the roadmap's checkpoint/restore item builds on.
     */
    virtual void serialize(std::ostream &os) const;

    /** Restore from serialize() output; false on format mismatch. */
    virtual bool deserialize(std::istream &is);

    // --- Typed component access (null when the scheme lacks it) ------

    virtual MemoryEncryptionEngine *encryptionEngine()
    {
        return nullptr;
    }
    virtual ObfusMemProcSide *procSide() { return nullptr; }
    virtual std::vector<std::unique_ptr<ObfusMemMemSide>> *memSides()
    {
        return nullptr;
    }
    virtual OramFixedLatency *oramFixed() { return nullptr; }
    virtual OramDetailed *oramDetailed() { return nullptr; }
    virtual FlatOramController *flatOram() { return nullptr; }
    virtual WriteOnlyOramController *writeOnlyOram() { return nullptr; }

  protected:
    explicit ObliviousBackend(ProtectionMode mode_) : mode(mode_) {}

    /** Serialized-stream tag; subclasses append their payload. */
    ProtectionMode mode;
};

/**
 * Registry row of one protection scheme.
 */
struct ObliviousBackendInfo
{
    ProtectionMode mode;
    /** Canonical name (CLI/JSON/env spelling). */
    const char *name;
    /** Scheme sits on channel buses + PCM (vs. the magic store). */
    bool needsBuses;
    /** Scheme obfuscates the wire (auditor runs in strict mode). */
    bool obfuscatedWire;
    std::unique_ptr<ObliviousBackend> (*create)(
        const BackendContext &ctx);
};

/** Registry row for @p mode (every mode has one). */
const ObliviousBackendInfo &backendInfo(ProtectionMode mode);

/**
 * Row whose canonical name (or a documented alias: "encryption",
 * "obfusmem-auth") matches @p name; nullptr when unknown.
 */
const ObliviousBackendInfo *backendInfoByName(std::string_view name);

/** All registry rows, in ProtectionMode declaration order. */
const std::vector<ObliviousBackendInfo> &allBackendInfos();

/**
 * Mode selected by the OBFUSMEM_BACKEND environment knob, or
 * @p fallback when unset; warns and falls back on an unknown name.
 */
ProtectionMode protectionModeFromEnv(ProtectionMode fallback);

} // namespace obfusmem

#endif // OBFUSMEM_SYSTEM_OBLIVIOUS_BACKEND_HH
