/**
 * @file
 * MultiTenantTopology / TenantDriver implementation.
 */

#include "system/topology.hh"

#include <chrono>

#include "util/assert.hh"

namespace obfusmem {

namespace {

/** SplitMix64 step for deriving independent per-entity seeds. */
uint64_t
mixSeed(uint64_t seed, uint64_t salt)
{
    uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

// --- TenantDriver ---------------------------------------------------

TenantDriver::TenantDriver(MultiTenantTopology &topo_, unsigned socket,
                           unsigned slot_, const TenantParams &params_,
                           uint64_t seed)
    : topo(topo_), home(socket), slot(slot_), params(params_),
      rng(seed)
{
    const SystemConfig &sc = topo.socket(home).config();
    uint64_t slice = sc.dataRegionBytes()
                     / topo.config().tenantsPerSocket;
    slice = blockAlign(slice);
    panic_if(slice < blockBytes, "tenant address slice too small");
    addrBase = slot * slice;
    footprintBytes = params.footprintBlocks * blockBytes;
    if (footprintBytes > slice || footprintBytes == 0)
        footprintBytes = slice;
}

void
TenantDriver::start()
{
    EventQueue &eq = topo.homeSystem(*this).eventQueue();
    // Stagger the initial window by a tick per slot so the issue
    // order is fixed by construction, not by tie-breaking.
    for (unsigned w = 0; w < params.outstanding; ++w) {
        eq.schedule(eq.curTick() + 1 + w,
                    [this]() { issueNext(); });
    }
}

void
TenantDriver::issueNext()
{
    System &sys = topo.homeSystem(*this);
    // A window slot is occupied by reads only; stores are posted
    // (writeback-style) and the slot keeps issuing in the same tick
    // until it lands on a read or runs out of requests.
    while (issued < params.requests) {
        ++issued;

        const Tick issue_tick = sys.eventQueue().curTick();
        const bool remote = topo.sockets() > 1
                            && rng.chance(params.remoteFraction);
        const bool store = rng.chance(params.storeFraction);
        const bool window = !store;

        MemPacket pkt;
        pkt.cmd = store ? MemCmd::Write : MemCmd::Read;
        pkt.addr = addrBase
                   + blockAlign(rng.randUnder(footprintBytes));
        pkt.coreId = -1;
        pkt.issueTick = issue_tick;
        if (store) {
            // Cheap deterministic payload; the crypto layers
            // transform it end to end so even a thin pattern
            // exercises them fully.
            for (unsigned i = 0; i < 8; ++i)
                pkt.data[i] = static_cast<uint8_t>(
                    (issued >> (i * 8)) ^ (home * 131 + slot));
        }

        if (remote) {
            ++remoteIssued;
            unsigned dst = static_cast<unsigned>(
                rng.randUnder(topo.sockets() - 1));
            if (dst >= home)
                ++dst;
            topo.remoteIssue(this, std::move(pkt), dst, issue_tick,
                             window);
        } else {
            sys.memorySink().access(
                std::move(pkt),
                [this, issue_tick, window](MemPacket &&) {
                    complete(issue_tick, window);
                });
        }
        if (window)
            return;
    }
}

void
TenantDriver::complete(Tick issue_tick, bool window)
{
    EventQueue &eq = topo.homeSystem(*this).eventQueue();
    const Tick now = eq.curTick();
    ++completed;
    latencySumTicks += now - issue_tick;
    if (now > lastCompletionTick)
        lastCompletionTick = now;
    if (!window || issued >= params.requests)
        return;
    if (params.thinkTime == 0) {
        issueNext();
        return;
    }
    eq.scheduleAfter(params.thinkTime, [this]() { issueNext(); });
}

// --- MultiTenantTopology --------------------------------------------

MultiTenantTopology::MultiTenantTopology(const TopologyConfig &config,
                                         const TenantParams &tenant)
    : cfg(config), root("topology", nullptr),
      theKernel({cfg.shards ? cfg.shards : 1, cfg.linkLatency})
{
    panic_if(cfg.sockets == 0, "topology needs at least one socket");
    panic_if(cfg.tenantsPerSocket == 0,
             "topology needs at least one tenant per socket");

    theKernel.attachStats(root);

    for (unsigned s = 0; s < cfg.sockets; ++s) {
        SystemConfig sc;
        sc.mode = cfg.mode;
        sc.capacityBytes = cfg.capacityBytes;
        sc.channels = cfg.channelsPerSocket;
        sc.obfusmem.channelScheme = cfg.channelScheme;
        // Independent per-socket keys/state, derived from one seed.
        sc.seed = mixSeed(cfg.seed, s + 1);
        sc.buildCores = false;
        sc.attachObserver = false;
        socketsVec.push_back(std::make_unique<System>(sc));
        endpointIds.push_back(
            theKernel.addEndpoint(socketsVec.back()->eventQueue()));
        if (cfg.recordTraces) {
            recorders.push_back(
                std::make_unique<WireTraceRecorder>());
            for (auto &bus : socketsVec.back()->channelBuses())
                bus->attachProbe(recorders.back().get());
        }
    }

    for (unsigned s = 0; s < cfg.sockets; ++s) {
        for (unsigned t = 0; t < cfg.tenantsPerSocket; ++t) {
            uint64_t id = uint64_t(s) * cfg.tenantsPerSocket + t;
            tenants.push_back(std::make_unique<TenantDriver>(
                *this, s, t, tenant,
                mixSeed(cfg.seed ^ 0x7e9a1c3fu, id + 1)));
        }
    }
}

MultiTenantTopology::~MultiTenantTopology() = default;

void
MultiTenantTopology::remoteIssue(TenantDriver *drv, MemPacket pkt,
                                 unsigned dst_sock, Tick issue_tick,
                                 bool window)
{
    const unsigned home_sock = drv->homeSocket();
    const unsigned src_ep = endpointIds[home_sock];
    const unsigned dst_ep = endpointIds[dst_sock];
    const Tick depart =
        socketsVec[home_sock]->eventQueue().curTick();

    // Request hop: runs on the destination socket's shard.
    theKernel.post(
        src_ep, dst_ep, depart + cfg.linkLatency,
        [this, drv, pkt = std::move(pkt), home_sock, dst_sock,
         issue_tick, window]() mutable {
            System &remote = *socketsVec[dst_sock];
            const unsigned reply_src = endpointIds[dst_sock];
            const unsigned reply_dst = endpointIds[home_sock];
            remote.memorySink().access(
                std::move(pkt),
                [this, drv, reply_src, reply_dst, dst_sock,
                 issue_tick, window](MemPacket &&) {
                    // Reply hop: back to the tenant's home shard.
                    const Tick back =
                        socketsVec[dst_sock]->eventQueue().curTick();
                    theKernel.post(reply_src, reply_dst,
                                   back + cfg.linkLatency,
                                   [drv, issue_tick, window]() {
                                       drv->complete(issue_tick,
                                                     window);
                                   });
                });
        });
}

MultiTenantTopology::Result
MultiTenantTopology::run()
{
    panic_if(ran, "MultiTenantTopology::run() is single-shot");
    ran = true;

    for (auto &t : tenants)
        t->start();

    const auto wall_start = std::chrono::steady_clock::now();
    ShardedKernel::RunSummary sum = theKernel.run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    Result res;
    res.epochs = sum.epochs;
    res.crossMessages = sum.crossMessages;
    res.eventsExecuted = sum.eventsExecuted;
    res.wallMs = wall_ms;
    uint64_t lat_sum = 0;
    for (auto &t : tenants) {
        panic_if(t->completedCount() != t->issuedCount(),
                 "tenant wedged: ", t->completedCount(), "/",
                 t->issuedCount(), " requests completed");
        res.requestsCompleted += t->completedCount();
        res.remoteRequests += t->remoteCount();
        lat_sum += t->latencySum();
        if (t->lastCompletion() > res.lastCompletionTick)
            res.lastCompletionTick = t->lastCompletion();
    }
    if (res.requestsCompleted)
        res.avgLatencyNs =
            static_cast<double>(lat_sum)
            / static_cast<double>(res.requestsCompleted) / tickPerNs;
    return res;
}

void
MultiTenantTopology::dumpWireTraces(std::ostream &os) const
{
    panic_if(recorders.empty(),
             "wire traces not recorded (TopologyConfig::recordTraces)");
    for (unsigned s = 0; s < recorders.size(); ++s)
        os << "# socket " << s << '\n' << recorders[s]->text();
}

void
MultiTenantTopology::dumpStats(std::ostream &os) const
{
    root.dump(os);
    for (unsigned s = 0; s < socketsVec.size(); ++s) {
        os << "--- socket " << s << " ---\n";
        socketsVec[s]->dumpStats(os);
    }
}

} // namespace obfusmem
