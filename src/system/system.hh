/**
 * @file
 * Top-level simulated system: cores, caches, the configured
 * protection path, channel buses, PCM, and the attacker's observer.
 * This is the main entry point of the library's public API.
 */

#ifndef OBFUSMEM_SYSTEM_SYSTEM_HH
#define OBFUSMEM_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "check/trace_auditor.hh"
#include "cpu/core.hh"
#include "mem/backing_store.hh"
#include "mem/packet_pool.hh"
#include "obfusmem/mem_side.hh"
#include "obfusmem/observer.hh"
#include "obfusmem/plain_path.hh"
#include "obfusmem/proc_side.hh"
#include "system/config.hh"
#include "system/oblivious_backend.hh"

namespace obfusmem {

/**
 * A fully wired simulated machine.
 */
class System
{
  public:
    /** Summary of one simulation run. */
    struct RunResult
    {
        Tick execTicks = 0;
        uint64_t instructions = 0;
        uint64_t llcMisses = 0;
        /** Per-core IPC (cores are homogeneous). */
        double ipc = 0;
        /** Demand LLC misses per kilo-instruction. */
        double mpki = 0;
        /** Average gap between LLC misses in nanoseconds. */
        double avgGapNs = 0;
        /** PCM cell-write blocks (wear). */
        uint64_t cellWrites = 0;
        /** PCM array energy (normalized pJ). */
        double pcmEnergyPj = 0;
        /** Mean data-bus utilization across channels. */
        double busUtilization = 0;

        double execMs() const
        {
            return static_cast<double>(execTicks) / tickPerMs;
        }
    };

    explicit System(const SystemConfig &config);
    ~System();

    /** Run every core to completion and drain the memory system. */
    RunResult run();

    /**
     * Issue a timed load/store directly (without cores); useful for
     * tests and examples that drive the memory system by hand.
     */
    void timedLoad(int core, uint64_t addr, CacheHierarchy::DoneCb cb);
    void timedStore(int core, uint64_t addr, const DataBlock &data,
                    CacheHierarchy::DoneCb cb);

    /** Write back all dirty cache state and drain the event queue. */
    void flushAndDrain();

    /**
     * Functional read with decryption: caches first, then memory via
     * the mode's crypto (test/verification path).
     */
    DataBlock functionalRead(uint64_t addr);

    /**
     * Checkpoint / restore the protection path's functional state
     * (position maps, stashes, counters, RNG streams) through the
     * backend's serialize vtable half. Restore requires a system
     * built with the same mode and geometry.
     */
    void serializeBackend(std::ostream &os) const
    {
        protBackend->serialize(os);
    }

    bool restoreBackend(std::istream &is)
    {
        return protBackend->deserialize(is);
    }

    // --- Component access (tests, benches, examples) -----------------

    EventQueue &eventQueue() { return eq; }
    PacketPool &packetPool() { return pktPool; }
    /**
     * The configured protection path's entry point (what the LLC
     * talks to). External drivers — the multi-tenant topology's
     * tenant generators — issue timed requests here directly,
     * modelling an LLC-miss stream without the core/cache machinery.
     */
    MemSink &memorySink() { return *memoryPath; }
    statistics::Group &rootStats() { return root; }
    CacheHierarchy &hierarchy() { return *caches; }
    BackingStore &backingStore() { return *store; }
    const AddressMap &addressMap() const { return *map; }
    BusObserver *observer() { return busObserver.get(); }
    check::TraceAuditor *auditor() { return traceAuditor.get(); }
    FaultInjector *faults() { return faultInjector.get(); }
    /** The assembled protection path (never null). */
    ObliviousBackend &backend() { return *protBackend; }
    MemoryEncryptionEngine *encryptionEngine()
    {
        return protBackend->encryptionEngine();
    }
    ObfusMemProcSide *procSide() { return protBackend->procSide(); }
    std::vector<std::unique_ptr<ObfusMemMemSide>> &memSides()
    {
        auto *sides = protBackend->memSides();
        return sides ? *sides : noMemSides;
    }
    std::vector<std::unique_ptr<PcmController>> &pcmControllers()
    {
        return pcms;
    }
    std::vector<std::unique_ptr<ChannelBus>> &channelBuses()
    {
        return buses;
    }
    OramFixedLatency *oramFixed() { return protBackend->oramFixed(); }
    OramDetailed *oramDetailed()
    {
        return protBackend->oramDetailed();
    }
    FlatOramController *flatOramCtl()
    {
        return protBackend->flatOram();
    }
    WriteOnlyOramController *writeOnlyOramCtl()
    {
        return protBackend->writeOnlyOram();
    }
    TraceCore &core(unsigned i) { return *cores[i]; }
    const SystemConfig &config() const { return cfg; }

    /** The session keys in use (for tamper tests). */
    const std::vector<crypto::Aes128::Key> &sessionKeys() const
    {
        return channelKeys;
    }

    /** Dump all statistics to a stream. */
    void dumpStats(std::ostream &os) const { root.dump(os); }

  private:
    void buildMemoryPath();
    void buildCores();

    SystemConfig cfg;
    EventQueue eq;
    PacketPool pktPool;
    statistics::Group root;

    std::unique_ptr<AddressMap> map;
    std::unique_ptr<BackingStore> store;
    std::vector<std::unique_ptr<ChannelBus>> buses;
    std::vector<std::unique_ptr<PcmController>> pcms;
    std::unique_ptr<BusObserver> busObserver;
    std::unique_ptr<check::TraceAuditor> traceAuditor;
    std::unique_ptr<FaultInjector> faultInjector;

    std::vector<crypto::Aes128::Key> channelKeys;
    std::unique_ptr<ObliviousBackend> protBackend;
    /** Fallback for memSides() on backends without ObfusMem sides. */
    std::vector<std::unique_ptr<ObfusMemMemSide>> noMemSides;

    /** The sink the cache hierarchy talks to. */
    MemSink *memoryPath = nullptr;

    std::unique_ptr<CacheHierarchy> caches;
    std::vector<std::unique_ptr<TraceCore>> cores;
    unsigned coresFinished = 0;
    Tick lastFinish = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_SYSTEM_SYSTEM_HH
