/**
 * @file
 * Top-level system configuration: protection mode plus the parameters
 * of every substrate, defaulting to the paper's Table 2 machine.
 */

#ifndef OBFUSMEM_SYSTEM_CONFIG_HH
#define OBFUSMEM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cpu/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "mem/fault_injector.hh"
#include "mem/pcm_params.hh"
#include "obfusmem/params.hh"
#include "oram/oram_controller.hh"
#include "secure/encryption_engine.hh"
#include "sim/event_queue.hh"

namespace obfusmem {

/** The protection configurations evaluated in the paper. */
enum class ProtectionMode
{
    /** No protection at all (the normalization baseline). */
    Unprotected,
    /** Counter-mode memory encryption + Merkle integrity only. */
    EncryptionOnly,
    /** Encryption + ObfusMem access-pattern obfuscation. */
    ObfusMem,
    /** ObfusMem + authenticated communication (the full design). */
    ObfusMemAuth,
    /** Path ORAM with the paper's optimistic fixed 2500 ns latency. */
    OramFixed,
    /** Path ORAM driving the detailed PCM substrate. */
    OramDetailed,
    /** Flat (write-only) ORAM driving the detailed PCM substrate. */
    FlatOram,
    /**
     * Deterministic stash-free write-only ORAM driving the detailed
     * PCM substrate.
     */
    WriteOnlyOram,
};

/**
 * Human-readable mode name (the registry row's canonical name; see
 * system/oblivious_backend.hh).
 */
const char *protectionModeName(ProtectionMode mode);

/** Full system configuration. */
struct SystemConfig
{
    ProtectionMode mode = ProtectionMode::ObfusMemAuth;

    /** Memory geometry (Table 2: 8 GB, 1/2/4/8 channels). */
    uint64_t capacityBytes = 8ull << 30;
    unsigned channels = 1;

    /** Workload. */
    std::string benchmark = "bwaves";
    unsigned cores = 4;
    uint64_t instrPerCore = 1000 * 1000;
    uint64_t seed = 42;

    /**
     * Replay a recorded trace instead of the synthetic benchmark
     * (see cpu/trace_workload.hh for the format). Every core replays
     * the same trace; no cache warm-up is performed.
     */
    std::string traceFile;
    /** Non-memory CPI charged during trace replay. */
    double traceBaseCpi = 1.0;

    HierarchyParams hierarchy{};
    TraceCore::Params core{};
    PcmParams pcm{};
    ChannelBus::Params bus{};
    EncryptionParams encryption{};
    ObfusMemParams obfusmem{};
    /**
     * Seeded channel fault injection (drop/corrupt/delay/duplicate;
     * see mem/fault_injector.hh). Attached to the channel buses only
     * in the ObfusMem modes — the plain path has no recovery protocol
     * and would wedge on a dropped message. All probabilities default
     * to zero; OBFUSMEM_FAULT_* env knobs feed Params::fromEnv().
     */
    FaultInjector::Params faults{};
    OramFixedLatency::Params oramFixed{};
    OramDetailed::Params oramDetailed{};
    FlatOramController::Params flatOram{};
    WriteOnlyOramController::Params writeOnlyOram{};

    /**
     * Event-queue implementation for this system's kernel. Defaults
     * to the process-wide OBFUSMEM_EVQ_IMPL latch; the conformance
     * suite overrides it to cross-check wheel vs heap traces within
     * one process.
     */
    EvqImpl evqImpl = EventQueue::defaultImpl();

    /**
     * Build the trace cores and warm the caches. The datacenter
     * topology (system/topology.hh) drives the memory path directly
     * with tenant generators instead; skipping core construction
     * there avoids paying the per-socket cache warm-up for cores
     * that never start. System::run() requires cores.
     */
    bool buildCores = true;

    /** Attach the attacker's bus observer. */
    bool attachObserver = true;

    /**
     * Attach the obliviousness trace auditor (src/check): taps every
     * channel bus and the ObfusMem endpoints and machine-checks the
     * paper's security invariants over the whole run. Off by default;
     * CI and the `obfus_audit` tool turn it on. Note that on the
     * unprotected/encryption-only paths the auditor *will* report
     * violations - that is the point: those traces are not oblivious.
     */
    bool attachAuditor = false;

    /**
     * Derive channel session keys with the real boot protocol
     * (trusted-integrator DH) instead of a deterministic KDF.
     */
    bool runBootProtocol = false;

    /** Memory layout (derived; override only for tests). */
    uint64_t workloadRegionBytes() const
    {
        return (capacityBytes * 3 / 4) / cores;
    }

    uint64_t workloadBase(unsigned core_id) const
    {
        return core_id * workloadRegionBytes();
    }

    uint64_t counterRegionBase() const
    {
        return capacityBytes * 3 / 4 + (capacityBytes >> 5);
    }

    uint64_t bmtRegionBase() const
    {
        return capacityBytes * 3 / 4 + (capacityBytes >> 3);
    }

    uint64_t oramTreeBase() const
    {
        return capacityBytes * 3 / 4 + (capacityBytes >> 3)
               + (capacityBytes >> 4);
    }

    /** Region the memory encryption engine protects. */
    uint64_t dataRegionBytes() const { return capacityBytes * 3 / 4; }
};

} // namespace obfusmem

#endif // OBFUSMEM_SYSTEM_CONFIG_HH
