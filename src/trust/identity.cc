/**
 * @file
 * Identity/certification implementation.
 */

#include "trust/identity.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace obfusmem {
namespace trust {

std::vector<uint8_t>
Measurement::serialize() const
{
    std::vector<uint8_t> out;
    auto append_str = [&out](const std::string &s) {
        out.push_back(static_cast<uint8_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
    };
    append_str(model);
    append_str(firmwareVersion);
    out.push_back(obfusMemCapable ? 1 : 0);
    std::vector<uint8_t> n = devicePublicKey.modulus.toBytes();
    out.insert(out.end(), n.begin(), n.end());
    std::vector<uint8_t> e = devicePublicKey.exponent.toBytes();
    out.insert(out.end(), e.begin(), e.end());
    return out;
}

crypto::Sha1Digest
Measurement::digest() const
{
    std::vector<uint8_t> bytes = serialize();
    return crypto::Sha1::digest(bytes.data(), bytes.size());
}

bool
Certificate::verify(const crypto::RsaPublicKey &ca_key) const
{
    // The manufacturer signed (device key || measurement digest).
    std::vector<uint8_t> msg = devicePublicKey.modulus.toBytes();
    msg.insert(msg.end(), measurementDigest.begin(),
               measurementDigest.end());
    return crypto::RsaKeyPair::verify(ca_key, msg.data(), msg.size(),
                                      signature);
}

Manufacturer::Manufacturer(std::string name, size_t key_bits,
                           Random &rng)
    : manufacturerName(std::move(name)),
      caKey(crypto::RsaKeyPair::generate(key_bits, rng))
{
}

Certificate
Manufacturer::certify(const Measurement &m) const
{
    Certificate cert;
    cert.devicePublicKey = m.devicePublicKey;
    cert.measurementDigest = m.digest();
    std::vector<uint8_t> msg = m.devicePublicKey.modulus.toBytes();
    msg.insert(msg.end(), cert.measurementDigest.begin(),
               cert.measurementDigest.end());
    cert.signature = caKey.sign(msg.data(), msg.size());
    return cert;
}

bool
KeyRegisterFile::burn(const crypto::RsaPublicKey &key)
{
    if (keys.size() >= capacity)
        return false;
    keys.push_back(key);
    return true;
}

bool
KeyRegisterFile::contains(const crypto::RsaPublicKey &key) const
{
    for (const auto &k : keys) {
        if (k == key)
            return true;
    }
    return false;
}

Component::Component(std::string name, const Manufacturer &maker,
                     size_t key_bits, bool obfusmem_capable,
                     Random &rng)
    : componentName(std::move(name)),
      deviceKey(crypto::RsaKeyPair::generate(key_bits, rng)),
      makerKey(maker.caPublicKey())
{
    selfMeasurement.model = componentName;
    selfMeasurement.firmwareVersion = "1.0";
    selfMeasurement.obfusMemCapable = obfusmem_capable;
    selfMeasurement.devicePublicKey = deviceKey.publicKey();
    cert = maker.certify(selfMeasurement);
}

crypto::BigUint
Component::sign(const uint8_t *data, size_t len) const
{
    return deviceKey.sign(data, len);
}

} // namespace trust
} // namespace obfusmem
