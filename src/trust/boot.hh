/**
 * @file
 * Boot-time trust bootstrapping (paper Sec. 3.1): the three key
 * distribution approaches followed by a Diffie-Hellman exchange per
 * memory channel, yielding symmetric session keys for the ObfusMem
 * controllers. Public-key operations run exactly once per boot;
 * normal operation is symmetric crypto only.
 *
 * A man-in-the-middle hook lets tests demonstrate why the paper
 * rejects the naive approach: an active attacker on the exposed bus
 * can substitute DH values during a naive boot and remain undetected,
 * whereas the signed exchanges of the integrator approaches reject
 * the attack.
 */

#ifndef OBFUSMEM_TRUST_BOOT_HH
#define OBFUSMEM_TRUST_BOOT_HH

#include <string>
#include <vector>

#include "crypto/aes128.hh"
#include "crypto/dh.hh"
#include "trust/identity.hh"
#include "util/secret.hh"

namespace obfusmem {
namespace trust {

/** Which bootstrapping approach to run. */
enum class BootApproach
{
    /** Public keys exchanged in the clear during BIOS. */
    Naive,
    /** Keys pre-burned by a trusted system integrator. */
    TrustedIntegrator,
    /** Burned keys cross-checked via SGX-like attestation. */
    UntrustedIntegrator,
};

/** An active attacker sitting on the exposed bus during boot. */
class MitmAttacker
{
  public:
    explicit MitmAttacker(Random &rng)
        : procFacing(crypto::DhGroup::testGroup256(), rng),
          memFacing(crypto::DhGroup::testGroup256(), rng)
    {}

    /** DH endpoint impersonating the memory toward the processor. */
    crypto::DhEndpoint procFacing;
    /** DH endpoint impersonating the processor toward the memory. */
    crypto::DhEndpoint memFacing;
};

/** Result of a boot attempt. */
struct BootResult
{
    bool success = false;
    std::string failureReason;
    /** One session key per memory channel. */
    OBF_SECRET std::vector<crypto::Aes128::Key> channelKeys;
    /**
     * True if an active attacker holds keys that let it decrypt the
     * session (i.e. the MITM succeeded without detection).
     */
    bool attackerHoldsKeys = false;
};

/**
 * Runs the boot protocol between a processor and a memory module.
 */
class BootProtocol
{
  public:
    /**
     * @param processor The processor component.
     * @param memory The memory component.
     * @param channels Number of memory channels (one DH session key
     *        derived per channel).
     * @param rng Entropy for the DH exchange.
     * @param attacker Optional active MITM on the boot-time bus.
     */
    static BootResult run(BootApproach approach, Component &processor,
                          Component &memory, unsigned channels,
                          Random &rng,
                          MitmAttacker *attacker = nullptr);

    /**
     * Model a component upgrade under the integrator approaches:
     * burn the new component's key into the survivor's spare slots.
     * @return false when the spare registers are exhausted.
     */
    static bool upgradeComponent(Component &survivor,
                                 const Component &replacement);

  private:
    static BootResult runNaive(Component &proc, Component &mem,
                               unsigned channels, Random &rng,
                               MitmAttacker *attacker);
    static BootResult runTrusted(Component &proc, Component &mem,
                                 unsigned channels, Random &rng,
                                 MitmAttacker *attacker);
    static BootResult runAttested(Component &proc, Component &mem,
                                  unsigned channels, Random &rng,
                                  MitmAttacker *attacker);

    /** Derive per-channel keys from the DH shared secret. */
    static OBF_SECRET std::vector<crypto::Aes128::Key>
    deriveChannelKeys(OBF_SECRET const crypto::BigUint &shared,
                      unsigned channels);
};

} // namespace trust
} // namespace obfusmem

#endif // OBFUSMEM_TRUST_BOOT_HH
