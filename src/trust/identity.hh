/**
 * @file
 * Component identities for the ObfusMem trust architecture (paper
 * Sec. 3.1): manufacturers generate a key pair per chip, burn it in,
 * and act as certification authorities for the keys they produce.
 * A component's measurement covers its hardware/firmware
 * characteristics (including ObfusMem capability) and its public key.
 */

#ifndef OBFUSMEM_TRUST_IDENTITY_HH
#define OBFUSMEM_TRUST_IDENTITY_HH

#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "util/secret.hh"

namespace obfusmem {
namespace trust {

/** What a component reports about itself when measured. */
struct Measurement
{
    std::string model;
    std::string firmwareVersion;
    bool obfusMemCapable = true;
    crypto::RsaPublicKey devicePublicKey;

    /** Canonical serialization for hashing/signing. */
    std::vector<uint8_t> serialize() const;

    crypto::Sha1Digest digest() const;
};

/** A manufacturer-signed binding of a device key to a measurement. */
struct Certificate
{
    crypto::RsaPublicKey devicePublicKey;
    crypto::Sha1Digest measurementDigest{};
    crypto::BigUint signature;

    /** Verify against the issuing manufacturer's CA key. */
    bool verify(const crypto::RsaPublicKey &ca_key) const;
};

/**
 * A chip manufacturer: generates device keys and certifies them.
 * Processor and memory manufacturers need not know each other.
 */
class Manufacturer
{
  public:
    Manufacturer(std::string name, size_t key_bits, Random &rng);

    const std::string &name() const { return manufacturerName; }
    OBF_PUBLIC const crypto::RsaPublicKey &caPublicKey() const
    {
        return caKey.publicKey();
    }

    /** Sign a measurement, binding device key to capabilities. */
    Certificate certify(const Measurement &m) const;

  private:
    std::string manufacturerName;
    /** Holds the CA private exponent. */
    OBF_SECRET crypto::RsaKeyPair caKey;
};

/**
 * Write-once non-volatile key registers: the primary slot plus a
 * limited number of spares for component upgrades (paper Sec. 3.1,
 * trusted-integrator approach).
 */
class KeyRegisterFile
{
  public:
    explicit KeyRegisterFile(unsigned spare_slots = 2)
        : capacity(1 + spare_slots)
    {}

    /**
     * Burn a peer public key.
     * @return false if all slots are already used (burning is
     *         irreversible).
     */
    bool burn(const crypto::RsaPublicKey &key);

    /** True if a burned slot matches the key. */
    bool contains(const crypto::RsaPublicKey &key) const;

    unsigned slotsUsed() const
    {
        return static_cast<unsigned>(keys.size());
    }

    unsigned slotsFree() const
    {
        return capacity - static_cast<unsigned>(keys.size());
    }

  private:
    unsigned capacity;
    std::vector<crypto::RsaPublicKey> keys;
};

/**
 * A trusted component (processor or memory module) with its burned-in
 * identity, measurement, certificate, and peer-key registers.
 */
class Component
{
  public:
    /**
     * Manufacture a component: generate and burn its device key and
     * obtain the manufacturer's certificate.
     */
    Component(std::string name, const Manufacturer &maker,
              size_t key_bits, bool obfusmem_capable, Random &rng);

    const std::string &name() const { return componentName; }
    OBF_PUBLIC const crypto::RsaPublicKey &publicKey() const
    {
        return deviceKey.publicKey();
    }
    const Measurement &measurement() const { return selfMeasurement; }
    const Certificate &certificate() const { return cert; }
    OBF_PUBLIC const crypto::RsaPublicKey &manufacturerKey() const
    {
        return makerKey;
    }

    KeyRegisterFile &peerKeys() { return registers; }
    const KeyRegisterFile &peerKeys() const { return registers; }

    /** Sign data with the device key (attestation quotes, DH). */
    crypto::BigUint sign(const uint8_t *data, size_t len) const;

  private:
    std::string componentName;
    /** Holds the device private exponent. */
    OBF_SECRET crypto::RsaKeyPair deviceKey;
    Measurement selfMeasurement;
    Certificate cert;
    crypto::RsaPublicKey makerKey;
    KeyRegisterFile registers;
};

} // namespace trust
} // namespace obfusmem

#endif // OBFUSMEM_TRUST_IDENTITY_HH
