/**
 * @file
 * Boot protocol implementation.
 */

#include "trust/boot.hh"

#include "crypto/bytes.hh"
#include "crypto/md5.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace obfusmem {
namespace trust {

namespace {

/** Sign a DH public value with a component's device key. */
crypto::BigUint
signDhValue(const Component &signer, const crypto::BigUint &value)
{
    std::vector<uint8_t> bytes = value.toBytes();
    return signer.sign(bytes.data(), bytes.size());
}

bool
verifyDhValue(const crypto::RsaPublicKey &key,
              const crypto::BigUint &value,
              const crypto::BigUint &signature)
{
    std::vector<uint8_t> bytes = value.toBytes();
    return crypto::RsaKeyPair::verify(key, bytes.data(), bytes.size(),
                                      signature);
}

} // namespace

std::vector<crypto::Aes128::Key>
BootProtocol::deriveChannelKeys(OBF_SECRET const crypto::BigUint &shared,
                                unsigned channels)
{
    std::vector<crypto::Aes128::Key> keys;
    std::vector<uint8_t> base = shared.toBytes();
    for (unsigned c = 0; c < channels; ++c) {
        std::vector<uint8_t> msg = base;
        msg.push_back(static_cast<uint8_t>(c));
        crypto::Md5Digest d = crypto::Md5::digest(msg.data(),
                                                  msg.size());
        crypto::Aes128::Key key;
        std::copy(d.begin(), d.end(), key.begin());
        keys.push_back(key);
        // msg holds a copy of the serialized shared secret.
        crypto::secureZero(msg.data(), msg.size());
        crypto::secureZero(d);
    }
    // base is the serialized DH shared secret itself.
    crypto::secureZero(base.data(), base.size());
    return keys;
}

BootResult
BootProtocol::run(BootApproach approach, Component &processor,
                  Component &memory, unsigned channels, Random &rng,
                  MitmAttacker *attacker)
{
    switch (approach) {
      case BootApproach::Naive:
        return runNaive(processor, memory, channels, rng, attacker);
      case BootApproach::TrustedIntegrator:
        return runTrusted(processor, memory, channels, rng, attacker);
      case BootApproach::UntrustedIntegrator:
        return runAttested(processor, memory, channels, rng, attacker);
    }
    panic("unreachable");
}

BootResult
BootProtocol::runNaive(Component &, Component &, unsigned channels,
                       Random &rng, MitmAttacker *attacker)
{
    const auto &group = crypto::DhGroup::testGroup256();
    crypto::DhEndpoint proc_ep(group, rng);
    crypto::DhEndpoint mem_ep(group, rng);

    BootResult result;
    if (attacker) {
        // The attacker intercepts both public values and substitutes
        // its own. Nothing authenticates the exchange, so both sides
        // complete the handshake happily - with the attacker.
        crypto::BigUint proc_shared =
            proc_ep.computeShared(attacker->procFacing.publicValue());
        crypto::BigUint atk_proc_shared =
            attacker->procFacing.computeShared(proc_ep.publicValue());
        fatal_if(proc_shared != atk_proc_shared,
                 "DH algebra violated");
        result.success = true;
        result.attackerHoldsKeys = true;
        result.channelKeys = deriveChannelKeys(proc_shared, channels);
        return result;
    }

    crypto::BigUint shared =
        proc_ep.computeShared(mem_ep.publicValue());
    crypto::BigUint shared2 =
        mem_ep.computeShared(proc_ep.publicValue());
    fatal_if(shared != shared2, "DH algebra violated");

    result.success = true;
    result.channelKeys = deriveChannelKeys(shared, channels);
    return result;
}

BootResult
BootProtocol::runTrusted(Component &proc, Component &mem,
                         unsigned channels, Random &rng,
                         MitmAttacker *attacker)
{
    BootResult result;

    // The integrator must have burned each side's key into the other.
    if (!proc.peerKeys().contains(mem.publicKey())
        || !mem.peerKeys().contains(proc.publicKey())) {
        result.failureReason = "peer key not present in registers";
        return result;
    }

    const auto &group = crypto::DhGroup::testGroup256();
    crypto::DhEndpoint proc_ep(group, rng);
    crypto::DhEndpoint mem_ep(group, rng);

    // Each side signs its DH contribution with its device key; the
    // peer verifies against the burned public key.
    crypto::BigUint proc_sig = signDhValue(proc, proc_ep.publicValue());
    crypto::BigUint mem_sig = signDhValue(mem, mem_ep.publicValue());

    crypto::BigUint proc_value = proc_ep.publicValue();
    crypto::BigUint mem_value = mem_ep.publicValue();
    if (attacker) {
        // The attacker substitutes DH values but cannot forge the
        // device-key signatures over them.
        proc_value = attacker->memFacing.publicValue();
        mem_value = attacker->procFacing.publicValue();
    }

    if (!verifyDhValue(proc.publicKey(), proc_value, proc_sig)) {
        result.failureReason =
            "processor DH value failed signature verification";
        return result;
    }
    if (!verifyDhValue(mem.publicKey(), mem_value, mem_sig)) {
        result.failureReason =
            "memory DH value failed signature verification";
        return result;
    }

    crypto::BigUint shared = proc_ep.computeShared(mem_value);
    result.success = true;
    result.channelKeys = deriveChannelKeys(shared, channels);
    return result;
}

BootResult
BootProtocol::runAttested(Component &proc, Component &mem,
                          unsigned channels, Random &rng,
                          MitmAttacker *attacker)
{
    BootResult result;

    // Attestation: each side measures itself, presents the signed
    // measurement, and the peer checks (1) the manufacturer's
    // certificate, (2) ObfusMem capability, and (3) that the measured
    // device key matches what the (possibly untrusted) integrator
    // burned into its registers.
    auto attest = [&result](const Component &target,
                            const Component &verifier) {
        const Measurement &m = target.measurement();
        const Certificate &cert = target.certificate();
        if (!cert.verify(target.manufacturerKey())) {
            result.failureReason = target.name()
                                   + ": certificate invalid";
            return false;
        }
        if (!crypto::ctEqual(cert.measurementDigest, m.digest())) {
            result.failureReason = target.name()
                                   + ": measurement mismatch";
            return false;
        }
        if (!m.obfusMemCapable) {
            result.failureReason = target.name()
                                   + ": not ObfusMem-capable";
            return false;
        }
        if (!verifier.peerKeys().contains(m.devicePublicKey)) {
            result.failureReason =
                verifier.name()
                + ": burned key does not match attested key of "
                + target.name();
            return false;
        }
        return true;
    };

    if (!attest(proc, mem) || !attest(mem, proc))
        return result;

    // With identities verified, the signed DH proceeds as in the
    // trusted-integrator approach.
    return runTrusted(proc, mem, channels, rng, attacker);
}

bool
BootProtocol::upgradeComponent(Component &survivor,
                               const Component &replacement)
{
    return survivor.peerKeys().burn(replacement.publicKey());
}

} // namespace trust
} // namespace obfusmem
