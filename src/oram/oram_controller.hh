/**
 * @file
 * Timing models for the ORAM baseline.
 *
 * OramFixedLatency reproduces the paper's deliberately *optimistic*
 * evaluation model: every LLC miss or writeback costs a fixed 2500 ns
 * (extrapolated from Freecursive ORAM [20]) with unlimited bandwidth,
 * while still accounting the path's block reads/writes for the
 * energy/lifetime analysis of Sec. 5.2.
 *
 * OramDetailed drives the real functional Path ORAM and issues every
 * bucket-block transfer through the channel/PCM substrate, for the
 * ablation comparing the paper's fixed-latency assumption against a
 * device-level model.
 */

#ifndef OBFUSMEM_ORAM_ORAM_CONTROLLER_HH
#define OBFUSMEM_ORAM_ORAM_CONTROLLER_HH

#include <deque>

#include "mem/backing_store.hh"
#include "mem/packet.hh"
#include "oram/path_oram.hh"
#include "sim/sim_object.hh"

namespace obfusmem {

/**
 * The paper's fixed-latency ORAM model.
 */
class OramFixedLatency : public SimObject, public MemSink
{
  public:
    struct Params
    {
        /** Fixed access latency (paper Sec. 4: 2500 ns). */
        Tick accessLatency = 2500 * tickPerNs;
        /**
         * Initiation interval of the (pipelined) ORAM controller:
         * the serial stash/PosMap logic limits how often a new path
         * access can start, even under the paper's optimistic
         * unlimited-bandwidth assumption.
         */
        Tick initiationInterval = 300 * tickPerNs;
        /** Path geometry for the side accounting (L=24, Z=4). */
        unsigned levels = 24;
        unsigned bucketSize = 4;
    };

    OramFixedLatency(const std::string &name, EventQueue &eq,
                     statistics::Group *parent, const Params &params,
                     BackingStore &store);

    void access(MemPacket pkt, PacketCallback cb) override;

    /** Path blocks transferred per access: (L+1)*Z each way. */
    uint64_t pathBlocks() const
    {
        return static_cast<uint64_t>(params.levels + 1)
               * params.bucketSize;
    }

    uint64_t blocksRead() const
    {
        return static_cast<uint64_t>(pathBlocksRead.value());
    }

    uint64_t blocksWritten() const
    {
        return static_cast<uint64_t>(pathBlocksWritten.value());
    }

    uint64_t accessCount() const
    {
        return static_cast<uint64_t>(accesses.value());
    }

  private:
    Params params;
    BackingStore &store;
    Tick nextStartAt = 0;

    statistics::Scalar accesses;
    statistics::Scalar pathBlocksRead;
    statistics::Scalar pathBlocksWritten;
};

/**
 * Detailed Path ORAM: serial path reads/writes against the real
 * memory substrate below (a PlainPath over buses and PCM).
 */
class OramDetailed : public SimObject, public MemSink
{
  public:
    struct Params
    {
        PathOram::Params oram{};
        /** Physical base address of the tree in memory. */
        uint64_t treeBase = 0;
        /** On-chip processing per block (decrypt/stash logic). */
        Tick perBlockLatency = 2 * tickPerNs;
    };

    OramDetailed(const std::string &name, EventQueue &eq,
                 statistics::Group *parent, const Params &params,
                 MemSink &memory);

    void access(MemPacket pkt, PacketCallback cb) override;

    PathOram &oram() { return tree; }

    uint64_t blocksTransferred() const
    {
        return static_cast<uint64_t>(physicalTransfers.value());
    }

  private:
    struct QueuedAccess
    {
        MemPacket pkt;
        PacketCallback cb;
    };

    void startNext();
    uint64_t slotAddr(const PathOram::SlotRef &slot) const;

    Params params;
    MemSink &memory;
    PathOram tree;

    std::deque<QueuedAccess> queue;
    bool busy = false;

    statistics::Scalar accesses;
    statistics::Scalar physicalTransfers;
    statistics::Average accessLatencyNs;
    statistics::Average stashOccupancy;
};

} // namespace obfusmem

#endif // OBFUSMEM_ORAM_ORAM_CONTROLLER_HH
