/**
 * @file
 * Timing models for the ORAM-family baselines.
 *
 * OramFixedLatency reproduces the paper's deliberately *optimistic*
 * evaluation model: every LLC miss or writeback costs a fixed 2500 ns
 * (extrapolated from Freecursive ORAM [20]) with unlimited bandwidth,
 * while still accounting the path's block reads/writes for the
 * energy/lifetime analysis of Sec. 5.2.
 *
 * The detailed controllers all share OramPhasedController: a
 * functional structure plans each access as a set of physical block
 * reads followed by a set of physical block writes, and the base
 * class issues every one of those transfers through the channel/PCM
 * substrate below (a PlainPath over buses and PCM), serializing
 * accesses like a real single-ported controller.
 *
 *  - OramDetailed drives the functional Path ORAM: (L+1)*Z reads then
 *    (L+1)*Z writes per access.
 *  - FlatOramController drives Flat ORAM: one read per read access,
 *    one write (to a random free slot) per write access.
 *  - WriteOnlyOramController drives the deterministic write-only
 *    ORAM: one read per read access, exactly two writes (holding +
 *    round-robin refresh) per write access.
 */

#ifndef OBFUSMEM_ORAM_ORAM_CONTROLLER_HH
#define OBFUSMEM_ORAM_ORAM_CONTROLLER_HH

#include <deque>

#include "mem/backing_store.hh"
#include "mem/packet.hh"
#include "oram/flat_oram.hh"
#include "oram/path_oram.hh"
#include "oram/write_only_oram.hh"
#include "sim/sim_object.hh"

namespace obfusmem {

/**
 * The paper's fixed-latency ORAM model.
 */
class OramFixedLatency : public SimObject, public MemSink
{
  public:
    struct Params
    {
        /** Fixed access latency (paper Sec. 4: 2500 ns). */
        Tick accessLatency = 2500 * tickPerNs;
        /**
         * Initiation interval of the (pipelined) ORAM controller:
         * the serial stash/PosMap logic limits how often a new path
         * access can start, even under the paper's optimistic
         * unlimited-bandwidth assumption.
         */
        Tick initiationInterval = 300 * tickPerNs;
        /** Path geometry for the side accounting (L=24, Z=4). */
        unsigned levels = 24;
        unsigned bucketSize = 4;
    };

    OramFixedLatency(const std::string &name, EventQueue &eq,
                     statistics::Group *parent, const Params &params,
                     BackingStore &store);

    void access(MemPacket pkt, PacketCallback cb) override;

    /** Path blocks transferred per access: (L+1)*Z each way. */
    uint64_t pathBlocks() const
    {
        return static_cast<uint64_t>(params.levels + 1)
               * params.bucketSize;
    }

    uint64_t blocksRead() const
    {
        return static_cast<uint64_t>(pathBlocksRead.value());
    }

    uint64_t blocksWritten() const
    {
        return static_cast<uint64_t>(pathBlocksWritten.value());
    }

    uint64_t accessCount() const
    {
        return static_cast<uint64_t>(accesses.value());
    }

  private:
    Params params;
    BackingStore &store;
    Tick nextStartAt = 0;

    statistics::Scalar accesses;
    statistics::Scalar pathBlocksRead;
    statistics::Scalar pathBlocksWritten;
};

/**
 * Shared timing machinery for the detailed (substrate-driving)
 * ORAM-family controllers.
 *
 * A subclass implements planAccess(): perform the functional access
 * and report the physical slots to read and to write. The base class
 * then issues all reads through the memory below, then all writes,
 * then completes the request after perBlockLatency of on-chip
 * processing - the same two-phase shape for every model, so their
 * wire traces differ only in what the functional structures demand.
 */
class OramPhasedController : public SimObject, public MemSink
{
  public:
    void access(MemPacket pkt, PacketCallback cb) override;

    uint64_t blocksTransferred() const
    {
        return static_cast<uint64_t>(physicalTransfers.value());
    }

    uint64_t accessCount() const
    {
        return static_cast<uint64_t>(accesses.value());
    }

  protected:
    /** The physical-transfer plan of one functional access. */
    struct AccessPlan
    {
        /** Data to return to the requester (for reads). */
        DataBlock result{};
        /** Physical slot indices to read, in issue order. */
        std::vector<uint64_t> readSlots;
        /** Physical slot indices to write, in issue order. */
        std::vector<uint64_t> writeSlots;
    };

    OramPhasedController(const std::string &name, EventQueue &eq,
                         statistics::Group *parent, MemSink &memory,
                         uint64_t regionBase, Tick perBlockLatency);

    /**
     * Perform the functional access for @p pkt and return the plan.
     * Called once per request, in request order.
     */
    virtual AccessPlan planAccess(const MemPacket &pkt) = 0;

    /** Physical address of a slot index inside this model's region. */
    uint64_t slotAddr(uint64_t slot) const
    {
        return regionBase + slot * blockBytes;
    }

  private:
    struct QueuedAccess
    {
        MemPacket pkt;
        PacketCallback cb;
    };

    void startNext();

    MemSink &memory;
    uint64_t regionBase;
    Tick perBlockLatency;

    std::deque<QueuedAccess> queue;
    bool busy = false;

    statistics::Scalar accesses;
    statistics::Scalar physicalTransfers;
    statistics::Average accessLatencyNs;
};

/**
 * Detailed Path ORAM: serial path reads/writes against the real
 * memory substrate below.
 */
class OramDetailed : public OramPhasedController
{
  public:
    struct Params
    {
        PathOram::Params oram{};
        /** Physical base address of the tree in memory. */
        uint64_t treeBase = 0;
        /** On-chip processing per block (decrypt/stash logic). */
        Tick perBlockLatency = 2 * tickPerNs;
    };

    OramDetailed(const std::string &name, EventQueue &eq,
                 statistics::Group *parent, const Params &params,
                 MemSink &memory);

    PathOram &oram() { return tree; }
    const PathOram &oram() const { return tree; }

  protected:
    AccessPlan planAccess(const MemPacket &pkt) override;

  private:
    Params params;
    PathOram tree;

    statistics::Average stashOccupancy;
    statistics::Average stashPeakOccupancy;
};

/**
 * Detailed Flat ORAM (write-only): one substrate read per read, one
 * substrate write to a uniformly random free slot per write.
 */
class FlatOramController : public OramPhasedController
{
  public:
    struct Params
    {
        FlatOram::Params oram{};
        /** Physical base address of the slot array in memory. */
        uint64_t arrayBase = 0;
        /** On-chip processing per block (decrypt/PosMap logic). */
        Tick perBlockLatency = 2 * tickPerNs;
    };

    FlatOramController(const std::string &name, EventQueue &eq,
                       statistics::Group *parent,
                       const Params &params, MemSink &memory);

    FlatOram &oram() { return flat; }
    const FlatOram &oram() const { return flat; }

  protected:
    AccessPlan planAccess(const MemPacket &pkt) override;

  private:
    Params params;
    FlatOram flat;

    statistics::Average writeProbes;
};

/**
 * Detailed deterministic write-only ORAM: one substrate read per
 * read; per write, the fixed holding-slot + round-robin-refresh pair
 * whose addresses depend only on the write count.
 */
class WriteOnlyOramController : public OramPhasedController
{
  public:
    struct Params
    {
        WriteOnlyOram::Params oram{};
        /** Physical base address of the main+holding areas. */
        uint64_t areaBase = 0;
        /** On-chip processing per block. */
        Tick perBlockLatency = 2 * tickPerNs;
    };

    WriteOnlyOramController(const std::string &name, EventQueue &eq,
                            statistics::Group *parent,
                            const Params &params, MemSink &memory);

    WriteOnlyOram &oram() { return wo; }
    const WriteOnlyOram &oram() const { return wo; }

  protected:
    AccessPlan planAccess(const MemPacket &pkt) override;

  private:
    Params params;
    WriteOnlyOram wo;

    statistics::Average holdingOccupancy;
};

} // namespace obfusmem

#endif // OBFUSMEM_ORAM_ORAM_CONTROLLER_HH
