/**
 * @file
 * Functional Flat ORAM (Haider & van Dijk, PAPERS.md): a simplified
 * *write-only* ORAM for secure processors.
 *
 * Memory is one flat array of physical slots, sized 1/utilization
 * times the logical capacity. A position map (on-controller, like the
 * PosMap Lookaside Buffer of the paper) records where each logical
 * block currently lives, and an occupancy map records which slots are
 * free. Every write places the new version of the block at a
 * *uniformly random free slot* and frees the old one, so the sequence
 * of written physical locations is independent of the addresses the
 * program writes - the write-only obliviousness argument. Reads go
 * straight to the mapped slot; the threat model (an adversary that
 * observes writes, e.g. NVM residue or a write-snooping bus tap)
 * deliberately leaves the read pattern unprotected, which is what
 * buys the ~1x overhead vs Path ORAM's ~100 blocks per access.
 *
 * Unlike Path ORAM there is no stash and no eviction: a write always
 * succeeds as long as a free slot exists, so the only fail-stop is
 * the probe bound (astronomically unlikely at design utilization).
 */

#ifndef OBFUSMEM_ORAM_FLAT_ORAM_HH
#define OBFUSMEM_ORAM_FLAT_ORAM_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "util/random.hh"

namespace obfusmem {

/**
 * The functional Flat ORAM structure.
 */
class FlatOram
{
  public:
    struct Params
    {
        /** Logical blocks the structure serves. */
        uint64_t capacityBlocks = 1ull << 15;
        /**
         * Fraction of physical slots that may hold live blocks
         * (paper: 50% keeps the expected probe count at 2).
         * Physical slots = capacityBlocks / utilization.
         */
        double utilization = 0.5;
        /**
         * Fail-stop bound on random occupancy probes per write. At
         * 50% utilization the probability of exhausting 128 probes
         * is 2^-128; hitting it means the structure was driven past
         * its design point (live blocks ~ physical slots).
         */
        unsigned maxProbes = 128;
        uint64_t seed = 1;
    };

    explicit FlatOram(const Params &params);

    /** Read a logical block (junk if never written). */
    DataBlock read(uint64_t block_id);

    /** Write a logical block to a fresh uniformly random free slot. */
    void write(uint64_t block_id, const DataBlock &data);

    uint64_t capacityBlocks() const { return params.capacityBlocks; }
    uint64_t physicalBlocks() const { return physSlots; }

    /** Physical slots read by the most recent access. */
    const std::vector<uint64_t> &lastReadSlots() const
    {
        return lastReads;
    }

    /** Physical slots written by the most recent access. */
    const std::vector<uint64_t> &lastWriteSlots() const
    {
        return lastWrites;
    }

    uint64_t accesses() const { return accessCount; }
    uint64_t physicalWrites() const { return physWrites; }
    uint64_t physicalReads() const { return physReads; }
    /** Occupancy probes of the most recent write (>= 1). */
    unsigned lastProbeCount() const { return lastProbes; }
    unsigned maxProbeCount() const { return maxProbesSeen; }

    /** Fraction of physical slots holding live blocks. */
    double occupancy() const
    {
        return static_cast<double>(posMap.size()) / physSlots;
    }

    /** The current slot of a block (for tests). */
    std::optional<uint64_t> slotOf(uint64_t block_id) const;

    /**
     * Structural invariant: the position map, slot owners, and
     * occupancy count agree, and no two blocks share a slot.
     */
    bool checkInvariant() const;

    /** Checkpoint the functional state (incl. the RNG stream). */
    void serialize(std::ostream &os) const;
    /** Restore from serialize() output; false on format mismatch. */
    bool deserialize(std::istream &is);

  private:
    static constexpr uint64_t kFree = ~uint64_t{0};

    Params params;
    uint64_t physSlots;

    std::vector<DataBlock> slotData;
    /** Owning logical block per slot, or kFree. */
    std::vector<uint64_t> slotBlock;
    std::unordered_map<uint64_t, uint64_t> posMap;

    Random rng;
    uint64_t accessCount = 0;
    uint64_t physWrites = 0;
    uint64_t physReads = 0;
    unsigned lastProbes = 0;
    unsigned maxProbesSeen = 0;
    std::vector<uint64_t> lastReads;
    std::vector<uint64_t> lastWrites;
};

} // namespace obfusmem

#endif // OBFUSMEM_ORAM_FLAT_ORAM_HH
