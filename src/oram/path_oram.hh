/**
 * @file
 * Functional Path ORAM (Stefanov et al. [47]), the baseline the paper
 * compares against.
 *
 * A binary tree of buckets (Z blocks each) backs a logical block
 * space; the PosMap assigns every logical block to a leaf, and the
 * invariant is that a block mapped to leaf l lives in some bucket on
 * the root-to-l path or in the stash. Every access reads the whole
 * path into the stash, remaps the block to a fresh random leaf, and
 * greedily evicts stash blocks back onto the old path.
 */

#ifndef OBFUSMEM_ORAM_PATH_ORAM_HH
#define OBFUSMEM_ORAM_PATH_ORAM_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace obfusmem {

/**
 * Deterministic "uninitialized memory" content for the first read of
 * a never-written block, shared by every functional ORAM structure so
 * first-touch junk is identical across backends.
 */
DataBlock junkDataBlock(uint64_t block_id);

/**
 * The functional Path ORAM structure.
 */
class PathOram
{
  public:
    struct Params
    {
        /** Tree levels L: the tree has 2^L leaves, L+1 bucket levels.
         * The paper's 8 GB configuration uses L=24; tests use less. */
        unsigned levels = 12;
        /** Blocks per bucket (Z=4 in the paper). */
        unsigned bucketSize = 4;
        /**
         * Stash capacity before declaring overflow (deadlock). The
         * limit is enforced against the mid-access transient peak -
         * path read-in plus the accessed block, before write-back
         * eviction - because that is the occupancy a hardware stash
         * must physically hold.
         */
        size_t stashLimit = 256;
        /**
         * Overflow policy. A real ORAM controller that exceeds its
         * stash deadlocks (eviction cannot make progress), so by
         * default an overflow fail-stops via OBF_ASSERT rather than
         * silently continuing with an impossible stash. The ablation
         * that *measures* overflow frequency past the design point
         * (and table4's deadlock probe) opts out, in which case
         * overflowing accesses are only counted in stashOverflows().
         */
        bool failOnOverflow = true;
        uint64_t seed = 1;
    };

    /** Identifier of one physical slot in the tree. */
    struct SlotRef
    {
        uint64_t bucket;
        unsigned slot;
    };

    explicit PathOram(const Params &params);

    /** Read a logical block (junk if never written). */
    DataBlock read(uint64_t block_id);

    /** Write a logical block. */
    void write(uint64_t block_id, const DataBlock &data);

    /**
     * Number of logical blocks the tree supports at 50% utilization
     * (the paper's "at least 100% storage overhead").
     */
    uint64_t capacityBlocks() const;

    /** Total physical blocks in the tree (real + dummy slots). */
    uint64_t physicalBlocks() const
    {
        return numBuckets * params.bucketSize;
    }

    /** Blocks on one path (the per-access read/write amplification). */
    uint64_t pathBlocks() const
    {
        return static_cast<uint64_t>(params.levels + 1)
               * params.bucketSize;
    }

    /** Buckets (not blocks) on one path. */
    unsigned pathBuckets() const { return params.levels + 1; }

    /** Physical slots touched by the most recent access, in order. */
    const std::vector<SlotRef> &lastPathSlots() const
    {
        return lastSlots;
    }

    size_t stashSize() const { return stash.size(); }
    /** Largest stash occupancy observed *after* write-back eviction. */
    size_t maxStashSize() const { return maxStash; }
    /**
     * Largest mid-access stash occupancy: path read-in plus the
     * accessed block, sampled before eviction. This transient peak is
     * what sizes a hardware stash; it is always >= maxStashSize().
     */
    size_t maxTransientStashSize() const { return maxTransientStash; }
    /** Mid-access peak of the most recent access (for stats). */
    size_t lastAccessPeakStash() const { return lastPeakStash; }
    uint64_t stashOverflows() const { return overflows; }
    uint64_t accesses() const { return accessCount; }

    /**
     * Check the Path ORAM invariant for every mapped block: it must
     * be in the stash or in a bucket on its assigned path.
     */
    bool checkInvariant() const;

    /** Fraction of tree slots holding real blocks. */
    double occupancy() const;

    /** The current leaf assignment of a block (for tests). */
    std::optional<uint64_t> leafOf(uint64_t block_id) const;

    /**
     * Checkpoint the full functional state (geometry, position map,
     * stash, tree contents, RNG stream) to a binary stream; a
     * restored instance is bit-identical going forward. The
     * ObliviousBackend vtable's serialize half calls this.
     */
    void serialize(std::ostream &os) const;

    /**
     * Restore from serialize() output. Returns false (leaving the
     * structure unspecified) on a malformed stream or a geometry
     * mismatch with this instance's params.
     */
    bool deserialize(std::istream &is);

  private:
    struct Slot
    {
        bool valid = false;
        uint64_t blockId = 0;
        uint64_t leaf = 0;
        DataBlock data{};
    };

    struct StashEntry
    {
        uint64_t leaf;
        DataBlock data;
    };

    /** Index of the bucket at `level` on the path to `leaf`. */
    uint64_t bucketOnPath(uint64_t leaf, unsigned level) const;

    /** Core access: fetch path, remap, evict. */
    DataBlock access(uint64_t block_id, const DataBlock *new_data);

    Params params;
    uint64_t numLeaves;
    uint64_t numBuckets;
    std::vector<Slot> slots;

    std::unordered_map<uint64_t, uint64_t> posMap;
    std::unordered_map<uint64_t, StashEntry> stash;

    Random rng;
    size_t maxStash = 0;
    size_t maxTransientStash = 0;
    size_t lastPeakStash = 0;
    uint64_t overflows = 0;
    uint64_t accessCount = 0;
    std::vector<SlotRef> lastSlots;
};

} // namespace obfusmem

#endif // OBFUSMEM_ORAM_PATH_ORAM_HH
