/**
 * @file
 * Functional deterministic, stash-free write-only ORAM in the style
 * of DetWoORAM (Roche et al., see the Keystone-era survey in
 * PAPERS.md).
 *
 * Physical memory is split into a direct-mapped *main* area M[0..N)
 * and a *holding* area H[0..N), plus a monotone write counter c kept
 * on the controller. Logical write number c goes to holding slot
 * H[c mod N]; the same step then *refreshes* main block r = c mod N
 * by writing its freshest copy (wherever it lives) to M[r]. The
 * physical write sequence is therefore H[c mod N], M[c mod N] - a
 * fixed round-robin that depends only on the count of writes, never
 * on the addresses written, which is the (deterministic, not merely
 * statistical) write-only obliviousness argument. Reads fetch the
 * freshest copy directly and are unprotected, as in Flat ORAM.
 *
 * Safety of holding-slot reuse: H[w] written at step c is reused at
 * step c + N, and in [c, c + N) the round-robin refresh covers every
 * main block id exactly once - including the owner of H[w] - so the
 * freshest copy is always propagated to main (or superseded by a
 * newer holding write) strictly before the slot is clobbered. The
 * implementation asserts this.
 *
 * Costs: write amplification exactly 2x, storage 2x, no stash, no
 * randomness - the structure cannot deadlock or fail probabilistic
 * bounds, unlike Path ORAM's stash or Flat ORAM's probe bound.
 */

#ifndef OBFUSMEM_ORAM_WRITE_ONLY_ORAM_HH
#define OBFUSMEM_ORAM_WRITE_ONLY_ORAM_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"

namespace obfusmem {

/**
 * The functional deterministic write-only ORAM structure.
 */
class WriteOnlyOram
{
  public:
    struct Params
    {
        /** Logical blocks N; physical footprint is 2N (main+holding). */
        uint64_t capacityBlocks = 1ull << 15;
    };

    explicit WriteOnlyOram(const Params &params);

    /** Read a logical block (junk if never written). */
    DataBlock read(uint64_t block_id);

    /** Write a logical block: H[c mod N] then refresh M[c mod N]. */
    void write(uint64_t block_id, const DataBlock &data);

    uint64_t capacityBlocks() const { return params.capacityBlocks; }
    /** Main + holding areas. */
    uint64_t physicalBlocks() const { return 2 * params.capacityBlocks; }

    /**
     * Physical slots read by the most recent access. Slot numbering:
     * main block a is slot a, holding slot w is slot N + w.
     */
    const std::vector<uint64_t> &lastReadSlots() const
    {
        return lastReads;
    }

    /** Physical slots written by the most recent access, in order. */
    const std::vector<uint64_t> &lastWriteSlots() const
    {
        return lastWrites;
    }

    uint64_t accesses() const { return accessCount; }
    uint64_t logicalWrites() const { return writeCounter; }
    uint64_t physicalWrites() const { return physWrites; }
    uint64_t physicalReads() const { return physReads; }

    /** True if the freshest copy of @p block_id is in the holding area. */
    bool inHolding(uint64_t block_id) const;

    /** Blocks whose freshest copy currently sits in the holding area. */
    uint64_t holdingCount() const { return holdPos.size(); }

    /**
     * Structural invariant: every holding slot's owner agrees with the
     * position map, every mapped block's copy is where the map says,
     * and no holding slot is owned by two blocks.
     */
    bool checkInvariant() const;

    /** Checkpoint the functional state. */
    void serialize(std::ostream &os) const;
    /** Restore from serialize() output; false on format mismatch. */
    bool deserialize(std::istream &is);

  private:
    static constexpr uint64_t kFree = ~uint64_t{0};

    /** Freshest copy of a block, resolving holding vs main vs junk. */
    DataBlock freshest(uint64_t block_id) const;

    Params params;

    std::vector<DataBlock> mainArea;
    std::vector<DataBlock> holdArea;
    /** Owning logical block per holding slot, or kFree. */
    std::vector<uint64_t> holdOwner;
    /**
     * Holding slot of a block whose freshest copy is in holding.
     * Blocks absent from this map are served from main (or junk if
     * never written).
     */
    std::unordered_map<uint64_t, uint64_t> holdPos;
    /** Blocks that have ever been logically written. */
    std::vector<uint8_t> written;

    uint64_t writeCounter = 0;
    uint64_t accessCount = 0;
    uint64_t physWrites = 0;
    uint64_t physReads = 0;
    std::vector<uint64_t> lastReads;
    std::vector<uint64_t> lastWrites;
};

} // namespace obfusmem

#endif // OBFUSMEM_ORAM_WRITE_ONLY_ORAM_HH
