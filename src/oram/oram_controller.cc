/**
 * @file
 * ORAM timing model implementations.
 */

#include "oram/oram_controller.hh"

#include <memory>

#include "util/logging.hh"

namespace obfusmem {

// ---------------------------------------------------------------------
// OramFixedLatency
// ---------------------------------------------------------------------

OramFixedLatency::OramFixedLatency(const std::string &name,
                                   EventQueue &eq,
                                   statistics::Group *parent,
                                   const Params &params_,
                                   BackingStore &store_)
    : SimObject(name, eq, parent), params(params_), store(store_)
{
    stats().addScalar("accesses", &accesses, "ORAM accesses");
    stats().addScalar("pathBlocksRead", &pathBlocksRead,
                      "blocks read along tree paths");
    stats().addScalar("pathBlocksWritten", &pathBlocksWritten,
                      "blocks written (evicted) along tree paths");
}

void
OramFixedLatency::access(MemPacket pkt, PacketCallback cb)
{
    ++accesses;
    // Every access reads a full path and evicts it afterwards,
    // regardless of the request type (Sec. 2.3 / 5.2).
    pathBlocksRead += static_cast<double>(pathBlocks());
    pathBlocksWritten += static_cast<double>(pathBlocks());

    // The controller pipeline admits a new path access at most once
    // per initiation interval.
    Tick start = std::max(curTick(), nextStartAt);
    nextStartAt = start + params.initiationInterval;
    Tick complete = start + params.accessLatency;

    eventQueue().schedule(complete,
        [this, pkt = std::move(pkt), cb = std::move(cb)]() mutable {
            if (pkt.isRead()) {
                pkt.data = store.read(pkt.addr);
            } else {
                store.write(pkt.addr, pkt.data);
            }
            cb(std::move(pkt));
        });
}

// ---------------------------------------------------------------------
// OramPhasedController
// ---------------------------------------------------------------------

OramPhasedController::OramPhasedController(const std::string &name,
                                           EventQueue &eq,
                                           statistics::Group *parent,
                                           MemSink &memory_,
                                           uint64_t region_base,
                                           Tick per_block_latency)
    : SimObject(name, eq, parent), memory(memory_),
      regionBase(region_base), perBlockLatency(per_block_latency)
{
    stats().addScalar("accesses", &accesses, "ORAM accesses");
    stats().addScalar("physicalTransfers", &physicalTransfers,
                      "blocks moved to/from memory");
    stats().addAverage("accessLatencyNs", &accessLatencyNs,
                       "end-to-end ORAM access latency");
}

void
OramPhasedController::access(MemPacket pkt, PacketCallback cb)
{
    queue.push_back({std::move(pkt), std::move(cb)});
    if (!busy)
        startNext();
}

void
OramPhasedController::startNext()
{
    if (queue.empty()) {
        busy = false;
        return;
    }
    busy = true;

    QueuedAccess req = std::move(queue.front());
    queue.pop_front();
    ++accesses;
    Tick started = curTick();

    // Functional access first: it yields the data and the physical
    // transfer plan.
    AccessPlan plan = planAccess(req.pkt);

    struct Txn
    {
        MemPacket pkt;
        PacketCallback cb;
        AccessPlan plan;
        size_t pendingReads = 0;
        size_t pendingWrites = 0;
        Tick started;
    };
    auto txn = std::make_shared<Txn>();
    txn->pkt = std::move(req.pkt);
    txn->cb = std::move(req.cb);
    txn->plan = std::move(plan);
    txn->started = started;

    auto finish = [this, txn]() {
        Tick done = curTick() + perBlockLatency;
        accessLatencyNs.sample(ticksToNs(done - txn->started));
        eventQueue().schedule(done, [this, txn]() {
            MemPacket resp = std::move(txn->pkt);
            if (resp.isRead())
                resp.data = txn->plan.result;
            txn->cb(std::move(resp));
            startNext();
        });
    };

    // Phase 2: write every planned block.
    auto startWrites = [this, txn, finish]() {
        if (txn->plan.writeSlots.empty()) {
            finish();
            return;
        }
        txn->pendingWrites = txn->plan.writeSlots.size();
        for (uint64_t slot : txn->plan.writeSlots) {
            ++physicalTransfers;
            MemPacket wr;
            wr.cmd = MemCmd::Write;
            wr.addr = slotAddr(slot);
            wr.issueTick = curTick();
            memory.access(std::move(wr),
                [txn, finish](MemPacket &&) {
                    if (--txn->pendingWrites == 0)
                        finish();
                });
        }
    };

    // Phase 1: read every planned block.
    if (txn->plan.readSlots.empty()) {
        startWrites();
        return;
    }
    txn->pendingReads = txn->plan.readSlots.size();
    for (uint64_t slot : txn->plan.readSlots) {
        ++physicalTransfers;
        MemPacket rd;
        rd.cmd = MemCmd::Read;
        rd.addr = slotAddr(slot);
        rd.issueTick = curTick();
        memory.access(std::move(rd),
            [txn, startWrites](MemPacket &&) {
                if (--txn->pendingReads == 0)
                    startWrites();
            });
    }
}

// ---------------------------------------------------------------------
// OramDetailed
// ---------------------------------------------------------------------

OramDetailed::OramDetailed(const std::string &name, EventQueue &eq,
                           statistics::Group *parent,
                           const Params &params_, MemSink &memory_)
    : OramPhasedController(name, eq, parent, memory_,
                           params_.treeBase,
                           params_.perBlockLatency),
      params(params_), tree(params_.oram)
{
    stats().addAverage("stashOccupancy", &stashOccupancy,
                       "stash size after each access");
    stats().addAverage("stashPeakOccupancy", &stashPeakOccupancy,
                       "mid-access transient stash peak");
}

OramPhasedController::AccessPlan
OramDetailed::planAccess(const MemPacket &pkt)
{
    AccessPlan plan;
    uint64_t block_id = pkt.addr / blockBytes;
    if (pkt.isRead()) {
        plan.result = tree.read(block_id);
    } else {
        tree.write(block_id, pkt.data);
        plan.result = pkt.data;
    }
    stashOccupancy.sample(static_cast<double>(tree.stashSize()));
    stashPeakOccupancy.sample(
        static_cast<double>(tree.lastAccessPeakStash()));

    // Every access reads the whole path and evicts onto it.
    const auto &slots = tree.lastPathSlots();
    plan.readSlots.reserve(slots.size());
    for (const auto &slot : slots) {
        plan.readSlots.push_back(
            slot.bucket * params.oram.bucketSize + slot.slot);
    }
    plan.writeSlots = plan.readSlots;
    return plan;
}

// ---------------------------------------------------------------------
// FlatOramController
// ---------------------------------------------------------------------

FlatOramController::FlatOramController(const std::string &name,
                                       EventQueue &eq,
                                       statistics::Group *parent,
                                       const Params &params_,
                                       MemSink &memory_)
    : OramPhasedController(name, eq, parent, memory_,
                           params_.arrayBase,
                           params_.perBlockLatency),
      params(params_), flat(params_.oram)
{
    stats().addAverage("writeProbes", &writeProbes,
                       "occupancy probes per write");
}

OramPhasedController::AccessPlan
FlatOramController::planAccess(const MemPacket &pkt)
{
    AccessPlan plan;
    // The flat array serves a bounded block space; alias the physical
    // address into it, like a set of ORAM-backed ways would.
    uint64_t block_id =
        (pkt.addr / blockBytes) % flat.capacityBlocks();
    if (pkt.isRead()) {
        plan.result = flat.read(block_id);
        plan.readSlots = flat.lastReadSlots();
    } else {
        flat.write(block_id, pkt.data);
        plan.result = pkt.data;
        plan.writeSlots = flat.lastWriteSlots();
        writeProbes.sample(
            static_cast<double>(flat.lastProbeCount()));
    }
    return plan;
}

// ---------------------------------------------------------------------
// WriteOnlyOramController
// ---------------------------------------------------------------------

WriteOnlyOramController::WriteOnlyOramController(
        const std::string &name, EventQueue &eq,
        statistics::Group *parent, const Params &params_,
        MemSink &memory_)
    : OramPhasedController(name, eq, parent, memory_,
                           params_.areaBase,
                           params_.perBlockLatency),
      params(params_), wo(params_.oram)
{
    stats().addAverage("holdingOccupancy", &holdingOccupancy,
                       "blocks whose freshest copy is in holding");
}

OramPhasedController::AccessPlan
WriteOnlyOramController::planAccess(const MemPacket &pkt)
{
    AccessPlan plan;
    uint64_t block_id =
        (pkt.addr / blockBytes) % wo.capacityBlocks();
    if (pkt.isRead()) {
        plan.result = wo.read(block_id);
        plan.readSlots = wo.lastReadSlots();
    } else {
        wo.write(block_id, pkt.data);
        plan.result = pkt.data;
        plan.writeSlots = wo.lastWriteSlots();
    }
    holdingOccupancy.sample(static_cast<double>(wo.holdingCount()));
    return plan;
}

} // namespace obfusmem
