/**
 * @file
 * ORAM timing model implementations.
 */

#include "oram/oram_controller.hh"

#include <memory>

#include "util/logging.hh"

namespace obfusmem {

// ---------------------------------------------------------------------
// OramFixedLatency
// ---------------------------------------------------------------------

OramFixedLatency::OramFixedLatency(const std::string &name,
                                   EventQueue &eq,
                                   statistics::Group *parent,
                                   const Params &params_,
                                   BackingStore &store_)
    : SimObject(name, eq, parent), params(params_), store(store_)
{
    stats().addScalar("accesses", &accesses, "ORAM accesses");
    stats().addScalar("pathBlocksRead", &pathBlocksRead,
                      "blocks read along tree paths");
    stats().addScalar("pathBlocksWritten", &pathBlocksWritten,
                      "blocks written (evicted) along tree paths");
}

void
OramFixedLatency::access(MemPacket pkt, PacketCallback cb)
{
    ++accesses;
    // Every access reads a full path and evicts it afterwards,
    // regardless of the request type (Sec. 2.3 / 5.2).
    pathBlocksRead += static_cast<double>(pathBlocks());
    pathBlocksWritten += static_cast<double>(pathBlocks());

    // The controller pipeline admits a new path access at most once
    // per initiation interval.
    Tick start = std::max(curTick(), nextStartAt);
    nextStartAt = start + params.initiationInterval;
    Tick complete = start + params.accessLatency;

    eventQueue().schedule(complete,
        [this, pkt = std::move(pkt), cb = std::move(cb)]() mutable {
            if (pkt.isRead()) {
                pkt.data = store.read(pkt.addr);
            } else {
                store.write(pkt.addr, pkt.data);
            }
            cb(std::move(pkt));
        });
}

// ---------------------------------------------------------------------
// OramDetailed
// ---------------------------------------------------------------------

OramDetailed::OramDetailed(const std::string &name, EventQueue &eq,
                           statistics::Group *parent,
                           const Params &params_, MemSink &memory_)
    : SimObject(name, eq, parent), params(params_), memory(memory_),
      tree(params_.oram)
{
    stats().addScalar("accesses", &accesses, "ORAM accesses");
    stats().addScalar("physicalTransfers", &physicalTransfers,
                      "bucket blocks moved to/from memory");
    stats().addAverage("accessLatencyNs", &accessLatencyNs,
                       "end-to-end ORAM access latency");
    stats().addAverage("stashOccupancy", &stashOccupancy,
                       "stash size after each access");
}

uint64_t
OramDetailed::slotAddr(const PathOram::SlotRef &slot) const
{
    return params.treeBase
           + (slot.bucket * params.oram.bucketSize + slot.slot)
                 * blockBytes;
}

void
OramDetailed::access(MemPacket pkt, PacketCallback cb)
{
    queue.push_back({std::move(pkt), std::move(cb)});
    if (!busy)
        startNext();
}

void
OramDetailed::startNext()
{
    if (queue.empty()) {
        busy = false;
        return;
    }
    busy = true;

    QueuedAccess req = std::move(queue.front());
    queue.pop_front();
    ++accesses;
    Tick started = curTick();

    // Functional access first: it yields the data and the path slots.
    uint64_t block_id = req.pkt.addr / blockBytes;
    DataBlock result;
    if (req.pkt.isRead()) {
        result = tree.read(block_id);
    } else {
        tree.write(block_id, req.pkt.data);
        result = req.pkt.data;
    }
    stashOccupancy.sample(static_cast<double>(tree.stashSize()));

    std::vector<PathOram::SlotRef> slots = tree.lastPathSlots();

    // Phase 1: read every path block; phase 2: write them all back.
    struct Txn
    {
        MemPacket pkt;
        PacketCallback cb;
        DataBlock result;
        std::vector<PathOram::SlotRef> slots;
        size_t pendingReads = 0;
        size_t pendingWrites = 0;
        Tick started;
    };
    auto txn = std::make_shared<Txn>();
    txn->pkt = std::move(req.pkt);
    txn->cb = std::move(req.cb);
    txn->result = result;
    txn->slots = std::move(slots);
    txn->pendingReads = txn->slots.size();
    txn->started = started;

    auto finish = [this, txn]() {
        Tick done = curTick() + params.perBlockLatency;
        accessLatencyNs.sample(ticksToNs(done - txn->started));
        eventQueue().schedule(done, [this, txn]() {
            MemPacket resp = std::move(txn->pkt);
            if (resp.isRead())
                resp.data = txn->result;
            txn->cb(std::move(resp));
            startNext();
        });
    };

    auto startWrites = [this, txn, finish]() {
        txn->pendingWrites = txn->slots.size();
        for (const auto &slot : txn->slots) {
            ++physicalTransfers;
            MemPacket wr;
            wr.cmd = MemCmd::Write;
            wr.addr = slotAddr(slot);
            wr.issueTick = curTick();
            memory.access(std::move(wr),
                [txn, finish](MemPacket &&) {
                    if (--txn->pendingWrites == 0)
                        finish();
                });
        }
    };

    for (const auto &slot : txn->slots) {
        ++physicalTransfers;
        MemPacket rd;
        rd.cmd = MemCmd::Read;
        rd.addr = slotAddr(slot);
        rd.issueTick = curTick();
        memory.access(std::move(rd),
            [txn, startWrites](MemPacket &&) {
                if (--txn->pendingReads == 0)
                    startWrites();
            });
    }
}

} // namespace obfusmem
