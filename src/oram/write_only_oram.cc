/**
 * @file
 * WriteOnlyOram implementation.
 */

#include "oram/write_only_oram.hh"

#include <istream>
#include <ostream>

#include "oram/path_oram.hh"
#include "util/assert.hh"
#include "util/logging.hh"
#include "util/serial.hh"

namespace obfusmem {

WriteOnlyOram::WriteOnlyOram(const Params &params_)
    : params(params_)
{
    fatal_if(params.capacityBlocks == 0, "empty write-only ORAM");
    mainArea.resize(params.capacityBlocks);
    holdArea.resize(params.capacityBlocks);
    holdOwner.assign(params.capacityBlocks, kFree);
    written.assign(params.capacityBlocks, 0);
}

DataBlock
WriteOnlyOram::freshest(uint64_t block_id) const
{
    auto it = holdPos.find(block_id);
    if (it != holdPos.end())
        return holdArea[it->second];
    if (written[block_id])
        return mainArea[block_id];
    return junkDataBlock(block_id);
}

DataBlock
WriteOnlyOram::read(uint64_t block_id)
{
    OBF_ASSERT(block_id < params.capacityBlocks,
               "write-only ORAM block ", block_id, " out of range");
    ++accessCount;
    ++physReads;
    lastReads.clear();
    lastWrites.clear();

    auto it = holdPos.find(block_id);
    if (it != holdPos.end()) {
        lastReads.push_back(params.capacityBlocks + it->second);
        return holdArea[it->second];
    }
    // Never-written blocks still cost one main-area read; the
    // returned content is deterministic junk.
    lastReads.push_back(block_id);
    if (written[block_id])
        return mainArea[block_id];
    return junkDataBlock(block_id);
}

void
WriteOnlyOram::write(uint64_t block_id, const DataBlock &data)
{
    const uint64_t n = params.capacityBlocks;
    OBF_ASSERT(block_id < n,
               "write-only ORAM block ", block_id, " out of range");
    ++accessCount;
    lastReads.clear();
    lastWrites.clear();

    const uint64_t w = writeCounter % n;

    // Slot reuse safety: the round-robin refresh must have propagated
    // (or a newer write superseded) whatever lived here - see the
    // header's reuse argument. A firing assert means the refresh
    // schedule is broken and data would be silently lost.
    OBF_ASSERT(holdOwner[w] == kFree,
               "write-only ORAM holding slot ", w,
               " reused before its block ", holdOwner[w],
               " was propagated (write ", writeCounter, ")");

    // Step 1: the logical write, appended to the holding area.
    auto old_it = holdPos.find(block_id);
    if (old_it != holdPos.end())
        holdOwner[old_it->second] = kFree;
    holdArea[w] = data;
    holdOwner[w] = block_id;
    holdPos[block_id] = w;
    written[block_id] = 1;
    ++physWrites;
    lastWrites.push_back(n + w);

    // Step 2: round-robin refresh of main block r = c mod N. The
    // freshest copy of r (possibly the data just written, when
    // block_id == r) is propagated to M[r]; if it came from holding,
    // that slot is released. The physical address depends only on
    // the write counter.
    const uint64_t r = w;
    mainArea[r] = freshest(r);
    auto ref_it = holdPos.find(r);
    if (ref_it != holdPos.end()) {
        holdOwner[ref_it->second] = kFree;
        holdPos.erase(ref_it);
    }
    ++physWrites;
    lastWrites.push_back(r);

    ++writeCounter;
}

bool
WriteOnlyOram::inHolding(uint64_t block_id) const
{
    return holdPos.count(block_id) != 0;
}

bool
WriteOnlyOram::checkInvariant() const
{
    uint64_t owned = 0;
    for (uint64_t s = 0; s < params.capacityBlocks; ++s) {
        if (holdOwner[s] == kFree)
            continue;
        ++owned;
        auto it = holdPos.find(holdOwner[s]);
        if (it == holdPos.end() || it->second != s)
            return false;
        if (!written[holdOwner[s]])
            return false;
    }
    if (owned != holdPos.size())
        return false;
    for (const auto &[block_id, slot] : holdPos) {
        if (slot >= params.capacityBlocks
            || holdOwner[slot] != block_id) {
            return false;
        }
    }
    return true;
}

namespace {
/** "WORAMv1\0" as a little-endian u64 format tag. */
constexpr uint64_t kWoOramMagic = 0x0031764d41524f57ULL;
} // namespace

void
WriteOnlyOram::serialize(std::ostream &os) const
{
    serial::putU64(os, kWoOramMagic);
    serial::putU64(os, params.capacityBlocks);
    serial::putU64(os, writeCounter);

    for (uint64_t a = 0; a < params.capacityBlocks; ++a) {
        serial::putU64(os, written[a]);
        if (written[a])
            serial::putBytes(os, mainArea[a].data(),
                             mainArea[a].size());
    }

    serial::putU64(os, holdPos.size());
    for (const auto &[block_id, slot] : holdPos) {
        serial::putU64(os, block_id);
        serial::putU64(os, slot);
        serial::putBytes(os, holdArea[slot].data(),
                         holdArea[slot].size());
    }

    serial::putU64(os, accessCount);
    serial::putU64(os, physWrites);
    serial::putU64(os, physReads);
}

bool
WriteOnlyOram::deserialize(std::istream &is)
{
    if (!serial::expectU64(is, kWoOramMagic)
        || !serial::expectU64(is, params.capacityBlocks)
        || !serial::getU64(is, writeCounter)) {
        return false;
    }

    written.assign(params.capacityBlocks, 0);
    for (uint64_t a = 0; a < params.capacityBlocks; ++a) {
        uint64_t w = 0;
        if (!serial::getU64(is, w) || w > 1)
            return false;
        written[a] = static_cast<uint8_t>(w);
        if (w && !serial::getBytes(is, mainArea[a].data(),
                                   mainArea[a].size())) {
            return false;
        }
    }

    uint64_t held = 0;
    if (!serial::getU64(is, held))
        return false;
    holdPos.clear();
    holdOwner.assign(params.capacityBlocks, kFree);
    for (uint64_t i = 0; i < held; ++i) {
        uint64_t block_id = 0, slot = 0;
        if (!serial::getU64(is, block_id) || !serial::getU64(is, slot)
            || slot >= params.capacityBlocks
            || !serial::getBytes(is, holdArea[slot].data(),
                                 holdArea[slot].size())) {
            return false;
        }
        holdPos[block_id] = slot;
        holdOwner[slot] = block_id;
    }

    if (!serial::getU64(is, accessCount)
        || !serial::getU64(is, physWrites)
        || !serial::getU64(is, physReads)) {
        return false;
    }
    lastReads.clear();
    lastWrites.clear();
    return true;
}

} // namespace obfusmem
