/**
 * @file
 * FlatOram implementation.
 */

#include "oram/flat_oram.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "oram/path_oram.hh"
#include "util/assert.hh"
#include "util/logging.hh"
#include "util/serial.hh"

namespace obfusmem {

namespace {

/** SplitMix64-style mix for the deterministic unmapped-read probe. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

FlatOram::FlatOram(const Params &params_)
    : params(params_), rng(params_.seed)
{
    fatal_if(params.capacityBlocks == 0, "empty Flat ORAM");
    fatal_if(params.utilization <= 0.0 || params.utilization > 1.0,
             "Flat ORAM utilization must be in (0, 1]");
    physSlots = static_cast<uint64_t>(
        static_cast<double>(params.capacityBlocks)
        / params.utilization);
    physSlots = std::max(physSlots, params.capacityBlocks + 1);
    slotData.resize(physSlots);
    slotBlock.assign(physSlots, kFree);
}

DataBlock
FlatOram::read(uint64_t block_id)
{
    ++accessCount;
    ++physReads;
    lastReads.clear();
    lastWrites.clear();

    auto it = posMap.find(block_id);
    if (it == posMap.end()) {
        // Never written: the controller still performs one read (at a
        // deterministic probe slot) so a read miss is not free, and
        // returns "uninitialized memory" junk.
        lastReads.push_back(mix64(block_id) % physSlots);
        return junkDataBlock(block_id);
    }
    lastReads.push_back(it->second);
    return slotData[it->second];
}

void
FlatOram::write(uint64_t block_id, const DataBlock &data)
{
    ++accessCount;
    lastReads.clear();
    lastWrites.clear();

    // The design point: live blocks stay at or below the logical
    // capacity, so a free slot always exists (utilization < 1).
    OBF_ASSERT(posMap.size() < physSlots,
               "Flat ORAM driven past its physical capacity: ",
               posMap.size(), " live blocks in ", physSlots, " slots");

    // Uniformly random free slot: probe the occupancy map (held
    // on-controller, so probes cost no memory traffic) until a free
    // slot comes up. Expected probes = 1/(1 - occupancy).
    uint64_t target = kFree;
    unsigned probes = 0;
    while (probes < params.maxProbes) {
        ++probes;
        uint64_t candidate = rng.randUnder(physSlots);
        if (slotBlock[candidate] == kFree) {
            target = candidate;
            break;
        }
    }
    OBF_ASSERT(target != kFree,
               "Flat ORAM exhausted ", params.maxProbes,
               " occupancy probes (occupancy ", occupancy(),
               "); the structure is past its design utilization");
    lastProbes = probes;
    maxProbesSeen = std::max(maxProbesSeen, probes);

    // Free the old slot (metadata-only), then place the new version.
    auto it = posMap.find(block_id);
    if (it != posMap.end())
        slotBlock[it->second] = kFree;
    slotBlock[target] = block_id;
    slotData[target] = data;
    posMap[block_id] = target;

    ++physWrites;
    lastWrites.push_back(target);
}

std::optional<uint64_t>
FlatOram::slotOf(uint64_t block_id) const
{
    auto it = posMap.find(block_id);
    if (it == posMap.end())
        return std::nullopt;
    return it->second;
}

bool
FlatOram::checkInvariant() const
{
    uint64_t occupied = 0;
    for (uint64_t s = 0; s < physSlots; ++s) {
        if (slotBlock[s] == kFree)
            continue;
        ++occupied;
        auto it = posMap.find(slotBlock[s]);
        if (it == posMap.end() || it->second != s)
            return false;
    }
    if (occupied != posMap.size())
        return false;
    for (const auto &[block_id, slot] : posMap) {
        if (slot >= physSlots || slotBlock[slot] != block_id)
            return false;
    }
    return true;
}

namespace {
/** "FORAMv1\0" as a little-endian u64 format tag. */
constexpr uint64_t kFlatOramMagic = 0x0031764d41524f46ULL;
} // namespace

void
FlatOram::serialize(std::ostream &os) const
{
    serial::putU64(os, kFlatOramMagic);
    serial::putU64(os, params.capacityBlocks);
    serial::putU64(os, physSlots);

    serial::putU64(os, posMap.size());
    for (const auto &[block_id, slot] : posMap) {
        serial::putU64(os, block_id);
        serial::putU64(os, slot);
        serial::putBytes(os, slotData[slot].data(),
                         slotData[slot].size());
    }

    for (uint64_t word : rng.rawState())
        serial::putU64(os, word);
    serial::putU64(os, accessCount);
    serial::putU64(os, physWrites);
    serial::putU64(os, physReads);
}

bool
FlatOram::deserialize(std::istream &is)
{
    if (!serial::expectU64(is, kFlatOramMagic)
        || !serial::expectU64(is, params.capacityBlocks)
        || !serial::expectU64(is, physSlots)) {
        return false;
    }

    uint64_t live = 0;
    if (!serial::getU64(is, live))
        return false;
    posMap.clear();
    slotBlock.assign(physSlots, kFree);
    for (uint64_t i = 0; i < live; ++i) {
        uint64_t block_id = 0, slot = 0;
        DataBlock data{};
        if (!serial::getU64(is, block_id) || !serial::getU64(is, slot)
            || slot >= physSlots
            || !serial::getBytes(is, data.data(), data.size())) {
            return false;
        }
        posMap[block_id] = slot;
        slotBlock[slot] = block_id;
        slotData[slot] = data;
    }

    std::array<uint64_t, 4> state{};
    for (uint64_t &word : state) {
        if (!serial::getU64(is, word))
            return false;
    }
    rng.setRawState(state);
    if (!serial::getU64(is, accessCount)
        || !serial::getU64(is, physWrites)
        || !serial::getU64(is, physReads)) {
        return false;
    }
    lastReads.clear();
    lastWrites.clear();
    lastProbes = 0;
    return true;
}

} // namespace obfusmem
