/**
 * @file
 * PathOram implementation.
 */

#include "oram/path_oram.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/assert.hh"
#include "util/logging.hh"
#include "util/serial.hh"

namespace obfusmem {

DataBlock
junkDataBlock(uint64_t block_id)
{
    DataBlock result{};
    uint64_t x = block_id ^ 0x0bf5ceedULL;
    for (auto &byte : result) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        byte = static_cast<uint8_t>(x);
    }
    return result;
}

PathOram::PathOram(const Params &params_)
    : params(params_), rng(params_.seed)
{
    fatal_if(params.levels == 0 || params.levels > 30,
             "unsupported tree height");
    numLeaves = uint64_t{1} << params.levels;
    numBuckets = (uint64_t{2} << params.levels) - 1;
    slots.resize(numBuckets * params.bucketSize);
}

uint64_t
PathOram::capacityBlocks() const
{
    return physicalBlocks() / 2;
}

uint64_t
PathOram::bucketOnPath(uint64_t leaf, unsigned level) const
{
    // Heap numbering: root = 0; the leaf bucket for `leaf` is at
    // index (2^L - 1) + leaf. Level 0 = root.
    uint64_t node = (numLeaves - 1) + leaf;
    for (unsigned up = params.levels; up > level; --up)
        node = (node - 1) / 2;
    return node;
}

DataBlock
PathOram::read(uint64_t block_id)
{
    return access(block_id, nullptr);
}

void
PathOram::write(uint64_t block_id, const DataBlock &data)
{
    access(block_id, &data);
}

DataBlock
PathOram::access(uint64_t block_id, const DataBlock *new_data)
{
    ++accessCount;
    lastSlots.clear();

    // Position lookup; unmapped blocks get a fresh random leaf.
    auto pos_it = posMap.find(block_id);
    uint64_t leaf;
    if (pos_it == posMap.end()) {
        leaf = rng.randUnder(numLeaves);
    } else {
        leaf = pos_it->second;
    }

    // Read the whole path into the stash.
    for (unsigned level = 0; level <= params.levels; ++level) {
        uint64_t bucket = bucketOnPath(leaf, level);
        for (unsigned s = 0; s < params.bucketSize; ++s) {
            lastSlots.push_back({bucket, s});
            Slot &slot = slots[bucket * params.bucketSize + s];
            if (slot.valid) {
                stash[slot.blockId] = {slot.leaf, slot.data};
                slot.valid = false;
            }
        }
    }

    // Remap to a fresh random leaf (the heart of the obfuscation).
    uint64_t new_leaf = rng.randUnder(numLeaves);
    posMap[block_id] = new_leaf;

    // Serve the request out of the stash.
    auto stash_it = stash.find(block_id);
    DataBlock result{};
    if (stash_it == stash.end()) {
        // First touch: deterministic junk, like uninitialized memory.
        result = junkDataBlock(block_id);
        stash[block_id] = {new_leaf, result};
    } else {
        stash_it->second.leaf = new_leaf;
        result = stash_it->second.data;
    }
    if (new_data)
        stash[block_id].data = *new_data;

    // The stash is now at its mid-access peak: the whole path plus
    // the accessed block, before eviction drains it. This is the
    // occupancy a hardware stash must hold, so the capacity limit is
    // enforced here - not after eviction, which systematically
    // under-reports pressure.
    lastPeakStash = stash.size();
    maxTransientStash = std::max(maxTransientStash, lastPeakStash);
    if (lastPeakStash > params.stashLimit) {
        OBF_ASSERT(!params.failOnOverflow,
                   "Path ORAM stash overflow: ", lastPeakStash,
                   " blocks > stashLimit ", params.stashLimit,
                   " (access ", accessCount, ", block ", block_id,
                   "); a hardware controller deadlocks here. Set "
                   "Params::failOnOverflow=false only to measure "
                   "overflow frequency past the design point.");
        ++overflows;
    }

    // Write back: from the leaf up, greedily place stash blocks whose
    // assigned path intersects this bucket.
    for (int level = static_cast<int>(params.levels); level >= 0;
         --level) {
        uint64_t bucket = bucketOnPath(leaf, level);
        unsigned placed = 0;
        auto it = stash.begin();
        while (it != stash.end() && placed < params.bucketSize) {
            if (bucketOnPath(it->second.leaf, level) == bucket) {
                Slot &slot =
                    slots[bucket * params.bucketSize + placed];
                slot.valid = true;
                slot.blockId = it->first;
                slot.leaf = it->second.leaf;
                slot.data = it->second.data;
                it = stash.erase(it);
                ++placed;
            } else {
                ++it;
            }
        }
    }

    maxStash = std::max(maxStash, stash.size());

    return result;
}

bool
PathOram::checkInvariant() const
{
    for (const auto &[block_id, leaf] : posMap) {
        if (stash.count(block_id))
            continue;
        bool found = false;
        for (unsigned level = 0; level <= params.levels && !found;
             ++level) {
            uint64_t bucket = bucketOnPath(leaf, level);
            for (unsigned s = 0; s < params.bucketSize; ++s) {
                const Slot &slot =
                    slots[bucket * params.bucketSize + s];
                if (slot.valid && slot.blockId == block_id) {
                    if (slot.leaf != leaf)
                        return false;
                    found = true;
                    break;
                }
            }
        }
        if (!found)
            return false;
    }
    return true;
}

double
PathOram::occupancy() const
{
    uint64_t valid = 0;
    for (const auto &slot : slots) {
        if (slot.valid)
            ++valid;
    }
    return static_cast<double>(valid) / slots.size();
}

std::optional<uint64_t>
PathOram::leafOf(uint64_t block_id) const
{
    auto it = posMap.find(block_id);
    if (it == posMap.end())
        return std::nullopt;
    return it->second;
}

namespace {
/** "PORAMv1\0" as a little-endian u64 format tag. */
constexpr uint64_t kPathOramMagic = 0x0031764d41524f50ULL;
} // namespace

void
PathOram::serialize(std::ostream &os) const
{
    serial::putU64(os, kPathOramMagic);
    serial::putU64(os, params.levels);
    serial::putU64(os, params.bucketSize);

    serial::putU64(os, posMap.size());
    for (const auto &[block_id, leaf] : posMap) {
        serial::putU64(os, block_id);
        serial::putU64(os, leaf);
    }

    serial::putU64(os, stash.size());
    for (const auto &[block_id, entry] : stash) {
        serial::putU64(os, block_id);
        serial::putU64(os, entry.leaf);
        serial::putBytes(os, entry.data.data(), entry.data.size());
    }

    uint64_t valid = 0;
    for (const auto &slot : slots)
        valid += slot.valid ? 1 : 0;
    serial::putU64(os, valid);
    for (uint64_t i = 0; i < slots.size(); ++i) {
        const Slot &slot = slots[i];
        if (!slot.valid)
            continue;
        serial::putU64(os, i);
        serial::putU64(os, slot.blockId);
        serial::putU64(os, slot.leaf);
        serial::putBytes(os, slot.data.data(), slot.data.size());
    }

    for (uint64_t word : rng.rawState())
        serial::putU64(os, word);
    serial::putU64(os, maxStash);
    serial::putU64(os, maxTransientStash);
    serial::putU64(os, overflows);
    serial::putU64(os, accessCount);
}

bool
PathOram::deserialize(std::istream &is)
{
    if (!serial::expectU64(is, kPathOramMagic)
        || !serial::expectU64(is, params.levels)
        || !serial::expectU64(is, params.bucketSize)) {
        return false;
    }

    uint64_t pos_entries = 0;
    if (!serial::getU64(is, pos_entries))
        return false;
    posMap.clear();
    for (uint64_t i = 0; i < pos_entries; ++i) {
        uint64_t block_id = 0, leaf = 0;
        if (!serial::getU64(is, block_id) || !serial::getU64(is, leaf))
            return false;
        posMap[block_id] = leaf;
    }

    uint64_t stash_entries = 0;
    if (!serial::getU64(is, stash_entries))
        return false;
    stash.clear();
    for (uint64_t i = 0; i < stash_entries; ++i) {
        uint64_t block_id = 0;
        StashEntry entry{};
        if (!serial::getU64(is, block_id)
            || !serial::getU64(is, entry.leaf)
            || !serial::getBytes(is, entry.data.data(),
                                 entry.data.size())) {
            return false;
        }
        stash[block_id] = entry;
    }

    uint64_t valid = 0;
    if (!serial::getU64(is, valid))
        return false;
    slots.assign(slots.size(), Slot{});
    for (uint64_t i = 0; i < valid; ++i) {
        uint64_t index = 0;
        Slot slot{};
        if (!serial::getU64(is, index) || index >= slots.size()
            || !serial::getU64(is, slot.blockId)
            || !serial::getU64(is, slot.leaf)
            || !serial::getBytes(is, slot.data.data(),
                                 slot.data.size())) {
            return false;
        }
        slot.valid = true;
        slots[index] = slot;
    }

    std::array<uint64_t, 4> state{};
    for (uint64_t &word : state) {
        if (!serial::getU64(is, word))
            return false;
    }
    rng.setRawState(state);

    uint64_t max_stash = 0, max_transient = 0;
    if (!serial::getU64(is, max_stash)
        || !serial::getU64(is, max_transient)
        || !serial::getU64(is, overflows)
        || !serial::getU64(is, accessCount)) {
        return false;
    }
    maxStash = max_stash;
    maxTransientStash = max_transient;
    lastPeakStash = 0;
    lastSlots.clear();
    return true;
}

} // namespace obfusmem
