/**
 * @file
 * PathOram implementation.
 */

#include "oram/path_oram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace obfusmem {

PathOram::PathOram(const Params &params_)
    : params(params_), rng(params_.seed)
{
    fatal_if(params.levels == 0 || params.levels > 30,
             "unsupported tree height");
    numLeaves = uint64_t{1} << params.levels;
    numBuckets = (uint64_t{2} << params.levels) - 1;
    slots.resize(numBuckets * params.bucketSize);
}

uint64_t
PathOram::capacityBlocks() const
{
    return physicalBlocks() / 2;
}

uint64_t
PathOram::bucketOnPath(uint64_t leaf, unsigned level) const
{
    // Heap numbering: root = 0; the leaf bucket for `leaf` is at
    // index (2^L - 1) + leaf. Level 0 = root.
    uint64_t node = (numLeaves - 1) + leaf;
    for (unsigned up = params.levels; up > level; --up)
        node = (node - 1) / 2;
    return node;
}

DataBlock
PathOram::read(uint64_t block_id)
{
    return access(block_id, nullptr);
}

void
PathOram::write(uint64_t block_id, const DataBlock &data)
{
    access(block_id, &data);
}

DataBlock
PathOram::access(uint64_t block_id, const DataBlock *new_data)
{
    ++accessCount;
    lastSlots.clear();

    // Position lookup; unmapped blocks get a fresh random leaf.
    auto pos_it = posMap.find(block_id);
    uint64_t leaf;
    if (pos_it == posMap.end()) {
        leaf = rng.randUnder(numLeaves);
    } else {
        leaf = pos_it->second;
    }

    // Read the whole path into the stash.
    for (unsigned level = 0; level <= params.levels; ++level) {
        uint64_t bucket = bucketOnPath(leaf, level);
        for (unsigned s = 0; s < params.bucketSize; ++s) {
            lastSlots.push_back({bucket, s});
            Slot &slot = slots[bucket * params.bucketSize + s];
            if (slot.valid) {
                stash[slot.blockId] = {slot.leaf, slot.data};
                slot.valid = false;
            }
        }
    }

    // Remap to a fresh random leaf (the heart of the obfuscation).
    uint64_t new_leaf = rng.randUnder(numLeaves);
    posMap[block_id] = new_leaf;

    // Serve the request out of the stash.
    auto stash_it = stash.find(block_id);
    DataBlock result{};
    if (stash_it == stash.end()) {
        // First touch: deterministic junk, like uninitialized memory.
        uint64_t x = block_id ^ 0x0bf5ceedULL;
        for (auto &byte : result) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            byte = static_cast<uint8_t>(x);
        }
        stash[block_id] = {new_leaf, result};
    } else {
        stash_it->second.leaf = new_leaf;
        result = stash_it->second.data;
    }
    if (new_data)
        stash[block_id].data = *new_data;

    // Write back: from the leaf up, greedily place stash blocks whose
    // assigned path intersects this bucket.
    for (int level = static_cast<int>(params.levels); level >= 0;
         --level) {
        uint64_t bucket = bucketOnPath(leaf, level);
        unsigned placed = 0;
        auto it = stash.begin();
        while (it != stash.end() && placed < params.bucketSize) {
            if (bucketOnPath(it->second.leaf, level) == bucket) {
                Slot &slot =
                    slots[bucket * params.bucketSize + placed];
                slot.valid = true;
                slot.blockId = it->first;
                slot.leaf = it->second.leaf;
                slot.data = it->second.data;
                it = stash.erase(it);
                ++placed;
            } else {
                ++it;
            }
        }
    }

    maxStash = std::max(maxStash, stash.size());
    if (stash.size() > params.stashLimit)
        ++overflows;

    return result;
}

bool
PathOram::checkInvariant() const
{
    for (const auto &[block_id, leaf] : posMap) {
        if (stash.count(block_id))
            continue;
        bool found = false;
        for (unsigned level = 0; level <= params.levels && !found;
             ++level) {
            uint64_t bucket = bucketOnPath(leaf, level);
            for (unsigned s = 0; s < params.bucketSize; ++s) {
                const Slot &slot =
                    slots[bucket * params.bucketSize + s];
                if (slot.valid && slot.blockId == block_id) {
                    if (slot.leaf != leaf)
                        return false;
                    found = true;
                    break;
                }
            }
        }
        if (!found)
            return false;
    }
    return true;
}

double
PathOram::occupancy() const
{
    uint64_t valid = 0;
    for (const auto &slot : slots) {
        if (slot.valid)
            ++valid;
    }
    return static_cast<double>(valid) / slots.size();
}

std::optional<uint64_t>
PathOram::leafOf(uint64_t block_id) const
{
    auto it = posMap.find(block_id);
    if (it == posMap.end())
        return std::nullopt;
    return it->second;
}

} // namespace obfusmem
