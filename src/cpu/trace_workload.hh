/**
 * @file
 * Trace replay: run the simulator on a recorded memory-operation
 * trace instead of a synthetic generator. The text format is one
 * operation per line:
 *
 *     <gap-instructions> <R|W> <hex-address> [D] [S]
 *
 * where D marks a dependent (pointer-chase) load and S marks a
 * streaming (expected-cold) access. '#' starts a comment.
 */

#ifndef OBFUSMEM_CPU_TRACE_WORKLOAD_HH
#define OBFUSMEM_CPU_TRACE_WORKLOAD_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/workload.hh"

namespace obfusmem {

/** Parse a trace from a stream; fatal on malformed lines. */
std::vector<MemOp> parseTrace(std::istream &in);

/** Load a trace file from disk. */
std::vector<MemOp> loadTraceFile(const std::string &path);

/** Serialize operations in the trace text format. */
void writeTrace(std::ostream &out, const std::vector<MemOp> &ops);

/**
 * Build a WorkloadGenerator-compatible replayer: the returned
 * generator yields the trace's operations in order, looping when it
 * reaches the end.
 *
 * @param ops The recorded operations (must be non-empty).
 * @param base_cpi Non-memory CPI to charge per instruction.
 */
WorkloadGenerator makeTraceReplayer(std::vector<MemOp> ops,
                                    double base_cpi = 1.0);

} // namespace obfusmem

#endif // OBFUSMEM_CPU_TRACE_WORKLOAD_HH
