/**
 * @file
 * Benchmark profiles and the address-stream generator.
 *
 * The baseCpi values below were calibrated against this repository's
 * own unprotected-system simulation so that measured IPC/MPKI/gap land
 * near the paper's Table 1 (see bench/table1_characteristics).
 */

#include "cpu/workload.hh"

#include <algorithm>

#include "mem/packet.hh"
#include "util/logging.hh"

namespace obfusmem {

namespace {

constexpr uint64_t KB = 1024;
constexpr uint64_t MB = 1024 * KB;

std::vector<BenchmarkProfile>
makeProfiles()
{
    // name, refs/KI, streamFrac, hotBytes, depFrac, storeFrac,
    // baseCpi, streamBytes, paper{IPC, MPKI, gap}.
    std::vector<BenchmarkProfile> v;
    auto add = [&v](const std::string &name, double mpki, double dep,
                    double store, double base_cpi, double ipc,
                    double gap, uint64_t hot = 96 * KB,
                    double refs_ki = 350.0,
                    uint64_t stream = 256 * MB) {
        BenchmarkProfile p;
        p.name = name;
        p.memRefsPerKI = refs_ki;
        p.streamFraction = mpki / refs_ki;
        p.hotBytes = hot;
        p.dependentFraction = dep;
        p.storeFraction = store;
        p.baseCpi = base_cpi;
        p.streamBytes = stream;
        p.paperIpc = ipc;
        p.paperMpki = mpki;
        p.paperGapNs = gap;
        v.push_back(p);
    };

    add("bwaves", 18.23, 0.00, 0.35, 0.716, 0.59, 44.32);
    add("mcf", 24.82, 0.85, 0.50, 2.765, 0.17, 74.95);
    add("lbm", 6.94, 0.05, 0.85, 2.820, 0.35, 67.97);
    add("zeus", 4.81, 0.10, 0.80, 1.778, 0.53, 63.56);
    add("milc", 15.56, 0.20, 0.60, 1.584, 0.42, 51.54);
    add("xalan", 0.97, 0.30, 0.30, 1.882, 0.52, 945.62);
    add("omnetpp", 0.10, 0.20, 0.30, 0.211, 4.30, 1104.74);
    add("soplex", 23.11, 0.50, 0.30, 1.476, 0.25, 69.06);
    add("libquantum", 5.56, 0.00, 0.75, 3.022, 0.33, 146.82);
    add("sjeng", 0.36, 0.30, 0.30, 1.028, 0.95, 1382.13);
    add("leslie3d", 9.85, 0.10, 0.60, 1.552, 0.49, 58.91);
    add("astar", 0.13, 0.50, 0.30, 1.423, 0.70, 5660.18);
    add("hmmer", 0.02, 0.00, 0.30, 0.716, 1.39, 2687.60);
    add("cactus", 1.91, 0.10, 0.70, 0.824, 1.05, 128.09);
    add("gems", 11.66, 0.20, 0.50, 1.877, 0.40, 66.25);
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
BenchmarkProfile::spec2006()
{
    static const std::vector<BenchmarkProfile> profiles = makeProfiles();
    return profiles;
}

const BenchmarkProfile &
BenchmarkProfile::byName(const std::string &name)
{
    for (const auto &p : spec2006()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown benchmark profile: ", name);
}

WorkloadGenerator::WorkloadGenerator(const BenchmarkProfile &profile,
                                     uint64_t region_base,
                                     uint64_t region_bytes,
                                     uint64_t seed)
    : prof(profile), rng(seed)
{
    fatal_if(prof.hotBytes + prof.streamBytes > region_bytes,
             "workload footprint exceeds the core's region");
    hotBase = region_base;
    streamBase = region_base + prof.hotBytes;
    streamLimit = prof.streamBytes;
    // The memory operation itself is one instruction; the gap covers
    // the rest, so that refs-per-KI comes out as configured.
    meanGap = std::max(1.0, 1000.0 / prof.memRefsPerKI - 1.0);
    // Start each core at a random offset so cores do not march in
    // lock step through their stream regions.
    streamPos = rng.randUnder(streamLimit / blockBytes);
}

WorkloadGenerator::WorkloadGenerator(std::vector<MemOp> ops,
                                     double base_cpi)
    : replayOps(std::move(ops))
{
    fatal_if(replayOps.empty(), "empty trace");
    prof.name = "trace-replay";
    prof.baseCpi = base_cpi;
    prof.memRefsPerKI = 0;
    prof.streamFraction = 0;
    prof.hotBytes = 0;
    prof.dependentFraction = 0;
    prof.storeFraction = 0;
    prof.streamBytes = 1;
    prof.paperIpc = prof.paperMpki = prof.paperGapNs = 0;
}

WorkloadGenerator
WorkloadGenerator::fromTrace(std::vector<MemOp> ops, double base_cpi)
{
    return WorkloadGenerator(std::move(ops), base_cpi);
}

MemOp
WorkloadGenerator::next()
{
    if (!replayOps.empty()) {
        MemOp op = replayOps[replayPos];
        replayPos = (replayPos + 1) % replayOps.size();
        return op;
    }

    MemOp op;
    op.gapInstrs =
        static_cast<uint32_t>(rng.geometric(meanGap));
    op.isStore = rng.chance(prof.storeFraction);
    op.dependent = false;
    op.stream = false;

    if (rng.chance(prof.streamFraction)) {
        op.stream = true;
        op.dependent = rng.chance(prof.dependentFraction);
        if (op.dependent) {
            // Pointer chase: a serial chain of jumps to cold blocks
            // inside a window sliding with the stream (page-level
            // locality, like mcf's list walks).
            uint64_t window_blocks =
                std::min(prof.chaseWindowBytes / blockBytes,
                         streamLimit / blockBytes);
            uint64_t block = (streamPos
                              + rng.randUnder(window_blocks))
                             % (streamLimit / blockBytes);
            op.addr = streamBase + block * blockBytes;
        } else {
            // Cold streaming access: walks the region a block at a
            // time, touching a new LLC block each time.
            op.addr = streamBase + streamPos * blockBytes;
            streamPos = (streamPos + 1) % (streamLimit / blockBytes);
        }
    } else {
        // Hot-set access: cache resident after warm-up.
        uint64_t block = rng.randUnder(prof.hotBytes / blockBytes);
        op.addr = hotBase + block * blockBytes;
    }
    return op;
}

} // namespace obfusmem
