/**
 * @file
 * CacheHierarchy implementation.
 */

#include "cpu/cache_hierarchy.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace obfusmem {

// ---------------------------------------------------------------------
// FuncCache
// ---------------------------------------------------------------------

FuncCache::FuncCache(const CacheParams &params)
    : assoc(params.assoc)
{
    uint64_t num_lines = params.sizeBytes / blockBytes;
    fatal_if(num_lines % assoc != 0, "cache size/assoc mismatch");
    sets = num_lines / assoc;
    fatal_if(!isPowerOf2(sets), "number of sets must be a power of 2");
    lines.resize(num_lines);
}

uint64_t
FuncCache::setIndex(uint64_t addr) const
{
    return (addr / blockBytes) & (sets - 1);
}

uint64_t
FuncCache::tagOf(uint64_t addr) const
{
    return (addr / blockBytes) / sets;
}

uint64_t
FuncCache::addrOf(uint64_t set, uint64_t tag) const
{
    return (tag * sets + set) * blockBytes;
}

FuncCache::Line *
FuncCache::find(uint64_t addr)
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < assoc; ++w) {
        Line &line = lines[set * assoc + w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruCounter;
            return &line;
        }
    }
    return nullptr;
}

const FuncCache::Line *
FuncCache::peek(uint64_t addr) const
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < assoc; ++w) {
        const Line &line = lines[set * assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

FuncCache::Victim
FuncCache::insert(uint64_t addr, const DataBlock &data, bool dirty,
                  bool exclusive)
{
    if (Line *hit = find(addr)) {
        hit->data = data;
        hit->dirty = hit->dirty || dirty;
        hit->exclusive = hit->exclusive || exclusive;
        return {};
    }

    uint64_t set = setIndex(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < assoc; ++w) {
        Line &line = lines[set * assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    Victim out;
    if (victim->valid) {
        out.valid = true;
        out.addr = addrOf(set, victim->tag);
        out.dirty = victim->dirty;
        out.data = victim->data;
    }

    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->exclusive = exclusive;
    victim->data = data;
    victim->lruStamp = ++lruCounter;
    return out;
}

FuncCache::Victim
FuncCache::invalidate(uint64_t addr)
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < assoc; ++w) {
        Line &line = lines[set * assoc + w];
        if (line.valid && line.tag == tag) {
            Victim out{true, addr, line.dirty, line.data};
            line.valid = false;
            line.dirty = false;
            line.exclusive = false;
            return out;
        }
    }
    return {};
}

void
FuncCache::forEachLine(
    const std::function<void(uint64_t addr, Line &line)> &fn)
{
    for (uint64_t set = 0; set < sets; ++set) {
        for (unsigned w = 0; w < assoc; ++w) {
            Line &line = lines[set * assoc + w];
            if (line.valid)
                fn(addrOf(set, line.tag), line);
        }
    }
}

// ---------------------------------------------------------------------
// CacheHierarchy
// ---------------------------------------------------------------------

CacheHierarchy::CacheHierarchy(const std::string &name, EventQueue &eq,
                               statistics::Group *parent,
                               const HierarchyParams &params_,
                               MemSink &memory_)
    : SimObject(name, eq, parent), params(params_), memory(memory_),
      l3(params_.l3)
{
    for (unsigned c = 0; c < params.cores; ++c) {
        l1s.emplace_back(params.l1);
        l2s.emplace_back(params.l2);
    }

    stats().addScalar("l1Hits", &l1Hits, "L1 hits (all cores)");
    stats().addScalar("l2Hits", &l2Hits, "L2 hits (all cores)");
    stats().addScalar("l3Hits", &l3Hits, "shared L3 hits");
    stats().addScalar("llcMisses", &llcMisses, "demand LLC misses");
    stats().addScalar("writebacks", &writebacks,
                      "dirty blocks written back to memory");
    stats().addScalar("invalidations", &invalidations,
                      "coherence invalidations");
    stats().addScalar("downgrades", &downgrades,
                      "coherence downgrades (M/E -> S)");
    stats().addScalar("mshrMerges", &mshrMerges,
                      "misses merged into an in-flight MSHR");
    stats().addScalar("mshrStalls", &mshrStalls,
                      "accesses stalled on a full MSHR file");
    stats().addAverage("missLatencyNs", &missLatencyNs,
                       "LLC miss latency (issue to fill)");
}

void
CacheHierarchy::load(int core, uint64_t addr, Tick when, DoneCb cb)
{
    accessInternal(core, blockAlign(addr), false, nullptr, when,
                   std::move(cb));
}

void
CacheHierarchy::store(int core, uint64_t addr, const DataBlock &data,
                      Tick when, DoneCb cb)
{
    accessInternal(core, blockAlign(addr), true, &data, when,
                   std::move(cb));
}

void
CacheHierarchy::preload(int core, uint64_t addr, const DataBlock &data)
{
    addr = blockAlign(addr);
    l3.insert(addr, data, false, false);
    DirEntry &entry = directory[addr];
    entry.sharers |= 1u << core;
    entry.exclusive = entry.sharers == (1u << core);
    l2s[core].insert(addr, data, false, entry.exclusive);
    l1s[core].insert(addr, data, false, entry.exclusive);
}

void
CacheHierarchy::preloadShared(uint64_t addr, const DataBlock &data,
                              bool dirty)
{
    l3.insert(blockAlign(addr), data, dirty, false);
}

Cycles
CacheHierarchy::enforceCoherence(int core, uint64_t addr,
                                 bool exclusive)
{
    auto it = directory.find(addr);
    if (it == directory.end())
        return 0;

    DirEntry &entry = it->second;
    uint32_t me = 1u << core;
    bool acted = false;

    if (exclusive) {
        for (unsigned o = 0; o < params.cores; ++o) {
            if (o == static_cast<unsigned>(core)
                || !(entry.sharers & (1u << o))) {
                continue;
            }
            FuncCache::Victim v = invalidatePrivate(static_cast<int>(o),
                                                    addr);
            ++invalidations;
            acted = true;
            if (v.valid && v.dirty) {
                if (auto *line = l3.find(addr)) {
                    line->data = v.data;
                    line->dirty = true;
                }
            }
        }
        entry.sharers = me;
        entry.exclusive = true;
    } else if (entry.exclusive && !(entry.sharers & me)) {
        for (unsigned o = 0; o < params.cores; ++o) {
            if (o == static_cast<unsigned>(core)
                || !(entry.sharers & (1u << o))) {
                continue;
            }
            DataBlock dirty_data;
            if (downgradePrivate(static_cast<int>(o), addr,
                                 dirty_data)) {
                if (auto *line = l3.find(addr)) {
                    line->data = dirty_data;
                    line->dirty = true;
                }
            }
            ++downgrades;
            acted = true;
        }
        entry.exclusive = false;
        entry.sharers |= me;
    } else {
        entry.sharers |= me;
    }

    return acted ? params.snoopLatencyCycles : 0;
}

void
CacheHierarchy::accessInternal(int core, uint64_t addr, bool is_store,
                               const DataBlock *store_data, Tick when,
                               DoneCb cb)
{
    const Tick period = params.corePeriod;
    FuncCache &l1 = l1s[core];
    FuncCache &l2 = l2s[core];

    // L1.
    if (FuncCache::Line *line = l1.find(addr)) {
        if (!is_store || line->exclusive) {
            ++l1Hits;
            if (is_store) {
                line->data = *store_data;
                line->dirty = true;
            }
            cb(when + params.l1.latencyCycles * period);
            return;
        }
        // Store to a shared line: fall through as an upgrade.
    }

    // L2.
    Cycles lat = params.l1.latencyCycles + params.l2.latencyCycles;
    if (FuncCache::Line *line = l2.find(addr)) {
        if (!is_store || line->exclusive) {
            ++l2Hits;
            DataBlock data = line->data;
            if (is_store)
                data = *store_data;
            // Promote into L1 (keep L2 copy: inclusive-ish).
            fillPrivate(core, addr, data, is_store || line->dirty,
                        line->exclusive, when);
            if (is_store) {
                line->dirty = false; // freshest copy now in L1
            }
            cb(when + lat * period);
            return;
        }
    }

    // Coherence point before the shared L3.
    Cycles snoop_lat = enforceCoherence(core, addr, is_store);
    lat += params.l3.latencyCycles + snoop_lat;

    // L3.
    if (FuncCache::Line *line = l3.find(addr)) {
        ++l3Hits;
        DirEntry &entry = directory[addr];
        entry.sharers |= 1u << core;
        bool exclusive_grant =
            is_store || entry.sharers == (1u << core);
        if (exclusive_grant)
            entry.exclusive = true;
        DataBlock data = line->data;
        bool dirty = false;
        if (is_store) {
            data = *store_data;
            dirty = true;
        }
        fillPrivate(core, addr, data, dirty, exclusive_grant, when);
        cb(when + lat * period);
        return;
    }

    // LLC miss.
    auto it = mshrs.find(addr);
    if (it != mshrs.end()) {
        ++mshrMerges;
        it->second.exclusive |= is_store;
        it->second.waiters.push_back(
            {core, is_store, is_store ? *store_data : DataBlock{},
             std::move(cb)});
        return;
    }

    if (mshrs.size() >= params.llcMshrs) {
        ++mshrStalls;
        stalled.push_back({core, addr, is_store,
                           is_store ? *store_data : DataBlock{}, when,
                           std::move(cb)});
        return;
    }

    ++llcMisses;
    MshrEntry &entry = mshrs[addr];
    entry.exclusive = is_store;
    entry.waiters.push_back(
        {core, is_store, is_store ? *store_data : DataBlock{},
         std::move(cb)});
    sendMiss(addr, when + lat * period);
}

void
CacheHierarchy::sendMiss(uint64_t addr, Tick when)
{
    Tick issue = std::max(when, curTick());
    eventQueue().schedule(issue, [this, addr, issue]() {
        MemPacket pkt;
        pkt.id = nextPacketId++;
        pkt.cmd = MemCmd::Read;
        pkt.addr = addr;
        pkt.issueTick = issue;
        memory.access(std::move(pkt), [this](MemPacket &&resp) {
            handleFill(std::move(resp));
        });
    });
}

void
CacheHierarchy::handleFill(MemPacket &&pkt)
{
    uint64_t addr = pkt.addr;
    auto it = mshrs.find(addr);
    panic_if(it == mshrs.end(), "fill for unknown MSHR");
    MshrEntry entry = std::move(it->second);
    mshrs.erase(it);

    missLatencyNs.sample(ticksToNs(curTick() - pkt.issueTick));

    // Install in the shared L3 first.
    fillShared(addr, pkt.data, false, curTick());

    // Then satisfy waiters in arrival order.
    Tick done = curTick() + params.l3.latencyCycles * params.corePeriod;
    for (auto &waiter : entry.waiters) {
        Cycles snoop =
            enforceCoherence(waiter.core, addr, waiter.isStore);
        DirEntry &dir = directory[addr];
        dir.sharers |= 1u << waiter.core;
        bool exclusive_grant =
            waiter.isStore || dir.sharers == (1u << waiter.core);
        if (exclusive_grant)
            dir.exclusive = true;

        DataBlock data = pkt.data;
        bool dirty = false;
        if (waiter.isStore) {
            data = waiter.storeData;
            dirty = true;
        }
        fillPrivate(waiter.core, addr, data, dirty, exclusive_grant,
                    curTick());
        waiter.cb(done + snoop * params.corePeriod);
    }

    drainStalled();
}

void
CacheHierarchy::drainStalled()
{
    while (!stalled.empty() && mshrs.size() < params.llcMshrs) {
        Stalled s = std::move(stalled.front());
        stalled.pop_front();
        accessInternal(s.core, s.addr, s.isStore,
                       s.isStore ? &s.storeData : nullptr,
                       std::max(s.when, curTick()), std::move(s.cb));
    }
}

void
CacheHierarchy::fillPrivate(int core, uint64_t addr,
                            const DataBlock &data, bool dirty,
                            bool exclusive, Tick when)
{
    FuncCache &l1 = l1s[core];
    FuncCache &l2 = l2s[core];

    FuncCache::Victim v2 = l2.insert(addr, data, false, exclusive);
    if (v2.valid) {
        // L1 is inclusive in L2: drop the L1 copy too.
        FuncCache::Victim v1 = l1.invalidate(v2.addr);
        if (v1.valid && v1.dirty) {
            v2.data = v1.data;
            v2.dirty = true;
        }
        if (v2.dirty) {
            if (auto *line = l3.find(v2.addr)) {
                line->data = v2.data;
                line->dirty = true;
            } else {
                // Inclusion was broken by an L3 eviction race; push
                // straight to memory.
                sendWriteback(v2.addr, v2.data, when);
            }
        }
    }

    FuncCache::Victim v1 = l1.insert(addr, data, dirty, exclusive);
    if (v1.valid && v1.dirty) {
        if (auto *line = l2.find(v1.addr)) {
            line->data = v1.data;
            line->dirty = true;
        } else if (auto *line3 = l3.find(v1.addr)) {
            line3->data = v1.data;
            line3->dirty = true;
        } else {
            sendWriteback(v1.addr, v1.data, when);
        }
    }
}

void
CacheHierarchy::fillShared(uint64_t addr, const DataBlock &data,
                           bool dirty, Tick when)
{
    FuncCache::Victim victim = l3.insert(addr, data, dirty, false);
    if (!victim.valid)
        return;

    // Inclusive L3: evicting a block expels it from every core.
    auto dir_it = directory.find(victim.addr);
    if (dir_it != directory.end()) {
        for (unsigned o = 0; o < params.cores; ++o) {
            if (!(dir_it->second.sharers & (1u << o)))
                continue;
            FuncCache::Victim pv =
                invalidatePrivate(static_cast<int>(o), victim.addr);
            ++invalidations;
            if (pv.valid && pv.dirty) {
                victim.data = pv.data;
                victim.dirty = true;
            }
        }
        directory.erase(dir_it);
    }

    if (victim.dirty)
        sendWriteback(victim.addr, victim.data, when);
}

FuncCache::Victim
CacheHierarchy::invalidatePrivate(int core, uint64_t addr)
{
    FuncCache::Victim v1 = l1s[core].invalidate(addr);
    FuncCache::Victim v2 = l2s[core].invalidate(addr);
    // The L1 copy, if dirty, is the freshest.
    if (v1.valid && v1.dirty)
        return v1;
    if (v2.valid && v2.dirty)
        return v2;
    return v1.valid ? v1 : v2;
}

bool
CacheHierarchy::downgradePrivate(int core, uint64_t addr,
                                 DataBlock &out)
{
    bool dirty = false;
    if (FuncCache::Line *line = l1s[core].find(addr)) {
        line->exclusive = false;
        if (line->dirty) {
            out = line->data;
            dirty = true;
            line->dirty = false;
        }
    }
    if (FuncCache::Line *line = l2s[core].find(addr)) {
        line->exclusive = false;
        if (line->dirty && !dirty) {
            out = line->data;
            dirty = true;
        }
        line->dirty = false;
    }
    return dirty;
}

void
CacheHierarchy::sendWriteback(uint64_t addr, const DataBlock &data,
                              Tick when)
{
    ++writebacks;
    ++outstandingWritebacks;
    Tick issue = std::max(when, curTick());
    eventQueue().schedule(issue, [this, addr, data, issue]() {
        MemPacket pkt;
        pkt.id = nextPacketId++;
        pkt.cmd = MemCmd::Write;
        pkt.addr = addr;
        pkt.data = data;
        pkt.issueTick = issue;
        memory.access(std::move(pkt), [this](MemPacket &&) {
            --outstandingWritebacks;
            if (outstandingWritebacks == 0 && !flushWaiters.empty()) {
                auto waiters = std::move(flushWaiters);
                flushWaiters.clear();
                for (auto &cb : waiters)
                    cb(curTick());
            }
        });
    });
}

void
CacheHierarchy::flushAll(Tick when, DoneCb cb)
{
    // Merge private dirty data into L3.
    for (unsigned c = 0; c < params.cores; ++c) {
        auto merge_down = [this](uint64_t addr, FuncCache::Line &line) {
            if (!line.dirty)
                return;
            if (auto *l3line = l3.find(addr)) {
                l3line->data = line.data;
                l3line->dirty = true;
            } else {
                fillShared(addr, line.data, true, curTick());
            }
            line.dirty = false;
        };
        l1s[c].forEachLine(merge_down);
        l2s[c].forEachLine(merge_down);
    }

    // Write back every dirty L3 line.
    l3.forEachLine([this, when](uint64_t addr, FuncCache::Line &line) {
        if (line.dirty) {
            sendWriteback(addr, line.data, when);
            line.dirty = false;
        }
    });

    if (outstandingWritebacks == 0) {
        cb(curTick());
    } else {
        flushWaiters.push_back(std::move(cb));
    }
}

bool
CacheHierarchy::wouldMiss(int core, uint64_t addr) const
{
    addr = blockAlign(addr);
    return l1s[core].peek(addr) == nullptr
           && l2s[core].peek(addr) == nullptr
           && l3.peek(addr) == nullptr;
}

bool
CacheHierarchy::peekBlock(uint64_t addr, DataBlock &out) const
{
    addr = blockAlign(addr);
    // Dirty private copies are the freshest.
    for (unsigned c = 0; c < params.cores; ++c) {
        if (const auto *line = l1s[c].peek(addr)) {
            if (line->dirty) {
                out = line->data;
                return true;
            }
        }
        if (const auto *line = l2s[c].peek(addr)) {
            if (line->dirty) {
                out = line->data;
                return true;
            }
        }
    }
    for (unsigned c = 0; c < params.cores; ++c) {
        if (const auto *line = l1s[c].peek(addr)) {
            out = line->data;
            return true;
        }
        if (const auto *line = l2s[c].peek(addr)) {
            out = line->data;
            return true;
        }
    }
    if (const auto *line = l3.peek(addr)) {
        out = line->data;
        return true;
    }
    return false;
}

} // namespace obfusmem
