/**
 * @file
 * TraceCore implementation.
 */

#include "cpu/core.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace obfusmem {

TraceCore::TraceCore(const std::string &name, EventQueue &eq,
                     statistics::Group *parent, const Params &params_,
                     WorkloadGenerator generator,
                     CacheHierarchy &hierarchy_, int core_id,
                     uint64_t instr_target,
                     std::function<void(Tick)> on_done)
    : SimObject(name, eq, parent), params(params_),
      gen(std::move(generator)), hierarchy(hierarchy_),
      coreId(core_id), target(instr_target), onDone(std::move(on_done)),
      dataRng(0xace0fba5eULL + core_id)
{
    cpiTicks = static_cast<Tick>(
        std::llround(gen.profile().baseCpi * params.period));
    if (cpiTicks == 0)
        cpiTicks = 1;

    stats().addScalar("loads", &loadsIssued, "loads issued");
    stats().addScalar("stores", &storesIssued, "stores issued");
    stats().addScalar("robStallTicks", &robStallTicks,
                      "ticks stalled with a full ROB window");
    stats().addScalar("depStallTicks", &depStallTicks,
                      "ticks stalled on dependent loads");
}

void
TraceCore::start()
{
    eventQueue().schedule(curTick(), [this]() { tryAdvance(); });
}

double
TraceCore::ipc() const
{
    if (!isFinished || finishedAt == 0)
        return 0.0;
    double cycles = static_cast<double>(finishedAt) / params.period;
    return static_cast<double>(pos) / cycles;
}

void
TraceCore::issueLoad(const MemOp &op)
{
    ++loadsIssued;
    ++loadsInFlight;
    loads.push_back({pos, nextLoadSeq++, false, 0});
    LoadSlot *slot = &loads.back();
    if (op.stream) {
        // Pointer chases serialize on the previous *stream* load;
        // hot-set hits in between do not break the chain.
        lastLoadSeq = slot->seq;
        lastLoadDone = false;
    }
    hierarchy.load(coreId, op.addr, frontier, [this, slot](Tick done) {
        slot->done = true;
        slot->completeTick = done;
        --loadsInFlight;
        maxLoadComplete = std::max(maxLoadComplete, done);
        if (slot->seq == lastLoadSeq) {
            lastLoadDone = true;
            lastLoadReady = done;
        }
        tryAdvance();
        maybeFinish();
    });
}

void
TraceCore::issueStore(const MemOp &op, bool was_miss)
{
    ++storesIssued;
    ++outstandingStores;
    DataBlock data;
    dataRng.fillBytes(data.data(), data.size());
    hierarchy.store(coreId, op.addr, data, frontier,
        [this, was_miss](Tick done) {
            --outstandingStores;
            if (was_miss)
                storeMissInFlight = false;
            lastStoreComplete = std::max(lastStoreComplete, done);
            tryAdvance();
            maybeFinish();
        });
}

void
TraceCore::tryAdvance()
{
    if (advancing || isFinished)
        return;
    advancing = true;

    for (;;) {
        if (pos >= target)
            break; // instruction budget exhausted

        // Retire completed head loads, freeing ROB window space. If
        // the window was full when the head completed, the frontier
        // stalls until that completion time.
        while (!loads.empty() && loads.front().done) {
            bool window_full =
                pos - loads.front().pos >= params.robSize;
            if (window_full
                && loads.front().completeTick > frontier) {
                robStallTicks +=
                    loads.front().completeTick - frontier;
                frontier = loads.front().completeTick;
            }
            loads.pop_front();
        }

        uint64_t head_pos = loads.empty() ? pos : loads.front().pos;
        uint64_t headroom = params.robSize - (pos - head_pos);

        if (headroom == 0) {
            // Window full behind an incomplete load: wait for it.
            break; // completion callback will resume us
        }

        if (gapRemaining > 0) {
            uint64_t n = std::min<uint64_t>(gapRemaining, headroom);
            n = std::min(n, target - pos);
            pos += n;
            frontier += n * cpiTicks;
            gapRemaining -= static_cast<uint32_t>(n);
            continue;
        }

        if (!havePendingOp) {
            pendingOp = gen.next();
            gapRemaining = pendingOp.gapInstrs;
            havePendingOp = true;
            continue;
        }

        // A memory operation is ready to issue.
        if (pendingOp.dependent) {
            if (!lastLoadDone)
                break; // address depends on an in-flight load
            if (lastLoadReady > frontier) {
                depStallTicks += lastLoadReady - frontier;
                frontier = lastLoadReady;
            }
        }

        if (pendingOp.isStore) {
            if (outstandingStores >= params.maxOutstandingStores)
                break; // write buffer full
            // The store buffer drains in order: a missing store
            // blocks its head, so at most one store miss is in
            // flight; a second one stalls the core (full buffer).
            bool miss = params.serializeStoreMisses
                        && hierarchy.wouldMiss(coreId,
                                               pendingOp.addr);
            if (miss) {
                if (storeMissInFlight)
                    break; // wake on its completion
                storeMissInFlight = true;
            }
            issueStore(pendingOp, miss);
        } else {
            if (loadsInFlight >= params.maxOutstandingLoads)
                break; // MSHR/LSQ limit
            issueLoad(pendingOp);
        }
        havePendingOp = false;
        pos += 1;
        frontier += cpiTicks;
    }

    advancing = false;
    maybeFinish();
}

void
TraceCore::maybeFinish()
{
    if (isFinished || pos < target || outstandingStores > 0
        || loadsInFlight > 0) {
        return;
    }
    loads.clear();
    isFinished = true;
    finishedAt = std::max({frontier, maxLoadComplete,
                           lastStoreComplete});
    if (onDone)
        onDone(finishedAt);
}

} // namespace obfusmem
