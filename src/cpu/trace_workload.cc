/**
 * @file
 * Trace parsing/serialization.
 */

#include "cpu/trace_workload.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace obfusmem {

std::vector<MemOp>
parseTrace(std::istream &in)
{
    std::vector<MemOp> ops;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string_view view = line;
        size_t hash = view.find('#');
        if (hash != std::string_view::npos)
            view = view.substr(0, hash);
        std::istringstream fields{std::string(view)};

        uint64_t gap;
        std::string cmd, addr_hex;
        if (!(fields >> gap))
            continue; // blank/comment line
        fatal_if(!(fields >> cmd >> addr_hex),
                 "trace line ", line_no, ": expected <gap> <R|W> "
                 "<hexaddr>");
        fatal_if(cmd != "R" && cmd != "W", "trace line ", line_no,
                 ": command must be R or W");

        MemOp op;
        op.gapInstrs = static_cast<uint32_t>(gap);
        op.isStore = cmd == "W";
        op.addr = std::strtoull(addr_hex.c_str(), nullptr, 16);
        op.dependent = false;
        op.stream = false;

        std::string flag;
        while (fields >> flag) {
            if (flag == "D")
                op.dependent = true;
            else if (flag == "S")
                op.stream = true;
            else
                fatal("trace line ", line_no, ": unknown flag ",
                      flag);
        }
        ops.push_back(op);
    }
    return ops;
}

std::vector<MemOp>
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file ", path);
    return parseTrace(in);
}

void
writeTrace(std::ostream &out, const std::vector<MemOp> &ops)
{
    out << "# gap R|W hexaddr [D] [S]\n";
    for (const MemOp &op : ops) {
        out << op.gapInstrs << " " << (op.isStore ? "W" : "R") << " "
            << std::hex << op.addr << std::dec;
        if (op.dependent)
            out << " D";
        if (op.stream)
            out << " S";
        out << "\n";
    }
}

WorkloadGenerator
makeTraceReplayer(std::vector<MemOp> ops, double base_cpi)
{
    return WorkloadGenerator::fromTrace(std::move(ops), base_cpi);
}

} // namespace obfusmem
