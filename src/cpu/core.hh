/**
 * @file
 * Trace-driven core model: an interval/ROB-window approximation of the
 * paper's 4-wide out-of-order cores. Non-memory work advances the
 * core's time frontier at the workload's base CPI; loads occupy ROB
 * slots and overlap until the window fills; dependent (pointer-chase)
 * loads serialize on the previous load; stores are posted through a
 * bounded write buffer.
 */

#ifndef OBFUSMEM_CPU_CORE_HH
#define OBFUSMEM_CPU_CORE_HH

#include <deque>
#include <functional>

#include "cpu/cache_hierarchy.hh"
#include "cpu/workload.hh"
#include "sim/sim_object.hh"

namespace obfusmem {

/**
 * One simulated core executing a synthetic instruction stream.
 */
class TraceCore : public SimObject
{
  public:
    struct Params
    {
        unsigned robSize = 192;
        unsigned maxOutstandingLoads = 16;
        unsigned maxOutstandingStores = 16;
        /**
         * Model an in-order store buffer whose head blocks on a
         * miss (at most one store miss in flight). Off by default:
         * modern cores hide store misses well.
         */
        bool serializeStoreMisses = false;
        Tick period = 500; // 2 GHz
    };

    /**
     * @param instr_target Instructions to execute before finishing.
     * @param on_done Called once with the core's finish tick.
     */
    TraceCore(const std::string &name, EventQueue &eq,
              statistics::Group *parent, const Params &params,
              WorkloadGenerator generator, CacheHierarchy &hierarchy,
              int core_id, uint64_t instr_target,
              std::function<void(Tick)> on_done);

    /** Begin execution (schedules the first advance at tick 0). */
    void start();

    bool finished() const { return isFinished; }
    Tick finishTick() const { return finishedAt; }
    uint64_t instructionsRetired() const { return pos; }

    /** Measured IPC at finish time. */
    double ipc() const;

  private:
    struct LoadSlot
    {
        uint64_t pos;
        uint64_t seq;
        bool done = false;
        Tick completeTick = 0;
    };

    void tryAdvance();
    void issueLoad(const MemOp &op);
    void issueStore(const MemOp &op, bool was_miss);
    void maybeFinish();

    Params params;
    WorkloadGenerator gen;
    CacheHierarchy &hierarchy;
    int coreId;
    uint64_t target;
    std::function<void(Tick)> onDone;

    /** Instructions issued so far. */
    uint64_t pos = 0;
    /** Time up to which the core's execution is committed. */
    Tick frontier = 0;
    Tick cpiTicks;

    std::deque<LoadSlot> loads;
    unsigned loadsInFlight = 0;
    Tick maxLoadComplete = 0;
    uint64_t nextLoadSeq = 1;
    uint64_t lastLoadSeq = 0;
    bool lastLoadDone = true;
    Tick lastLoadReady = 0;

    unsigned outstandingStores = 0;
    bool storeMissInFlight = false;
    Tick lastStoreComplete = 0;

    bool havePendingOp = false;
    MemOp pendingOp{};
    uint32_t gapRemaining = 0;

    bool advancing = false;
    bool isFinished = false;
    Tick finishedAt = 0;
    Random dataRng;

    statistics::Scalar loadsIssued, storesIssued;
    statistics::Scalar robStallTicks, depStallTicks;
};

} // namespace obfusmem

#endif // OBFUSMEM_CPU_CORE_HH
