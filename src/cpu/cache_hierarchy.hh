/**
 * @file
 * Three-level cache hierarchy from the paper's Table 2: per-core L1
 * (32 KB, 8-way, 2 cycles) and L2 (512 KB, 8-way, 8 cycles), shared
 * inclusive L3 (8 MB, 8-way, 17 cycles), MESI-style coherence via an
 * L3 directory.
 *
 * Cache tag/data state is functional (synchronous); only LLC misses
 * and writebacks enter the timed memory system below, which keeps the
 * event count proportional to memory traffic — the part of the system
 * ObfusMem actually changes.
 */

#ifndef OBFUSMEM_CPU_CACHE_HIERARCHY_HH
#define OBFUSMEM_CPU_CACHE_HIERARCHY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "sim/sim_object.hh"

namespace obfusmem {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    uint64_t sizeBytes;
    unsigned assoc;
    Cycles latencyCycles;
};

/** Parameters of the whole hierarchy (defaults = paper Table 2). */
struct HierarchyParams
{
    CacheParams l1{32 * 1024, 8, 2};
    CacheParams l2{512 * 1024, 8, 8};
    CacheParams l3{8 * 1024 * 1024, 8, 17};
    unsigned cores = 4;
    unsigned llcMshrs = 32;
    Cycles snoopLatencyCycles = 10;
    Tick corePeriod = 500; // 2 GHz
};

/**
 * A functional set-associative cache with per-line MESI-ish state.
 */
class FuncCache
{
  public:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool exclusive = false;
        uint64_t lruStamp = 0;
        DataBlock data{};
    };

    /** Information about a line displaced by insert(). */
    struct Victim
    {
        bool valid = false;
        uint64_t addr = 0;
        bool dirty = false;
        DataBlock data{};
    };

    FuncCache(const CacheParams &params);

    /** Find a block; returns nullptr on miss. Updates LRU on hit. */
    Line *find(uint64_t addr);
    const Line *peek(uint64_t addr) const;

    /** Insert a block, possibly displacing an LRU victim. */
    Victim insert(uint64_t addr, const DataBlock &data, bool dirty,
                  bool exclusive);

    /** Remove a block; returns its data/dirtiness if present. */
    Victim invalidate(uint64_t addr);

    /** Iterate every valid line (for flushes). */
    void forEachLine(
        const std::function<void(uint64_t addr, Line &line)> &fn);

    uint64_t numSets() const { return sets; }
    unsigned associativity() const { return assoc; }

  private:
    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
    uint64_t addrOf(uint64_t set, uint64_t tag) const;

    uint64_t sets;
    unsigned assoc;
    std::vector<Line> lines;
    uint64_t lruCounter = 0;
};

/**
 * The full multi-core hierarchy. Loads/stores resolve synchronously on
 * cache hits; LLC misses become timed MemPackets sent to the memory
 * sink (the protection layer), and the completion callback carries the
 * tick at which the data is usable by the core.
 */
class CacheHierarchy : public SimObject
{
  public:
    using DoneCb = std::function<void(Tick done)>;

    CacheHierarchy(const std::string &name, EventQueue &eq,
                   statistics::Group *parent,
                   const HierarchyParams &params, MemSink &memory);

    /**
     * Issue a load.
     *
     * @param core Issuing core id.
     * @param addr Byte address (block-aligned internally).
     * @param when Tick at which the core issues the access (may be in
     *             the future relative to curTick()).
     * @param cb Called with the completion tick.
     */
    void load(int core, uint64_t addr, Tick when, DoneCb cb);

    /** Issue a full-block store (write-allocate, exclusive). */
    void store(int core, uint64_t addr, const DataBlock &data,
               Tick when, DoneCb cb);

    /**
     * Functionally install a clean block in a core's caches and the
     * L3 (warm-up modelling, equivalent to the paper's fast-forward
     * phase). No timing, no memory traffic.
     */
    void preload(int core, uint64_t addr, const DataBlock &data);

    /**
     * Functionally install a block in the shared L3 only, optionally
     * dirty — used to model the steady-state cache contents of a
     * long-running streaming workload (dirty victims then produce
     * writeback traffic from the start of measurement). Displaced
     * preload victims are silently dropped.
     */
    void preloadShared(uint64_t addr, const DataBlock &data,
                       bool dirty);

    /**
     * Write back all dirty state to memory; cb fires when every
     * writeback has been acknowledged.
     */
    void flushAll(Tick when, DoneCb cb);

    /**
     * Functional (zero-time) read for checking: consults caches from
     * L1 to L3; returns false if the block is not cached anywhere (the
     * caller should then consult memory through the protection layer).
     */
    bool peekBlock(uint64_t addr, DataBlock &out) const;

    /**
     * Tag-only probe: would this access miss all cache levels? Used
     * by the core's store-buffer model (a store miss blocks the
     * in-order store-buffer head; hits drain immediately).
     */
    bool wouldMiss(int core, uint64_t addr) const;

    uint64_t llcMissCount() const
    {
        return static_cast<uint64_t>(llcMisses.value());
    }

    uint64_t llcAccessCount() const
    {
        return static_cast<uint64_t>(l3Hits.value() + llcMisses.value());
    }

    unsigned numCores() const { return params.cores; }

  private:
    struct MshrEntry
    {
        bool exclusive = false;
        struct Waiter
        {
            int core;
            bool isStore;
            DataBlock storeData;
            DoneCb cb;
        };
        std::vector<Waiter> waiters;
    };

    struct DirEntry
    {
        uint32_t sharers = 0;
        bool exclusive = false;
    };

    /** Common load/store path. */
    void accessInternal(int core, uint64_t addr, bool is_store,
                        const DataBlock *store_data, Tick when,
                        DoneCb cb);

    /** Handle coherence before touching L3; returns extra latency. */
    Cycles enforceCoherence(int core, uint64_t addr, bool exclusive);

    /** Insert into a core's private caches, handling evictions. */
    void fillPrivate(int core, uint64_t addr, const DataBlock &data,
                     bool dirty, bool exclusive, Tick when);

    /** Insert into L3, handling inclusive back-invalidation. */
    void fillShared(uint64_t addr, const DataBlock &data, bool dirty,
                    Tick when);

    /** Remove the block from core's L1+L2, merging dirty data out. */
    FuncCache::Victim invalidatePrivate(int core, uint64_t addr);

    /** Clear exclusivity in core's private caches; pull dirty data. */
    bool downgradePrivate(int core, uint64_t addr, DataBlock &out);

    /** Issue a timed writeback packet to memory. */
    void sendWriteback(uint64_t addr, const DataBlock &data, Tick when);

    /** Send the LLC miss to memory (MSHR already allocated). */
    void sendMiss(uint64_t addr, Tick when);

    /** Fill returned from memory: satisfy waiters, update caches. */
    void handleFill(MemPacket &&pkt);

    /** Retry accesses stalled on a full MSHR file. */
    void drainStalled();

    HierarchyParams params;
    MemSink &memory;

    std::vector<FuncCache> l1s;
    std::vector<FuncCache> l2s;
    FuncCache l3;

    std::unordered_map<uint64_t, DirEntry> directory;
    std::unordered_map<uint64_t, MshrEntry> mshrs;

    struct Stalled
    {
        int core;
        uint64_t addr;
        bool isStore;
        DataBlock storeData;
        Tick when;
        DoneCb cb;
    };
    std::deque<Stalled> stalled;

    unsigned outstandingWritebacks = 0;
    std::vector<DoneCb> flushWaiters;
    uint64_t nextPacketId = 1;

    statistics::Scalar l1Hits, l2Hits, l3Hits, llcMisses;
    statistics::Scalar writebacks, invalidations, downgrades;
    statistics::Scalar mshrMerges, mshrStalls;
    statistics::Average missLatencyNs;
};

} // namespace obfusmem

#endif // OBFUSMEM_CPU_CACHE_HIERARCHY_HH
