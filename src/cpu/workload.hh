/**
 * @file
 * Synthetic workload generation calibrated to the paper's Table 1.
 *
 * The paper evaluates 15 SPEC CPU2006 benchmarks characterized by IPC,
 * LLC MPKI and the average gap between memory requests. We cannot run
 * SPEC binaries, so each benchmark becomes a parameterized address-
 * stream generator whose *unprotected* simulation lands near those
 * characteristics; the protection overheads then emerge from the same
 * mechanisms as in the paper (see DESIGN.md, substitutions).
 */

#ifndef OBFUSMEM_CPU_WORKLOAD_HH
#define OBFUSMEM_CPU_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"

namespace obfusmem {

/**
 * Calibration parameters for one synthetic benchmark.
 */
struct BenchmarkProfile
{
    std::string name;

    /** Memory references per kilo-instruction (reaching L1). */
    double memRefsPerKI;
    /** Fraction of references that stream through a huge region. */
    double streamFraction;
    /** Hot (cache-resident) working-set size in bytes. */
    uint64_t hotBytes;
    /** Fraction of streaming loads that are dependent (ptr-chase). */
    double dependentFraction;
    /** Fraction of references that are stores. */
    double storeFraction;
    /** Non-memory CPI (cycles per instruction when never missing). */
    double baseCpi;
    /** Size of the streamed (cold) region in bytes. */
    uint64_t streamBytes;
    /**
     * Window around the stream position that pointer chases jump
     * within: real chases (mcf's lists) have page-level locality, so
     * the counter cache retains some effectiveness.
     */
    uint64_t chaseWindowBytes = 32 * 1024 * 1024;

    /** Table 1 reference values, for reporting alongside measured. */
    double paperIpc;
    double paperMpki;
    double paperGapNs;

    /** The 15 profiles of Table 1. */
    static const std::vector<BenchmarkProfile> &spec2006();

    /** Find a profile by name (fatal if unknown). */
    static const BenchmarkProfile &byName(const std::string &name);
};

/** One generated memory operation. */
struct MemOp
{
    /** Non-memory instructions preceding this operation. */
    uint32_t gapInstrs;
    bool isStore;
    /** Load depends on the previous *stream* load (pointer chase). */
    bool dependent;
    /** Cold streaming access (LLC-missing) vs hot-set access. */
    bool stream;
    uint64_t addr;
};

/**
 * Deterministic address-stream generator for one core.
 */
class WorkloadGenerator
{
  public:
    /**
     * @param profile Benchmark calibration.
     * @param region_base Start of this core's private address range.
     * @param region_bytes Size of this core's private address range.
     * @param seed RNG seed (vary per core).
     */
    WorkloadGenerator(const BenchmarkProfile &profile,
                      uint64_t region_base, uint64_t region_bytes,
                      uint64_t seed);

    /**
     * Build a replayer over a recorded trace (looping at the end)
     * instead of a synthetic stream.
     */
    static WorkloadGenerator fromTrace(std::vector<MemOp> ops,
                                       double base_cpi);

    /** Produce the next memory operation. */
    MemOp next();

    const BenchmarkProfile &profile() const { return prof; }

    /** Stream-region geometry (used for warm-up preloading). */
    uint64_t streamRegionBase() const { return streamBase; }
    uint64_t streamRegionBlocks() const
    {
        return streamLimit / 64;
    }
    /** Block index the stream starts from. */
    uint64_t streamStartBlock() const { return streamPos; }

  private:
    /** Internal constructor for trace replay. */
    WorkloadGenerator(std::vector<MemOp> ops, double base_cpi);

    BenchmarkProfile prof;
    uint64_t hotBase = 0;
    uint64_t streamBase = 0;
    uint64_t streamLimit = 1;
    uint64_t streamPos = 0;
    Random rng{1};
    double meanGap = 1;

    /** Replay state (empty when generating synthetically). */
    std::vector<MemOp> replayOps;
    size_t replayPos = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_CPU_WORKLOAD_HH
