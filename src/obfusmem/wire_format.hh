/**
 * @file
 * The ObfusMem wire format: what actually travels on the exposed
 * memory channel.
 *
 * Every message carries a 128-bit encrypted header (command, address,
 * tag, sanity magic), optionally a 64-byte encrypted data payload, and
 * optionally a 128-bit MAC. Counter values are never transmitted: both
 * endpoints keep synchronized counters, which is also what makes
 * replay/drop attacks detectable (paper Sec. 3.5).
 *
 * Counter discipline (paper Fig. 3): each request group consumes six
 * counter values - pad 0 for the first message's header, pad 1 for the
 * second (paired dummy) message's header, pads 2-5 for the 64-byte
 * payload carried by whichever of the two messages has data. Each
 * read reply consumes five values (header + 4 data pads).
 */

#ifndef OBFUSMEM_OBFUSMEM_WIRE_FORMAT_HH
#define OBFUSMEM_OBFUSMEM_WIRE_FORMAT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "crypto/md5.hh"
#include "mem/packet.hh"
#include "util/secret.hh"

namespace obfusmem {

/** Plaintext contents of a message header. */
struct WireHeader
{
    MemCmd cmd = MemCmd::Read;
    uint64_t addr = 0;
    /** Matches replies to outstanding requests; encrypted on wire. */
    uint16_t tag = 0;
    /**
     * Dummy-request marker. It travels *inside* the encrypted header,
     * so it is invisible on the wire but lets the (trusted) memory
     * side drop or specially handle dummies under the non-fixed
     * dummy-address policies.
     */
    bool dummy = false;

    /** Serialize into a 128-bit block (before encryption). */
    crypto::Block128 pack() const;

    /**
     * Parse a decrypted header block.
     * @return header, or nullopt if the sanity magic is wrong (pad
     *         misalignment / tampering / counter desync).
     */
    static std::optional<WireHeader> unpack(const crypto::Block128 &b);
};

/** A message as it appears on the channel. */
struct WireMessage
{
    crypto::Block128 cipherHeader{};
    bool hasData = false;
    DataBlock cipherData{};
    bool hasMac = false;
    crypto::Md5Digest mac{};

    /**
     * Data-bus bytes this message occupies given the phy's header and
     * MAC wire widths (see ObfusMemParams).
     */
    uint32_t
    wireBytes(uint32_t header_bytes, uint32_t mac_bytes) const
    {
        uint32_t bytes = header_bytes;
        if (hasData)
            bytes += static_cast<uint32_t>(cipherData.size());
        if (hasMac)
            bytes += mac_bytes;
        return bytes;
    }

    /** Low 64 bits of the ciphertext header (what a snooper logs). */
    uint64_t snoopAddr() const
    {
        return crypto::loadLe64(cipherHeader.data());
    }
};

/** Counter values consumed by one request group. */
constexpr uint64_t countersPerRequestGroup = 6;
/** Counter values consumed by one read reply. */
constexpr uint64_t countersPerReply = 5;

/** Encrypt a header with the pad for the given counter value. */
crypto::Block128 encryptHeader(const crypto::AesCtr &ctr,
                               uint64_t counter, const WireHeader &hdr);

/** Decrypt and parse a header. */
std::optional<WireHeader> decryptHeader(const crypto::AesCtr &ctr,
                                        uint64_t counter,
                                        const crypto::Block128 &cipher);

/** Encrypt/decrypt a 64-byte payload with pads ctr..ctr+3. */
DataBlock cryptPayload(const crypto::AesCtr &ctr, uint64_t counter,
                       const DataBlock &in);

// --- Batched-pad variants (the hot path) ----------------------------
//
// The endpoints generate a whole group's (or reply's) pads with one
// AesCtr::genPads call and then feed the precomputed pads to these
// helpers, so the AES work is batched instead of being redone pad by
// pad mid-protocol.

/** All pads of one request group, generated in a single batch. */
struct GroupPads
{
    std::array<crypto::Block128, countersPerRequestGroup> pad;
};

/** All pads of one read reply, generated in a single batch. */
struct ReplyPads
{
    std::array<crypto::Block128, countersPerReply> pad;

    const crypto::Block128 &header() const { return pad[0]; }
    const crypto::Block128 *payload() const { return &pad[1]; }
};

/** Batch-generate the six pads of the request group at `counter`. */
GroupPads genGroupPads(const crypto::AesCtr &ctr, uint64_t counter);

/** Batch-generate the five pads of the read reply at `counter`. */
ReplyPads genReplyPads(const crypto::AesCtr &ctr, uint64_t counter);

/** Encrypt a header with a precomputed pad. */
crypto::Block128 encryptHeaderWithPad(const crypto::Block128 &pad,
                                      const WireHeader &hdr);

/** Decrypt and parse a header with a precomputed pad. */
std::optional<WireHeader>
decryptHeaderWithPad(const crypto::Block128 &pad,
                     const crypto::Block128 &cipher);

/** Encrypt/decrypt a 64-byte payload with four precomputed pads. */
DataBlock cryptPayloadWithPads(const crypto::Block128 pads[4],
                               const DataBlock &in);

// --- Fixed-shape message builders -----------------------------------
//
// Every message on an obfuscated channel has exactly one of two
// shapes: header-only, or header + 64-byte payload. All senders --
// the normal protocol AND the recovery/re-key control plane -- must
// construct frames through these builders so a frame's wire shape
// cannot depend on what it carries (enforced by the wire-shape repo
// lint rule).

/** Build a header-only frame (the "read" half of a group). */
WireMessage makeHeaderMessage(const crypto::Block128 &hdr_pad,
                              const WireHeader &hdr);

/** Build a header + full-payload frame (the "write" half). */
WireMessage makeDataMessage(const crypto::Block128 &hdr_pad,
                            const crypto::Block128 payload_pads[4],
                            const WireHeader &hdr,
                            const DataBlock &payload);

/** Attach an authentication tag to a built frame. */
void attachMac(WireMessage &msg, const crypto::Md5Digest &digest);

/**
 * Flip one deterministic bit of the ciphertext header (fault model
 * for an in-flight corruption; `entropy` selects the bit).
 */
void corruptHeaderBit(WireMessage &msg, uint64_t entropy);

// --- Structure-of-arrays frame staging ------------------------------
//
// The batch pipeline's front half. Instead of building each frame to
// completion before touching the next (header XOR, payload XOR, MAC
// attach interleaved per message), a FrameBatch keeps each field of
// the staged frames in its own contiguous lane and seals the whole
// batch in stage-wise passes: one pass packs and XORs every header,
// one pass XORs every payload, one pass attaches every MAC. The
// headers() / macCounters() lanes feed MacEngine::computeBatch so the
// tags for the whole batch come out of the vectorized MD5 lanes in
// one call.
//
// FrameBatch lives here, next to the scalar builders, because it is
// the only other place allowed to assemble a WireMessage: sealing
// emits the exact same two frame shapes, so the wire-shape lint
// allowlist stays a single file.

class FrameBatch
{
  public:
    /** Stage a header-only frame; returns its slot index. */
    size_t stageHeaderFrame(const crypto::Block128 &hdr_pad,
                            const WireHeader &hdr, uint64_t mac_counter);

    /** Stage a header + payload frame; returns its slot index. */
    size_t stageDataFrame(const crypto::Block128 &hdr_pad,
                          const crypto::Block128 payload_pads[4],
                          const WireHeader &hdr, const DataBlock &payload,
                          uint64_t mac_counter);

    size_t size() const { return hdrs.size(); }
    bool empty() const { return hdrs.empty(); }

    /** Header lane, in slot order — MacEngine::computeBatch input. */
    const WireHeader *headers() const { return hdrs.data(); }
    /** MAC-counter lane, in slot order. */
    const uint64_t *macCounters() const { return macCtrs.data(); }

    /**
     * Seal every staged frame into `out[0..size())` in stage-wise
     * passes (encrypt lane, payload lane, MAC lane) and clear the
     * batch. `macs` holds one tag per slot, or nullptr when the
     * channel runs without authentication. Frames are bit-identical
     * to the scalar makeHeaderMessage / makeDataMessage + attachMac
     * sequence.
     */
    void seal(OBF_SECRET const crypto::Md5Digest *macs,
              WireMessage *out);

    void clear();

  private:
    std::vector<WireHeader> hdrs;
    std::vector<uint64_t> macCtrs;
    OBF_SECRET std::vector<crypto::Block128> headerPads;
    // The payload lanes are dense: one entry per *data* frame (plus
    // the owning slot index), not one per slot. Header-only frames
    // would otherwise pay 128 bytes of zero-initialization each for
    // payload state they never use.
    std::vector<uint32_t> dataSlots;
    OBF_SECRET std::vector<DataBlock> payloads;
    OBF_SECRET std::vector<std::array<crypto::Block128, 4>> payloadPads;
};

// --- Re-key handshake payload codec ---------------------------------
//
// DH public values ride inside ordinary-looking 64-byte payloads so
// handshake frames are wire-identical to data frames. Each chunk
// carries up to 54 value bytes (64 minus the 10-byte chunk header)
// plus its position in the sequence.

/** One chunk of a handshake value, on its way through a payload. */
struct HandshakeChunk
{
    /** Re-key round this chunk belongs to. */
    uint32_t epoch = 0;
    /** Chunk index within the value (0-based). */
    uint8_t chunk = 0;
    /** Total chunks in the value. */
    uint8_t total = 1;
    /** Value bytes carried by this chunk. */
    std::array<uint8_t, 54> data{};
    uint16_t len = 0;
};

/** Maximum value bytes per handshake chunk. */
constexpr size_t handshakeChunkBytes = 54;

/** Serialize a handshake chunk into a payload block. */
DataBlock packHandshakeChunk(const HandshakeChunk &c);

/**
 * Parse a payload as a handshake chunk.
 * @return chunk, or nullopt if the block is not a plausible chunk.
 */
std::optional<HandshakeChunk> unpackHandshakeChunk(const DataBlock &b);

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_WIRE_FORMAT_HH
