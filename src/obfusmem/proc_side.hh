/**
 * @file
 * The processor-side ObfusMem controller (paper Fig. 3): encrypts
 * commands, addresses and (already memory-encrypted) data with
 * per-channel session keys and counters, pairs every real request
 * with a dummy of the opposite type so the bus always shows
 * read-then-write groups, and injects dummy groups on other channels
 * per the UNOPT/OPT inter-channel schemes.
 */

#ifndef OBFUSMEM_OBFUSMEM_PROC_SIDE_HH
#define OBFUSMEM_OBFUSMEM_PROC_SIDE_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "crypto/dh.hh"
#include "mem/address_map.hh"
#include "obfusmem/audit_hook.hh"
#include "mem/channel_bus.hh"
#include "mem/packet.hh"
#include "obfusmem/burst_batch.hh"
#include "obfusmem/params.hh"
#include "obfusmem/wire_format.hh"
#include "secure/pad_prefetcher.hh"
#include "sim/sim_object.hh"
#include "util/random.hh"
#include "util/secret.hh"

namespace obfusmem {

class ObfusMemMemSide;

/**
 * The processor-side controller for all channels. Implements MemSink,
 * sitting below the memory-encryption engine.
 */
class ObfusMemProcSide : public SimObject, public MemSink
{
  public:
    /**
     * @param session_keys One AES session key per channel (from the
     *        boot-time DH exchange).
     * @param buses One ChannelBus per channel.
     * @param dummy_addrs Reserved dummy block address per channel.
     */
    ObfusMemProcSide(const std::string &name, EventQueue &eq,
                     statistics::Group *parent,
                     const ObfusMemParams &params,
                     const AddressMap &map,
                     OBF_SECRET const std::vector<crypto::Aes128::Key>
                         &session_keys,
                     const std::vector<ChannelBus *> &buses,
                     const std::vector<uint64_t> &dummy_addrs);

    void access(MemPacket pkt, PacketCallback cb) override;

    /**
     * Wire a channel's memory side for the statically dispatched
     * production path. Delivery calls receiveMessage through this
     * pointer directly — no std::function hop per message.
     */
    void
    setMemSide(unsigned channel, ObfusMemMemSide *side)
    {
        channelState[channel].memSide = side;
    }

    /**
     * Wire a request intercept for a channel. The std::function hop
     * survives as the test/tooling override (fault injection, frame
     * capture); when set it takes precedence over the memSide pointer.
     */
    void
    setRequestTarget(unsigned channel,
                     std::function<void(WireMessage &&)> target)
    {
        channelState[channel].toMem = std::move(target);
    }

    /** Replies delivered from a channel's memory side. */
    void receiveReply(unsigned channel, WireMessage &&msg);

    uint64_t tamperDetections() const
    {
        return static_cast<uint64_t>(macFailures.value());
    }

    uint64_t desyncEvents() const
    {
        return static_cast<uint64_t>(headerDesyncs.value());
    }

    uint64_t padsGenerated() const
    {
        return static_cast<uint64_t>(padsUsed.value());
    }

    uint64_t dummyGroupsInjected() const
    {
        return static_cast<uint64_t>(channelFillGroups.value());
    }

    /** Test hook: skew a channel's response counter. */
    void
    skewResponseCounter(unsigned channel, uint64_t delta)
    {
        channelState[channel].respCounter += delta;
        // The ring holds pads for the unskewed counter sequence; drop
        // them so desync is detected exactly as without prefetching.
        channelState[channel].rxPads.invalidate();
    }

    /** Attach the trace auditor's endpoint hook (may be null). */
    void setAuditHook(AuditHook *hook) { audit = hook; }

    // --- Recovery observability (tests / tools) ---------------------

    uint64_t retransmitCount() const
    {
        return static_cast<uint64_t>(retransmits.value());
    }

    uint64_t resyncCount() const
    {
        return static_cast<uint64_t>(resyncs.value());
    }

    uint64_t discardedFrames() const
    {
        return static_cast<uint64_t>(framesDiscarded.value());
    }

    uint64_t rekeysStartedCount() const
    {
        return static_cast<uint64_t>(rekeysStarted.value());
    }

    uint64_t rekeysCompletedCount() const
    {
        return static_cast<uint64_t>(rekeysCompleted.value());
    }

    uint64_t quarantineCount() const
    {
        return static_cast<uint64_t>(quarantines.value());
    }

    bool channelQuarantined(unsigned channel) const
    {
        return channelState[channel].health
               == ChannelHealth::Quarantined;
    }

  private:
    /** Link state of one channel under the recovery protocol. */
    enum class ChannelHealth : uint8_t
    {
        Active,      ///< normal operation
        Rekeying,    ///< handshake in flight, data traffic held
        Quarantined, ///< re-key failed repeatedly; out of service
    };

    struct PendingRead
    {
        MemPacket pkt;
        PacketCallback cb;
        bool dummy = false;
        /**
         * Retry state: when and how often the group was (re)sent, and
         * its plaintext contents so it can be rebuilt verbatim at
         * fresh counters (retransmits must never reuse a pad).
         */
        Tick lastSend = 0;
        unsigned attempts = 0;
        /** Plaintext headers/payload held for rebuild: secret until
         * re-encrypted at fresh counters. */
        OBF_SECRET WireHeader rbFirst{};
        OBF_SECRET WireHeader rbSecond{};
        OBF_SECRET DataBlock rbPayload{};
    };

    /** A write group waiting in the controller's write buffer. */
    struct QueuedWrite
    {
        MemPacket pkt;
        PacketCallback cb;
    };

    struct ChannelState
    {
        crypto::AesCtr tx; // processor -> memory
        crypto::AesCtr rx; // memory -> processor
        uint64_t reqCounter = 0;
        uint64_t respCounter = 0;
        uint16_t nextTag = 1;
        unsigned outstandingReads = 0;
        uint64_t dummyAddr = 0;
        ChannelBus *bus = nullptr;
        /** Production receiver (static dispatch). */
        ObfusMemMemSide *memSide = nullptr;
        /** Test/tooling intercept; overrides memSide when set. */
        std::function<void(WireMessage &&)> toMem;
        std::unordered_map<uint16_t, PendingRead> pending;
        std::deque<QueuedWrite> writeQueue;
        bool drainingWrites = false;
        /** Timing-oblivious mode: FIFO of requests awaiting an
         * epoch slot, and whether the heartbeat is running. */
        std::deque<QueuedWrite> epochQueue;
        bool heartbeatActive = false;
        /** Counter-ahead pad rings for the two counter streams. */
        PadPrefetcher txPads;
        PadPrefetcher rxPads;

        // --- Recovery / control-plane state -------------------------
        ChannelHealth health = ChannelHealth::Active;
        /** One rearming watchdog event per channel (wheel events
         * cannot be cancelled; the tick stops itself when idle). */
        bool watchdogActive = false;
        /** Control streams under controlKeyFor(session key): stay
         * decryptable while the data-plane key is replaced. */
        crypto::AesCtr ctlTx;
        crypto::AesCtr ctlRx;
        uint64_t ctlReqCounter = 0;
        /** Next expected control reply counter. */
        uint64_t ctlRespCursor = 0;
        /** Re-key handshake in flight. */
        uint32_t rekeyEpoch = 0;
        unsigned rekeyAttempts = 0;
        Tick rekeySentTick = 0;
        std::unique_ptr<crypto::DhEndpoint> dh;
        /** Response-chunk collection for the current epoch. */
        uint32_t respCollectEpoch = 0;
        uint8_t respCollectTotal = 0;
        uint32_t respCollectMask = 0;
        std::array<HandshakeChunk, 8> respChunks{};
        /** Requests held while the channel re-keys. */
        std::deque<QueuedWrite> rekeyHold;
    };

    /** Route one request after the front-end latency (health-aware). */
    void dispatch(unsigned channel, MemPacket pkt, PacketCallback cb);

    /** Send one request group (real + paired dummy) on a channel. */
    void sendGroup(unsigned channel, MemPacket pkt, PacketCallback cb);

    /** Drain buffered write groups per the read-priority policy. */
    void maybeDrainWrites(unsigned channel);

    /** Start heartbeats on every channel (timing-oblivious mode). */
    void ensureHeartbeats();

    /** One epoch tick of a channel's timing-oblivious issue slot. */
    void heartbeat(unsigned channel);

    /** True when nothing is queued or in flight anywhere. */
    bool quiescent() const;

    /** Send an all-dummy group (inter-channel fill). */
    void sendDummyGroup(unsigned channel);

    /** Inject dummies on other channels per the configured scheme. */
    void injectChannelDummies(unsigned active_channel);

    /**
     * Back half of the batch pipeline: batch-MAC + seal every staged
     * frame, then enqueue each on its channel's bus in stage order.
     */
    void flushBurst();

    /** Enqueue one sealed frame (bus callback owns the delivery). */
    void deliverStaged(unsigned channel, WireMessage &&msg,
                       BurstBatch::Completion &&done);

    /** Schedule zero-delay refills for a channel's depleted rings. */
    void schedulePadRefill(unsigned channel);

    uint64_t dummyAddrFor(unsigned channel, uint64_t real_addr);
    uint16_t allocTag(ChannelState &cs);

    // --- Recovery (see obfusmem/recovery.hh) ------------------------

    /** Arm the per-channel retry watchdog if it is not running. */
    void ensureWatchdog(unsigned channel);

    /** One watchdog period: retransmit overdue groups, escalate. */
    void watchdogTick(unsigned channel);

    /** Rebuild and resend a pending group at fresh counters. */
    void retransmitGroup(unsigned channel, uint16_t tag);

    /** Retries exhausted: renegotiate the channel's session key. */
    void startRekey(unsigned channel);

    /** Send (or resend) the handshake for the next epoch attempt. */
    void sendRekeyRequest(unsigned channel);

    /** Send one request-group-shaped frame pair on the control plane. */
    void sendControlGroup(unsigned channel, const DataBlock &payload);

    /**
     * A reply frame failed header decryption with recovery enabled:
     * trial-resync forward on the reply stream, interpret it as a
     * control-plane response, or discard it without consuming a
     * counter position.
     */
    void recoverReplyFrame(unsigned channel, WireMessage msg);

    /** Accumulate a handshake-response chunk from the memory side. */
    void handleControlReply(unsigned channel,
                            const HandshakeChunk &chunk);

    /** Install the new epoch key and replay outstanding groups. */
    void finishRekey(unsigned channel,
                     const std::vector<uint8_t> &peer_pub);

    /** Give up on a channel after repeated re-key failures. */
    void quarantineChannel(unsigned channel);

    /** Report a request-stream pad run to the auditor, if attached. */
    void notifyPads(unsigned channel, CounterStream stream,
                    uint64_t first, uint64_t count);

    ObfusMemParams params;
    const AddressMap &addrMap;
    MacEngine mac;
    /** SoA staging for all outbound frames of one call chain. */
    BurstBatch burst;
    std::vector<ChannelState> channelState;
    Random junkRng;
    Random rekeyRng{0xa11ce000};
    AuditHook *audit = nullptr;

    statistics::Scalar realReads, realWrites;
    statistics::Scalar pairedDummies;
    statistics::Scalar channelFillGroups;
    statistics::Scalar repliesDiscarded;
    statistics::Scalar macFailures, headerDesyncs;
    statistics::Scalar padsUsed;
    statistics::Scalar forwardedFromWriteQueue;
    statistics::Scalar realFillSubstitutions;
    statistics::Scalar pairSubstitutions;
    statistics::Scalar retransmits, framesDiscarded, resyncs;
    statistics::Scalar rekeysStarted, rekeysCompleted, quarantines;
    statistics::Scalar requestsDropped;
    PadPrefetchStats padPrefetch;
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_PROC_SIDE_HH
