/**
 * @file
 * The attacker's view: a passive probe on the exposed memory channels
 * that accumulates exactly the statistics the paper's threat model
 * says an observer can extract - spatial pattern, temporal pattern
 * (address reuse), request types, memory footprint, and inter-channel
 * activity correlation (paper Secs. 2.3, 3.2-3.4, 6.1).
 *
 * Tests assert that these statistics are informative on an
 * unprotected bus and degenerate (uniform / constant) under ObfusMem.
 */

#ifndef OBFUSMEM_OBFUSMEM_OBSERVER_HH
#define OBFUSMEM_OBFUSMEM_OBSERVER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/channel_bus.hh"

namespace obfusmem {

/**
 * Passive multi-channel bus observer.
 */
class BusObserver : public BusProbe
{
  public:
    /**
     * @param channels Number of channels probed.
     * @param bucket_ticks Time-bucket width for inter-channel
     *        correlation analysis.
     */
    explicit BusObserver(unsigned channels,
                         Tick bucket_ticks = 200 * tickPerNs);

    void observe(const BusSnoop &snoop) override;

    // --- Temporal / spatial / footprint analysis -------------------

    /** Total request messages seen (to-memory direction). */
    uint64_t requestMessages() const { return totalRequests; }

    /** Distinct wire addresses seen in request headers. */
    uint64_t distinctWireAddrs() const
    {
        return static_cast<uint64_t>(wireAddrs.size());
    }

    /**
     * Temporal reuse the observer can infer: fraction of request
     * messages whose wire address was seen before. ~0 under ObfusMem.
     */
    double addrReuseFraction() const;

    /**
     * Largest count of requests to a single wire address (dictionary
     * attack handle). 1 under ObfusMem.
     */
    uint64_t hottestAddrCount() const;

    // --- Request type analysis --------------------------------------

    /** Apparent writes (messages carrying payload toward memory). */
    uint64_t apparentWrites() const { return writesSeen; }
    /** Apparent reads (payload-less messages toward memory). */
    uint64_t apparentReads() const { return readsSeen; }

    /**
     * How far the observed read/write mix deviates from the 1:1 that
     * ObfusMem's read-then-write pairing enforces. 0 = perfect pairs.
     */
    double typeImbalance() const;

    // --- Inter-channel analysis --------------------------------------

    /**
     * Fraction of active time buckets in which exactly one channel
     * carried traffic: high when the spatial pattern leaks across
     * channel pins, ~0 under UNOPT/OPT dummy injection.
     */
    double soloBucketFraction() const;

    /** Per-channel request counts (balance check). */
    const std::vector<uint64_t> &channelRequests() const
    {
        return perChannelRequests;
    }

    /** Bytes seen per direction. */
    uint64_t bytesToMemory() const { return toMemBytes; }
    uint64_t bytesToProcessor() const { return toProcBytes; }

  private:
    void rolloverBucket(uint64_t new_bucket);

    unsigned channels;
    Tick bucketTicks;

    uint64_t totalRequests = 0;
    uint64_t readsSeen = 0;
    uint64_t writesSeen = 0;
    uint64_t toMemBytes = 0;
    uint64_t toProcBytes = 0;

    std::unordered_map<uint64_t, uint64_t> wireAddrs;
    uint64_t reusedRequests = 0;

    std::vector<uint64_t> perChannelRequests;

    uint64_t currentBucket = 0;
    uint32_t currentBucketMask = 0;
    uint64_t soloBuckets = 0;
    uint64_t activeBuckets = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_OBSERVER_HH
