/**
 * @file
 * MacEngine implementation.
 */

#include "obfusmem/mac_engine.hh"

#include <vector>

#include "crypto/bytes.hh"
#include "crypto/md5_lanes.hh"

namespace obfusmem {

namespace {

/** The MAC preimage: H(r | a | c) per the paper. */
constexpr size_t macMsgLen = 17;

void
packMacMessage(const WireHeader &hdr, uint64_t counter,
               uint8_t buf[macMsgLen])
{
    buf[0] = hdr.cmd == MemCmd::Write ? 1 : 0;
    crypto::storeLe64(buf + 1, hdr.addr);
    crypto::storeLe64(buf + 9, counter);
}

} // namespace

crypto::Md5Digest
MacEngine::compute(const WireHeader &hdr, uint64_t counter) const
{
    uint8_t buf[macMsgLen];
    packMacMessage(hdr, counter, buf);
    return crypto::Md5::digest(buf, sizeof(buf));
}

void
MacEngine::computeBatch(const WireHeader *hdrs,
                        const uint64_t *counters,
                        crypto::Md5Digest *out, size_t n) const
{
    // Pack the preimages contiguously and hand the whole batch to the
    // MD5 lanes: eight tags per AVX2 compression instead of one scalar
    // digest per message. Groups are small (2 messages), so the win
    // comes from the BurstBatch pipeline flushing many groups at once.
    constexpr size_t maxStack = 64;
    if (n <= maxStack) {
        uint8_t msgs[maxStack * macMsgLen];
        for (size_t i = 0; i < n; ++i)
            packMacMessage(hdrs[i], counters[i], msgs + i * macMsgLen);
        crypto::md5ShortBatch(msgs, macMsgLen, macMsgLen, n, out);
        return;
    }
    std::vector<uint8_t> msgs(n * macMsgLen);
    for (size_t i = 0; i < n; ++i)
        packMacMessage(hdrs[i], counters[i], msgs.data() + i * macMsgLen);
    crypto::md5ShortBatch(msgs.data(), macMsgLen, macMsgLen, n, out);
}

bool
MacEngine::verify(const WireHeader &hdr, uint64_t counter,
                  const crypto::Md5Digest &mac) const
{
    // Tag comparison must not leak the matching prefix length.
    return crypto::ctEqual(compute(hdr, counter), mac);
}

} // namespace obfusmem
