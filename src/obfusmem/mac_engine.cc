/**
 * @file
 * MacEngine implementation.
 */

#include "obfusmem/mac_engine.hh"

#include "crypto/bytes.hh"

namespace obfusmem {

crypto::Md5Digest
MacEngine::compute(const WireHeader &hdr, uint64_t counter) const
{
    // H(r | a | c) per the paper: type, address, counter.
    uint8_t buf[17];
    buf[0] = hdr.cmd == MemCmd::Write ? 1 : 0;
    crypto::storeLe64(buf + 1, hdr.addr);
    crypto::storeLe64(buf + 9, counter);
    return crypto::Md5::digest(buf, sizeof(buf));
}

void
MacEngine::computeBatch(const WireHeader *hdrs,
                        const uint64_t *counters,
                        crypto::Md5Digest *out, size_t n) const
{
    for (size_t i = 0; i < n; ++i)
        out[i] = compute(hdrs[i], counters[i]);
}

bool
MacEngine::verify(const WireHeader &hdr, uint64_t counter,
                  const crypto::Md5Digest &mac) const
{
    // Tag comparison must not leak the matching prefix length.
    return crypto::ctEqual(compute(hdr, counter), mac);
}

} // namespace obfusmem
