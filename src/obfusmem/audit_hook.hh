/**
 * @file
 * Endpoint-side audit instrumentation interface.
 *
 * The bus probe (mem/channel_bus.hh) only sees what an attacker sees:
 * ciphertext bytes and timing. Verifying the paper's *internal*
 * invariants - strictly monotonic per-channel counters, no pad (i.e.
 * counter value) ever consumed twice, both endpoints consuming the
 * same counter stream (Sec. 3.5) - needs the trusted endpoints to
 * report what counter values they actually burn. Controllers call an
 * AuditHook at every pad consumption and on every detected incident;
 * src/check/TraceAuditor implements it. The hook is optional and
 * null by default, so production configurations pay one pointer test
 * per event.
 */

#ifndef OBFUSMEM_OBFUSMEM_AUDIT_HOOK_HH
#define OBFUSMEM_OBFUSMEM_AUDIT_HOOK_HH

#include <cstdint>

#include "sim/types.hh"

namespace obfusmem {

/** Which trusted endpoint reports an event. */
enum class EndpointSide : uint8_t { Processor, Memory };

/**
 * Which counter stream a pad was drawn from. Requests flow processor
 * to memory, responses the other way; the two streams use distinct
 * CTR nonces (2c and 2c+1), so uniqueness is per stream.
 */
enum class CounterStream : uint8_t { Request, Response };

/** An anomaly a trusted endpoint detected on its own. */
enum class ChannelIncident : uint8_t
{
    /** Header failed to decrypt: counter desync / drop / injection. */
    HeaderDesync,
    /** MAC mismatch: tampering or replay. */
    MacMismatch,
    /** Well-formed reply carrying a tag with no outstanding request. */
    UnknownTag,
    /** Recovery discarded an unattributable frame (dup / replay). */
    FrameDiscarded,
    /** Receiver jumped its counters forward to a verified position. */
    CounterResync,
    /** Processor side initiated a re-key handshake. */
    RekeyStarted,
    /** An endpoint installed the new epoch key and reset counters. */
    RekeyCompleted,
    /** Re-key failed repeatedly; the channel is out of service. */
    ChannelQuarantined,
};

/** Human-readable endpoint-side name. */
const char *endpointSideName(EndpointSide side);
/** Human-readable counter-stream name. */
const char *counterStreamName(CounterStream stream);
/** Human-readable incident name. */
const char *channelIncidentName(ChannelIncident incident);

/**
 * Receiver of endpoint audit events. Implementations must tolerate
 * events from multiple channels interleaved in simulation order.
 */
class AuditHook
{
  public:
    virtual ~AuditHook() = default;

    /**
     * An endpoint consumed pads [first, first + count) of a stream.
     * Reported at the granularity the wire format burns them (header
     * pads singly, payload pads as a run of four), so gaps are legal
     * (the uniform-packet scheme skips the paired-header pad) but
     * overlaps never are.
     */
    virtual void onPadUse(Tick when, unsigned channel,
                          EndpointSide side, CounterStream stream,
                          uint64_t first, uint64_t count) = 0;

    /** An endpoint rejected a message. */
    virtual void onIncident(Tick when, unsigned channel,
                            EndpointSide side,
                            ChannelIncident incident) = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_AUDIT_HOOK_HH
