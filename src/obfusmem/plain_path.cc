/**
 * @file
 * PlainPath implementation.
 */

#include "obfusmem/plain_path.hh"

#include "util/logging.hh"

namespace obfusmem {

PlainPath::PlainPath(const std::string &name, EventQueue &eq,
                     statistics::Group *parent, const AddressMap &map,
                     const std::vector<ChannelBus *> &buses_,
                     const std::vector<PcmController *> &controllers_,
                     PacketPool &pool_, const Params &params_)
    : SimObject(name, eq, parent), addrMap(map), buses(buses_),
      controllers(controllers_), pool(pool_), params(params_),
      channelState(map.channels())
{
    fatal_if(buses.size() != map.channels()
                 || controllers.size() != map.channels(),
             "per-channel configuration size mismatch");
    stats().addScalar("reads", &reads, "read requests routed");
    stats().addScalar("writes", &writes, "write requests routed");
    stats().addScalar("forwardedFromWriteQueue",
                      &forwardedFromWriteQueue,
                      "reads served from the controller write buffer");
}

void
PlainPath::access(MemPacket pkt, PacketCallback cb)
{
    unsigned channel = addrMap.decode(pkt.addr).channel;
    ChannelState &cs = channelState[channel];

    if (pkt.isWrite()) {
        ++writes;
        cs.writeQueue.push_back({std::move(pkt), std::move(cb)});
        maybeDrainWrites(channel);
        return;
    }

    ++reads;
    // Write-buffer forwarding: reads observe buffered write data.
    for (auto it = cs.writeQueue.rbegin(); it != cs.writeQueue.rend();
         ++it) {
        if (it->pkt.addr == pkt.addr) {
            ++forwardedFromWriteQueue;
            pkt.data = it->pkt.data;
            cb(std::move(pkt));
            return;
        }
    }
    sendRead(channel, std::move(pkt), std::move(cb));
}

void
PlainPath::sendRead(unsigned channel, MemPacket pkt, PacketCallback cb)
{
    ChannelState &cs = channelState[channel];
    ++cs.outstandingReads;

    // Park the request in the pool and carry only the handle: every
    // closure below is {this, channel, h} — small enough for
    // std::function's inline storage, so no per-hop allocation.
    const uint64_t addr = pkt.addr;
    const PacketPool::Handle h =
        pool.acquire(std::move(pkt), std::move(cb));

    // Read requests ride the command pins; the address and command
    // bit are exposed to any snooper.
    // The fault injector only attaches to obfuscated configurations
    // (the recovery protocol lives there), so the plain path ignores
    // the always-clean fault verdict.
    buses[channel]->send(BusDir::ToMemory, 0, addr, false,
        [this, channel, h](const BusFault &) {
            PacketPool::Slot &slot = pool.at(h);
            controllers[channel]->access(std::move(slot.pkt),
                [this, channel, h](MemPacket &&resp) {
                    PacketPool::Slot &slot2 = pool.at(h);
                    slot2.pkt = std::move(resp);
                    const uint64_t raddr = slot2.pkt.addr;
                    const uint32_t bytes =
                        static_cast<uint32_t>(slot2.pkt.data.size());
                    buses[channel]->send(BusDir::ToProcessor, bytes,
                                         raddr, false,
                        [this, channel, h](const BusFault &) {
                            ChannelState &cs2 = channelState[channel];
                            --cs2.outstandingReads;
                            MemPacket resp2;
                            PacketCallback done;
                            pool.release(h, resp2, done);
                            done(std::move(resp2));
                            maybeDrainWrites(channel);
                        });
                });
        });
}

void
PlainPath::sendWrite(unsigned channel, MemPacket pkt, PacketCallback cb)
{
    const uint32_t bytes = static_cast<uint32_t>(pkt.data.size());
    const uint64_t addr = pkt.addr;
    const PacketPool::Handle h =
        pool.acquire(std::move(pkt), std::move(cb));

    buses[channel]->send(BusDir::ToMemory, bytes, addr, true,
        [this, channel, h](const BusFault &) {
            MemPacket wpkt;
            PacketCallback wcb;
            pool.release(h, wpkt, wcb);
            controllers[channel]->access(std::move(wpkt),
                                         std::move(wcb));
            // Keep the drain moving when no reads will retrigger it.
            maybeDrainWrites(channel);
        });
}

void
PlainPath::maybeDrainWrites(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (cs.writeQueue.size() >= params.writeQueueHighWatermark)
        cs.drainingWrites = true;

    while (!cs.writeQueue.empty()
           && (cs.drainingWrites || cs.outstandingReads == 0)) {
        QueuedWrite qw = std::move(cs.writeQueue.front());
        cs.writeQueue.pop_front();
        sendWrite(channel, std::move(qw.pkt), std::move(qw.cb));
        if (cs.writeQueue.size() <= params.writeQueueLowWatermark)
            cs.drainingWrites = false;
        if (!cs.drainingWrites)
            break;
    }
}

} // namespace obfusmem
