/**
 * @file
 * PlainPath implementation.
 */

#include "obfusmem/plain_path.hh"

#include "util/logging.hh"

namespace obfusmem {

PlainPath::PlainPath(const std::string &name, EventQueue &eq,
                     statistics::Group *parent, const AddressMap &map,
                     const std::vector<ChannelBus *> &buses_,
                     const std::vector<PcmController *> &controllers_,
                     const Params &params_)
    : SimObject(name, eq, parent), addrMap(map), buses(buses_),
      controllers(controllers_), params(params_),
      channelState(map.channels())
{
    fatal_if(buses.size() != map.channels()
                 || controllers.size() != map.channels(),
             "per-channel configuration size mismatch");
    stats().addScalar("reads", &reads, "read requests routed");
    stats().addScalar("writes", &writes, "write requests routed");
    stats().addScalar("forwardedFromWriteQueue",
                      &forwardedFromWriteQueue,
                      "reads served from the controller write buffer");
}

void
PlainPath::access(MemPacket pkt, PacketCallback cb)
{
    unsigned channel = addrMap.decode(pkt.addr).channel;
    ChannelState &cs = channelState[channel];

    if (pkt.isWrite()) {
        ++writes;
        cs.writeQueue.push_back({std::move(pkt), std::move(cb)});
        maybeDrainWrites(channel);
        return;
    }

    ++reads;
    // Write-buffer forwarding: reads observe buffered write data.
    for (auto it = cs.writeQueue.rbegin(); it != cs.writeQueue.rend();
         ++it) {
        if (it->pkt.addr == pkt.addr) {
            ++forwardedFromWriteQueue;
            pkt.data = it->pkt.data;
            cb(std::move(pkt));
            return;
        }
    }
    sendRead(channel, std::move(pkt), std::move(cb));
}

void
PlainPath::sendRead(unsigned channel, MemPacket pkt, PacketCallback cb)
{
    ChannelBus *bus = buses[channel];
    PcmController *pcm = controllers[channel];
    ChannelState &cs = channelState[channel];
    ++cs.outstandingReads;

    // Read requests ride the command pins; the address and command
    // bit are exposed to any snooper.
    bus->send(BusDir::ToMemory, 0, pkt.addr, false,
        [this, channel, bus, pcm, pkt = std::move(pkt),
         cb = std::move(cb)]() mutable {
            pcm->access(std::move(pkt),
                [this, channel, bus,
                 cb = std::move(cb)](MemPacket &&resp) mutable {
                    uint64_t addr = resp.addr;
                    uint32_t bytes =
                        static_cast<uint32_t>(resp.data.size());
                    bus->send(BusDir::ToProcessor, bytes, addr, false,
                        [this, channel, cb = std::move(cb),
                         resp = std::move(resp)]() mutable {
                            ChannelState &cs2 = channelState[channel];
                            --cs2.outstandingReads;
                            cb(std::move(resp));
                            maybeDrainWrites(channel);
                        });
                });
        });
}

void
PlainPath::sendWrite(unsigned channel, MemPacket pkt, PacketCallback cb)
{
    ChannelBus *bus = buses[channel];
    PcmController *pcm = controllers[channel];
    uint32_t bytes = static_cast<uint32_t>(pkt.data.size());
    uint64_t addr = pkt.addr;

    bus->send(BusDir::ToMemory, bytes, addr, true,
        [this, channel, pcm, pkt = std::move(pkt),
         cb = std::move(cb)]() mutable {
            pcm->access(std::move(pkt), std::move(cb));
            // Keep the drain moving when no reads will retrigger it.
            maybeDrainWrites(channel);
        });
}

void
PlainPath::maybeDrainWrites(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (cs.writeQueue.size() >= params.writeQueueHighWatermark)
        cs.drainingWrites = true;

    while (!cs.writeQueue.empty()
           && (cs.drainingWrites || cs.outstandingReads == 0)) {
        QueuedWrite qw = std::move(cs.writeQueue.front());
        cs.writeQueue.pop_front();
        sendWrite(channel, std::move(qw.pkt), std::move(qw.cb));
        if (cs.writeQueue.size() <= params.writeQueueLowWatermark)
            cs.drainingWrites = false;
        if (!cs.drainingWrites)
            break;
    }
}

} // namespace obfusmem
