/**
 * @file
 * Recovery knobs and control-plane key schedule.
 */

#include "obfusmem/recovery.hh"

#include <algorithm>

#include "crypto/bytes.hh"
#include "crypto/md5.hh"
#include "util/env.hh"

namespace obfusmem {

RecoveryParams
RecoveryParams::fromEnv()
{
    RecoveryParams p;
    p.enabled = env::u64("OBFUSMEM_RECOVERY", 1) != 0;
    p.retryTimeout =
        env::u64("OBFUSMEM_RETRY_TIMEOUT_NS", 50000) * tickPerNs;
    p.retryMax = static_cast<unsigned>(
        env::u64("OBFUSMEM_RETRY_MAX", p.retryMax));
    p.resyncWindowGroups = static_cast<unsigned>(
        env::u64("OBFUSMEM_RESYNC_WINDOW", p.resyncWindowGroups));
    p.rekeyMaxAttempts = static_cast<unsigned>(
        env::u64("OBFUSMEM_REKEY_MAX", p.rekeyMaxAttempts));
    return p;
}

const RecoveryParams &
defaultRecoveryParams()
{
    static const RecoveryParams latched = RecoveryParams::fromEnv();
    return latched;
}

crypto::Aes128::Key
controlKeyFor(const crypto::Aes128::Key &session)
{
    crypto::Md5 md5;
    md5.update(session.data(), session.size());
    static const uint8_t label[] = {'c', 't', 'l'};
    md5.update(label, sizeof(label));
    crypto::Md5Digest d = md5.finalize();
    crypto::Aes128::Key key;
    std::copy(d.begin(), d.end(), key.begin());
    // The digest *is* the control key; scrub the stack copy.
    crypto::secureZero(d);
    return key;
}

crypto::Aes128::Key
epochSessionKey(OBF_SECRET const crypto::Aes128::Key &dh_key,
                uint32_t epoch, unsigned channel)
{
    crypto::Md5 md5;
    md5.update(dh_key.data(), dh_key.size());
    uint8_t ctx[16];
    crypto::storeLe64(ctx, epoch);
    crypto::storeLe64(ctx + 8, channel);
    md5.update(ctx, sizeof(ctx));
    crypto::Md5Digest d = md5.finalize();
    crypto::Aes128::Key key;
    std::copy(d.begin(), d.end(), key.begin());
    // The digest *is* the epoch data-plane key; scrub the stack copy.
    crypto::secureZero(d);
    return key;
}

} // namespace obfusmem
