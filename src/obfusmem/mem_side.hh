/**
 * @file
 * The memory-side ObfusMem controller: the cryptographic logic that
 * the paper places in the logic layer of the 3D/2.5D memory stack.
 * It decrypts arriving request messages with its own synchronized
 * counters, verifies MACs, drops dummy writes, answers dummy reads
 * with junk, forwards real requests to the PCM banks, and encrypts
 * read replies back onto the channel.
 */

#ifndef OBFUSMEM_OBFUSMEM_MEM_SIDE_HH
#define OBFUSMEM_OBFUSMEM_MEM_SIDE_HH

#include <functional>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "mem/backing_store.hh"
#include "obfusmem/audit_hook.hh"
#include "mem/channel_bus.hh"
#include "mem/pcm_controller.hh"
#include "obfusmem/burst_batch.hh"
#include "obfusmem/params.hh"
#include "obfusmem/wire_format.hh"
#include "secure/pad_prefetcher.hh"
#include "sim/sim_object.hh"
#include "util/random.hh"
#include "util/secret.hh"

namespace obfusmem {

class ObfusMemProcSide;

/**
 * One channel's memory-side controller.
 */
class ObfusMemMemSide : public SimObject
{
  public:
    ObfusMemMemSide(const std::string &name, EventQueue &eq,
                    statistics::Group *parent,
                    const ObfusMemParams &params, unsigned channel_id,
                    OBF_SECRET const crypto::Aes128::Key &session_key,
                    ChannelBus &bus, PcmController &pcm,
                    const BackingStore &store, uint64_t dummy_addr);

    /** Deliver a request message that has crossed the bus. */
    void receiveMessage(WireMessage msg);

    /**
     * Wire the processor side for the statically dispatched
     * production reply path (no std::function hop per reply).
     */
    void setProcSide(ObfusMemProcSide *side) { procSide = side; }

    /**
     * Wire a reply intercept. The std::function hop survives as the
     * test/tooling override (fault injection, frame capture); when
     * set it takes precedence over the procSide pointer.
     */
    void
    setReplyTarget(std::function<void(WireMessage &&)> target)
    {
        replyTarget = std::move(target);
    }

    /** The reserved dummy block address for this channel. */
    uint64_t dummyAddr() const { return dummyBlockAddr; }

    uint64_t tamperDetections() const
    {
        return static_cast<uint64_t>(macFailures.value());
    }

    uint64_t desyncEvents() const
    {
        return static_cast<uint64_t>(headerDesyncs.value());
    }

    /** Test hook: skew the request counter to model message loss. */
    void skewRequestCounter(uint64_t delta)
    {
        reqCounter += delta;
        // Any cached group pads were generated from the old counter;
        // drop them so the next message decrypts (and fails) exactly
        // as it would have without the cache. The prefetch ring holds
        // pads for the unskewed sequence for the same reason.
        groupPadsValid = false;
        reqPads.invalidate();
    }

    /** Attach the trace auditor's endpoint hook (may be null). */
    void setAuditHook(AuditHook *hook) { audit = hook; }

    /** Pads consumed by this controller (paper Sec. 5.2 accounting). */
    uint64_t padsGenerated() const
    {
        return static_cast<uint64_t>(padsUsed.value());
    }

    /** Resynchronizations performed (recovery). */
    uint64_t resyncCount() const
    {
        return static_cast<uint64_t>(resyncs.value());
    }

    /** Unattributable frames discarded (recovery). */
    uint64_t discardedFrames() const
    {
        return static_cast<uint64_t>(framesDiscarded.value());
    }

    /** Re-key epochs installed on this side (recovery). */
    uint64_t rekeysInstalled() const
    {
        return static_cast<uint64_t>(rekeysCompleted.value());
    }

  private:
    void handleRequest(OBF_SECRET const WireHeader &hdr, bool has_data,
                       OBF_SECRET const DataBlock &plain_data,
                       uint64_t hdr_ctr);
    void sendReadReply(const WireHeader &req_hdr,
                       const DataBlock &data);

    /** Schedule zero-delay refills for depleted pad rings. */
    void schedulePadRefill();

    // --- Recovery (see obfusmem/recovery.hh) ------------------------

    /**
     * A frame failed data-plane header decryption with recovery on:
     * trial-resync forward on the data stream, interpret it as a
     * control-plane (re-key) frame, or discard it without consuming
     * a counter position.
     */
    void recoverRequestFrame(WireMessage msg);

    /** Jump the request cursor to a verified position, burning pads. */
    void resyncTo(uint64_t base, unsigned phase, WireMessage msg);

    /** Accumulate a re-key request chunk; install when complete. */
    void handleHandshakeChunk(const HandshakeChunk &chunk);

    /** (Re)send the stored handshake response at fresh counters. */
    void sendHandshakeResponse();

    /** Push a built reply-direction frame onto the bus. */
    void transmitReply(WireMessage msg);

    /** Batch-MAC + seal staged replies, then transmit in order. */
    void flushReplyBurst();

    ObfusMemParams params;
    unsigned channel;
    crypto::AesCtr rxCipher; // processor -> memory direction
    crypto::AesCtr txCipher; // memory -> processor direction
    MacEngine mac;
    ChannelBus &bus;
    PcmController &pcm;
    const BackingStore &store;
    uint64_t dummyBlockAddr;
    Random junkRng;
    AuditHook *audit = nullptr;

    /** Production reply receiver (static dispatch). */
    ObfusMemProcSide *procSide = nullptr;
    /** Test/tooling intercept; overrides procSide when set. */
    std::function<void(WireMessage &&)> replyTarget;

    /** SoA staging for outbound replies of one call chain. */
    BurstBatch replyBurst;

    uint64_t reqCounter = 0;
    /** Which message of the current request group is next (0 or 1). */
    unsigned groupPhase = 0;
    /**
     * Pads of the in-flight request group, batch-generated when the
     * group's first message arrives and reused for the second — the
     * hardware analogue of running the AES pipeline once per group.
     */
    OBF_SECRET std::array<crypto::Block128, countersPerRequestGroup>
        groupPads{};
    bool groupPadsValid = false;
    uint64_t respCounter = 0;

    /** Counter-ahead rings feeding the group staging and replies. */
    PadPrefetcher reqPads;
    PadPrefetcher replyPads;
    PadPrefetchStats padPrefetch;

    // --- Recovery / control-plane state -----------------------------
    //
    // The control plane is a second pair of CTR streams under a key
    // derived from the boot session key (controlKeyFor); it stays
    // decryptable while the data-plane key is being replaced. Its pad
    // consumption is not reported to the auditor - control traffic is
    // exactly data-shaped on the wire, which is what the auditor's
    // wire-level invariants check.
    crypto::AesCtr ctlRx; // processor -> memory control stream
    crypto::AesCtr ctlTx; // memory -> processor control stream
    /** Next expected control-group base on the rx control stream. */
    uint64_t ctlCursor = 0;
    /** Control reply counter on the tx control stream. */
    uint64_t ctlRespCounter = 0;
    Random rekeyRng;
    /** Last re-key epoch whose key this side installed (0 = none). */
    uint32_t installedEpoch = 0;
    /** In-progress handshake-chunk collection. */
    uint32_t collectEpoch = 0;
    uint8_t collectTotal = 0;
    uint32_t collectMask = 0;
    std::array<HandshakeChunk, 8> collectChunks{};
    /** Stored response payloads for idempotent resends. */
    std::vector<DataBlock> respPayloads;

    statistics::Scalar realReads, realWrites;
    statistics::Scalar dummyReadsAnswered, dummyWritesDropped;
    statistics::Scalar dummyPcmAccesses;
    statistics::Scalar macFailures, headerDesyncs;
    statistics::Scalar padsUsed;
    statistics::Scalar framesDiscarded, resyncs, rekeysCompleted;
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_MEM_SIDE_HH
