/**
 * @file
 * Audit event name tables.
 */

#include "obfusmem/audit_hook.hh"

namespace obfusmem {

const char *
endpointSideName(EndpointSide side)
{
    switch (side) {
      case EndpointSide::Processor: return "proc";
      case EndpointSide::Memory: return "mem";
    }
    return "?";
}

const char *
counterStreamName(CounterStream stream)
{
    switch (stream) {
      case CounterStream::Request: return "req";
      case CounterStream::Response: return "resp";
    }
    return "?";
}

const char *
channelIncidentName(ChannelIncident incident)
{
    switch (incident) {
      case ChannelIncident::HeaderDesync: return "header-desync";
      case ChannelIncident::MacMismatch: return "mac-mismatch";
      case ChannelIncident::UnknownTag: return "unknown-tag";
      case ChannelIncident::FrameDiscarded: return "frame-discarded";
      case ChannelIncident::CounterResync: return "counter-resync";
      case ChannelIncident::RekeyStarted: return "rekey-started";
      case ChannelIncident::RekeyCompleted: return "rekey-completed";
      case ChannelIncident::ChannelQuarantined:
        return "channel-quarantined";
    }
    return "?";
}

} // namespace obfusmem
