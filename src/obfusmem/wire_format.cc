/**
 * @file
 * Wire format implementation.
 */

#include "obfusmem/wire_format.hh"

#include <algorithm>

namespace obfusmem {

namespace {

/** Sanity magic embedded in every header plaintext. */
constexpr uint8_t magic0 = 0x0b;
constexpr uint8_t magic1 = 0xf5;

} // namespace

crypto::Block128
WireHeader::pack() const
{
    crypto::Block128 b{};
    b[0] = cmd == MemCmd::Write ? 1 : 0;
    crypto::storeLe64(b.data() + 1, addr);
    b[9] = static_cast<uint8_t>(tag);
    b[10] = static_cast<uint8_t>(tag >> 8);
    b[11] = magic0;
    b[12] = magic1;
    b[13] = dummy ? 1 : 0;
    return b;
}

std::optional<WireHeader>
WireHeader::unpack(const crypto::Block128 &b)
{
    if (b[11] != magic0 || b[12] != magic1 || b[0] > 1 || b[13] > 1)
        return std::nullopt;
    WireHeader hdr;
    hdr.cmd = b[0] ? MemCmd::Write : MemCmd::Read;
    hdr.addr = crypto::loadLe64(b.data() + 1);
    hdr.tag = static_cast<uint16_t>(b[9])
              | (static_cast<uint16_t>(b[10]) << 8);
    hdr.dummy = b[13] != 0;
    return hdr;
}

crypto::Block128
encryptHeader(const crypto::AesCtr &ctr, uint64_t counter,
              const WireHeader &hdr)
{
    return crypto::xorBlocks(hdr.pack(), ctr.pad(counter));
}

std::optional<WireHeader>
decryptHeader(const crypto::AesCtr &ctr, uint64_t counter,
              const crypto::Block128 &cipher)
{
    return WireHeader::unpack(
        crypto::xorBlocks(cipher, ctr.pad(counter)));
}

DataBlock
cryptPayload(const crypto::AesCtr &ctr, uint64_t counter,
             const DataBlock &in)
{
    DataBlock out = in;
    ctr.applyKeystream(out.data(), out.size(), counter);
    return out;
}

GroupPads
genGroupPads(const crypto::AesCtr &ctr, uint64_t counter)
{
    GroupPads pads;
    ctr.genPads(counter, pads.pad.data(), pads.pad.size());
    return pads;
}

ReplyPads
genReplyPads(const crypto::AesCtr &ctr, uint64_t counter)
{
    ReplyPads pads;
    ctr.genPads(counter, pads.pad.data(), pads.pad.size());
    return pads;
}

crypto::Block128
encryptHeaderWithPad(const crypto::Block128 &pad, const WireHeader &hdr)
{
    return crypto::xorBlocks(hdr.pack(), pad);
}

std::optional<WireHeader>
decryptHeaderWithPad(const crypto::Block128 &pad,
                     const crypto::Block128 &cipher)
{
    return WireHeader::unpack(crypto::xorBlocks(cipher, pad));
}

DataBlock
cryptPayloadWithPads(const crypto::Block128 pads[4], const DataBlock &in)
{
    DataBlock out = in;
    for (unsigned i = 0; i < 4 && 16 * i < out.size(); ++i)
        crypto::xorInto(out.data() + 16 * i, pads[i].data(), 16);
    return out;
}

WireMessage
makeHeaderMessage(const crypto::Block128 &hdr_pad,
                  const WireHeader &hdr)
{
    WireMessage msg;
    msg.cipherHeader = encryptHeaderWithPad(hdr_pad, hdr);
    return msg;
}

WireMessage
makeDataMessage(const crypto::Block128 &hdr_pad,
                const crypto::Block128 payload_pads[4],
                const WireHeader &hdr, const DataBlock &payload)
{
    WireMessage msg;
    msg.cipherHeader = encryptHeaderWithPad(hdr_pad, hdr);
    msg.hasData = true;
    msg.cipherData = cryptPayloadWithPads(payload_pads, payload);
    return msg;
}

void
attachMac(WireMessage &msg, const crypto::Md5Digest &digest)
{
    msg.hasMac = true;
    msg.mac = digest;
}

void
corruptHeaderBit(WireMessage &msg, uint64_t entropy)
{
    size_t bit = static_cast<size_t>(entropy % 128);
    msg.cipherHeader[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

size_t
FrameBatch::stageHeaderFrame(const crypto::Block128 &hdr_pad,
                             const WireHeader &hdr, uint64_t mac_counter)
{
    size_t slot = hdrs.size();
    hdrs.push_back(hdr);
    macCtrs.push_back(mac_counter);
    headerPads.push_back(hdr_pad);
    return slot;
}

size_t
FrameBatch::stageDataFrame(const crypto::Block128 &hdr_pad,
                           const crypto::Block128 payload_pads[4],
                           const WireHeader &hdr, const DataBlock &payload,
                           uint64_t mac_counter)
{
    size_t slot = hdrs.size();
    hdrs.push_back(hdr);
    macCtrs.push_back(mac_counter);
    headerPads.push_back(hdr_pad);
    dataSlots.push_back(static_cast<uint32_t>(slot));
    payloads.push_back(payload);
    auto &pads = payloadPads.emplace_back();
    std::copy_n(payload_pads, 4, pads.data());
    return slot;
}

void
FrameBatch::seal(OBF_SECRET const crypto::Md5Digest *macs,
                 WireMessage *out)
{
    const size_t n = hdrs.size();

    // Encrypt lane: pack + XOR every header back to back.
    for (size_t i = 0; i < n; ++i) {
        out[i] = WireMessage{};
        out[i].cipherHeader =
            encryptHeaderWithPad(headerPads[i], hdrs[i]);
    }

    // Payload lane: XOR every staged payload with its four pads.
    for (size_t j = 0; j < dataSlots.size(); ++j) {
        WireMessage &m = out[dataSlots[j]];
        m.hasData = true;
        m.cipherData =
            cryptPayloadWithPads(payloadPads[j].data(), payloads[j]);
    }

    // MAC lane: attach the batch-computed tags.
    if (macs) {
        for (size_t i = 0; i < n; ++i)
            attachMac(out[i], macs[i]);
    }

    clear();
}

void
FrameBatch::clear()
{
    hdrs.clear();
    macCtrs.clear();
    headerPads.clear();
    dataSlots.clear();
    payloads.clear();
    payloadPads.clear();
}

namespace {

/** Sanity magic marking a payload as a handshake chunk. */
constexpr uint8_t chunkMagic0 = 0xd4;
constexpr uint8_t chunkMagic1 = 0x48; // 'H'

} // namespace

DataBlock
packHandshakeChunk(const HandshakeChunk &c)
{
    DataBlock b{};
    b[0] = chunkMagic0;
    b[1] = chunkMagic1;
    b[2] = static_cast<uint8_t>(c.epoch);
    b[3] = static_cast<uint8_t>(c.epoch >> 8);
    b[4] = static_cast<uint8_t>(c.epoch >> 16);
    b[5] = static_cast<uint8_t>(c.epoch >> 24);
    b[6] = c.chunk;
    b[7] = c.total;
    b[8] = static_cast<uint8_t>(c.len);
    b[9] = static_cast<uint8_t>(c.len >> 8);
    std::copy_n(c.data.data(), handshakeChunkBytes, b.data() + 10);
    return b;
}

std::optional<HandshakeChunk>
unpackHandshakeChunk(const DataBlock &b)
{
    if (b[0] != chunkMagic0 || b[1] != chunkMagic1)
        return std::nullopt;
    HandshakeChunk c;
    c.epoch = static_cast<uint32_t>(b[2])
              | (static_cast<uint32_t>(b[3]) << 8)
              | (static_cast<uint32_t>(b[4]) << 16)
              | (static_cast<uint32_t>(b[5]) << 24);
    c.chunk = b[6];
    c.total = b[7];
    c.len = static_cast<uint16_t>(b[8])
            | (static_cast<uint16_t>(b[9]) << 8);
    if (c.total == 0 || c.chunk >= c.total
        || c.len > handshakeChunkBytes)
        return std::nullopt;
    std::copy_n(b.data() + 10, handshakeChunkBytes, c.data.data());
    return c;
}

} // namespace obfusmem
