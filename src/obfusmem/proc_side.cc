/**
 * @file
 * ObfusMemProcSide implementation.
 */

#include "obfusmem/proc_side.hh"

#include "util/assert.hh"
#include "util/logging.hh"

namespace obfusmem {

ObfusMemProcSide::ObfusMemProcSide(
    const std::string &name, EventQueue &eq, statistics::Group *parent,
    const ObfusMemParams &params_, const AddressMap &map,
    const std::vector<crypto::Aes128::Key> &session_keys,
    const std::vector<ChannelBus *> &buses,
    const std::vector<uint64_t> &dummy_addrs)
    : SimObject(name, eq, parent), params(params_), addrMap(map),
      mac(params_.mac), junkRng(0xd117e57)
{
    fatal_if(session_keys.size() != map.channels()
                 || buses.size() != map.channels()
                 || dummy_addrs.size() != map.channels(),
             "per-channel configuration size mismatch");

    channelState.resize(map.channels());
    for (unsigned c = 0; c < map.channels(); ++c) {
        ChannelState &cs = channelState[c];
        cs.tx.setKey(session_keys[c], 2ull * c);
        cs.rx.setKey(session_keys[c], 2ull * c + 1);
        cs.bus = buses[c];
        cs.dummyAddr = dummy_addrs[c];
        cs.txPads.configure(cs.tx, countersPerRequestGroup,
                            params.padPrefetchDepth, &padPrefetch);
        cs.rxPads.configure(cs.rx, countersPerReply,
                            params.padPrefetchDepth, &padPrefetch);
    }

    stats().addScalar("realReads", &realReads, "real reads sent");
    stats().addScalar("realWrites", &realWrites, "real writes sent");
    stats().addScalar("pairedDummies", &pairedDummies,
                      "dummies paired with real requests");
    stats().addScalar("channelFillGroups", &channelFillGroups,
                      "dummy groups injected on other channels");
    stats().addScalar("repliesDiscarded", &repliesDiscarded,
                      "dummy-read replies discarded");
    stats().addScalar("macFailures", &macFailures,
                      "reply MAC mismatches (tampering detected)");
    stats().addScalar("headerDesyncs", &headerDesyncs,
                      "undecryptable reply headers");
    stats().addScalar("padsUsed", &padsUsed,
                      "128-bit pads consumed by this controller");
    stats().addScalar("forwardedFromWriteQueue", &forwardedFromWriteQueue,
                      "reads served from the controller write buffer");
    stats().addScalar("realFillSubstitutions", &realFillSubstitutions,
                      "channel-fill dummies replaced by real writes");
    stats().addScalar("pairSubstitutions", &pairSubstitutions,
                      "paired dummy writes replaced by real writes");
    padPrefetch.regStats(stats());
}

void
ObfusMemProcSide::schedulePadRefill(unsigned channel)
{
    // Refills run from zero-delay events between protocol events (the
    // host analogue of idle AES-pipeline cycles). They read no
    // simulated state and emit no messages, so neither wire traffic
    // nor timing can change; only where the host pays for AES moves.
    ChannelState &cs = channelState[channel];
    if (cs.txPads.shouldScheduleRefill()) {
        scheduleAfter(0,
            [this, channel]() { channelState[channel].txPads.refill(); });
    }
    if (cs.rxPads.shouldScheduleRefill()) {
        scheduleAfter(0,
            [this, channel]() { channelState[channel].rxPads.refill(); });
    }
}

void
ObfusMemProcSide::notifyPads(unsigned channel, CounterStream stream,
                             uint64_t first, uint64_t count)
{
    if (audit) {
        audit->onPadUse(curTick(), channel, EndpointSide::Processor,
                        stream, first, count);
    }
}

uint16_t
ObfusMemProcSide::allocTag(ChannelState &cs)
{
    // Tags are 16-bit; skip ones still in flight.
    for (int tries = 0; tries < 70000; ++tries) {
        uint16_t tag = cs.nextTag++;
        if (tag != 0 && !cs.pending.count(tag))
            return tag;
    }
    panic("tag space exhausted");
}

uint64_t
ObfusMemProcSide::dummyAddrFor(unsigned channel, uint64_t real_addr)
{
    switch (params.dummyPolicy) {
      case DummyPolicy::Fixed:
        return channelState[channel].dummyAddr;
      case DummyPolicy::Original:
        return real_addr;
      case DummyPolicy::Random: {
        // A random block on the same channel.
        DecodedAddr loc;
        loc.channel = channel;
        loc.rank = static_cast<unsigned>(
            junkRng.randUnder(addrMap.ranksPerChannel()));
        loc.bank = static_cast<unsigned>(
            junkRng.randUnder(addrMap.banksPerRank()));
        loc.row = junkRng.randUnder(addrMap.rowsPerBank());
        loc.column = static_cast<unsigned>(
            junkRng.randUnder(addrMap.blocksPerRow()));
        return addrMap.encode(loc);
      }
    }
    panic("unreachable");
}

void
ObfusMemProcSide::access(MemPacket pkt, PacketCallback cb)
{
    unsigned channel = addrMap.decode(pkt.addr).channel;
    OBF_DCHECK(channel < channelState.size(),
               "decoded channel ", channel, " out of range");

    // Session Key Table lookup + pad XOR (+ MAC latency when
    // authenticating) before the messages reach the bus. Pads are
    // pregenerated because future counter values are known.
    Tick lat = params.keyTableLatency + params.xorLatency
               + (params.auth ? mac.senderLatency() : 0);
    scheduleAfter(lat,
        [this, channel, pkt = std::move(pkt),
         cb = std::move(cb)]() mutable {
            ChannelState &cs = channelState[channel];
            if (params.timingOblivious) {
                // Requests wait for their channel's next epoch slot;
                // the wire carries one group per epoch regardless.
                cs.epochQueue.push_back(
                    {std::move(pkt), std::move(cb)});
                ensureHeartbeats();
                return;
            }
            if (pkt.isWrite()) {
                // Writes are buffered; reads have channel priority.
                cs.writeQueue.push_back(
                    {std::move(pkt), std::move(cb)});
                maybeDrainWrites(channel);
                return;
            }
            // Write-buffer forwarding: a read must observe buffered
            // write data, and never needs the channel for it.
            for (auto it = cs.writeQueue.rbegin();
                 it != cs.writeQueue.rend(); ++it) {
                if (it->pkt.addr == pkt.addr) {
                    ++forwardedFromWriteQueue;
                    pkt.data = it->pkt.data;
                    cb(std::move(pkt));
                    return;
                }
            }
            injectChannelDummies(channel);
            sendGroup(channel, std::move(pkt), std::move(cb));
        });
}

bool
ObfusMemProcSide::quiescent() const
{
    for (const ChannelState &cs : channelState) {
        if (!cs.epochQueue.empty() || cs.outstandingReads > 0
            || !cs.writeQueue.empty()) {
            return false;
        }
    }
    return true;
}

void
ObfusMemProcSide::ensureHeartbeats()
{
    for (unsigned c = 0; c < channelState.size(); ++c) {
        ChannelState &cs = channelState[c];
        if (!cs.heartbeatActive) {
            cs.heartbeatActive = true;
            scheduleAfter(0, [this, c]() { heartbeat(c); });
        }
    }
}

void
ObfusMemProcSide::heartbeat(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (quiescent()) {
        // Pause the constant-rate stream only when the controller is
        // globally idle; attackers learn at most the program's
        // coarse activity envelope (paper Sec. 6.1's footprint
        // caveat applies the same way).
        cs.heartbeatActive = false;
        return;
    }

    if (!cs.epochQueue.empty()) {
        QueuedWrite req = std::move(cs.epochQueue.front());
        cs.epochQueue.pop_front();
        sendGroup(channel, std::move(req.pkt), std::move(req.cb));
    } else {
        sendDummyGroup(channel);
    }
    scheduleAfter(params.issueEpoch,
                  [this, channel]() { heartbeat(channel); });
}

void
ObfusMemProcSide::maybeDrainWrites(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (cs.writeQueue.size() >= params.writeQueueHighWatermark)
        cs.drainingWrites = true;

    while (!cs.writeQueue.empty()
           && cs.pending.size() < params.maxOutstandingGroups
           && (cs.drainingWrites || cs.outstandingReads == 0)) {
        QueuedWrite qw = std::move(cs.writeQueue.front());
        cs.writeQueue.pop_front();
        sendGroup(channel, std::move(qw.pkt), std::move(qw.cb));
        if (cs.writeQueue.size() <= params.writeQueueLowWatermark)
            cs.drainingWrites = false;
        if (!cs.drainingWrites)
            break; // the dummy read now outstanding paces us
    }
}

void
ObfusMemProcSide::sendGroup(unsigned channel, MemPacket pkt,
                            PacketCallback cb)
{
    ChannelState &cs = channelState[channel];
    uint64_t ctr = cs.reqCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);
    cs.reqCounter += countersPerRequestGroup;
    padsUsed += countersPerRequestGroup;
    if (params.uniformPackets) {
        notifyPads(channel, CounterStream::Request, ctr,
                   countersPerRequestGroup);
    } else {
        // Split scheme: the read message burns pad ctr, the paired
        // write burns ctr+1 (header) and ctr+2..5 (payload).
        notifyPads(channel, CounterStream::Request, ctr, 1);
        notifyPads(channel, CounterStream::Request, ctr + 1,
                   countersPerRequestGroup - 1);
    }

    // The prefetch ring usually has the group's pads already; a miss
    // batch-generates them on the spot (same bytes either way).
    GroupPads pads;
    cs.txPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);

    if (params.uniformPackets) {
        // One fixed-size message per request; every request expects a
        // fixed-size reply.
        WireHeader hdr;
        hdr.cmd = pkt.cmd;
        hdr.addr = pkt.addr;
        hdr.tag = allocTag(cs);
        const bool is_read = pkt.isRead();

        DataBlock payload;
        if (is_read) {
            junkRng.fillBytes(payload.data(), payload.size());
        } else {
            payload = pkt.data;
        }

        WireMessage msg;
        msg.cipherHeader = encryptHeaderWithPad(pads.pad[0], hdr);
        msg.hasData = true;
        msg.cipherData = cryptPayloadWithPads(&pads.pad[2], payload);
        if (params.auth) {
            msg.hasMac = true;
            msg.mac = mac.compute(hdr, ctr);
        }

        ++cs.outstandingReads;
        if (is_read) {
            ++realReads;
            cs.pending[hdr.tag] = {std::move(pkt), std::move(cb),
                                   false};
            transmit(channel, std::move(msg));
        } else {
            ++realWrites;
            // The write's junk reply is discarded; completion is
            // posted at delivery, as in the split scheme.
            cs.pending[hdr.tag] = {MemPacket{}, nullptr, true};
            uint64_t snoop_addr = msg.snoopAddr();
            uint32_t bytes = msg.wireBytes(params.headerWireBytes,
                                           params.macWireBytes);
            cs.bus->send(BusDir::ToMemory, bytes, snoop_addr, true,
                [this, channel, msg = std::move(msg),
                 pkt = std::move(pkt),
                 cb = std::move(cb)]() mutable {
                    ChannelState &cs2 = channelState[channel];
                    panic_if(!cs2.toMem, "no request target wired");
                    cs2.toMem(std::move(msg));
                    if (cb)
                        cb(std::move(pkt));
                });
        }
        return;
    }

    if (pkt.isRead()) {
        ++realReads;
        ++pairedDummies;
        // Message 1: the real read request.
        WireHeader hdr;
        hdr.cmd = MemCmd::Read;
        hdr.addr = pkt.addr;
        hdr.tag = allocTag(cs);
        cs.pending[hdr.tag] = {std::move(pkt), std::move(cb), false};
        ++cs.outstandingReads;

        WireMessage msg1;
        msg1.cipherHeader = encryptHeaderWithPad(pads.pad[0], hdr);
        if (params.auth) {
            msg1.hasMac = true;
            msg1.mac = mac.compute(hdr, ctr);
        }
        transmit(channel, std::move(msg1));

        // Message 2: the paired write. When writes are piling up, a
        // real one substitutes for the dummy - same wire pattern, no
        // wasted bandwidth (the Sec. 3.3 optimization that makes the
        // split scheme beat uniform packets). Below the watermark the
        // droppable dummy is cheaper for the PCM banks.
        if (cs.writeQueue.size() > params.writeQueueLowWatermark) {
            ++pairSubstitutions;
            QueuedWrite qw = std::move(cs.writeQueue.front());
            cs.writeQueue.pop_front();

            WireHeader whdr;
            whdr.cmd = MemCmd::Write;
            whdr.addr = qw.pkt.addr;
            WireMessage msg2;
            msg2.cipherHeader =
                encryptHeaderWithPad(pads.pad[1], whdr);
            msg2.hasData = true;
            msg2.cipherData =
                cryptPayloadWithPads(&pads.pad[2], qw.pkt.data);
            if (params.auth) {
                msg2.hasMac = true;
                msg2.mac = mac.compute(whdr, ctr + 1);
            }
            uint64_t snoop_addr = msg2.snoopAddr();
            uint32_t bytes = msg2.wireBytes(params.headerWireBytes,
                                            params.macWireBytes);
            cs.bus->send(BusDir::ToMemory, bytes, snoop_addr, true,
                [this, channel, msg2 = std::move(msg2),
                 qw = std::move(qw)]() mutable {
                    ChannelState &cs2 = channelState[channel];
                    panic_if(!cs2.toMem, "no request target wired");
                    cs2.toMem(std::move(msg2));
                    if (qw.cb)
                        qw.cb(std::move(qw.pkt));
                });
            return;
        }

        WireHeader dummy_hdr;
        dummy_hdr.cmd = MemCmd::Write;
        dummy_hdr.addr = dummyAddrFor(channel, hdr.addr);
        dummy_hdr.dummy = true;
        WireMessage msg2;
        msg2.cipherHeader =
            encryptHeaderWithPad(pads.pad[1], dummy_hdr);
        msg2.hasData = true;
        DataBlock junk;
        junkRng.fillBytes(junk.data(), junk.size());
        msg2.cipherData = cryptPayloadWithPads(&pads.pad[2], junk);
        if (params.auth) {
            msg2.hasMac = true;
            msg2.mac = mac.compute(dummy_hdr, ctr + 1);
        }
        transmit(channel, std::move(msg2));
        return;
    }

    // Real write: preceded by a dummy read (reads are latency
    // critical, writes are not - paper Sec. 3.3). Both headers are
    // known up front, so the two MACs are computed in one batch.
    ++realWrites;
    ++pairedDummies;
    WireHeader dummy_hdr;
    dummy_hdr.cmd = MemCmd::Read;
    dummy_hdr.addr = dummyAddrFor(channel, pkt.addr);
    dummy_hdr.dummy = true;
    dummy_hdr.tag = allocTag(cs);
    cs.pending[dummy_hdr.tag] = {MemPacket{}, nullptr, true};
    ++cs.outstandingReads;

    WireHeader hdr;
    hdr.cmd = MemCmd::Write;
    hdr.addr = pkt.addr;

    crypto::Md5Digest macs[2];
    if (params.auth) {
        const WireHeader hdrs[2] = {dummy_hdr, hdr};
        const uint64_t ctrs[2] = {ctr, ctr + 1};
        mac.computeBatch(hdrs, ctrs, macs, 2);
    }

    WireMessage msg1;
    msg1.cipherHeader = encryptHeaderWithPad(pads.pad[0], dummy_hdr);
    if (params.auth) {
        msg1.hasMac = true;
        msg1.mac = macs[0];
    }
    transmit(channel, std::move(msg1));

    WireMessage msg2;
    msg2.cipherHeader = encryptHeaderWithPad(pads.pad[1], hdr);
    msg2.hasData = true;
    // Second encryption on top of the memory-encryption ciphertext:
    // hides temporal reuse of unmodified data (Observation 1).
    msg2.cipherData = cryptPayloadWithPads(&pads.pad[2], pkt.data);
    if (params.auth) {
        msg2.hasMac = true;
        msg2.mac = macs[1];
    }

    // The write is posted: complete it to the requester when the
    // message has fully crossed the bus.
    ChannelState &state = channelState[channel];
    uint64_t snoop_addr = msg2.snoopAddr();
    uint32_t bytes = msg2.wireBytes(params.headerWireBytes, params.macWireBytes);
    bool is_data = msg2.hasData;
    state.bus->send(BusDir::ToMemory, bytes, snoop_addr, is_data,
        [this, channel, msg2 = std::move(msg2), pkt = std::move(pkt),
         cb = std::move(cb)]() mutable {
            ChannelState &cs2 = channelState[channel];
            panic_if(!cs2.toMem, "no request target wired");
            cs2.toMem(std::move(msg2));
            if (cb)
                cb(std::move(pkt));
        });
}

void
ObfusMemProcSide::sendDummyGroup(unsigned channel)
{
    ++channelFillGroups;
    ChannelState &cs = channelState[channel];
    uint64_t ctr = cs.reqCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);
    cs.reqCounter += countersPerRequestGroup;
    padsUsed += countersPerRequestGroup;
    if (params.uniformPackets) {
        notifyPads(channel, CounterStream::Request, ctr,
                   countersPerRequestGroup);
    } else {
        notifyPads(channel, CounterStream::Request, ctr, 1);
        notifyPads(channel, CounterStream::Request, ctr + 1,
                   countersPerRequestGroup - 1);
    }

    GroupPads pads;
    cs.txPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);

    if (params.uniformPackets) {
        // One uniform dummy read message fills the channel.
        WireHeader rd;
        rd.cmd = MemCmd::Read;
        rd.addr = cs.dummyAddr;
        rd.dummy = true;
        rd.tag = allocTag(cs);
        cs.pending[rd.tag] = {MemPacket{}, nullptr, true};
        ++cs.outstandingReads;

        WireMessage msg;
        msg.cipherHeader = encryptHeaderWithPad(pads.pad[0], rd);
        msg.hasData = true;
        DataBlock junk;
        junkRng.fillBytes(junk.data(), junk.size());
        msg.cipherData = cryptPayloadWithPads(&pads.pad[2], junk);
        if (params.auth) {
            msg.hasMac = true;
            msg.mac = mac.compute(rd, ctr);
        }
        transmit(channel, std::move(msg));
        return;
    }

    WireHeader rd;
    rd.cmd = MemCmd::Read;
    rd.addr = dummyAddrFor(channel, cs.dummyAddr);
    rd.dummy = true;
    rd.tag = allocTag(cs);
    cs.pending[rd.tag] = {MemPacket{}, nullptr, true};
    ++cs.outstandingReads;

    WireHeader wr;
    wr.cmd = MemCmd::Write;
    wr.addr = dummyAddrFor(channel, cs.dummyAddr);
    wr.dummy = true;

    crypto::Md5Digest macs[2];
    if (params.auth) {
        const WireHeader hdrs[2] = {rd, wr};
        const uint64_t ctrs[2] = {ctr, ctr + 1};
        mac.computeBatch(hdrs, ctrs, macs, 2);
    }

    WireMessage msg1;
    msg1.cipherHeader = encryptHeaderWithPad(pads.pad[0], rd);
    if (params.auth) {
        msg1.hasMac = true;
        msg1.mac = macs[0];
    }
    transmit(channel, std::move(msg1));

    WireMessage msg2;
    msg2.cipherHeader = encryptHeaderWithPad(pads.pad[1], wr);
    msg2.hasData = true;
    DataBlock junk;
    junkRng.fillBytes(junk.data(), junk.size());
    msg2.cipherData = cryptPayloadWithPads(&pads.pad[2], junk);
    if (params.auth) {
        msg2.hasMac = true;
        msg2.mac = macs[1];
    }
    transmit(channel, std::move(msg2));
}

void
ObfusMemProcSide::injectChannelDummies(unsigned active_channel)
{
    if (params.channelScheme == ChannelScheme::None
        || channelState.size() <= 1) {
        return;
    }
    for (unsigned c = 0; c < channelState.size(); ++c) {
        if (c == active_channel)
            continue;
        ChannelState &cs = channelState[c];
        if (params.channelScheme == ChannelScheme::Opt) {
            bool idle = cs.bus->idle() && cs.outstandingReads == 0;
            if (!idle)
                continue;
        }
        // Substitute a real buffered write for the dummy when one is
        // waiting: same wire pattern, no wasted bandwidth (Sec. 3.3).
        if (!cs.writeQueue.empty()) {
            ++realFillSubstitutions;
            QueuedWrite qw = std::move(cs.writeQueue.front());
            cs.writeQueue.pop_front();
            sendGroup(c, std::move(qw.pkt), std::move(qw.cb));
            continue;
        }
        sendDummyGroup(c);
    }
}

void
ObfusMemProcSide::transmit(unsigned channel, WireMessage msg)
{
    ChannelState &cs = channelState[channel];
    uint64_t snoop_addr = msg.snoopAddr();
    uint32_t bytes = msg.wireBytes(params.headerWireBytes, params.macWireBytes);
    bool is_data = msg.hasData;
    cs.bus->send(BusDir::ToMemory, bytes, snoop_addr, is_data,
        [this, channel, msg = std::move(msg)]() mutable {
            ChannelState &cs2 = channelState[channel];
            panic_if(!cs2.toMem, "no request target wired");
            cs2.toMem(std::move(msg));
        });
}

void
ObfusMemProcSide::receiveReply(unsigned channel, WireMessage &&msg)
{
    OBF_ASSERT(channel < channelState.size(),
               "reply for unknown channel ", channel);
    ChannelState &cs = channelState[channel];
    uint64_t ctr = cs.respCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerReply,
               "response counter exhausted on channel ", channel);
    cs.respCounter += countersPerReply;
    padsUsed += countersPerReply;
    notifyPads(channel, CounterStream::Response, ctr,
               countersPerReply);

    ReplyPads pads;
    cs.rxPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);
    std::optional<WireHeader> hdr =
        decryptHeaderWithPad(pads.header(), msg.cipherHeader);
    if (!hdr) {
        ++headerDesyncs;
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Processor,
                              ChannelIncident::HeaderDesync);
        }
        return;
    }
    if (params.auth) {
        if (!msg.hasMac || !mac.verify(*hdr, ctr, msg.mac)) {
            ++macFailures;
            if (audit) {
                audit->onIncident(curTick(), channel,
                                  EndpointSide::Processor,
                                  ChannelIncident::MacMismatch);
            }
            return;
        }
    }

    DataBlock data = cryptPayloadWithPads(pads.payload(), msg.cipherData);

    auto it = cs.pending.find(hdr->tag);
    if (it == cs.pending.end()) {
        ++headerDesyncs; // reply for an unknown tag
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Processor,
                              ChannelIncident::UnknownTag);
        }
        return;
    }
    PendingRead pending = std::move(it->second);
    cs.pending.erase(it);
    panic_if(cs.outstandingReads == 0, "outstanding underflow");
    --cs.outstandingReads;

    if (pending.dummy) {
        ++repliesDiscarded;
        maybeDrainWrites(channel);
        return;
    }

    Tick lat = params.xorLatency
               + (params.auth ? mac.receiverLatency() : 0);
    scheduleAfter(lat,
        [pending = std::move(pending), data]() mutable {
            pending.pkt.data = data;
            pending.cb(std::move(pending.pkt));
        });
    maybeDrainWrites(channel);
}

} // namespace obfusmem
