/**
 * @file
 * ObfusMemProcSide implementation.
 */

#include "obfusmem/proc_side.hh"

#include <algorithm>

#include "obfusmem/mem_side.hh"
#include "util/assert.hh"
#include "util/logging.hh"

namespace obfusmem {

ObfusMemProcSide::ObfusMemProcSide(
    const std::string &name, EventQueue &eq, statistics::Group *parent,
    const ObfusMemParams &params_, const AddressMap &map,
    const std::vector<crypto::Aes128::Key> &session_keys,
    const std::vector<ChannelBus *> &buses,
    const std::vector<uint64_t> &dummy_addrs)
    : SimObject(name, eq, parent), params(params_), addrMap(map),
      mac(params_.mac), junkRng(0xd117e57)
{
    fatal_if(session_keys.size() != map.channels()
                 || buses.size() != map.channels()
                 || dummy_addrs.size() != map.channels(),
             "per-channel configuration size mismatch");

    channelState.resize(map.channels());
    for (unsigned c = 0; c < map.channels(); ++c) {
        ChannelState &cs = channelState[c];
        cs.tx.setKey(session_keys[c], 2ull * c);
        cs.rx.setKey(session_keys[c], 2ull * c + 1);
        cs.ctlTx.setKey(controlKeyFor(session_keys[c]),
                        controlNonceBase + 2ull * c);
        cs.ctlRx.setKey(controlKeyFor(session_keys[c]),
                        controlNonceBase + 2ull * c + 1);
        cs.bus = buses[c];
        cs.dummyAddr = dummy_addrs[c];
        cs.txPads.configure(cs.tx, countersPerRequestGroup,
                            params.padPrefetchDepth, &padPrefetch);
        cs.rxPads.configure(cs.rx, countersPerReply,
                            params.padPrefetchDepth, &padPrefetch);
    }

    stats().addScalar("realReads", &realReads, "real reads sent");
    stats().addScalar("realWrites", &realWrites, "real writes sent");
    stats().addScalar("pairedDummies", &pairedDummies,
                      "dummies paired with real requests");
    stats().addScalar("channelFillGroups", &channelFillGroups,
                      "dummy groups injected on other channels");
    stats().addScalar("repliesDiscarded", &repliesDiscarded,
                      "dummy-read replies discarded");
    stats().addScalar("macFailures", &macFailures,
                      "reply MAC mismatches (tampering detected)");
    stats().addScalar("headerDesyncs", &headerDesyncs,
                      "undecryptable reply headers");
    stats().addScalar("padsUsed", &padsUsed,
                      "128-bit pads consumed by this controller");
    stats().addScalar("forwardedFromWriteQueue", &forwardedFromWriteQueue,
                      "reads served from the controller write buffer");
    stats().addScalar("realFillSubstitutions", &realFillSubstitutions,
                      "channel-fill dummies replaced by real writes");
    stats().addScalar("pairSubstitutions", &pairSubstitutions,
                      "paired dummy writes replaced by real writes");
    stats().addScalar("retransmits", &retransmits,
                      "request groups retransmitted at fresh counters");
    stats().addScalar("framesDiscarded", &framesDiscarded,
                      "unattributable reply frames discarded");
    stats().addScalar("resyncs", &resyncs,
                      "forward counter resynchronizations");
    stats().addScalar("rekeysStarted", &rekeysStarted,
                      "re-key handshakes initiated");
    stats().addScalar("rekeysCompleted", &rekeysCompleted,
                      "re-key epochs installed");
    stats().addScalar("quarantines", &quarantines,
                      "channels taken out of service");
    stats().addScalar("requestsDropped", &requestsDropped,
                      "requests dropped on quarantined channels");
    padPrefetch.regStats(stats());
}

void
ObfusMemProcSide::schedulePadRefill(unsigned channel)
{
    // Refills run from zero-delay events between protocol events (the
    // host analogue of idle AES-pipeline cycles). They read no
    // simulated state and emit no messages, so neither wire traffic
    // nor timing can change; only where the host pays for AES moves.
    ChannelState &cs = channelState[channel];
    if (cs.txPads.shouldScheduleRefill()) {
        scheduleAfter(0,
            [this, channel]() { channelState[channel].txPads.refill(); });
    }
    if (cs.rxPads.shouldScheduleRefill()) {
        scheduleAfter(0,
            [this, channel]() { channelState[channel].rxPads.refill(); });
    }
}

void
ObfusMemProcSide::notifyPads(unsigned channel, CounterStream stream,
                             uint64_t first, uint64_t count)
{
    if (audit) {
        audit->onPadUse(curTick(), channel, EndpointSide::Processor,
                        stream, first, count);
    }
}

uint16_t
ObfusMemProcSide::allocTag(ChannelState &cs)
{
    // Tags are 16-bit; skip ones still in flight.
    for (int tries = 0; tries < 70000; ++tries) {
        uint16_t tag = cs.nextTag++;
        if (tag != 0 && !cs.pending.count(tag))
            return tag;
    }
    panic("tag space exhausted");
}

uint64_t
ObfusMemProcSide::dummyAddrFor(unsigned channel, uint64_t real_addr)
{
    switch (params.dummyPolicy) {
      case DummyPolicy::Fixed:
        return channelState[channel].dummyAddr;
      case DummyPolicy::Original:
        return real_addr;
      case DummyPolicy::Random: {
        // A random block on the same channel.
        DecodedAddr loc;
        loc.channel = channel;
        loc.rank = static_cast<unsigned>(
            junkRng.randUnder(addrMap.ranksPerChannel()));
        loc.bank = static_cast<unsigned>(
            junkRng.randUnder(addrMap.banksPerRank()));
        loc.row = junkRng.randUnder(addrMap.rowsPerBank());
        loc.column = static_cast<unsigned>(
            junkRng.randUnder(addrMap.blocksPerRow()));
        return addrMap.encode(loc);
      }
    }
    panic("unreachable");
}

void
ObfusMemProcSide::access(MemPacket pkt, PacketCallback cb)
{
    unsigned channel = addrMap.decode(pkt.addr).channel;
    OBF_DCHECK(channel < channelState.size(),
               "decoded channel ", channel, " out of range");

    // Session Key Table lookup + pad XOR (+ MAC latency when
    // authenticating) before the messages reach the bus. Pads are
    // pregenerated because future counter values are known.
    Tick lat = params.keyTableLatency + params.xorLatency
               + (params.auth ? mac.senderLatency() : 0);
    scheduleAfter(lat,
        [this, channel, pkt = std::move(pkt),
         cb = std::move(cb)]() mutable {
            dispatch(channel, std::move(pkt), std::move(cb));
        });
}

void
ObfusMemProcSide::dispatch(unsigned channel, MemPacket pkt,
                           PacketCallback cb)
{
    // One request can fan out into many frames (its own group, fill
    // dummies on every other channel, a write drain); the whole chain
    // stages into one burst that flushes when this scope closes.
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    if (cs.health == ChannelHealth::Quarantined) {
        // The channel is out of service; the request cannot be
        // delivered. Reads simply never complete.
        ++requestsDropped;
        return;
    }
    if (cs.health == ChannelHealth::Rekeying) {
        // Data traffic pauses while the key is renegotiated; the
        // held requests replay when the new epoch installs.
        cs.rekeyHold.push_back({std::move(pkt), std::move(cb)});
        return;
    }
    if (params.timingOblivious) {
        // Requests wait for their channel's next epoch slot;
        // the wire carries one group per epoch regardless.
        cs.epochQueue.push_back({std::move(pkt), std::move(cb)});
        ensureHeartbeats();
        return;
    }
    if (pkt.isWrite()) {
        // Writes are buffered; reads have channel priority.
        cs.writeQueue.push_back({std::move(pkt), std::move(cb)});
        maybeDrainWrites(channel);
        return;
    }
    // Write-buffer forwarding: a read must observe buffered
    // write data, and never needs the channel for it.
    for (auto it = cs.writeQueue.rbegin();
         it != cs.writeQueue.rend(); ++it) {
        if (it->pkt.addr == pkt.addr) {
            ++forwardedFromWriteQueue;
            pkt.data = it->pkt.data;
            cb(std::move(pkt));
            return;
        }
    }
    injectChannelDummies(channel);
    sendGroup(channel, std::move(pkt), std::move(cb));
}

bool
ObfusMemProcSide::quiescent() const
{
    for (const ChannelState &cs : channelState) {
        if (!cs.epochQueue.empty() || cs.outstandingReads > 0
            || !cs.writeQueue.empty()) {
            return false;
        }
    }
    return true;
}

void
ObfusMemProcSide::ensureHeartbeats()
{
    for (unsigned c = 0; c < channelState.size(); ++c) {
        ChannelState &cs = channelState[c];
        if (!cs.heartbeatActive) {
            cs.heartbeatActive = true;
            scheduleAfter(0, [this, c]() { heartbeat(c); });
        }
    }
}

void
ObfusMemProcSide::heartbeat(unsigned channel)
{
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    if (cs.health == ChannelHealth::Quarantined) {
        cs.heartbeatActive = false;
        return;
    }
    if (cs.health == ChannelHealth::Rekeying) {
        // Keep ticking but issue nothing until the new epoch installs.
        scheduleAfter(params.issueEpoch,
                      [this, channel]() { heartbeat(channel); });
        return;
    }
    if (quiescent()) {
        // Pause the constant-rate stream only when the controller is
        // globally idle; attackers learn at most the program's
        // coarse activity envelope (paper Sec. 6.1's footprint
        // caveat applies the same way).
        cs.heartbeatActive = false;
        return;
    }

    if (!cs.epochQueue.empty()) {
        QueuedWrite req = std::move(cs.epochQueue.front());
        cs.epochQueue.pop_front();
        sendGroup(channel, std::move(req.pkt), std::move(req.cb));
    } else {
        sendDummyGroup(channel);
    }
    scheduleAfter(params.issueEpoch,
                  [this, channel]() { heartbeat(channel); });
}

void
ObfusMemProcSide::maybeDrainWrites(unsigned channel)
{
    // The drain loop is the deepest fan-out: a high-watermark drain
    // stages maxOutstandingGroups' worth of frames into one burst.
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    if (cs.health != ChannelHealth::Active)
        return;
    if (cs.writeQueue.size() >= params.writeQueueHighWatermark)
        cs.drainingWrites = true;

    while (!cs.writeQueue.empty()
           && cs.pending.size() < params.maxOutstandingGroups
           && (cs.drainingWrites || cs.outstandingReads == 0)) {
        QueuedWrite qw = std::move(cs.writeQueue.front());
        cs.writeQueue.pop_front();
        sendGroup(channel, std::move(qw.pkt), std::move(qw.cb));
        if (cs.writeQueue.size() <= params.writeQueueLowWatermark)
            cs.drainingWrites = false;
        if (!cs.drainingWrites)
            break; // the dummy read now outstanding paces us
    }
}

void
ObfusMemProcSide::sendGroup(unsigned channel, MemPacket pkt,
                            PacketCallback cb)
{
    // Standalone calls still batch the group's two frames; calls from
    // a wider scope (dispatch, drain, heartbeat) nest into its burst.
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    uint64_t ctr = cs.reqCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);
    cs.reqCounter += countersPerRequestGroup;
    padsUsed += countersPerRequestGroup;
    if (params.uniformPackets) {
        notifyPads(channel, CounterStream::Request, ctr,
                   countersPerRequestGroup);
    } else {
        // Split scheme: the read message burns pad ctr, the paired
        // write burns ctr+1 (header) and ctr+2..5 (payload).
        notifyPads(channel, CounterStream::Request, ctr, 1);
        notifyPads(channel, CounterStream::Request, ctr + 1,
                   countersPerRequestGroup - 1);
    }

    // The prefetch ring usually has the group's pads already; a miss
    // batch-generates them on the spot (same bytes either way).
    GroupPads pads;
    cs.txPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);

    if (params.uniformPackets) {
        // One fixed-size message per request; every request expects a
        // fixed-size reply.
        WireHeader hdr;
        hdr.cmd = pkt.cmd;
        hdr.addr = pkt.addr;
        hdr.tag = allocTag(cs);
        const bool is_read = pkt.isRead();

        DataBlock payload;
        if (is_read) {
            junkRng.fillBytes(payload.data(), payload.size());
        } else {
            payload = pkt.data;
        }

        ++cs.outstandingReads;
        if (is_read) {
            ++realReads;
            PendingRead pend{std::move(pkt), std::move(cb), false};
            pend.lastSend = curTick();
            pend.rbFirst = hdr;
            pend.rbPayload = payload;
            cs.pending[hdr.tag] = std::move(pend);
            burst.stageData(channel, pads.pad[0], &pads.pad[2], hdr,
                            payload, ctr);
        } else {
            ++realWrites;
            // The write's junk reply is discarded; completion is
            // posted at delivery, as in the split scheme.
            PendingRead pend{MemPacket{}, nullptr, true};
            pend.lastSend = curTick();
            pend.rbFirst = hdr;
            pend.rbPayload = payload;
            cs.pending[hdr.tag] = std::move(pend);
            burst.stageData(channel, pads.pad[0], &pads.pad[2], hdr,
                            payload, ctr, std::move(pkt),
                            std::move(cb));
        }
        if (!burst.deferred())
            flushBurst();
        ensureWatchdog(channel);
        return;
    }

    if (pkt.isRead()) {
        ++realReads;
        ++pairedDummies;
        // Message 1: the real read request.
        WireHeader hdr;
        hdr.cmd = MemCmd::Read;
        hdr.addr = pkt.addr;
        hdr.tag = allocTag(cs);
        {
            PendingRead pend{std::move(pkt), std::move(cb), false};
            pend.lastSend = curTick();
            pend.rbFirst = hdr;
            cs.pending[hdr.tag] = std::move(pend);
        }
        ++cs.outstandingReads;

        burst.stageHeader(channel, pads.pad[0], hdr, ctr);
        if (!burst.deferred())
            flushBurst();

        // Message 2: the paired write. When writes are piling up, a
        // real one substitutes for the dummy - same wire pattern, no
        // wasted bandwidth (the Sec. 3.3 optimization that makes the
        // split scheme beat uniform packets). Below the watermark the
        // droppable dummy is cheaper for the PCM banks.
        if (cs.writeQueue.size() > params.writeQueueLowWatermark) {
            ++pairSubstitutions;
            QueuedWrite qw = std::move(cs.writeQueue.front());
            cs.writeQueue.pop_front();

            WireHeader whdr;
            whdr.cmd = MemCmd::Write;
            whdr.addr = qw.pkt.addr;
            DataBlock payload = qw.pkt.data;
            {
                PendingRead &pend = cs.pending[hdr.tag];
                pend.rbSecond = whdr;
                pend.rbPayload = payload;
            }
            burst.stageData(channel, pads.pad[1], &pads.pad[2], whdr,
                            payload, ctr + 1, std::move(qw.pkt),
                            std::move(qw.cb));
            if (!burst.deferred())
                flushBurst();
            ensureWatchdog(channel);
            return;
        }

        WireHeader dummy_hdr;
        dummy_hdr.cmd = MemCmd::Write;
        dummy_hdr.addr = dummyAddrFor(channel, hdr.addr);
        dummy_hdr.dummy = true;
        DataBlock junk;
        junkRng.fillBytes(junk.data(), junk.size());
        {
            PendingRead &pend = cs.pending[hdr.tag];
            pend.rbSecond = dummy_hdr;
            pend.rbPayload = junk;
        }
        burst.stageData(channel, pads.pad[1], &pads.pad[2], dummy_hdr,
                        junk, ctr + 1);
        if (!burst.deferred())
            flushBurst();
        ensureWatchdog(channel);
        return;
    }

    // Real write: preceded by a dummy read (reads are latency
    // critical, writes are not - paper Sec. 3.3). Both headers are
    // known up front, so the two MACs are computed in one batch.
    ++realWrites;
    ++pairedDummies;
    WireHeader dummy_hdr;
    dummy_hdr.cmd = MemCmd::Read;
    dummy_hdr.addr = dummyAddrFor(channel, pkt.addr);
    dummy_hdr.dummy = true;
    dummy_hdr.tag = allocTag(cs);
    ++cs.outstandingReads;

    WireHeader hdr;
    hdr.cmd = MemCmd::Write;
    hdr.addr = pkt.addr;

    {
        PendingRead pend{MemPacket{}, nullptr, true};
        pend.lastSend = curTick();
        pend.rbFirst = dummy_hdr;
        pend.rbSecond = hdr;
        pend.rbPayload = pkt.data;
        cs.pending[dummy_hdr.tag] = std::move(pend);
    }

    burst.stageHeader(channel, pads.pad[0], dummy_hdr, ctr);
    if (!burst.deferred())
        flushBurst();

    // Second encryption on top of the memory-encryption ciphertext:
    // hides temporal reuse of unmodified data (Observation 1). The
    // write is posted: its completion fires when the sealed frame has
    // fully crossed the bus.
    DataBlock payload = pkt.data;
    burst.stageData(channel, pads.pad[1], &pads.pad[2], hdr, payload,
                    ctr + 1, std::move(pkt), std::move(cb));
    if (!burst.deferred())
        flushBurst();
    ensureWatchdog(channel);
}

void
ObfusMemProcSide::sendDummyGroup(unsigned channel)
{
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ++channelFillGroups;
    ChannelState &cs = channelState[channel];
    uint64_t ctr = cs.reqCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);
    cs.reqCounter += countersPerRequestGroup;
    padsUsed += countersPerRequestGroup;
    if (params.uniformPackets) {
        notifyPads(channel, CounterStream::Request, ctr,
                   countersPerRequestGroup);
    } else {
        notifyPads(channel, CounterStream::Request, ctr, 1);
        notifyPads(channel, CounterStream::Request, ctr + 1,
                   countersPerRequestGroup - 1);
    }

    GroupPads pads;
    cs.txPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);

    if (params.uniformPackets) {
        // One uniform dummy read message fills the channel.
        WireHeader rd;
        rd.cmd = MemCmd::Read;
        rd.addr = cs.dummyAddr;
        rd.dummy = true;
        rd.tag = allocTag(cs);
        ++cs.outstandingReads;

        DataBlock junk;
        junkRng.fillBytes(junk.data(), junk.size());
        {
            PendingRead pend{MemPacket{}, nullptr, true};
            pend.lastSend = curTick();
            pend.rbFirst = rd;
            pend.rbPayload = junk;
            cs.pending[rd.tag] = std::move(pend);
        }
        burst.stageData(channel, pads.pad[0], &pads.pad[2], rd, junk,
                        ctr);
        if (!burst.deferred())
            flushBurst();
        ensureWatchdog(channel);
        return;
    }

    WireHeader rd;
    rd.cmd = MemCmd::Read;
    rd.addr = dummyAddrFor(channel, cs.dummyAddr);
    rd.dummy = true;
    rd.tag = allocTag(cs);
    ++cs.outstandingReads;

    WireHeader wr;
    wr.cmd = MemCmd::Write;
    wr.addr = dummyAddrFor(channel, cs.dummyAddr);
    wr.dummy = true;

    burst.stageHeader(channel, pads.pad[0], rd, ctr);
    if (!burst.deferred())
        flushBurst();

    DataBlock junk;
    junkRng.fillBytes(junk.data(), junk.size());
    {
        PendingRead pend{MemPacket{}, nullptr, true};
        pend.lastSend = curTick();
        pend.rbFirst = rd;
        pend.rbSecond = wr;
        pend.rbPayload = junk;
        cs.pending[rd.tag] = std::move(pend);
    }
    burst.stageData(channel, pads.pad[1], &pads.pad[2], wr, junk,
                    ctr + 1);
    if (!burst.deferred())
        flushBurst();
    ensureWatchdog(channel);
}

void
ObfusMemProcSide::injectChannelDummies(unsigned active_channel)
{
    if (params.channelScheme == ChannelScheme::None
        || channelState.size() <= 1) {
        return;
    }
    for (unsigned c = 0; c < channelState.size(); ++c) {
        if (c == active_channel)
            continue;
        ChannelState &cs = channelState[c];
        if (cs.health != ChannelHealth::Active)
            continue;
        if (params.channelScheme == ChannelScheme::Opt) {
            bool idle = cs.bus->idle() && cs.outstandingReads == 0;
            if (!idle)
                continue;
        }
        // Substitute a real buffered write for the dummy when one is
        // waiting: same wire pattern, no wasted bandwidth (Sec. 3.3).
        if (!cs.writeQueue.empty()) {
            ++realFillSubstitutions;
            QueuedWrite qw = std::move(cs.writeQueue.front());
            cs.writeQueue.pop_front();
            sendGroup(c, std::move(qw.pkt), std::move(qw.cb));
            continue;
        }
        sendDummyGroup(c);
    }
}

void
ObfusMemProcSide::flushBurst()
{
    // The back half of the pipeline runs here: one vectorized MAC
    // batch over every staged (header, counter) pair, one SoA seal
    // pass, then the bus enqueues in stage order. Enqueue order is all
    // the bus observes of us within a tick (serialization happens on
    // later ticks), so the wire trace is bit-identical to per-message
    // flushing — CI diffs OBFUSMEM_BURST_BATCH=0/1 to hold us to that.
    burst.flushWith(mac, params.auth,
        [this](unsigned channel, WireMessage &&msg,
               BurstBatch::Completion &&done) {
            deliverStaged(channel, std::move(msg), std::move(done));
        });
}

void
ObfusMemProcSide::deliverStaged(unsigned channel, WireMessage &&msg,
                                BurstBatch::Completion &&done)
{
    ChannelState &cs = channelState[channel];
    uint64_t snoop_addr = msg.snoopAddr();
    uint32_t bytes = msg.wireBytes(params.headerWireBytes,
                                   params.macWireBytes);
    bool is_data = msg.hasData;
    cs.bus->send(BusDir::ToMemory, bytes, snoop_addr, is_data,
        [this, channel, msg = std::move(msg), pkt = std::move(done.pkt),
         cb = std::move(done.cb)](const BusFault &fault) mutable {
            ChannelState &cs2 = channelState[channel];
            if (fault.corrupted)
                corruptHeaderBit(msg, fault.entropy);
            if (cs2.toMem) {
                // Test/tooling intercept (fault injection, capture).
                if (fault.duplicated) {
                    WireMessage copy = msg;
                    cs2.toMem(std::move(copy));
                }
                cs2.toMem(std::move(msg));
            } else {
                panic_if(!cs2.memSide, "no request target wired");
                if (fault.duplicated) {
                    WireMessage copy = msg;
                    cs2.memSide->receiveMessage(std::move(copy));
                }
                cs2.memSide->receiveMessage(std::move(msg));
            }
            // Posted-write completion: the requester learns the write
            // crossed the bus, exactly when the far pin saw it.
            if (cb)
                cb(std::move(pkt));
        });
}

void
ObfusMemProcSide::receiveReply(unsigned channel, WireMessage &&msg)
{
    OBF_ASSERT(channel < channelState.size(),
               "reply for unknown channel ", channel);
    ChannelState &cs = channelState[channel];
    if (cs.health == ChannelHealth::Quarantined) {
        ++framesDiscarded;
        return;
    }
    uint64_t ctr = cs.respCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerReply,
               "response counter exhausted on channel ", channel);

    ReplyPads pads;
    cs.rxPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);
    std::optional<WireHeader> hdr =
        decryptHeaderWithPad(pads.header(), msg.cipherHeader);

    if (!hdr && params.recovery.enabled) {
        // An unattributable frame must not consume a counter
        // position: trial-resync forward, try the control plane, or
        // discard. The ring take above is harmless - pads are pure
        // functions of (key, counter) and the next take regenerates
        // identical bytes.
        recoverReplyFrame(channel, std::move(msg));
        return;
    }

    cs.respCounter += countersPerReply;
    padsUsed += countersPerReply;
    notifyPads(channel, CounterStream::Response, ctr,
               countersPerReply);

    if (!hdr) {
        ++headerDesyncs;
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Processor,
                              ChannelIncident::HeaderDesync);
        }
        return;
    }
    if (params.auth) {
        if (!msg.hasMac || !mac.verify(*hdr, ctr, msg.mac)) {
            ++macFailures;
            if (audit) {
                audit->onIncident(curTick(), channel,
                                  EndpointSide::Processor,
                                  ChannelIncident::MacMismatch);
            }
            return;
        }
    }

    DataBlock data = cryptPayloadWithPads(pads.payload(), msg.cipherData);

    auto it = cs.pending.find(hdr->tag);
    if (it == cs.pending.end()) {
        ++headerDesyncs; // reply for an unknown tag
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Processor,
                              ChannelIncident::UnknownTag);
        }
        return;
    }
    PendingRead pending = std::move(it->second);
    cs.pending.erase(it);
    panic_if(cs.outstandingReads == 0, "outstanding underflow");
    --cs.outstandingReads;

    if (pending.dummy) {
        ++repliesDiscarded;
        maybeDrainWrites(channel);
        return;
    }

    Tick lat = params.xorLatency
               + (params.auth ? mac.receiverLatency() : 0);
    scheduleAfter(lat,
        [pkt = std::move(pending.pkt), cb = std::move(pending.cb),
         data]() mutable {
            pkt.data = data;
            cb(std::move(pkt));
        });
    maybeDrainWrites(channel);
}

// --- Recovery ------------------------------------------------------

void
ObfusMemProcSide::ensureWatchdog(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (!params.recovery.enabled || cs.watchdogActive)
        return;
    if (cs.pending.empty() && cs.health != ChannelHealth::Rekeying)
        return;
    cs.watchdogActive = true;
    Tick period = std::max<Tick>(params.recovery.retryTimeout / 2, 1);
    scheduleAfter(period, [this, channel]() { watchdogTick(channel); });
}

void
ObfusMemProcSide::watchdogTick(unsigned channel)
{
    // Retransmits of every overdue group batch into one burst.
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    cs.watchdogActive = false;
    if (cs.health == ChannelHealth::Quarantined)
        return;
    Tick now = curTick();

    if (cs.health == ChannelHealth::Rekeying) {
        Tick limit = params.recovery.retryTimeout
                     << std::min(cs.rekeyAttempts, 6u);
        if (now - cs.rekeySentTick >= limit)
            sendRekeyRequest(channel); // may quarantine
        ensureWatchdog(channel);
        return;
    }

    // Collect overdue tags first and visit them in sorted order:
    // unordered_map iteration order must never leak into protocol
    // behavior (determinism across standard libraries).
    std::vector<uint16_t> overdue;
    for (const auto &kv : cs.pending) {
        Tick limit = params.recovery.retryTimeout
                     << std::min(kv.second.attempts, 6u);
        if (now - kv.second.lastSend >= limit)
            overdue.push_back(kv.first);
    }
    std::sort(overdue.begin(), overdue.end());
    for (uint16_t tag : overdue) {
        auto it = cs.pending.find(tag);
        if (it == cs.pending.end())
            continue;
        if (it->second.attempts >= params.recovery.retryMax) {
            // Bounded retries exhausted: the counters or the key are
            // damaged beyond in-band resync. Renegotiate the session.
            startRekey(channel);
            break;
        }
        retransmitGroup(channel, tag);
    }
    ensureWatchdog(channel);
}

void
ObfusMemProcSide::retransmitGroup(unsigned channel, uint16_t tag)
{
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    if (cs.health != ChannelHealth::Active)
        return;
    auto it = cs.pending.find(tag);
    if (it == cs.pending.end())
        return;
    PendingRead &p = it->second;

    // A retransmit is a brand-new group on the wire: fresh counters,
    // fresh pads, fresh MACs. Reusing the original pads would violate
    // pad freshness and hand an observer a ciphertext repeat.
    uint64_t ctr = cs.reqCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);
    cs.reqCounter += countersPerRequestGroup;
    padsUsed += countersPerRequestGroup;
    if (params.uniformPackets) {
        notifyPads(channel, CounterStream::Request, ctr,
                   countersPerRequestGroup);
    } else {
        notifyPads(channel, CounterStream::Request, ctr, 1);
        notifyPads(channel, CounterStream::Request, ctr + 1,
                   countersPerRequestGroup - 1);
    }
    GroupPads pads;
    cs.txPads.take(ctr, pads.pad.data());
    schedulePadRefill(channel);

    ++retransmits;
    p.attempts += 1;
    p.lastSend = curTick();

    if (params.uniformPackets) {
        burst.stageData(channel, pads.pad[0], &pads.pad[2], p.rbFirst,
                        p.rbPayload, ctr);
        if (!burst.deferred())
            flushBurst();
        return;
    }

    burst.stageHeader(channel, pads.pad[0], p.rbFirst, ctr);
    if (!burst.deferred())
        flushBurst();
    burst.stageData(channel, pads.pad[1], &pads.pad[2], p.rbSecond,
                    p.rbPayload, ctr + 1);
    if (!burst.deferred())
        flushBurst();
}

void
ObfusMemProcSide::startRekey(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (cs.health != ChannelHealth::Active)
        return;
    cs.health = ChannelHealth::Rekeying;
    ++rekeysStarted;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Processor,
                          ChannelIncident::RekeyStarted);
    }
    sendRekeyRequest(channel);
}

void
ObfusMemProcSide::sendRekeyRequest(unsigned channel)
{
    // All handshake chunks of one attempt batch into one burst.
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    if (cs.rekeyAttempts >= params.recovery.rekeyMaxAttempts) {
        quarantineChannel(channel);
        return;
    }
    ++cs.rekeyAttempts;

    // A fresh epoch (and DH key pair) per attempt keeps chunk
    // collection on the far side unambiguous across attempts. The
    // test group keeps the modexp cheap at simulation scale; the
    // handshake structure is group-agnostic.
    cs.rekeyEpoch += 1;
    cs.respCollectEpoch = 0;
    cs.respCollectTotal = 0;
    cs.respCollectMask = 0;
    cs.dh = std::make_unique<crypto::DhEndpoint>(
        crypto::DhGroup::testGroup256(), rekeyRng);

    std::vector<uint8_t> pub = cs.dh->publicValue().toBytes();
    uint8_t total = static_cast<uint8_t>(
        (pub.size() + handshakeChunkBytes - 1) / handshakeChunkBytes);
    if (total == 0)
        total = 1;
    for (uint8_t i = 0; i < total; ++i) {
        HandshakeChunk c;
        c.epoch = cs.rekeyEpoch;
        c.chunk = i;
        c.total = total;
        size_t off = static_cast<size_t>(i) * handshakeChunkBytes;
        c.len = static_cast<uint16_t>(
            std::min(handshakeChunkBytes, pub.size() - off));
        std::copy_n(pub.begin() + off, c.len, c.data.begin());
        sendControlGroup(channel, packHandshakeChunk(c));
    }
    cs.rekeySentTick = curTick();
    ensureWatchdog(channel);
}

void
ObfusMemProcSide::sendControlGroup(unsigned channel,
                                   const DataBlock &payload)
{
    auto scope = burstScope(burst, [this] { flushBurst(); });
    // Control frames mirror a normal request group's wire shape
    // exactly; only the key and the counter stream differ, neither of
    // which is visible on the wire. Control pads are not reported to
    // the auditor (they live outside the data-plane ledgers).
    ChannelState &cs = channelState[channel];
    uint64_t ctr = cs.ctlReqCounter;
    cs.ctlReqCounter += countersPerRequestGroup;
    GroupPads pads = genGroupPads(cs.ctlTx, ctr);

    if (params.uniformPackets) {
        WireHeader hdr;
        hdr.cmd = MemCmd::Write;
        hdr.addr = cs.dummyAddr;
        hdr.dummy = true;
        burst.stageData(channel, pads.pad[0], &pads.pad[2], hdr,
                        payload, ctr);
        if (!burst.deferred())
            flushBurst();
        return;
    }

    WireHeader rd;
    rd.cmd = MemCmd::Read;
    rd.addr = cs.dummyAddr;
    rd.dummy = true;
    WireHeader wr;
    wr.cmd = MemCmd::Write;
    wr.addr = cs.dummyAddr;
    wr.dummy = true;

    burst.stageHeader(channel, pads.pad[0], rd, ctr);
    if (!burst.deferred())
        flushBurst();
    burst.stageData(channel, pads.pad[1], &pads.pad[2], wr, payload,
                    ctr + 1);
    if (!burst.deferred())
        flushBurst();
}

void
ObfusMemProcSide::recoverReplyFrame(unsigned channel, WireMessage msg)
{
    ChannelState &cs = channelState[channel];
    const RecoveryParams &rp = params.recovery;

    // 1) Trial-decrypt a bounded window of future reply positions. A
    // verified hit means replies were lost (the memory side is ahead):
    // jump forward, burning the skipped pads so the ledgers merge.
    for (unsigned k = 1; k <= rp.resyncWindowGroups; ++k) {
        uint64_t pos = cs.respCounter + k * countersPerReply;
        std::optional<WireHeader> cand =
            decryptHeader(cs.rx, pos, msg.cipherHeader);
        if (!cand)
            continue;
        if (params.auth
            && (!msg.hasMac || !mac.verify(*cand, pos, msg.mac)))
            continue;
        ++resyncs;
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Processor,
                              ChannelIncident::CounterResync);
        }
        notifyPads(channel, CounterStream::Response, cs.respCounter,
                   pos - cs.respCounter);
        cs.respCounter = pos;
        cs.rxPads.invalidate();
        receiveReply(channel, std::move(msg));
        return;
    }

    // 2) Not data traffic: maybe a handshake response on the control
    // reply stream.
    for (unsigned k = 0; k <= rp.resyncWindowGroups; ++k) {
        uint64_t pos = cs.ctlRespCursor + k * countersPerReply;
        std::optional<WireHeader> cand =
            decryptHeader(cs.ctlRx, pos, msg.cipherHeader);
        if (!cand)
            continue;
        if (params.auth
            && (!msg.hasMac || !mac.verify(*cand, pos, msg.mac)))
            continue;
        cs.ctlRespCursor = pos + countersPerReply;
        if (msg.hasData) {
            DataBlock plain =
                cryptPayload(cs.ctlRx, pos + 1, msg.cipherData);
            std::optional<HandshakeChunk> chunk =
                unpackHandshakeChunk(plain);
            if (chunk)
                handleControlReply(channel, *chunk);
        }
        return;
    }

    // 3) Unattributable: duplicate, replay, corruption, or garbage.
    ++framesDiscarded;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Processor,
                          ChannelIncident::FrameDiscarded);
    }
}

void
ObfusMemProcSide::handleControlReply(unsigned channel,
                                     const HandshakeChunk &chunk)
{
    ChannelState &cs = channelState[channel];
    if (cs.health != ChannelHealth::Rekeying || !cs.dh
        || chunk.epoch != cs.rekeyEpoch)
        return; // stale response from an abandoned attempt
    if (chunk.total == 0 || chunk.total > cs.respChunks.size()
        || chunk.len > handshakeChunkBytes)
        return;
    if (cs.respCollectEpoch != chunk.epoch
        || cs.respCollectTotal != chunk.total) {
        cs.respCollectEpoch = chunk.epoch;
        cs.respCollectTotal = chunk.total;
        cs.respCollectMask = 0;
    }
    if (chunk.chunk >= cs.respCollectTotal)
        return;
    cs.respChunks[chunk.chunk] = chunk;
    cs.respCollectMask |= 1u << chunk.chunk;
    if (cs.respCollectMask != (1u << cs.respCollectTotal) - 1)
        return;

    std::vector<uint8_t> pub_bytes;
    for (unsigned i = 0; i < cs.respCollectTotal; ++i) {
        const HandshakeChunk &c = cs.respChunks[i];
        pub_bytes.insert(pub_bytes.end(), c.data.begin(),
                         c.data.begin() + c.len);
    }
    finishRekey(channel, pub_bytes);
}

void
ObfusMemProcSide::finishRekey(unsigned channel,
                              const std::vector<uint8_t> &peer_pub)
{
    // The replay of every outstanding group and the release of held
    // requests all stage into one burst under the new epoch key.
    auto scope = burstScope(burst, [this] { flushBurst(); });
    ChannelState &cs = channelState[channel];
    crypto::BigUint pub =
        crypto::BigUint::fromBytes(peer_pub.data(), peer_pub.size());
    crypto::Aes128::Key key = epochSessionKey(
        crypto::DhEndpoint::deriveSessionKey(cs.dh->computeShared(pub)),
        cs.rekeyEpoch, channel);

    // Both data-plane streams restart at counter zero under the new
    // epoch key. The prefetch rings hold pads of the old key.
    cs.tx.setKey(key, 2ull * channel);
    cs.rx.setKey(key, 2ull * channel + 1);
    cs.reqCounter = 0;
    cs.respCounter = 0;
    cs.txPads.invalidate();
    cs.rxPads.invalidate();
    cs.dh.reset();
    cs.rekeyAttempts = 0;
    cs.health = ChannelHealth::Active;
    ++rekeysCompleted;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Processor,
                          ChannelIncident::RekeyCompleted);
    }

    // Every outstanding group predates the new epoch; replay each at
    // the new counters, in deterministic tag order.
    std::vector<uint16_t> tags;
    tags.reserve(cs.pending.size());
    for (const auto &kv : cs.pending)
        tags.push_back(kv.first);
    std::sort(tags.begin(), tags.end());
    for (uint16_t tag : tags) {
        auto it = cs.pending.find(tag);
        if (it != cs.pending.end())
            it->second.attempts = 0;
        retransmitGroup(channel, tag);
    }

    // Release requests held while the channel re-keyed.
    while (!cs.rekeyHold.empty()
           && cs.health == ChannelHealth::Active) {
        QueuedWrite qw = std::move(cs.rekeyHold.front());
        cs.rekeyHold.pop_front();
        dispatch(channel, std::move(qw.pkt), std::move(qw.cb));
    }
    maybeDrainWrites(channel);
    ensureWatchdog(channel);
}

void
ObfusMemProcSide::quarantineChannel(unsigned channel)
{
    ChannelState &cs = channelState[channel];
    if (cs.health == ChannelHealth::Quarantined)
        return;
    cs.health = ChannelHealth::Quarantined;
    ++quarantines;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Processor,
                          ChannelIncident::ChannelQuarantined);
    }
    warn("obfusmem: channel ", channel, " quarantined after ",
         cs.rekeyAttempts, " failed re-key attempts");
    // Fail everything queued or in flight; the channel is dead.
    // Dropped callbacks simply never fire (the requester observes an
    // unserviceable channel, which is what quarantine means).
    cs.pending.clear();
    cs.outstandingReads = 0;
    cs.writeQueue.clear();
    cs.drainingWrites = false;
    cs.epochQueue.clear();
    cs.rekeyHold.clear();
    cs.dh.reset();
}

} // namespace obfusmem
