/**
 * @file
 * BusObserver implementation.
 */

#include "obfusmem/observer.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace obfusmem {

BusObserver::BusObserver(unsigned channels_, Tick bucket_ticks)
    : channels(channels_), bucketTicks(bucket_ticks),
      perChannelRequests(channels_, 0)
{
}

void
BusObserver::rolloverBucket(uint64_t new_bucket)
{
    if (currentBucketMask != 0) {
        ++activeBuckets;
        if (std::popcount(currentBucketMask) == 1 && channels > 1)
            ++soloBuckets;
    }
    currentBucketMask = 0;
    currentBucket = new_bucket;
}

void
BusObserver::observe(const BusSnoop &snoop)
{
    uint64_t bucket = snoop.when / bucketTicks;
    if (bucket != currentBucket)
        rolloverBucket(bucket);

    if (snoop.dir == BusDir::ToMemory) {
        ++totalRequests;
        toMemBytes += snoop.bytes;
        if (snoop.channel < channels) {
            ++perChannelRequests[snoop.channel];
            currentBucketMask |= 1u << snoop.channel;
        }
        if (snoop.wireIsWrite) {
            ++writesSeen;
        } else {
            ++readsSeen;
        }
        uint64_t &count = wireAddrs[snoop.wireAddr];
        if (count > 0)
            ++reusedRequests;
        ++count;
    } else {
        toProcBytes += snoop.bytes;
        if (snoop.channel < channels)
            currentBucketMask |= 1u << snoop.channel;
    }
}

double
BusObserver::addrReuseFraction() const
{
    if (totalRequests == 0)
        return 0.0;
    return static_cast<double>(reusedRequests) / totalRequests;
}

uint64_t
BusObserver::hottestAddrCount() const
{
    uint64_t hottest = 0;
    for (const auto &[addr, count] : wireAddrs)
        hottest = std::max(hottest, count);
    return hottest;
}

double
BusObserver::typeImbalance() const
{
    uint64_t total = readsSeen + writesSeen;
    if (total == 0)
        return 0.0;
    double read_frac = static_cast<double>(readsSeen) / total;
    return std::abs(read_frac - 0.5) * 2.0;
}

double
BusObserver::soloBucketFraction() const
{
    // Include the still-open bucket.
    uint64_t active = activeBuckets;
    uint64_t solo = soloBuckets;
    if (currentBucketMask != 0) {
        ++active;
        if (std::popcount(currentBucketMask) == 1 && channels > 1)
            ++solo;
    }
    if (active == 0)
        return 0.0;
    return static_cast<double>(solo) / active;
}

} // namespace obfusmem
