/**
 * @file
 * ObfusMemMemSide implementation.
 */

#include "obfusmem/mem_side.hh"

#include <algorithm>

#include "crypto/dh.hh"
#include "obfusmem/proc_side.hh"
#include "util/assert.hh"
#include "util/logging.hh"

namespace obfusmem {

ObfusMemMemSide::ObfusMemMemSide(const std::string &name,
                                 EventQueue &eq,
                                 statistics::Group *parent,
                                 const ObfusMemParams &params_,
                                 unsigned channel_id,
                                 const crypto::Aes128::Key &session_key,
                                 ChannelBus &bus_, PcmController &pcm_,
                                 const BackingStore &store_,
                                 uint64_t dummy_addr)
    : SimObject(name, eq, parent), params(params_), channel(channel_id),
      rxCipher(session_key, 2ull * channel_id),
      txCipher(session_key, 2ull * channel_id + 1), mac(params_.mac),
      bus(bus_), pcm(pcm_), store(store_), dummyBlockAddr(dummy_addr),
      junkRng(0x5eed0000 + channel_id),
      ctlRx(controlKeyFor(session_key),
            controlNonceBase + 2ull * channel_id),
      ctlTx(controlKeyFor(session_key),
            controlNonceBase + 2ull * channel_id + 1),
      rekeyRng(0x4ec00000 + channel_id)
{
    reqPads.configure(rxCipher, countersPerRequestGroup,
                      params.padPrefetchDepth, &padPrefetch);
    replyPads.configure(txCipher, countersPerReply,
                        params.padPrefetchDepth, &padPrefetch);
    stats().addScalar("realReads", &realReads,
                      "real read requests forwarded to PCM");
    stats().addScalar("realWrites", &realWrites,
                      "real write requests forwarded to PCM");
    stats().addScalar("dummyReadsAnswered", &dummyReadsAnswered,
                      "dummy reads answered with junk (no PCM access)");
    stats().addScalar("dummyWritesDropped", &dummyWritesDropped,
                      "dummy writes discarded at arrival");
    stats().addScalar("dummyPcmAccesses", &dummyPcmAccesses,
                      "dummy requests that hit PCM (non-fixed policy)");
    stats().addScalar("macFailures", &macFailures,
                      "MAC mismatches (tampering detected)");
    stats().addScalar("headerDesyncs", &headerDesyncs,
                      "undecryptable headers (counter desync)");
    stats().addScalar("padsUsed", &padsUsed,
                      "128-bit pads consumed by this controller");
    stats().addScalar("framesDiscarded", &framesDiscarded,
                      "unattributable frames discarded by recovery");
    stats().addScalar("resyncs", &resyncs,
                      "forward counter resynchronizations");
    stats().addScalar("rekeysCompleted", &rekeysCompleted,
                      "re-key epochs installed");
    padPrefetch.regStats(stats());
}

void
ObfusMemMemSide::schedulePadRefill()
{
    // Zero-delay refills between protocol events: no simulated state
    // is read or written, so wire traffic and timing are untouched.
    if (reqPads.shouldScheduleRefill())
        scheduleAfter(0, [this]() { reqPads.refill(); });
    if (replyPads.shouldScheduleRefill())
        scheduleAfter(0, [this]() { replyPads.refill(); });
}

void
ObfusMemMemSide::receiveMessage(WireMessage msg)
{
    // Counter discipline: first message of a group decrypts with
    // ctr+0, the second with ctr+1; the group's payload (carried by
    // exactly one of them) with ctr+2..5. In the uniform-packet
    // scheme each message is a full group by itself.
    OBF_DCHECK(groupPhase < 2, "corrupt group phase ", groupPhase);
    uint64_t hdr_ctr = reqCounter + groupPhase;
    OBF_DCHECK(reqCounter <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);

    // Stage the whole group's pads when its first message arrives;
    // the second message reuses the staging. The prefetch ring
    // normally has the group ready, and a miss batch-generates the
    // identical bytes on the spot. A counter skew
    // (skewRequestCounter) invalidates both so desync behaves
    // exactly as pad-by-pad generation would.
    if (groupPhase == 0 || !groupPadsValid) {
        reqPads.take(reqCounter, groupPads.data());
        schedulePadRefill();
        groupPadsValid = true;
    }

    std::optional<WireHeader> hdr =
        decryptHeaderWithPad(groupPads[groupPhase], msg.cipherHeader);

    if (!hdr && params.recovery.enabled) {
        // An unattributable frame must not consume a counter position
        // (a forged or duplicated frame could otherwise desync the
        // link for good): trial-resync forward, try the control
        // plane, or discard - the processor's retry machinery makes
        // progress either way.
        recoverRequestFrame(std::move(msg));
        return;
    }

    padsUsed += 1;

    // Report the pads this message reserves: the group's first
    // (read) message burns one header pad, the second (write)
    // message burns its header pad plus the four payload pads; a
    // uniform-scheme message reserves the whole group by itself.
    if (audit) {
        uint64_t count = params.uniformPackets
                             ? countersPerRequestGroup
                             : (groupPhase == 0
                                    ? 1
                                    : countersPerRequestGroup - 1);
        audit->onPadUse(curTick(), channel, EndpointSide::Memory,
                        CounterStream::Request, hdr_ctr, count);
    }

    // Advance the group phase regardless: the pads are consumed.
    if (params.uniformPackets) {
        groupPhase = 0;
        reqCounter += countersPerRequestGroup;
    } else {
        groupPhase += 1;
        if (groupPhase == 2) {
            groupPhase = 0;
            reqCounter += countersPerRequestGroup;
        }
    }

    if (!hdr) {
        // Recovery disabled: drop, inject or replay desynchronized
        // the counters; from here on the link is cryptographically
        // dead (DoS, not data loss - paper Sec. 3.5).
        ++headerDesyncs;
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Memory,
                              ChannelIncident::HeaderDesync);
        }
        return;
    }

    if (params.auth) {
        if (!msg.hasMac || !mac.verify(*hdr, hdr_ctr, msg.mac)) {
            ++macFailures;
            if (audit) {
                audit->onIncident(curTick(), channel,
                                  EndpointSide::Memory,
                                  ChannelIncident::MacMismatch);
            }
            return;
        }
    }

    DataBlock plain_data{};
    if (msg.hasData) {
        // Payload pads 2..5 of the (possibly just-completed) group the
        // cache still holds.
        plain_data = cryptPayloadWithPads(&groupPads[2],
                                          msg.cipherData);
        padsUsed += 4;
    }

    Tick lat = params.xorLatency
               + (params.auth ? mac.receiverLatency() : 0);
    WireHeader hdr_val = *hdr;
    bool has_data = msg.hasData;
    scheduleAfter(lat, [this, hdr_val, has_data, plain_data]() {
        handleRequest(hdr_val, has_data, plain_data, 0);
    });
}

void
ObfusMemMemSide::handleRequest(const WireHeader &hdr, bool has_data,
                               const DataBlock &plain_data, uint64_t)
{
    const bool is_dummy = hdr.dummy || hdr.addr == dummyBlockAddr;

    // Timing-oblivious operation forgoes dummy dropping: a dropped
    // request would finish faster than a real one (paper Sec. 6.2).
    const bool may_drop =
        params.dummyPolicy == DummyPolicy::Fixed
        && !params.timingOblivious;

    if (hdr.cmd == MemCmd::Write) {
        if (is_dummy) {
            if (may_drop) {
                // Request dropping: no cell write, no wear, no energy.
                ++dummyWritesDropped;
                return;
            }
            // Original/Random-address dummies cannot be dropped; they
            // cost a real PCM row access. Rewrite the current content
            // so memory stays functionally intact.
            ++dummyPcmAccesses;
            MemPacket pkt;
            pkt.cmd = MemCmd::Write;
            pkt.addr = hdr.addr;
            pkt.data = store.read(hdr.addr);
            pkt.issueTick = curTick();
            pcm.access(std::move(pkt), [](MemPacket &&) {});
            return;
        }
        ++realWrites;
        MemPacket pkt;
        pkt.cmd = MemCmd::Write;
        pkt.addr = hdr.addr;
        pkt.data = plain_data;
        pkt.issueTick = curTick();
        panic_if(!has_data, "real write message without payload");
        if (params.uniformPackets) {
            // Uniform scheme: writes are acknowledged with a
            // full-size junk reply so replies reveal nothing.
            WireHeader reply_hdr = hdr;
            pcm.access(std::move(pkt),
                [this, reply_hdr](MemPacket &&) {
                    DataBlock junk;
                    junkRng.fillBytes(junk.data(), junk.size());
                    sendReadReply(reply_hdr, junk);
                });
        } else {
            pcm.access(std::move(pkt), [](MemPacket &&) {});
        }
        return;
    }

    // Read.
    if (is_dummy && may_drop) {
        // Answer immediately with junk; the processor discards it.
        ++dummyReadsAnswered;
        DataBlock junk;
        junkRng.fillBytes(junk.data(), junk.size());
        sendReadReply(hdr, junk);
        return;
    }

    if (is_dummy)
        ++dummyPcmAccesses;
    else
        ++realReads;

    MemPacket pkt;
    pkt.cmd = MemCmd::Read;
    pkt.addr = hdr.addr;
    pkt.issueTick = curTick();
    WireHeader reply_hdr = hdr;
    pcm.access(std::move(pkt),
        [this, reply_hdr](MemPacket &&resp) {
            sendReadReply(reply_hdr, resp.data);
        });
}

void
ObfusMemMemSide::sendReadReply(const WireHeader &req_hdr,
                               const DataBlock &data)
{
    uint64_t ctr = respCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerReply,
               "response counter exhausted on channel ", channel);
    respCounter += countersPerReply;
    if (audit) {
        audit->onPadUse(curTick(), channel, EndpointSide::Memory,
                        CounterStream::Response, ctr,
                        countersPerReply);
    }

    WireHeader hdr;
    hdr.cmd = MemCmd::Read;
    hdr.addr = req_hdr.addr;
    hdr.tag = req_hdr.tag;
    hdr.dummy = req_hdr.dummy;

    ReplyPads pads;
    replyPads.take(ctr, pads.pad.data());
    schedulePadRefill();
    padsUsed += 5;
    replyBurst.stageData(channel, pads.header(), pads.payload(), hdr,
                         data, ctr);
    if (!replyBurst.deferred())
        flushReplyBurst();
}

void
ObfusMemMemSide::flushReplyBurst()
{
    replyBurst.flushWith(mac, params.auth,
        [this](unsigned, WireMessage &&msg, BurstBatch::Completion &&) {
            transmitReply(std::move(msg));
        });
}

void
ObfusMemMemSide::transmitReply(WireMessage msg)
{
    Tick lat = params.xorLatency
               + (params.auth ? mac.senderLatency() : 0);
    scheduleAfter(lat, [this, msg = std::move(msg)]() mutable {
        uint64_t snoop_addr = msg.snoopAddr();
        uint32_t bytes = msg.wireBytes(params.headerWireBytes, params.macWireBytes);
        bus.send(BusDir::ToProcessor, bytes, snoop_addr, false,
                 [this, msg = std::move(msg)](const BusFault &fault)
                     mutable {
                     if (fault.corrupted)
                         corruptHeaderBit(msg, fault.entropy);
                     if (replyTarget) {
                         // Test/tooling intercept.
                         if (fault.duplicated) {
                             WireMessage copy = msg;
                             replyTarget(std::move(copy));
                         }
                         replyTarget(std::move(msg));
                     } else {
                         panic_if(!procSide,
                                  "no reply target wired to mem side");
                         if (fault.duplicated) {
                             WireMessage copy = msg;
                             procSide->receiveReply(channel,
                                                    std::move(copy));
                         }
                         procSide->receiveReply(channel,
                                                std::move(msg));
                     }
                 });
    });
}

// --- Recovery ------------------------------------------------------

void
ObfusMemMemSide::recoverRequestFrame(WireMessage msg)
{
    const RecoveryParams &rp = params.recovery;
    const unsigned phases = params.uniformPackets ? 1 : 2;

    // 1) Trial-decrypt a bounded window of future data-stream
    // positions. A magic- and MAC-verified hit means frames were lost
    // in flight and the processor is ahead of us: jump forward,
    // burning the skipped pads so both ledgers stay congruent.
    for (unsigned g = 0; g <= rp.resyncWindowGroups; ++g) {
        uint64_t base = reqCounter + g * countersPerRequestGroup;
        for (unsigned ph = 0; ph < phases; ++ph) {
            if (g == 0 && ph <= groupPhase)
                continue; // at or behind the position that failed
            uint64_t pos = base + ph;
            std::optional<WireHeader> cand =
                decryptHeader(rxCipher, pos, msg.cipherHeader);
            if (!cand)
                continue;
            if (params.auth
                && (!msg.hasMac || !mac.verify(*cand, pos, msg.mac)))
                continue;
            resyncTo(base, ph, std::move(msg));
            return;
        }
    }

    // 2) Not data traffic: maybe a control-plane (re-key) frame. The
    // control streams use a key derived from the boot session key, so
    // they stay decryptable even when the data-plane key is suspect.
    for (unsigned g = 0; g <= rp.resyncWindowGroups; ++g) {
        uint64_t base = ctlCursor + g * countersPerRequestGroup;
        for (unsigned ph = 0; ph < 2; ++ph) {
            uint64_t pos = base + ph;
            std::optional<WireHeader> cand =
                decryptHeader(ctlRx, pos, msg.cipherHeader);
            if (!cand)
                continue;
            if (params.auth
                && (!msg.hasMac || !mac.verify(*cand, pos, msg.mac)))
                continue;
            if (msg.hasData) {
                DataBlock plain =
                    cryptPayload(ctlRx, base + 2, msg.cipherData);
                ctlCursor = base + countersPerRequestGroup;
                std::optional<HandshakeChunk> chunk =
                    unpackHandshakeChunk(plain);
                if (chunk)
                    handleHandshakeChunk(*chunk);
            } else {
                // Shape-filler half of a split control pair.
                ctlCursor = base;
            }
            return;
        }
    }

    // 3) Unattributable: duplicate, replay, corruption, or garbage.
    // Discard without consuming a counter position.
    ++framesDiscarded;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Memory,
                          ChannelIncident::FrameDiscarded);
    }
}

void
ObfusMemMemSide::resyncTo(uint64_t base, unsigned phase,
                          WireMessage msg)
{
    // The ledger is dense up to the header position we were waiting
    // for; burn everything from there to the verified hit so the
    // auditor sees the lost positions as consumed on this side too.
    uint64_t cur = reqCounter + (groupPhase == 1 ? 1 : 0);
    uint64_t tgt = base + (phase == 1 ? 1 : 0);
    ++resyncs;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Memory,
                          ChannelIncident::CounterResync);
        if (tgt > cur) {
            audit->onPadUse(curTick(), channel, EndpointSide::Memory,
                            CounterStream::Request, cur, tgt - cur);
        }
    }
    reqCounter = base;
    groupPhase = phase;
    groupPadsValid = false;
    reqPads.invalidate();
    receiveMessage(std::move(msg));
}

void
ObfusMemMemSide::handleHandshakeChunk(const HandshakeChunk &chunk)
{
    // A chunk for an epoch we already installed means our response
    // was lost in flight: resend it at fresh control counters. The
    // stored response carries the same public value, so the peer
    // derives the same key (idempotent).
    if (installedEpoch != 0 && chunk.epoch <= installedEpoch) {
        if (chunk.epoch == installedEpoch)
            sendHandshakeResponse();
        return;
    }
    if (chunk.total == 0 || chunk.total > collectChunks.size()
        || chunk.len > handshakeChunkBytes)
        return;
    if (collectEpoch != chunk.epoch || collectTotal != chunk.total) {
        collectEpoch = chunk.epoch;
        collectTotal = chunk.total;
        collectMask = 0;
    }
    if (chunk.chunk >= collectTotal)
        return;
    collectChunks[chunk.chunk] = chunk;
    collectMask |= 1u << chunk.chunk;
    if (collectMask != (1u << collectTotal) - 1)
        return;

    // Full public value in hand: run our half of the exchange.
    std::vector<uint8_t> pub_bytes;
    for (unsigned i = 0; i < collectTotal; ++i) {
        const HandshakeChunk &c = collectChunks[i];
        pub_bytes.insert(pub_bytes.end(), c.data.begin(),
                         c.data.begin() + c.len);
    }
    crypto::BigUint peer_pub =
        crypto::BigUint::fromBytes(pub_bytes.data(), pub_bytes.size());
    crypto::DhEndpoint dh(crypto::DhGroup::testGroup256(), rekeyRng);
    crypto::Aes128::Key key = epochSessionKey(
        crypto::DhEndpoint::deriveSessionKey(dh.computeShared(peer_pub)),
        chunk.epoch, channel);

    // Stash the response payloads first so duplicates can be answered
    // verbatim later.
    std::vector<uint8_t> my_pub = dh.publicValue().toBytes();
    uint8_t total = static_cast<uint8_t>(
        (my_pub.size() + handshakeChunkBytes - 1) / handshakeChunkBytes);
    if (total == 0)
        total = 1;
    respPayloads.clear();
    for (uint8_t i = 0; i < total; ++i) {
        HandshakeChunk rc;
        rc.epoch = chunk.epoch;
        rc.chunk = i;
        rc.total = total;
        size_t off = static_cast<size_t>(i) * handshakeChunkBytes;
        rc.len = static_cast<uint16_t>(
            std::min(handshakeChunkBytes, my_pub.size() - off));
        std::copy_n(my_pub.begin() + off, rc.len, rc.data.begin());
        respPayloads.push_back(packHandshakeChunk(rc));
    }

    // Install the epoch key: both data-plane streams restart at
    // counter zero under the new key. The prefetch rings hold pads of
    // the old key; invalidate so the next take regenerates.
    installedEpoch = chunk.epoch;
    rxCipher.setKey(key, 2ull * channel);
    txCipher.setKey(key, 2ull * channel + 1);
    reqCounter = 0;
    groupPhase = 0;
    groupPadsValid = false;
    respCounter = 0;
    reqPads.invalidate();
    replyPads.invalidate();
    ++rekeysCompleted;
    if (audit) {
        audit->onIncident(curTick(), channel, EndpointSide::Memory,
                          ChannelIncident::RekeyCompleted);
    }
    sendHandshakeResponse();
}

void
ObfusMemMemSide::sendHandshakeResponse()
{
    // Response chunks ride reply-shaped frames on the control tx
    // stream: indistinguishable on the wire from ordinary read
    // replies. Control pads are not reported to the auditor. All
    // chunks of one response stage into one burst.
    auto scope = burstScope(replyBurst, [this] { flushReplyBurst(); });
    for (const DataBlock &payload : respPayloads) {
        uint64_t ctr = ctlRespCounter;
        ctlRespCounter += countersPerReply;
        ReplyPads pads = genReplyPads(ctlTx, ctr);
        WireHeader hdr;
        hdr.cmd = MemCmd::Read;
        hdr.addr = dummyBlockAddr;
        hdr.tag = 0;
        hdr.dummy = true;
        replyBurst.stageData(channel, pads.header(), pads.payload(),
                             hdr, payload, ctr);
        if (!replyBurst.deferred())
            flushReplyBurst();
    }
}

} // namespace obfusmem
