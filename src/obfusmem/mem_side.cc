/**
 * @file
 * ObfusMemMemSide implementation.
 */

#include "obfusmem/mem_side.hh"

#include "util/assert.hh"
#include "util/logging.hh"

namespace obfusmem {

ObfusMemMemSide::ObfusMemMemSide(const std::string &name,
                                 EventQueue &eq,
                                 statistics::Group *parent,
                                 const ObfusMemParams &params_,
                                 unsigned channel_id,
                                 const crypto::Aes128::Key &session_key,
                                 ChannelBus &bus_, PcmController &pcm_,
                                 const BackingStore &store_,
                                 uint64_t dummy_addr)
    : SimObject(name, eq, parent), params(params_), channel(channel_id),
      rxCipher(session_key, 2ull * channel_id),
      txCipher(session_key, 2ull * channel_id + 1), mac(params_.mac),
      bus(bus_), pcm(pcm_), store(store_), dummyBlockAddr(dummy_addr),
      junkRng(0x5eed0000 + channel_id)
{
    reqPads.configure(rxCipher, countersPerRequestGroup,
                      params.padPrefetchDepth, &padPrefetch);
    replyPads.configure(txCipher, countersPerReply,
                        params.padPrefetchDepth, &padPrefetch);
    stats().addScalar("realReads", &realReads,
                      "real read requests forwarded to PCM");
    stats().addScalar("realWrites", &realWrites,
                      "real write requests forwarded to PCM");
    stats().addScalar("dummyReadsAnswered", &dummyReadsAnswered,
                      "dummy reads answered with junk (no PCM access)");
    stats().addScalar("dummyWritesDropped", &dummyWritesDropped,
                      "dummy writes discarded at arrival");
    stats().addScalar("dummyPcmAccesses", &dummyPcmAccesses,
                      "dummy requests that hit PCM (non-fixed policy)");
    stats().addScalar("macFailures", &macFailures,
                      "MAC mismatches (tampering detected)");
    stats().addScalar("headerDesyncs", &headerDesyncs,
                      "undecryptable headers (counter desync)");
    stats().addScalar("padsUsed", &padsUsed,
                      "128-bit pads consumed by this controller");
    padPrefetch.regStats(stats());
}

void
ObfusMemMemSide::schedulePadRefill()
{
    // Zero-delay refills between protocol events: no simulated state
    // is read or written, so wire traffic and timing are untouched.
    if (reqPads.shouldScheduleRefill())
        scheduleAfter(0, [this]() { reqPads.refill(); });
    if (replyPads.shouldScheduleRefill())
        scheduleAfter(0, [this]() { replyPads.refill(); });
}

void
ObfusMemMemSide::receiveMessage(WireMessage msg)
{
    // Counter discipline: first message of a group decrypts with
    // ctr+0, the second with ctr+1; the group's payload (carried by
    // exactly one of them) with ctr+2..5. In the uniform-packet
    // scheme each message is a full group by itself.
    OBF_DCHECK(groupPhase < 2, "corrupt group phase ", groupPhase);
    uint64_t hdr_ctr = reqCounter + groupPhase;
    OBF_DCHECK(reqCounter <= UINT64_MAX - countersPerRequestGroup,
               "request counter exhausted on channel ", channel);
    padsUsed += 1;

    // Report the pads this message reserves: the group's first
    // (read) message burns one header pad, the second (write)
    // message burns its header pad plus the four payload pads; a
    // uniform-scheme message reserves the whole group by itself.
    if (audit) {
        uint64_t count = params.uniformPackets
                             ? countersPerRequestGroup
                             : (groupPhase == 0
                                    ? 1
                                    : countersPerRequestGroup - 1);
        audit->onPadUse(curTick(), channel, EndpointSide::Memory,
                        CounterStream::Request, hdr_ctr, count);
    }

    // Stage the whole group's pads when its first message arrives;
    // the second message reuses the staging. The prefetch ring
    // normally has the group ready, and a miss batch-generates the
    // identical bytes on the spot. A counter skew
    // (skewRequestCounter) invalidates both so desync behaves
    // exactly as pad-by-pad generation would.
    if (groupPhase == 0 || !groupPadsValid) {
        reqPads.take(reqCounter, groupPads.data());
        schedulePadRefill();
        groupPadsValid = true;
    }

    std::optional<WireHeader> hdr =
        decryptHeaderWithPad(groupPads[groupPhase], msg.cipherHeader);

    // Advance the group phase regardless: the pads are consumed.
    if (params.uniformPackets) {
        groupPhase = 0;
        reqCounter += countersPerRequestGroup;
    } else {
        groupPhase += 1;
        if (groupPhase == 2) {
            groupPhase = 0;
            reqCounter += countersPerRequestGroup;
        }
    }

    if (!hdr) {
        // Drop, inject or replay desynchronized the counters; from
        // here on the link is cryptographically dead (DoS, not data
        // loss - paper Sec. 3.5).
        ++headerDesyncs;
        if (audit) {
            audit->onIncident(curTick(), channel,
                              EndpointSide::Memory,
                              ChannelIncident::HeaderDesync);
        }
        return;
    }

    if (params.auth) {
        if (!msg.hasMac || !mac.verify(*hdr, hdr_ctr, msg.mac)) {
            ++macFailures;
            if (audit) {
                audit->onIncident(curTick(), channel,
                                  EndpointSide::Memory,
                                  ChannelIncident::MacMismatch);
            }
            return;
        }
    }

    DataBlock plain_data{};
    if (msg.hasData) {
        // Payload pads 2..5 of the (possibly just-completed) group the
        // cache still holds.
        plain_data = cryptPayloadWithPads(&groupPads[2],
                                          msg.cipherData);
        padsUsed += 4;
    }

    Tick lat = params.xorLatency
               + (params.auth ? mac.receiverLatency() : 0);
    WireHeader hdr_val = *hdr;
    bool has_data = msg.hasData;
    scheduleAfter(lat, [this, hdr_val, has_data, plain_data]() {
        handleRequest(hdr_val, has_data, plain_data, 0);
    });
}

void
ObfusMemMemSide::handleRequest(const WireHeader &hdr, bool has_data,
                               const DataBlock &plain_data, uint64_t)
{
    const bool is_dummy = hdr.dummy || hdr.addr == dummyBlockAddr;

    // Timing-oblivious operation forgoes dummy dropping: a dropped
    // request would finish faster than a real one (paper Sec. 6.2).
    const bool may_drop =
        params.dummyPolicy == DummyPolicy::Fixed
        && !params.timingOblivious;

    if (hdr.cmd == MemCmd::Write) {
        if (is_dummy) {
            if (may_drop) {
                // Request dropping: no cell write, no wear, no energy.
                ++dummyWritesDropped;
                return;
            }
            // Original/Random-address dummies cannot be dropped; they
            // cost a real PCM row access. Rewrite the current content
            // so memory stays functionally intact.
            ++dummyPcmAccesses;
            MemPacket pkt;
            pkt.cmd = MemCmd::Write;
            pkt.addr = hdr.addr;
            pkt.data = store.read(hdr.addr);
            pkt.issueTick = curTick();
            pcm.access(std::move(pkt), [](MemPacket &&) {});
            return;
        }
        ++realWrites;
        MemPacket pkt;
        pkt.cmd = MemCmd::Write;
        pkt.addr = hdr.addr;
        pkt.data = plain_data;
        pkt.issueTick = curTick();
        panic_if(!has_data, "real write message without payload");
        if (params.uniformPackets) {
            // Uniform scheme: writes are acknowledged with a
            // full-size junk reply so replies reveal nothing.
            WireHeader reply_hdr = hdr;
            pcm.access(std::move(pkt),
                [this, reply_hdr](MemPacket &&) {
                    DataBlock junk;
                    junkRng.fillBytes(junk.data(), junk.size());
                    sendReadReply(reply_hdr, junk);
                });
        } else {
            pcm.access(std::move(pkt), [](MemPacket &&) {});
        }
        return;
    }

    // Read.
    if (is_dummy && may_drop) {
        // Answer immediately with junk; the processor discards it.
        ++dummyReadsAnswered;
        DataBlock junk;
        junkRng.fillBytes(junk.data(), junk.size());
        sendReadReply(hdr, junk);
        return;
    }

    if (is_dummy)
        ++dummyPcmAccesses;
    else
        ++realReads;

    MemPacket pkt;
    pkt.cmd = MemCmd::Read;
    pkt.addr = hdr.addr;
    pkt.issueTick = curTick();
    WireHeader reply_hdr = hdr;
    pcm.access(std::move(pkt),
        [this, reply_hdr](MemPacket &&resp) {
            sendReadReply(reply_hdr, resp.data);
        });
}

void
ObfusMemMemSide::sendReadReply(const WireHeader &req_hdr,
                               const DataBlock &data)
{
    uint64_t ctr = respCounter;
    OBF_DCHECK(ctr <= UINT64_MAX - countersPerReply,
               "response counter exhausted on channel ", channel);
    respCounter += countersPerReply;
    if (audit) {
        audit->onPadUse(curTick(), channel, EndpointSide::Memory,
                        CounterStream::Response, ctr,
                        countersPerReply);
    }

    WireHeader hdr;
    hdr.cmd = MemCmd::Read;
    hdr.addr = req_hdr.addr;
    hdr.tag = req_hdr.tag;
    hdr.dummy = req_hdr.dummy;

    ReplyPads pads;
    replyPads.take(ctr, pads.pad.data());
    schedulePadRefill();
    WireMessage msg;
    msg.cipherHeader = encryptHeaderWithPad(pads.header(), hdr);
    msg.hasData = true;
    msg.cipherData = cryptPayloadWithPads(pads.payload(), data);
    padsUsed += 5;
    if (params.auth) {
        msg.hasMac = true;
        msg.mac = mac.compute(hdr, ctr);
    }

    Tick lat = params.xorLatency
               + (params.auth ? mac.senderLatency() : 0);
    scheduleAfter(lat, [this, msg = std::move(msg)]() mutable {
        uint64_t snoop_addr = msg.snoopAddr();
        uint32_t bytes = msg.wireBytes(params.headerWireBytes, params.macWireBytes);
        bus.send(BusDir::ToProcessor, bytes, snoop_addr, false,
                 [this, msg = std::move(msg)]() mutable {
                     panic_if(!replyTarget,
                              "no reply target wired to mem side");
                     replyTarget(std::move(msg));
                 });
    });
}

} // namespace obfusmem
