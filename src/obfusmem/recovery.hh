/**
 * @file
 * Link-recovery configuration and control-plane key schedule.
 *
 * The paper treats any drop/inject/replay as a detected attack that
 * permanently kills the channel (Sec. 3.5). For a production link
 * that also has to survive *benign* faults, the endpoints add three
 * recovery tiers on top of the fail-stop core:
 *
 *   1. bounded retry: the processor side keeps every in-flight
 *      request replayable and retransmits (at fresh counters) after a
 *      timeout, with exponential backoff up to a retry cap;
 *   2. counter resync: a receiver whose header fails to decrypt
 *      trial-decrypts a small window of future counter positions and
 *      jumps forward on a verified hit, burning the skipped pads;
 *   3. re-key: when retries exhaust, the endpoints run a fresh DH
 *      exchange (src/crypto/dh.*) inside ordinary-looking frames and
 *      restart the channel counters from zero under the new epoch
 *      key. If re-key itself fails repeatedly, the channel is
 *      quarantined and escalated through stats/incidents.
 *
 * All recovery traffic is built from the same fixed-shape frames as
 * normal traffic, so an external snooper (and the TraceAuditor)
 * cannot tell recovery from load. With recovery disabled the
 * endpoints behave exactly like the fail-stop original, bit for bit.
 */

#ifndef OBFUSMEM_OBFUSMEM_RECOVERY_HH
#define OBFUSMEM_OBFUSMEM_RECOVERY_HH

#include <cstdint>

#include "crypto/aes128.hh"
#include "sim/types.hh"
#include "util/secret.hh"

namespace obfusmem {

/** Knobs of the link-recovery subsystem (OBFUSMEM_RECOVERY*). */
struct RecoveryParams
{
    /** Master switch; off reproduces the fail-stop paper behavior. */
    bool enabled = true;
    /** Base retransmit timeout; doubles per attempt (backoff). */
    Tick retryTimeout = 50000 * tickPerNs;
    /** Retransmissions per request before escalating to re-key. */
    unsigned retryMax = 4;
    /** Groups of forward counter positions a resync scan considers. */
    unsigned resyncWindowGroups = 16;
    /** Re-key attempts before the channel is quarantined. */
    unsigned rekeyMaxAttempts = 3;

    /** Read the OBFUSMEM_RECOVERY/RETRY/RESYNC/REKEY knobs. */
    static RecoveryParams fromEnv();
};

/** Knob-derived defaults, latched on first use. */
const RecoveryParams &defaultRecoveryParams();

/**
 * Nonce offset of the control-plane CTR streams. Data streams use
 * nonces 2c and 2c+1; the control streams sit far away at
 * 0x10000 + 2c (processor to memory) and 0x10000 + 2c + 1 so control
 * pads can never collide with data pads under the same key.
 */
constexpr uint64_t controlNonceBase = 0x10000;

/**
 * Derive the control-plane key from a channel session key. Handshake
 * frames must stay decryptable while the data-plane key is being
 * replaced, so the control key evolves separately: it is a one-way
 * mix of the *boot* session key and never changes per epoch.
 */
OBF_SECRET crypto::Aes128::Key
controlKeyFor(OBF_SECRET const crypto::Aes128::Key &session);

/**
 * Derive the data-plane key of a re-key epoch from the DH-agreed
 * secret key, the epoch number and the channel id.
 */
OBF_SECRET crypto::Aes128::Key
epochSessionKey(OBF_SECRET const crypto::Aes128::Key &dh_key,
                uint32_t epoch, unsigned channel);

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_RECOVERY_HH
