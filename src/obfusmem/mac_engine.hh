/**
 * @file
 * Bus-message authentication (paper Sec. 3.5).
 *
 * The MAC is MD5 over (request type | address | counter) - the
 * *plaintext* components plus the never-reused counter, so the
 * receiver can recompute it from its own synchronized counter and any
 * tamper, drop, injection or replay yields a mismatch.
 *
 * Two composition modes are modelled:
 *  - encrypt-and-MAC: the MAC is computed over plaintext components,
 *    so it overlaps with request encryption (and can even start early
 *    via LLC eviction / stride prediction); only a small residual
 *    latency remains on the critical path.
 *  - encrypt-then-MAC: the MAC covers the ciphertext, so the full MD5
 *    pipeline latency serializes after encryption. Provided as the
 *    paper's rejected alternative for the ablation benchmark.
 */

#ifndef OBFUSMEM_OBFUSMEM_MAC_ENGINE_HH
#define OBFUSMEM_OBFUSMEM_MAC_ENGINE_HH

#include "crypto/md5.hh"
#include "obfusmem/wire_format.hh"
#include "sim/types.hh"
#include "util/assert.hh"
#include "util/secret.hh"

namespace obfusmem {

/** MAC composition mode. */
enum class MacMode { EncryptAndMac, EncryptThenMac };

/**
 * Computes and verifies per-message MACs and reports the latency each
 * mode adds to the message path.
 */
class MacEngine
{
  public:
    struct Params
    {
        MacMode mode = MacMode::EncryptAndMac;
        /**
         * Residual critical-path latency of encrypt-and-MAC: mostly
         * hidden by overlap with encryption/prediction.
         */
        Tick overlappedLatency = 2 * tickPerNs;
        /**
         * Full 64-stage MD5 pipeline latency that encrypt-then-MAC
         * serializes behind encryption (64 stages at 4 ns).
         */
        Tick pipelineLatency = 64 * 4 * tickPerNs;
    };

    explicit MacEngine(const Params &params_) : params(params_)
    {
        // Encrypt-and-MAC exists because its residual latency hides
        // under encryption; a config where it costs more than the
        // full pipeline is a misconfiguration, not a mode choice.
        OBF_DCHECK(params.overlappedLatency <= params.pipelineLatency,
                   "overlapped MAC latency exceeds the pipeline");
    }

    /** MAC over (type | address | counter). The tag is secret. */
    OBF_SECRET crypto::Md5Digest compute(const WireHeader &hdr,
                                         uint64_t counter) const;

    /**
     * Compute the MACs of a batch of messages in one call — both
     * messages of a request group are MACed together, mirroring the
     * batched pad generation (the hardware analogue: one pass through
     * the pipelined MD5 engine per group, not per message).
     */
    void computeBatch(const WireHeader *hdrs, const uint64_t *counters,
                      OBF_SECRET crypto::Md5Digest *out,
                      size_t n) const;

    /**
     * Verify a received MAC against local plaintext + counter. The
     * boolean outcome is deliberately public (it drives the tamper
     * fail-stop); the comparison inside goes through crypto::ctEqual.
     */
    OBF_PUBLIC bool verify(const WireHeader &hdr, uint64_t counter,
                           OBF_SECRET const crypto::Md5Digest &mac) const;

    /** Latency added on the sender side. */
    Tick senderLatency() const
    {
        return params.mode == MacMode::EncryptAndMac
                   ? params.overlappedLatency
                   : params.pipelineLatency;
    }

    /** Latency added on the receiver side (verification). */
    Tick receiverLatency() const
    {
        // Verification recomputes the MAC from decrypted components;
        // the pipeline is busy either way, but encrypt-and-MAC lets
        // the hash start as soon as the header pad XOR finishes.
        return params.mode == MacMode::EncryptAndMac
                   ? params.overlappedLatency
                   : params.pipelineLatency;
    }

    MacMode mode() const { return params.mode; }

  private:
    Params params;
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_MAC_ENGINE_HH
