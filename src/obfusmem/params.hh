/**
 * @file
 * Shared configuration of the ObfusMem controllers on both ends of a
 * channel.
 */

#ifndef OBFUSMEM_OBFUSMEM_PARAMS_HH
#define OBFUSMEM_OBFUSMEM_PARAMS_HH

#include "obfusmem/mac_engine.hh"
#include "obfusmem/recovery.hh"
#include "secure/pad_prefetcher.hh"
#include "sim/types.hh"

namespace obfusmem {

/** Address assigned to dummy requests (paper Sec. 3.3). */
enum class DummyPolicy
{
    /** Reserved per-channel block; enables dropping at the memory. */
    Fixed,
    /** Same address as the real request (wear/energy ablation). */
    Original,
    /** Uniformly random address (locality-loss ablation). */
    Random,
};

/** Inter-channel obfuscation scheme (paper Sec. 3.4). */
enum class ChannelScheme
{
    /** No cross-channel dummies (leaks inter-channel pattern). */
    None,
    /** Dummy on every other channel per real request (UNOPT). */
    Unopt,
    /** Dummy only on idle channels (OPT). */
    Opt,
};

/** ObfusMem controller parameters. */
struct ObfusMemParams
{
    /** Authenticate bus messages with the MAC engine. */
    bool auth = true;
    MacEngine::Params mac{};

    DummyPolicy dummyPolicy = DummyPolicy::Fixed;
    ChannelScheme channelScheme = ChannelScheme::Opt;

    /**
     * InvisiMem-style alternative (paper Sec. 7): instead of split
     * read-then-write dummy pairs, every request message carries a
     * full-size payload (junk for reads) and every request gets a
     * full-size reply (junk for writes), so sizes reveal nothing.
     * Costs bus bandwidth unconditionally, which is why the paper's
     * split scheme wins under load.
     */
    bool uniformPackets = false;

    /**
     * Counter-ahead pad prefetch depth, in pad groups per counter
     * stream (0 disables). Pads are pure functions of (key, counter),
     * so the depth cannot change anything on the wire - it only moves
     * host-side AES work off the protocol path into batched refills.
     * Default from OBFUSMEM_PAD_PREFETCH.
     */
    unsigned padPrefetchDepth = defaultPadPrefetchDepth();

    /** Session Key Table lookup (one core cycle). */
    Tick keyTableLatency = 500;
    /** XOR of pregenerated pad with header/data. */
    Tick xorLatency = 1 * tickPerNs;

    /**
     * Data-bus bytes of the encrypted header. Zero models a DDR-like
     * phy where the 128-bit header rides the command/address pins
     * over a few command slots.
     */
    uint32_t headerWireBytes = 0;
    /**
     * Data-bus bytes of the MAC (the 128-bit MD5 tag is truncated on
     * the wire, as is common for bus MACs).
     */
    uint32_t macWireBytes = 8;

    /**
     * Controller write buffering: write groups are held off the
     * channel while reads are outstanding, draining when the channel
     * is otherwise idle or the buffer passes the high watermark.
     */
    unsigned writeQueueHighWatermark = 16;
    unsigned writeQueueLowWatermark = 4;
    /** Cap on in-flight request groups per channel (tag budget). */
    unsigned maxOutstandingGroups = 64;

    /**
     * Timing-oblivious operation (paper Sec. 6.2 future work): each
     * channel issues exactly one request group per epoch - a queued
     * real request if one exists, a dummy group otherwise - and the
     * memory services dummies like real accesses (no dropping), so
     * request *timing* reveals nothing either. Heartbeats pause only
     * when the whole controller is quiescent.
     */
    bool timingOblivious = false;
    /** Issue epoch per channel in timing-oblivious mode. */
    Tick issueEpoch = 60 * tickPerNs;

    /** Link-recovery subsystem (retry / resync / re-key) knobs. */
    RecoveryParams recovery = defaultRecoveryParams();
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_PARAMS_HH
