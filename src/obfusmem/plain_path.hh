/**
 * @file
 * The unprotected (and encryption-only) channel path: commands and
 * addresses travel in the clear on the command pins, data blocks on
 * the data bus. This is the baseline every protected configuration is
 * normalized against, and it is also what makes the bus observer's
 * attacks work: the snoop sees true addresses and request types.
 *
 * Like a real memory controller, the path buffers writes and gives
 * reads priority for the channel; buffered writes drain when the
 * channel is idle or the buffer passes its high watermark.
 */

#ifndef OBFUSMEM_OBFUSMEM_PLAIN_PATH_HH
#define OBFUSMEM_OBFUSMEM_PLAIN_PATH_HH

#include <deque>
#include <vector>

#include "mem/address_map.hh"
#include "mem/channel_bus.hh"
#include "mem/packet.hh"
#include "mem/packet_pool.hh"
#include "mem/pcm_controller.hh"
#include "sim/sim_object.hh"

namespace obfusmem {

/**
 * Routes requests to the per-channel buses and PCM controllers with
 * no obfuscation.
 */
class PlainPath : public SimObject, public MemSink
{
  public:
    struct Params
    {
        unsigned writeQueueHighWatermark = 16;
        unsigned writeQueueLowWatermark = 4;
    };

    PlainPath(const std::string &name, EventQueue &eq,
              statistics::Group *parent, const AddressMap &map,
              const std::vector<ChannelBus *> &buses,
              const std::vector<PcmController *> &controllers,
              PacketPool &pool, const Params &params);

    void access(MemPacket pkt, PacketCallback cb) override;

  private:
    struct QueuedWrite
    {
        MemPacket pkt;
        PacketCallback cb;
    };

    struct ChannelState
    {
        unsigned outstandingReads = 0;
        std::deque<QueuedWrite> writeQueue;
        bool drainingWrites = false;
    };

    /** Put a read on the wire and route the reply back. */
    void sendRead(unsigned channel, MemPacket pkt, PacketCallback cb);

    /** Put a write on the wire. */
    void sendWrite(unsigned channel, MemPacket pkt, PacketCallback cb);

    void maybeDrainWrites(unsigned channel);

    const AddressMap &addrMap;
    std::vector<ChannelBus *> buses;
    std::vector<PcmController *> controllers;
    PacketPool &pool;
    Params params;
    std::vector<ChannelState> channelState;

    statistics::Scalar reads, writes;
    statistics::Scalar forwardedFromWriteQueue;
};

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_PLAIN_PATH_HH
