/**
 * @file
 * BurstBatch: the structure-of-arrays batch pipeline for outbound
 * protection work.
 *
 * The scalar hot path built, MAC'd and transmitted each wire frame to
 * completion before starting the next, so every message paid a full
 * scalar MD5 plus a round of per-field plumbing. A BurstBatch instead
 * carries all frames staged inside one synchronous call chain — a
 * dispatch fan-out, a write-drain loop, a re-key replay — through the
 * pipeline in stage-wise passes:
 *
 *   stage:  per-frame protocol work that must stay in program order
 *           (counter advance, pad-ring takes, audit onPadUse probes,
 *           pending-table bookkeeping, junk draws) plus pushing the
 *           frame's fields into the SoA lanes (FrameBatch) and its
 *           delivery context into the parallel lanes here.
 *   flush:  one MacEngine::computeBatch over the whole header/counter
 *           lane (vectorized MD5 lanes), one FrameBatch::seal pass
 *           (encrypt lane, payload lane, MAC lane), then delivery of
 *           the sealed frames in stage order.
 *
 * Because ChannelBus::send only *enqueues* (delivery happens on later
 * ticks after serialization + propagation), moving the sends of one
 * synchronous call chain to its end — same tick, same relative order —
 * produces bit-identical bus traffic, snoop traces and fault draws.
 * The OBFUSMEM_BURST_BATCH=0 escape hatch forces a flush after every
 * stage, reproducing the legacy per-message order exactly; CI diffs
 * the wire traces of both modes to enforce the equivalence.
 *
 * Flushing happens when the outermost Scope closes (a depth counter
 * handles nesting, e.g. dispatch -> maybeDrainWrites -> sendGroup).
 * The owner decides *how* to deliver by passing a callable to
 * flushWith — a template hop, not a std::function, so the per-frame
 * delivery is statically dispatched.
 */

#ifndef OBFUSMEM_OBFUSMEM_BURST_BATCH_HH
#define OBFUSMEM_OBFUSMEM_BURST_BATCH_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "obfusmem/mac_engine.hh"
#include "obfusmem/wire_format.hh"
#include "util/env.hh"
#include "util/secret.hh"

namespace obfusmem {

class BurstBatch
{
  public:
    /**
     * Delivery context staged alongside a frame: the completion to
     * fire once the frame reaches the far pin. Frames without a
     * completion (header halves, dummies, control traffic) leave the
     * callback empty.
     */
    struct Completion
    {
        MemPacket pkt{};
        PacketCallback cb;
    };

    BurstBatch()
        : deferEnabled(env::u64("OBFUSMEM_BURST_BATCH", 1) != 0)
    {}

    /** True while an open Scope defers flushing to its close. */
    bool deferred() const { return deferEnabled && depth > 0; }

    /** Stage a header-only frame bound for `channel`. */
    void
    stageHeader(unsigned channel, const crypto::Block128 &hdr_pad,
                const WireHeader &hdr, uint64_t mac_ctr)
    {
        frames.stageHeaderFrame(hdr_pad, hdr, mac_ctr);
        channels.push_back(channel);
        completions.emplace_back();
    }

    /** Stage a data frame bound for `channel`, no completion. */
    void
    stageData(unsigned channel, const crypto::Block128 &hdr_pad,
              const crypto::Block128 payload_pads[4],
              const WireHeader &hdr, const DataBlock &payload,
              uint64_t mac_ctr)
    {
        frames.stageDataFrame(hdr_pad, payload_pads, hdr, payload,
                              mac_ctr);
        channels.push_back(channel);
        completions.emplace_back();
    }

    /** Stage a data frame whose delivery completes a request. */
    void
    stageData(unsigned channel, const crypto::Block128 &hdr_pad,
              const crypto::Block128 payload_pads[4],
              const WireHeader &hdr, const DataBlock &payload,
              uint64_t mac_ctr, MemPacket pkt, PacketCallback cb)
    {
        frames.stageDataFrame(hdr_pad, payload_pads, hdr, payload,
                              mac_ctr);
        channels.push_back(channel);
        completions.push_back(
            Completion{std::move(pkt), std::move(cb)});
    }

    /**
     * Run the back half of the pipeline: batch-MAC (when `auth`),
     * seal, and hand each frame to `deliver(channel, msg, completion)`
     * in stage order. No-op on an empty batch.
     */
    template <class Deliver>
    void
    flushWith(const MacEngine &mac, bool auth, Deliver &&deliver)
    {
        const size_t n = frames.size();
        if (n == 0)
            return;
        if (auth) {
            macs.resize(n);
            mac.computeBatch(frames.headers(), frames.macCounters(),
                             macs.data(), n);
        }
        msgs.resize(n);
        frames.seal(auth ? macs.data() : nullptr, msgs.data());
        for (size_t i = 0; i < n; ++i)
            deliver(channels[i], std::move(msgs[i]),
                    std::move(completions[i]));
        channels.clear();
        completions.clear();
        msgs.clear();
    }

    /**
     * RAII nesting guard: the outermost scope's close triggers the
     * owner's flush. `flush` is the owner's flush thunk (typically
     * `[this] { flushBurst(); }`).
     */
    template <class FlushFn>
    class Scope
    {
      public:
        Scope(BurstBatch &b, FlushFn flush)
            : batch(b), flushFn(std::move(flush))
        {
            ++batch.depth;
        }

        ~Scope()
        {
            if (--batch.depth == 0)
                flushFn();
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        BurstBatch &batch;
        FlushFn flushFn;
    };

  private:
    FrameBatch frames;
    std::vector<unsigned> channels;
    std::vector<Completion> completions;
    OBF_SECRET std::vector<crypto::Md5Digest> macs;
    std::vector<WireMessage> msgs;
    unsigned depth = 0;
    const bool deferEnabled;
};

/** Deduce the flush-thunk type (pre-C++17-CTAD-style helper). */
template <class FlushFn>
BurstBatch::Scope<FlushFn>
burstScope(BurstBatch &b, FlushFn flush)
{
    return BurstBatch::Scope<FlushFn>(b, std::move(flush));
}

} // namespace obfusmem

#endif // OBFUSMEM_OBFUSMEM_BURST_BATCH_HH
