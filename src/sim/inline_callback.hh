/**
 * @file
 * A move-only, type-erased callable with inline storage. The event
 * kernel stores callbacks in pooled event nodes; keeping the capture
 * inside the node (instead of behind a std::function heap cell) is
 * what makes schedule()/step() allocation-free at steady state.
 */

#ifndef OBFUSMEM_SIM_INLINE_CALLBACK_HH
#define OBFUSMEM_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace obfusmem {

/**
 * Like std::function<void()>, but the capture lives in `Capacity`
 * bytes of inline storage — there is no fallback heap allocation. A
 * capture larger than `Capacity` is a compile error (static_assert),
 * so growth of a hot-path closure is caught at build time instead of
 * silently reintroducing an allocation per event.
 *
 * Move-only: callbacks routinely own moved-in MemPackets and
 * std::functions, and the kernel only ever needs to relocate them
 * (schedule -> node -> step), never duplicate them.
 */
template <std::size_t Capacity>
class InlineCallback
{
  public:
    static constexpr std::size_t capacity = Capacity;

    InlineCallback() = default;

    /** Wrap any void() callable whose size fits the inline storage. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "InlineCallback target must be callable as void()");
        static_assert(sizeof(Fn) <= Capacity,
                      "callback capture exceeds InlineCallback storage; "
                      "shrink the capture (move large objects into a pool "
                      "and capture the handle) or raise the capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callback capture");
        ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
        vt = vtableFor<Fn>();
    }

    InlineCallback(InlineCallback &&other) noexcept : vt(other.vt)
    {
        if (vt) {
            vt->relocate(storage, other.storage);
            other.vt = nullptr;
        }
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            vt = other.vt;
            if (vt) {
                vt->relocate(storage, other.storage);
                other.vt = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** Destroy the held callable (if any); leaves *this empty. */
    void
    reset()
    {
        if (vt) {
            vt->destroy(storage);
            vt = nullptr;
        }
    }

    explicit operator bool() const { return vt != nullptr; }

    /** Invoke the held callable. Precondition: non-empty. */
    void operator()() { vt->invoke(storage); }

  private:
    struct VTable
    {
        void (*invoke)(void *self);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static const VTable *
    vtableFor()
    {
        static const VTable table = {
            [](void *self) {
                (*std::launder(reinterpret_cast<Fn *>(self)))();
            },
            [](void *dst, void *src) {
                Fn *from = std::launder(reinterpret_cast<Fn *>(src));
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            },
            [](void *self) {
                std::launder(reinterpret_cast<Fn *>(self))->~Fn();
            },
        };
        return &table;
    }

    alignas(std::max_align_t) unsigned char storage[Capacity];
    const VTable *vt = nullptr;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_INLINE_CALLBACK_HH
