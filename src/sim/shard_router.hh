/**
 * @file
 * Deterministic cross-shard event exchange for the sharded simulation
 * kernel (sharded_kernel.hh).
 *
 * Endpoints (event queues, e.g. one per simulated socket) are
 * partitioned across shards; each shard pair gets a pair of SPSC
 * mailboxes (one per epoch parity). During an epoch a source shard
 * appends cross-shard events to the current-parity mailbox without
 * taking any lock — the parity scheme guarantees no consumer touches
 * that buffer until the next epoch barrier, and the barrier itself
 * (WorkerGroup's mutex/condvar join) publishes the writes. At the
 * start of the next round the destination shard drains the opposite
 * parity from every source shard in fixed order and re-sorts by the
 * shard-layout-independent key (when, source endpoint, per-source
 * sequence number) before scheduling into the destination queues, so
 * the insertion order — and therefore every (when, seq) tie-break in
 * the destination kernel — is bit-identical whether the simulation
 * runs on 1 shard or N.
 */

#ifndef OBFUSMEM_SIM_SHARD_ROUTER_HH
#define OBFUSMEM_SIM_SHARD_ROUTER_HH

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "util/stats.hh"

namespace obfusmem {

/**
 * Mailbox fabric between shards. Owned and driven by ShardedKernel;
 * exposed separately so tests can exercise the exchange protocol on
 * bare event queues.
 */
class ShardRouter
{
  public:
    /** One cross-shard message: run `cb` on endpoint `dst` at `when`. */
    struct CrossEvent
    {
        Tick when;
        uint32_t src; ///< source endpoint id (global, not shard)
        uint32_t dst; ///< destination endpoint id
        uint64_t seq; ///< per-source monotonic sequence number
        EventQueue::Callback cb;
    };

    /**
     * @param endpoint_queues Destination queue per endpoint id.
     * @param shard_of Owning shard per endpoint id.
     * @param shards Number of shards (mailboxes are shards²×2).
     */
    ShardRouter(std::vector<EventQueue *> endpoint_queues,
                std::vector<unsigned> shard_of, unsigned shards);

    /**
     * Post a cross-shard event. Must be called on the shard thread
     * that owns `src`, during that shard's run phase. The caller
     * (ShardedKernel::post) enforces the lookahead contract:
     * `when` at or past the next epoch boundary.
     */
    void post(unsigned src, unsigned dst, Tick when,
              EventQueue::Callback cb);

    /**
     * Drain every mailbox of parity @p parity destined for
     * @p dst_shard, in deterministic order, scheduling each event
     * into its destination endpoint's queue. Must be called on
     * @p dst_shard's thread, after the epoch barrier, before the
     * shard's run phase.
     */
    void drainTo(unsigned dst_shard, unsigned parity);

    /**
     * Flip the active posting parity for the coming round. Called by
     * the kernel between rounds (workers quiescent).
     */
    void setRoundParity(unsigned parity) { roundParity = parity; }

    /** Messages posted minus messages drained (kernel termination). */
    uint64_t
    inFlight() const
    {
        return posted.value() - drained.value();
    }

    /** Fold the per-shard counters (call between rounds). */
    void
    mergeStats()
    {
        posted.merge();
        drained.merge();
    }

    uint64_t messagesPosted() const { return posted.value(); }
    uint64_t messagesDrained() const { return drained.value(); }

    /** Register the router counters under @p parent. */
    void attachStats(statistics::Group &parent);

  private:
    /// SPSC mailbox for one (src shard, dst shard, parity) triple.
    /// Producer: src shard's run phase. Consumer: dst shard's drain
    /// phase one round later. Never both in the same phase.
    struct Mailbox
    {
        std::vector<CrossEvent> events;
    };

    Mailbox &
    box(unsigned src_shard, unsigned dst_shard, unsigned parity)
    {
        return boxes[(src_shard * shardCount + dst_shard) * 2 + parity];
    }

    /// Per-source-endpoint sequence counters, cache-line padded: a
    /// counter is only ever touched by its endpoint's owning shard,
    /// but neighbors would false-share without the padding.
    struct alignas(64) SrcSeq
    {
        uint64_t next = 0;
    };

    std::vector<EventQueue *> queues;
    std::vector<unsigned> shardOf;
    unsigned shardCount;
    unsigned roundParity = 0;
    std::vector<Mailbox> boxes;
    std::vector<SrcSeq> srcSeq;
    /// Drain-side scratch, one per shard (reused across rounds so the
    /// merge-sort does not allocate at steady state).
    std::vector<std::vector<CrossEvent>> scratch;

    statistics::ShardedScalar posted;
    statistics::ShardedScalar drained;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_SHARD_ROUTER_HH
