/**
 * @file
 * Event queue implementation: slab/free-list node pool, timing wheel
 * with two-level occupancy bitmap, and the binary-heap overflow tier.
 */

#include "sim/event_queue.hh"

#include <bit>

#include "util/assert.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace obfusmem {

EvqImpl
EventQueue::defaultImpl()
{
    static const EvqImpl choice =
        env::choice("OBFUSMEM_EVQ_IMPL", {"wheel", "heap"}, 0) == 1
            ? EvqImpl::Heap
            : EvqImpl::Wheel;
    return choice;
}

EventQueue::EventQueue(EvqImpl impl) : implChoice(impl)
{
    if (implChoice == EvqImpl::Wheel) {
        bucketHead.assign(wheelSlots, nilIdx);
        bucketTail.assign(wheelSlots, nilIdx);
        bitsL0.assign(wheelSlots / 64, 0);
        bitsL1.assign(wheelSlots / (64 * 64), 0);
    }
}

uint32_t
EventQueue::allocNode()
{
    if (freeHead == nilIdx) {
        panic_if(slabs.size() >= (size_t(nilIdx) >> slabShift),
                 "event pool exhausted");
        auto slab = std::make_unique<EventNode[]>(slabNodes);
        const uint32_t base =
            static_cast<uint32_t>(slabs.size() << slabShift);
        // Thread the fresh slab onto the free list in reverse so the
        // lowest index pops first (cache-friendly warm-up order).
        for (size_t i = slabNodes; i-- > 0;) {
            slab[i].next = freeHead;
            freeHead = base + static_cast<uint32_t>(i);
        }
        slabs.push_back(std::move(slab));
        statPoolNodes.set(static_cast<double>(poolCapacity()));
    }
    const uint32_t idx = freeHead;
    freeHead = node(idx).next;
    if (++liveNodes > highWater) {
        highWater = liveNodes;
        statPoolHighWater.set(static_cast<double>(highWater));
    }
    return idx;
}

void
EventQueue::freeNode(uint32_t idx)
{
    EventNode &n = node(idx);
    n.next = freeHead;
    freeHead = idx;
    --liveNodes;
}

void
EventQueue::wheelInsert(uint32_t idx)
{
    EventNode &n = node(idx);
    const size_t b = static_cast<size_t>(n.when) & (wheelSlots - 1);
    if (bucketHead[b] == nilIdx) {
        bucketHead[b] = idx;
        bitsL0[b >> 6] |= uint64_t(1) << (b & 63);
        bitsL1[b >> 12] |= uint64_t(1) << ((b >> 6) & 63);
    } else {
        // Append at the tail: same-tick events stay FIFO. The window
        // invariant (all wheel events within one span of wheelBase)
        // guarantees a bucket only ever holds a single tick value.
        node(bucketTail[b]).next = idx;
    }
    bucketTail[b] = idx;
    ++wheelCount;
}

uint32_t
EventQueue::popBucket(size_t b)
{
    const uint32_t idx = bucketHead[b];
    OBF_DCHECK(idx != nilIdx, "popping empty bucket ", b);
    bucketHead[b] = node(idx).next;
    if (bucketHead[b] == nilIdx) {
        bucketTail[b] = nilIdx;
        uint64_t &word = bitsL0[b >> 6];
        word &= ~(uint64_t(1) << (b & 63));
        if (word == 0)
            bitsL1[b >> 12] &= ~(uint64_t(1) << ((b >> 6) & 63));
    }
    --wheelCount;
    return idx;
}

/**
 * First occupied bucket at or after `start`, scanning circularly.
 * Precondition: wheelCount > 0. Buckets for ticks already executed
 * are empty, so the circular scan order is exactly increasing-tick
 * order within the window.
 */
size_t
EventQueue::findOccupiedFrom(size_t start) const
{
    const size_t w = start >> 6;
    const uint64_t first = bitsL0[w] & (~uint64_t(0) << (start & 63));
    if (first)
        return (w << 6) | static_cast<size_t>(std::countr_zero(first));

    const size_t numWords = bitsL0.size();
    size_t i = (w + 1) & (numWords - 1);
    for (size_t guard = 0; guard <= numWords + bitsL1.size(); ++guard) {
        if ((i & 63) == 0 && bitsL1[i >> 6] == 0) {
            i = (i + 64) & (numWords - 1); // skip an empty 64-word block
            continue;
        }
        if (bitsL0[i]) {
            return (i << 6) |
                   static_cast<size_t>(std::countr_zero(bitsL0[i]));
        }
        i = (i + 1) & (numWords - 1);
    }
    panic("wheel bitmap scan found no occupied bucket");
}

Tick
EventQueue::nextWheelTick() const
{
    const size_t mask = wheelSlots - 1;
    const size_t start = static_cast<size_t>(now) & mask;
    const size_t b = findOccupiedFrom(start);
    return now + ((b - start) & mask);
}

void
EventQueue::promoteFar()
{
    // Pull every far event that slid inside the window. Popping in
    // (when, seq) order keeps the bucket chains FIFO; doing this
    // before the callback runs guarantees that by the time any direct
    // wheel insert at tick T happens (which requires T inside the
    // window), every earlier-seq far event at T is already chained.
    while (!far.empty() && far.top().when - now < wheelSpan) {
        const uint32_t idx = far.top().idx;
        far.pop();
        wheelInsert(idx);
        ++promotions;
        statOverflowPromotions += 1;
    }
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < now, "scheduling event in the past (", when, " < ",
             now, ")");
    const uint32_t idx = allocNode();
    EventNode &n = node(idx);
    n.when = when;
    n.seq = nextSeq++;
    n.next = nilIdx;
    n.cb = std::move(cb);
    ++pending;
    // `when - now` can't underflow: the past-scheduling panic above.
    if (implChoice == EvqImpl::Wheel && when - now < wheelSpan)
        wheelInsert(idx);
    else
        far.push({when, n.seq, idx});
}

bool
EventQueue::step(Tick limit)
{
    if (pending == 0)
        return false;

    Tick when;
    if (implChoice == EvqImpl::Wheel && wheelCount > 0) {
        when = nextWheelTick();
        // The window slid since the far events were scheduled; one of
        // them may now be the earliest pending tick.
        if (!far.empty() && far.top().when < when)
            when = far.top().when;
    } else {
        when = far.top().when;
    }
    if (when > limit)
        return false;
    now = when;

    uint32_t idx;
    if (implChoice == EvqImpl::Wheel) {
        promoteFar();
        idx = popBucket(static_cast<size_t>(now) & (wheelSlots - 1));
    } else {
        idx = far.top().idx;
        far.pop();
    }

    // Move the callback out and recycle the node *before* invoking:
    // the capture is destroyed promptly (when `cb` leaves scope) and
    // the callback may itself schedule into the freed node.
    EventNode &n = node(idx);
    OBF_DCHECK(n.when == now, "node tick ", n.when, " != now ", now);
    Callback cb = std::move(n.cb);
    freeNode(idx);
    --pending;
    ++executed;
    statExecuted += 1;
    cb();
    return true;
}

uint64_t
EventQueue::run(Tick limit)
{
    const uint64_t before = executed;
    while (step(limit)) {
    }
    if (limit != maxTick && now < limit)
        now = limit;
    return executed - before;
}

void
EventQueue::attachStats(statistics::Group &parent)
{
    panic_if(statGroup != nullptr, "event queue stats already attached");
    statGroup = std::make_unique<statistics::Group>("eventq", &parent);
    // Seed with history accumulated before attachment; incremental
    // updates keep them current from here on.
    statExecuted.set(static_cast<double>(executed));
    statPoolHighWater.set(static_cast<double>(highWater));
    statOverflowPromotions.set(static_cast<double>(promotions));
    statPoolNodes.set(static_cast<double>(poolCapacity()));
    statGroup->addScalar("eventsExecuted", &statExecuted,
                         "events executed since construction");
    statGroup->addScalar("poolHighWater", &statPoolHighWater,
                         "max simultaneously pending events");
    statGroup->addScalar("poolNodes", &statPoolNodes,
                         "event node pool capacity");
    statGroup->addScalar("overflowPromotions", &statOverflowPromotions,
                         "far events promoted from overflow heap to wheel");
}

} // namespace obfusmem
