/**
 * @file
 * Event queue implementation.
 */

#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace obfusmem {

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < now, "scheduling event in the past (", when, " < ",
             now, ")");
    events.push({when, nextSeq++, std::move(cb)});
}

bool
EventQueue::step(Tick limit)
{
    if (events.empty() || events.top().when > limit)
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-compare the moved
    // element.
    auto &top = const_cast<PendingEvent &>(events.top());
    Tick when = top.when;
    Callback cb = std::move(top.cb);
    events.pop();
    now = when;
    ++executed;
    cb();
    return true;
}

uint64_t
EventQueue::run(Tick limit)
{
    uint64_t count = 0;
    while (step(limit))
        ++count;
    if (now < limit && limit != maxTick)
        now = limit;
    return count;
}

} // namespace obfusmem
