/**
 * @file
 * InlineFunction: InlineCallback generalized to arbitrary call
 * signatures. Same contract — move-only, type-erased, capture stored
 * in fixed inline bytes with no heap fallback — so hot-path
 * continuations (counter-fetch waiters, Merkle-walk resumptions) stop
 * paying a std::function allocation per hop and oversized captures
 * fail the build instead of silently regressing.
 */

#ifndef OBFUSMEM_SIM_INLINE_FUNCTION_HH
#define OBFUSMEM_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace obfusmem {

template <typename Sig, std::size_t Capacity>
class InlineFunction;

/**
 * Like std::function<R(Args...)>, but the capture lives in `Capacity`
 * bytes of inline storage — a larger capture is a compile error, not
 * an allocation. Arguments are forwarded by value/move exactly as
 * declared in the signature.
 */
template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    static constexpr std::size_t capacity = Capacity;

    InlineFunction() = default;

    /** Wrap any callable of matching signature that fits inline. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "InlineFunction target signature mismatch");
        static_assert(sizeof(Fn) <= Capacity,
                      "capture exceeds InlineFunction storage; shrink "
                      "the capture (move large objects into a pool and "
                      "capture the handle) or raise the capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callable capture");
        ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
        vt = vtableFor<Fn>();
    }

    InlineFunction(InlineFunction &&other) noexcept : vt(other.vt)
    {
        if (vt) {
            vt->relocate(storage, other.storage);
            other.vt = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            vt = other.vt;
            if (vt) {
                vt->relocate(storage, other.storage);
                other.vt = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Destroy the held callable (if any); leaves *this empty. */
    void
    reset()
    {
        if (vt) {
            vt->destroy(storage);
            vt = nullptr;
        }
    }

    explicit operator bool() const { return vt != nullptr; }

    /** Invoke the held callable. Precondition: non-empty. */
    R
    operator()(Args... args)
    {
        return vt->invoke(storage, std::forward<Args>(args)...);
    }

  private:
    struct VTable
    {
        R (*invoke)(void *self, Args &&...args);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static const VTable *
    vtableFor()
    {
        static const VTable table = {
            [](void *self, Args &&...args) -> R {
                return (*std::launder(reinterpret_cast<Fn *>(self)))(
                    std::forward<Args>(args)...);
            },
            [](void *dst, void *src) {
                Fn *from = std::launder(reinterpret_cast<Fn *>(src));
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            },
            [](void *self) {
                std::launder(reinterpret_cast<Fn *>(self))->~Fn();
            },
        };
        return &table;
    }

    alignas(std::max_align_t) unsigned char storage[Capacity];
    const VTable *vt = nullptr;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_INLINE_FUNCTION_HH
