/**
 * @file
 * Common base for simulated components: a name, access to the event
 * queue, and a statistics group.
 */

#ifndef OBFUSMEM_SIM_SIM_OBJECT_HH
#define OBFUSMEM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "util/stats.hh"

namespace obfusmem {

/**
 * Base class for all timed components in the simulator.
 */
class SimObject
{
  public:
    /**
     * @param name Instance name (used as the stats group name).
     * @param eq The shared event queue.
     * @param parent_stats Parent statistics group, or nullptr for root.
     */
    SimObject(std::string name, EventQueue &eq,
              statistics::Group *parent_stats)
        : objName(std::move(name)), eventq(eq),
          statGroup(objName.substr(objName.rfind('.') + 1), parent_stats)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return objName; }
    Tick curTick() const { return eventq.curTick(); }
    EventQueue &eventQueue() { return eventq; }
    statistics::Group &stats() { return statGroup; }

  protected:
    /** Schedule a member callback after a delay. */
    void
    scheduleAfter(Tick delay, EventQueue::Callback cb)
    {
        eventq.scheduleAfter(delay, std::move(cb));
    }

  private:
    std::string objName;
    EventQueue &eventq;
    statistics::Group statGroup;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_SIM_OBJECT_HH
