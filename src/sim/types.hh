/**
 * @file
 * Fundamental simulation time types. Following the gem5 convention,
 * one Tick is one picosecond, so integer tick arithmetic represents
 * all of the clock domains in the system exactly.
 */

#ifndef OBFUSMEM_SIM_TYPES_HH
#define OBFUSMEM_SIM_TYPES_HH

#include <cstdint>

namespace obfusmem {

/** Simulated time in picoseconds. */
using Tick = uint64_t;

/** A cycle count within some clock domain. */
using Cycles = uint64_t;

/** Ticks per common time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** The far-future sentinel. */
constexpr Tick maxTick = UINT64_MAX;

/** Convert ticks to (double) nanoseconds for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / tickPerNs;
}

} // namespace obfusmem

#endif // OBFUSMEM_SIM_TYPES_HH
