/**
 * @file
 * The discrete-event simulation kernel: a time-ordered queue of
 * callbacks with deterministic FIFO ordering among same-tick events.
 *
 * The hot path is allocation-free at steady state: events live in
 * pooled slab nodes (recycled through a free list) with the callback
 * capture stored inline in the node (InlineCallback), and ordering is
 * maintained by a timing wheel — a 2^16-slot bucket array covering the
 * near future in O(1) per event — backed by a binary min-heap overflow
 * tier for events beyond the wheel horizon. A runtime knob
 * (`OBFUSMEM_EVQ_IMPL=heap|wheel`, mirroring `OBFUSMEM_AES_IMPL`)
 * routes everything through the heap tier instead, as an A/B
 * cross-check; both implementations execute events in the exact same
 * (when, seq) order, so all simulation results are bit-identical.
 */

#ifndef OBFUSMEM_SIM_EVENT_QUEUE_HH
#define OBFUSMEM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/types.hh"
#include "util/stats.hh"

namespace obfusmem {

/** Which ordering structure backs the event queue. */
enum class EvqImpl : uint8_t {
    Wheel, ///< timing wheel + overflow heap (default)
    Heap,  ///< binary heap only (cross-check / A-B baseline)
};

/**
 * Central event queue. All timing behaviour in the simulator is
 * expressed by scheduling callbacks here.
 */
class EventQueue
{
  public:
    /**
     * Inline capture budget for scheduled callbacks. Sized for the
     * largest hot-path closure in the tree (proc_side's receiveReply
     * tail: a moved pending-entry — MemPacket + PacketCallback +
     * flags — plus a 64-byte data block). A capture that outgrows
     * this fails to compile at the schedule() call site.
     */
    static constexpr std::size_t callbackCapacity = 232;

    using Callback = InlineCallback<callbackCapacity>;

    EventQueue() : EventQueue(defaultImpl()) {}
    explicit EventQueue(EvqImpl impl);

    /**
     * Implementation selected by `OBFUSMEM_EVQ_IMPL` (`heap` or
     * `wheel`; anything else, including unset, means wheel). Read
     * once at first use.
     */
    static EvqImpl defaultImpl();

    EvqImpl impl() const { return implChoice; }

    /** Current simulated time. */
    Tick curTick() const { return now; }

    /** Schedule a callback at an absolute tick (>= curTick). */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now + delay, std::move(cb));
    }

    /** True if no events are pending. */
    bool empty() const { return pending == 0; }

    /** Number of pending events. */
    size_t size() const { return pending; }

    /**
     * Run events until the queue drains or the time limit is passed.
     *
     * On return, curTick() has advanced to `limit` even if the queue
     * drained earlier — except in the `limit == maxTick` case, which
     * means "drain everything" rather than "run to the end of time":
     * there curTick() stays at the tick of the last executed event
     * (time only advances as far as simulated activity did).
     *
     * @param limit Stop before executing events later than this tick.
     * @return Number of events executed by this call, i.e. the delta
     *         of eventsExecuted() across the call.
     */
    uint64_t run(Tick limit = maxTick);

    /**
     * Execute a single event if one is pending within the limit.
     * @return true if an event was executed.
     */
    bool step(Tick limit = maxTick);

    /** Total events executed since construction. */
    uint64_t eventsExecuted() const { return executed; }

    /** Far events promoted from the overflow heap into the wheel. */
    uint64_t overflowPromotions() const { return promotions; }

    /** Maximum number of simultaneously pending events seen. */
    size_t poolHighWater() const { return highWater; }

    /** Current capacity of the event node pool, in nodes. */
    size_t poolCapacity() const { return slabs.size() * slabNodes; }

    /**
     * Register the kernel counters as an `eventq` stats group under
     * `parent` (appears in System::dumpStats). Call at most once.
     */
    void attachStats(statistics::Group &parent);

    /// Wheel geometry: 2^16 one-tick slots. Chosen to cover the
    /// common device delays (tCL 13.75 ns, tBURST 5 ns, bus slots
    /// 1.25 ns — all well under the 65.5 ns horizon at 1 tick = 1 ps);
    /// only rare long compositions (tRCD + tWR row evictions) take
    /// the overflow tier.
    static constexpr unsigned wheelBits = 16;
    static constexpr Tick wheelSpan = Tick(1) << wheelBits;

  private:
    /// Pooled event node. `next` doubles as the intrusive link for
    /// both the per-bucket FIFO chain and the free list.
    struct EventNode
    {
        Tick when = 0;
        uint64_t seq = 0;
        uint32_t next = nilIdx;
        Callback cb;
    };

    /// Overflow-tier entry: a POD mirror of (when, seq) plus the
    /// node handle, so heap sifts move 24 bytes instead of a node.
    struct FarEvent
    {
        Tick when;
        uint64_t seq;
        uint32_t idx;
    };

    struct FarLater
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr uint32_t nilIdx = 0xffffffffu;
    static constexpr unsigned slabShift = 10;
    static constexpr size_t slabNodes = size_t(1) << slabShift;
    static constexpr size_t wheelSlots = size_t(1) << wheelBits;

    EventNode &
    node(uint32_t idx)
    {
        return slabs[idx >> slabShift][idx & (slabNodes - 1)];
    }

    uint32_t allocNode();
    void freeNode(uint32_t idx);

    void wheelInsert(uint32_t idx);
    uint32_t popBucket(size_t bucket);
    size_t findOccupiedFrom(size_t start) const;
    Tick nextWheelTick() const;
    void promoteFar();

    // --- node pool -------------------------------------------------
    std::vector<std::unique_ptr<EventNode[]>> slabs;
    uint32_t freeHead = nilIdx;
    size_t liveNodes = 0;
    size_t highWater = 0;

    // --- timing wheel (allocated only in Wheel mode) ---------------
    // The window is anchored to `now`: the wheel holds exactly the
    // events with when in [now, now+span); farther events wait in the
    // overflow heap and are promoted at the top of each step as the
    // window slides forward. Anchoring to `now` (rather than a base
    // re-set on drain) means a standing event population with short
    // delays never touches the heap tier.
    std::vector<uint32_t> bucketHead; ///< wheelSlots entries
    std::vector<uint32_t> bucketTail;
    std::vector<uint64_t> bitsL0; ///< one bit per bucket
    std::vector<uint64_t> bitsL1; ///< one bit per bitsL0 word
    size_t wheelCount = 0;

    // --- overflow / heap tier --------------------------------------
    std::priority_queue<FarEvent, std::vector<FarEvent>, FarLater> far;

    EvqImpl implChoice;
    Tick now = 0;
    uint64_t nextSeq = 0;
    size_t pending = 0;
    uint64_t executed = 0;
    uint64_t promotions = 0;

    // --- stats surface ---------------------------------------------
    std::unique_ptr<statistics::Group> statGroup;
    statistics::Scalar statExecuted;
    statistics::Scalar statPoolHighWater;
    statistics::Scalar statOverflowPromotions;
    statistics::Scalar statPoolNodes;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_EVENT_QUEUE_HH
