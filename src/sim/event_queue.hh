/**
 * @file
 * The discrete-event simulation kernel: a time-ordered queue of
 * callbacks with deterministic FIFO ordering among same-tick events.
 */

#ifndef OBFUSMEM_SIM_EVENT_QUEUE_HH
#define OBFUSMEM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace obfusmem {

/**
 * Central event queue. All timing behaviour in the simulator is
 * expressed by scheduling callbacks here.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return now; }

    /** Schedule a callback at an absolute tick (>= curTick). */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    void scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now + delay, std::move(cb));
    }

    /** True if no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    size_t size() const { return events.size(); }

    /**
     * Run events until the queue drains or the time limit is passed.
     *
     * @param limit Stop before executing events later than this tick.
     * @return Number of events executed.
     */
    uint64_t run(Tick limit = maxTick);

    /**
     * Execute a single event if one is pending within the limit.
     * @return true if an event was executed.
     */
    bool step(Tick limit = maxTick);

    /** Total events executed since construction. */
    uint64_t eventsExecuted() const { return executed; }

  private:
    struct PendingEvent
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const PendingEvent &a, const PendingEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later>
        events;
    Tick now = 0;
    uint64_t nextSeq = 0;
    uint64_t executed = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_EVENT_QUEUE_HH
