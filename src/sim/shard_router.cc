/**
 * @file
 * ShardRouter implementation.
 */

#include "sim/shard_router.hh"

#include <algorithm>

#include "util/assert.hh"

namespace obfusmem {

ShardRouter::ShardRouter(std::vector<EventQueue *> endpoint_queues,
                         std::vector<unsigned> shard_of,
                         unsigned shards)
    : queues(std::move(endpoint_queues)), shardOf(std::move(shard_of)),
      shardCount(shards), boxes(size_t(shards) * shards * 2),
      srcSeq(queues.size()), scratch(shards),
      posted(shards), drained(shards)
{
    OBF_ASSERT(shardCount > 0, "router needs at least one shard");
    OBF_ASSERT(shardOf.size() == queues.size(),
               "shard map / queue count mismatch");
    for (unsigned s : shardOf)
        OBF_ASSERT(s < shardCount, "endpoint mapped to shard ", s,
                   " of ", shardCount);
}

void
ShardRouter::post(unsigned src, unsigned dst, Tick when,
                  EventQueue::Callback cb)
{
    OBF_DCHECK(src < queues.size() && dst < queues.size(),
               "cross-shard post between unknown endpoints ", src,
               " -> ", dst);
    Mailbox &mb = box(shardOf[src], shardOf[dst], roundParity);
    mb.events.push_back(CrossEvent{when, src, dst,
                                   srcSeq[src].next++, std::move(cb)});
    posted.add(shardOf[src]);
}

void
ShardRouter::drainTo(unsigned dst_shard, unsigned parity)
{
    std::vector<CrossEvent> &all = scratch[dst_shard];
    all.clear();
    // Gather from every source shard in fixed order...
    for (unsigned s = 0; s < shardCount; ++s) {
        Mailbox &mb = box(s, dst_shard, parity);
        for (CrossEvent &ev : mb.events)
            all.push_back(std::move(ev));
        mb.events.clear();
    }
    // ...then impose the shard-layout-independent total order. The
    // key is unique — a source endpoint never reuses a sequence
    // number — so plain sort is stable in effect, and the projection
    // of this order onto any one destination queue is independent of
    // how endpoints were grouped into shards.
    std::sort(all.begin(), all.end(),
              [](const CrossEvent &a, const CrossEvent &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (CrossEvent &ev : all) {
        queues[ev.dst]->schedule(ev.when, std::move(ev.cb));
        drained.add(dst_shard);
    }
    all.clear();
}

void
ShardRouter::attachStats(statistics::Group &parent)
{
    parent.addScalar("crossPosted", posted.merged(),
                     "cross-shard events posted to mailboxes");
    parent.addScalar("crossDrained", drained.merged(),
                     "cross-shard events drained into shard queues");
}

} // namespace obfusmem
