/**
 * @file
 * Clock domains: convert between cycles of a component clock and
 * global ticks (picoseconds).
 */

#ifndef OBFUSMEM_SIM_CLOCK_HH
#define OBFUSMEM_SIM_CLOCK_HH

#include "sim/types.hh"

namespace obfusmem {

/**
 * A fixed-frequency clock domain.
 */
class ClockDomain
{
  public:
    /** @param period_ps Clock period in picoseconds. */
    constexpr explicit ClockDomain(Tick period_ps)
        : period_(period_ps)
    {}

    /** Construct from a frequency in MHz. */
    static constexpr ClockDomain
    fromMhz(uint64_t mhz)
    {
        return ClockDomain(1000000 / mhz);
    }

    constexpr Tick period() const { return period_; }

    /** Ticks taken by n cycles. */
    constexpr Tick cyclesToTicks(Cycles n) const { return n * period_; }

    /** Whole cycles elapsed in t ticks (floor). */
    constexpr Cycles ticksToCycles(Tick t) const { return t / period_; }

    /** Next tick at or after t that is aligned to a clock edge. */
    constexpr Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % period_;
        return rem ? t + (period_ - rem) : t;
    }

  private:
    Tick period_;
};

/** The 2 GHz core clock from the paper's Table 2. */
constexpr ClockDomain coreClock(500);
/** The 800 MHz DDR bus clock from the paper's Table 2. */
constexpr ClockDomain busClock(1250);
/** The 250 MHz (4 ns) crypto-engine clock from the paper's Sec. 4. */
constexpr ClockDomain cryptoClock(4000);

} // namespace obfusmem

#endif // OBFUSMEM_SIM_CLOCK_HH
