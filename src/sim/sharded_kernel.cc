/**
 * @file
 * ShardedKernel implementation: the epoch loop.
 */

#include "sim/sharded_kernel.hh"

#include "runner/thread_pool.hh"
#include "util/env.hh"

namespace obfusmem {

namespace {

/// Shard owned by the calling thread during a round (post() misuse
/// check); outside any round no shard is current.
constexpr unsigned noShard = 0xffffffffu;
thread_local unsigned tlsShard = noShard;

} // namespace

unsigned
ShardedKernel::shardsFromEnv()
{
    static const unsigned shards = env::jobs("OBFUSMEM_SIM_SHARDS", 1);
    return shards;
}

ShardedKernel::ShardedKernel(const Params &params_) : params(params_)
{
    panic_if(params.lookahead == 0,
             "sharded kernel needs a non-zero lookahead window");
}

ShardedKernel::~ShardedKernel() = default;

unsigned
ShardedKernel::addEndpoint(EventQueue &eq)
{
    panic_if(sealed, "endpoint registered after the first run()");
    queues.push_back(&eq);
    return static_cast<unsigned>(queues.size() - 1);
}

void
ShardedKernel::seal()
{
    if (sealed)
        return;
    panic_if(queues.empty(), "sharded kernel has no endpoints");
    shardCount = params.shards ? params.shards : 1;
    if (shardCount > queues.size())
        shardCount = static_cast<unsigned>(queues.size());

    // Round-robin endpoint placement: with homogeneous sockets this
    // balances work; the placement never affects simulated results,
    // only wall clock.
    shardOf.resize(queues.size());
    owned.assign(shardCount, {});
    for (unsigned e = 0; e < queues.size(); ++e) {
        shardOf[e] = e % shardCount;
        owned[e % shardCount].push_back(e);
    }
    theRouter = std::make_unique<ShardRouter>(queues, shardOf,
                                              shardCount);
    if (statGroup)
        theRouter->attachStats(*statGroup);
    if (shardCount > 1)
        workers = std::make_unique<runner::WorkerGroup>(shardCount);
    sealed = true;
}

void
ShardedKernel::post(unsigned src, unsigned dst, Tick when,
                    EventQueue::Callback cb)
{
    // The whole determinism argument rests on this: an event posted
    // during epoch E lands at or after the start of epoch E+1, so no
    // shard can ever need an event another shard has not yet sent.
    panic_if(when < curEpochEnd,
             "cross-shard post at tick ", when,
             " violates the lookahead horizon ", curEpochEnd,
             " (link latency shorter than the epoch window?)");
    OBF_DCHECK(tlsShard == shardOf[src],
               "post for endpoint ", src, " from the wrong shard");
    theRouter->post(src, dst, when, std::move(cb));
}

void
ShardedKernel::roundFn(unsigned shard, unsigned parity,
                       Tick epoch_end)
{
    tlsShard = shard;
    // Drain first: everything posted last round is scheduled before
    // any event of this epoch executes, in deterministic order.
    theRouter->drainTo(shard, parity);
    // Then run the epoch window [epoch_end - lookahead, epoch_end):
    // run() executes events with when <= limit, so the limit is the
    // last tick inside the window. Each queue's clock advances to the
    // limit even when it drains early, keeping all shards' clocks in
    // lockstep at the barrier.
    for (unsigned e : owned[shard])
        queues[e]->run(epoch_end - 1);
    tlsShard = noShard;
}

ShardedKernel::RunSummary
ShardedKernel::run()
{
    seal();
    RunSummary sum;
    uint64_t events_before = 0;
    for (EventQueue *eq : queues)
        events_before += eq->eventsExecuted();
    const uint64_t rounds_before = rounds;

    for (;;) {
        // Between rounds every worker is parked, so reading queue
        // sizes and folding the per-shard mailbox counters is safe —
        // this is the "merge at epoch end" point.
        theRouter->mergeStats();
        size_t queued = 0;
        for (EventQueue *eq : queues)
            queued += eq->size();
        if (queued == 0 && theRouter->inFlight() == 0)
            break;

        const unsigned parity = static_cast<unsigned>(rounds & 1);
        theRouter->setRoundParity(parity);
        const Tick epoch_end = (rounds + 1) * params.lookahead;
        curEpochEnd = epoch_end;
        const unsigned drain_parity = parity ^ 1u;

        if (shardCount == 1) {
            roundFn(0, drain_parity, epoch_end);
        } else {
            workers->runRound([this, drain_parity,
                               epoch_end](unsigned s) {
                roundFn(s, drain_parity, epoch_end);
            });
        }
        ++rounds;
        statEpochs += 1;
    }

    sum.epochs = rounds - rounds_before;
    for (EventQueue *eq : queues)
        sum.eventsExecuted += eq->eventsExecuted();
    sum.eventsExecuted -= events_before;
    sum.crossMessages = theRouter->messagesDrained();
    sum.endTick = rounds * params.lookahead;
    return sum;
}

void
ShardedKernel::attachStats(statistics::Group &parent)
{
    panic_if(statGroup != nullptr, "kernel stats already attached");
    statGroup =
        std::make_unique<statistics::Group>("shardkernel", &parent);
    statGroup->addScalar("epochs", &statEpochs,
                         "epoch barriers executed");
    if (theRouter)
        theRouter->attachStats(*statGroup);
}

} // namespace obfusmem
