/**
 * @file
 * Sharded deterministic simulation kernel: runs many event queues
 * (one per simulated socket/endpoint) in parallel across persistent
 * worker threads, synchronized by conservative-lookahead epoch
 * barriers.
 *
 * Time is divided into epochs of `lookahead` ticks. Within an epoch
 * every shard executes its endpoints' events independently — legal
 * because the only inter-endpoint coupling is through ShardRouter
 * posts, and the kernel enforces that a post made during epoch E can
 * only target a tick at or after the start of epoch E+1 (the
 * conservative lookahead: any physical link crossing shards must have
 * latency >= the epoch length; the fixed channel/interconnect latency
 * is the natural window). Mailboxes are drained at epoch boundaries
 * in a fixed, shard-layout-independent order (see shard_router.hh),
 * so simulated results — wire traces, stats, event order — are
 * bit-identical at 1 shard and at N.
 *
 * `OBFUSMEM_SIM_SHARDS` selects the worker count (1 = serial on the
 * calling thread, 0 = one per hardware thread), mirroring
 * `OBFUSMEM_BENCH_JOBS`.
 */

#ifndef OBFUSMEM_SIM_SHARDED_KERNEL_HH
#define OBFUSMEM_SIM_SHARDED_KERNEL_HH

#include <memory>
#include <vector>

#include "sim/shard_router.hh"
#include "util/assert.hh"

namespace obfusmem {

namespace runner {
class WorkerGroup;
}

class ShardedKernel
{
  public:
    struct Params
    {
        /**
         * Worker shards. 1 runs everything serially on the calling
         * thread — through the same epoch/drain code path, which is
         * what makes the shards=1 vs N comparison meaningful.
         * Clamped to the endpoint count.
         */
        unsigned shards = 1;
        /**
         * Epoch length in ticks. Every cross-shard post must be
         * scheduled at least this far past the start of the epoch it
         * was posted in; the natural choice is the (minimum) latency
         * of the physical link that crosses shards.
         */
        Tick lookahead = 0;
    };

    /** Shard count from OBFUSMEM_SIM_SHARDS (1 default, 0 = auto). */
    static unsigned shardsFromEnv();

    explicit ShardedKernel(const Params &params);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel &) = delete;
    ShardedKernel &operator=(const ShardedKernel &) = delete;

    /**
     * Register an endpoint (one independently steppable event queue).
     * Endpoints are assigned to shards round-robin in registration
     * order. All endpoints must be registered before the first run().
     * @return The endpoint id used for post().
     */
    unsigned addEndpoint(EventQueue &eq);

    /**
     * Post a callback to run on endpoint @p dst's queue at absolute
     * tick @p when. Must be called from @p src's shard during a run
     * phase (i.e. from inside an executing event), and @p when must
     * respect the lookahead: at or past the end of the current epoch.
     * Panics otherwise — a violation would make results depend on the
     * shard layout.
     */
    void post(unsigned src, unsigned dst, Tick when,
              EventQueue::Callback cb);

    /** Summary of one run() call. */
    struct RunSummary
    {
        uint64_t epochs = 0;
        uint64_t eventsExecuted = 0;
        uint64_t crossMessages = 0;
        /** Tick the kernel clock reached (last epoch boundary). */
        Tick endTick = 0;
    };

    /**
     * Run epochs until every endpoint queue is empty and no message
     * is in flight in the mailboxes. Per-shard stats are merged at
     * every epoch boundary (workers quiescent under the barrier).
     */
    RunSummary run();

    unsigned shards() const { return shardCount; }
    unsigned endpoints() const
    {
        return static_cast<unsigned>(queues.size());
    }
    Tick lookahead() const { return params.lookahead; }
    uint64_t epochsRun() const { return rounds; }
    ShardRouter &router()
    {
        OBF_ASSERT(theRouter != nullptr, "kernel not sealed yet");
        return *theRouter;
    }

    /** Register kernel + router counters as `shardkernel` groups. */
    void attachStats(statistics::Group &parent);

  private:
    void seal();
    void roundFn(unsigned shard, unsigned parity, Tick epoch_end);

    Params params;
    unsigned shardCount = 1; ///< effective count, fixed at seal()
    std::vector<EventQueue *> queues;
    std::vector<unsigned> shardOf;
    /// Endpoint ids per shard, ascending (drain/run order in a round).
    std::vector<std::vector<unsigned>> owned;
    std::unique_ptr<ShardRouter> theRouter;
    std::unique_ptr<runner::WorkerGroup> workers;
    bool sealed = false;

    uint64_t rounds = 0;
    /// End tick of the epoch currently running (the post() horizon).
    /// Written between rounds, read by shard threads during rounds;
    /// the WorkerGroup round handshake orders the accesses.
    Tick curEpochEnd = 0;

    statistics::Scalar statEpochs;
    std::unique_ptr<statistics::Group> statGroup;
};

} // namespace obfusmem

#endif // OBFUSMEM_SIM_SHARDED_KERNEL_HH
