/**
 * @file
 * AVX2 8-lane MD5 compression kernel.
 *
 * This translation unit is the only one compiled with -mavx2 (see
 * src/crypto/CMakeLists.txt), following the aes128_aesni.cc isolation
 * pattern: the ymm intrinsics stay confined to one object file and the
 * dispatch in md5ShortBatch checks md5LanesAvx2CompiledIn() +
 * cpuHasAvx2() before calling in.
 *
 * One MD5 step is identical arithmetic across independent messages, so
 * eight single-block digests run in the eight 32-bit lanes of a ymm
 * register. The step structure mirrors Md5::processBlock line for line
 * (same round constants, same shift schedule, same (f, g) selection);
 * only the scalar uint32_t ops become their _mm256 counterparts. The
 * round-function rewrites avoid a vector NOT:
 *
 *   F: (b&c)|(~b&d)  ->  or(and(b,c), andnot(b,d))
 *   G: (d&b)|(~d&c)  ->  or(and(d,b), andnot(d,c))
 *   I: c^(b|~d)      ->  xor(c, xor(andnot(b,d), ones))   [De Morgan]
 *
 * The rotate uses the register-count shift forms (_mm256_sll_epi32 /
 * _mm256_srl_epi32) because the shift amount varies per step; the
 * count is public schedule data, never secret-dependent.
 */

#include "crypto/md5_lanes.hh"
#include "util/logging.hh"

#if defined(OBFUSMEM_HAVE_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace obfusmem {
namespace crypto {
namespace detail {

#if defined(OBFUSMEM_HAVE_AVX2) && defined(__AVX2__)

namespace {

// Same tables as md5.cc (RFC 1321); duplicated here so the kernel TU
// stays self-contained. The equivalence tests pin every lane against
// the scalar context, so a divergence cannot survive CI.
const uint32_t kTable[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

const int shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

inline __m256i
rotl32x8(__m256i x, int s)
{
    return _mm256_or_si256(_mm256_sll_epi32(x, _mm_cvtsi32_si128(s)),
                           _mm256_srl_epi32(x, _mm_cvtsi32_si128(32 - s)));
}

} // namespace

bool
md5LanesAvx2CompiledIn()
{
    return true;
}

namespace {

/** The per-step round function and message index (public schedule). */
inline __m256i
roundF(int i, __m256i b, __m256i c, __m256i d, __m256i ones)
{
    if (i < 16)
        return _mm256_or_si256(_mm256_and_si256(b, c),
                               _mm256_andnot_si256(b, d));
    if (i < 32)
        return _mm256_or_si256(_mm256_and_si256(d, b),
                               _mm256_andnot_si256(d, c));
    if (i < 48)
        return _mm256_xor_si256(b, _mm256_xor_si256(c, d));
    return _mm256_xor_si256(
        c, _mm256_xor_si256(_mm256_andnot_si256(b, d), ones));
}

inline int
roundG(int i)
{
    if (i < 16)
        return i;
    if (i < 32)
        return (5 * i + 1) % 16;
    if (i < 48)
        return (3 * i + 5) % 16;
    return (7 * i) % 16;
}

inline __m256i
stepB(int i, __m256i a, __m256i b, __m256i f, __m256i mg)
{
    __m256i sum = _mm256_add_epi32(
        _mm256_add_epi32(a, f),
        _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(kTable[i])), mg));
    return _mm256_add_epi32(b, rotl32x8(sum, shifts[i]));
}

} // namespace

void
md5LanesAvx2Compress8(const uint32_t *words, uint32_t *state)
{
    __m256i m[16];
    for (int w = 0; w < 16; ++w) {
        m[w] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + w * md5LaneWidth));
    }

    const __m256i iv_a = _mm256_set1_epi32(0x67452301);
    const __m256i iv_b = _mm256_set1_epi32(
        static_cast<int>(0xefcdab89u));
    const __m256i iv_c = _mm256_set1_epi32(
        static_cast<int>(0x98badcfeu));
    const __m256i iv_d = _mm256_set1_epi32(0x10325476);
    const __m256i ones = _mm256_set1_epi32(-1);

    __m256i a = iv_a, b = iv_b, c = iv_c, d = iv_d;

    for (int i = 0; i < 64; ++i) {
        __m256i f = roundF(i, b, c, d, ones);
        __m256i nb = stepB(i, a, b, f, m[roundG(i)]);
        a = d;
        d = c;
        c = b;
        b = nb;
    }

    a = _mm256_add_epi32(a, iv_a);
    b = _mm256_add_epi32(b, iv_b);
    c = _mm256_add_epi32(c, iv_c);
    d = _mm256_add_epi32(d, iv_d);

    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state + 0 * 8), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state + 1 * 8), b);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state + 2 * 8), c);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state + 3 * 8), d);
}

void
md5LanesAvx2Compress8x2(const uint32_t *words0, uint32_t *state0,
                        const uint32_t *words1, uint32_t *state1)
{
    // Each MD5 step depends on the previous one, so a lone 8-lane
    // group is latency-bound (~the full chain per step). Feeding two
    // independent groups through one interleaved instruction stream
    // lets the second group's step issue into the bubbles of the
    // first's, roughly doubling digests/second over back-to-back
    // Compress8 calls.
    __m256i m0[16], m1[16];
    for (int w = 0; w < 16; ++w) {
        m0[w] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            words0 + w * md5LaneWidth));
        m1[w] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            words1 + w * md5LaneWidth));
    }

    const __m256i iv_a = _mm256_set1_epi32(0x67452301);
    const __m256i iv_b = _mm256_set1_epi32(
        static_cast<int>(0xefcdab89u));
    const __m256i iv_c = _mm256_set1_epi32(
        static_cast<int>(0x98badcfeu));
    const __m256i iv_d = _mm256_set1_epi32(0x10325476);
    const __m256i ones = _mm256_set1_epi32(-1);

    __m256i a0 = iv_a, b0 = iv_b, c0 = iv_c, d0 = iv_d;
    __m256i a1 = iv_a, b1 = iv_b, c1 = iv_c, d1 = iv_d;

    for (int i = 0; i < 64; ++i) {
        const int g = roundG(i);
        __m256i f0 = roundF(i, b0, c0, d0, ones);
        __m256i f1 = roundF(i, b1, c1, d1, ones);
        __m256i nb0 = stepB(i, a0, b0, f0, m0[g]);
        __m256i nb1 = stepB(i, a1, b1, f1, m1[g]);
        a0 = d0;
        d0 = c0;
        c0 = b0;
        b0 = nb0;
        a1 = d1;
        d1 = c1;
        c1 = b1;
        b1 = nb1;
    }

    a0 = _mm256_add_epi32(a0, iv_a);
    b0 = _mm256_add_epi32(b0, iv_b);
    c0 = _mm256_add_epi32(c0, iv_c);
    d0 = _mm256_add_epi32(d0, iv_d);
    a1 = _mm256_add_epi32(a1, iv_a);
    b1 = _mm256_add_epi32(b1, iv_b);
    c1 = _mm256_add_epi32(c1, iv_c);
    d1 = _mm256_add_epi32(d1, iv_d);

    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state0 + 0 * 8), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state0 + 1 * 8), b0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state0 + 2 * 8), c0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state0 + 3 * 8), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state1 + 0 * 8), a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state1 + 1 * 8), b1);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state1 + 2 * 8), c1);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(state1 + 3 * 8), d1);
}

#else // !OBFUSMEM_HAVE_AVX2

// Stub build (-DOBFUSMEM_DISABLE_AVX2=ON or a compiler without the
// flag): the dispatch never calls in because md5LanesAvx2CompiledIn()
// is false, but the symbols must exist for the link.

bool
md5LanesAvx2CompiledIn()
{
    return false;
}

void
md5LanesAvx2Compress8(const uint32_t *, uint32_t *)
{
    panic("AVX2 MD5 kernel called in a build without AVX2 support");
}

void
md5LanesAvx2Compress8x2(const uint32_t *, uint32_t *,
                        const uint32_t *, uint32_t *)
{
    panic("AVX2 MD5 kernel called in a build without AVX2 support");
}

#endif // OBFUSMEM_HAVE_AVX2

} // namespace detail
} // namespace crypto
} // namespace obfusmem
