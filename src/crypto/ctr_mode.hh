/**
 * @file
 * AES counter-mode pad generation.
 *
 * Counter mode is central to ObfusMem for two reasons (paper Sec. 3.2):
 * future counter values are known, so pads can be pre-generated off the
 * critical path; and identical plaintext encrypts differently on every
 * use, hiding temporal reuse of both addresses and data.
 */

#ifndef OBFUSMEM_CRYPTO_CTR_MODE_HH
#define OBFUSMEM_CRYPTO_CTR_MODE_HH

#include <cstdint>
#include <vector>

#include "crypto/aes128.hh"
#include "crypto/bytes.hh"
#include "util/secret.hh"

namespace obfusmem {
namespace crypto {

/**
 * AES-CTR keystream: pads are AES_K(nonce64 || counter64). The caller
 * owns the counter discipline (ObfusMem advances it by six per request;
 * the memory-encryption engine derives it from page/block counters).
 */
class AesCtr
{
  public:
    AesCtr() = default;

    /**
     * @param key AES-128 key.
     * @param nonce Domain-separation nonce in the IV's upper half.
     */
    AesCtr(OBF_SECRET const Aes128::Key &key, uint64_t nonce);

    void setKey(OBF_SECRET const Aes128::Key &key, uint64_t nonce);

    /**
     * Pin the AES implementation for this stream (tests and benches;
     * production streams keep Aes128::defaultImpl()). Every
     * implementation produces identical pads.
     */
    void setImpl(AesImpl impl) { aes.setImpl(impl); }

    /** Generate the pad for one counter value. */
    OBF_SECRET Block128 pad(uint64_t counter) const;

    /**
     * Generate the `n` consecutive pads [counter, counter + n) in one
     * batched call. This is the hot path for ObfusMem's request
     * groups: all six pads of a group (and all five of a reply) come
     * out of a single call, amortizing the per-call AES dispatch.
     * Identical output to calling pad() n times.
     */
    void genPads(uint64_t counter, OBF_SECRET Block128 *out,
                 size_t n) const;

    /**
     * XOR consecutive pads [counter, counter + ceil(len/16)) over the
     * buffer. Used for both encryption and decryption.
     *
     * @return Number of counter values (pads) consumed.
     */
    uint64_t applyKeystream(uint8_t *buf, size_t len,
                            uint64_t counter) const;

    /**
     * Batch-encrypt caller-built IVs into pads, for consumers whose
     * IV layout is not this stream's nonce||counter (the memory
     * encryption engine packs page/block counters instead - see
     * MemoryEncryptionIv). `ivs` and `out` may alias.
     */
    void padsForIvs(const Block128 *ivs, OBF_SECRET Block128 *out,
                    size_t n) const;

  private:
    Aes128 aes;
    uint64_t nonce = 0;
};

/**
 * Initialization-vector layout for counter-mode *memory* encryption
 * (paper Sec. 2.4 / Fig. 2): page ID, page offset, per-block minor
 * counter and per-page major counter.
 */
struct MemoryEncryptionIv
{
    uint64_t pageId;
    uint32_t pageOffset;
    uint32_t minorCounter;
    uint64_t majorCounter;

    /** Pack the IV into a 128-bit block for AES. */
    Block128 pack() const;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_CTR_MODE_HH
