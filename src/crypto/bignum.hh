/**
 * @file
 * Arbitrary-precision unsigned integers for the public-key side of the
 * trust architecture (Diffie-Hellman session keys, toy-RSA attestation
 * signatures). Little-endian base-2^32 limbs; schoolbook multiply and
 * Knuth Algorithm D division, which is ample for boot-time operations.
 */

#ifndef OBFUSMEM_CRYPTO_BIGNUM_HH
#define OBFUSMEM_CRYPTO_BIGNUM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/secret.hh"

namespace obfusmem {

class Random;

namespace crypto {

/**
 * Unsigned big integer.
 */
class BigUint
{
  public:
    BigUint() = default;
    /* implicit */ BigUint(uint64_t v);

    /** Parse from hex (no 0x prefix required). */
    static BigUint fromHex(const std::string &hex);
    /** Parse from big-endian bytes. */
    static BigUint fromBytes(const uint8_t *data, size_t len);

    std::string toHex() const;
    /** Big-endian byte serialization, minimal length (or padded). */
    std::vector<uint8_t> toBytes(size_t pad_to = 0) const;

    bool isZero() const { return limbs.empty(); }
    bool isOdd() const { return !limbs.empty() && (limbs[0] & 1); }
    /** Number of significant bits (0 for zero). */
    size_t bitLength() const;
    /** Value of bit i. */
    bool bit(size_t i) const;

    int compare(const BigUint &o) const;
    bool operator==(const BigUint &o) const { return compare(o) == 0; }
    bool operator!=(const BigUint &o) const { return compare(o) != 0; }
    bool operator<(const BigUint &o) const { return compare(o) < 0; }
    bool operator<=(const BigUint &o) const { return compare(o) <= 0; }
    bool operator>(const BigUint &o) const { return compare(o) > 0; }
    bool operator>=(const BigUint &o) const { return compare(o) >= 0; }

    BigUint operator+(const BigUint &o) const;
    /** Subtraction; panics on underflow (unsigned). */
    BigUint operator-(const BigUint &o) const;
    BigUint operator*(const BigUint &o) const;
    BigUint operator<<(size_t bits) const;
    BigUint operator>>(size_t bits) const;

    /** Quotient and remainder in one pass: {quotient, remainder}. */
    std::pair<BigUint, BigUint> divmod(const BigUint &divisor) const;
    BigUint operator/(const BigUint &o) const { return divmod(o).first; }
    BigUint operator%(const BigUint &o) const
    {
        return divmod(o).second;
    }

    /** (this * b) mod m. */
    BigUint mulMod(const BigUint &b, const BigUint &m) const;

    /**
     * this^e mod m via square-and-multiply. The multiply is only
     * performed for set exponent bits and the loop trip count is
     * e.bitLength(), so both the time and the operation sequence leak
     * the exponent: ONLY for public exponents (RSA verification,
     * Miller-Rabin witnesses). Secret exponents must use powModCt.
     */
    BigUint powMod(const BigUint &e, const BigUint &m) const;

    /**
     * this^e mod m via a Montgomery ladder for secret exponents (DH
     * private exponents, RSA signing). Every iteration performs the
     * same two mulMods regardless of the bit value, operands are
     * selected with limb-level masked swaps instead of branches, and
     * the trip count is fixed by the public bound `ebits` (>=
     * e.bitLength(); callers pass the modulus or group-order width),
     * so neither the time nor the memory-access sequence depends on
     * which exponent bits are set. Residual caveat (DESIGN.md Sec.
     * 11): limb arithmetic underneath is still value-dependent
     * variable-time; the ladder removes the structural per-bit leak.
     */
    BigUint powModCt(OBF_SECRET const BigUint &e, const BigUint &m,
                     size_t ebits) const;

    /** Greatest common divisor. */
    static BigUint gcd(BigUint a, BigUint b);
    /** Modular inverse of a mod m; panics if not invertible. */
    static BigUint modInverse(const BigUint &a, const BigUint &m);

    /** Uniform random value in [0, bound). */
    static BigUint randomBelow(const BigUint &bound, Random &rng);
    /** Random value with exactly `bits` bits (top bit set). */
    static BigUint randomBits(size_t bits, Random &rng);

    /** Miller-Rabin probable-prime test. */
    static bool isProbablePrime(const BigUint &n, Random &rng,
                                int rounds = 24);
    /** Generate a probable prime with exactly `bits` bits. */
    static BigUint generatePrime(size_t bits, Random &rng);

    /** Low 64 bits of the value. */
    uint64_t toU64() const;

  private:
    void trim();

    /**
     * Branch-free conditional swap: exchanges a and b when `swap` is
     * true, using masked limb operations over a fixed capacity of
     * `limbs` limbs so the memory-access pattern is identical either
     * way. Both values are padded to `limbs` limbs on entry and
     * trimmed on exit.
     */
    static void ctSwap(BigUint &a, BigUint &b, bool swap,
                       size_t limbs);

    /** Little-endian base-2^32 limbs; empty means zero. */
    std::vector<uint32_t> limbs;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_BIGNUM_HH
