/**
 * @file
 * Byte-buffer helpers shared by the crypto primitives.
 */

#ifndef OBFUSMEM_CRYPTO_BYTES_HH
#define OBFUSMEM_CRYPTO_BYTES_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace obfusmem {
namespace crypto {

/** A 128-bit block, the unit of AES and of ObfusMem pads. */
using Block128 = std::array<uint8_t, 16>;

/** XOR two 128-bit blocks. */
inline Block128
xorBlocks(const Block128 &a, const Block128 &b)
{
    Block128 out;
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = a[i] ^ b[i];
    return out;
}

/** XOR src into dst in place. */
inline void
xorInto(uint8_t *dst, const uint8_t *src, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        dst[i] ^= src[i];
}

/** Render a byte buffer as lowercase hex. */
inline std::string
toHex(const uint8_t *buf, size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(digits[buf[i] >> 4]);
        out.push_back(digits[buf[i] & 0xf]);
    }
    return out;
}

/** Render a container of bytes as lowercase hex. */
template <typename C>
std::string
toHex(const C &c)
{
    return toHex(c.data(), c.size());
}

/** Parse lowercase/uppercase hex into bytes. */
std::vector<uint8_t> fromHex(const std::string &hex);

inline std::vector<uint8_t>
fromHex(const std::string &hex)
{
    auto nib = [](char c) -> uint8_t {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return c - 'A' + 10;
    };
    std::vector<uint8_t> out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = (nib(hex[2 * i]) << 4) | nib(hex[2 * i + 1]);
    return out;
}

/** Store a 64-bit value little-endian. */
inline void
storeLe64(uint8_t *dst, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

/** Load a 64-bit little-endian value. */
inline uint64_t
loadLe64(const uint8_t *src)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | src[i];
    return v;
}

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_BYTES_HH
