/**
 * @file
 * Byte-buffer helpers shared by the crypto primitives.
 */

#ifndef OBFUSMEM_CRYPTO_BYTES_HH
#define OBFUSMEM_CRYPTO_BYTES_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace obfusmem {
namespace crypto {

/** A 128-bit block, the unit of AES and of ObfusMem pads. */
using Block128 = std::array<uint8_t, 16>;

// XOR is bytewise-commutative with endianness, so the word-wide
// forms below are portable; they exist because the byte loops they
// replace dominated the frame-sealing profile on hosts where the
// compiler does not coalesce them.

/** XOR two 128-bit blocks. */
inline Block128
xorBlocks(const Block128 &a, const Block128 &b)
{
    Block128 out;
    for (size_t i = 0; i < out.size(); i += 8) {
        uint64_t wa, wb;
        std::memcpy(&wa, a.data() + i, 8);
        std::memcpy(&wb, b.data() + i, 8);
        wa ^= wb;
        std::memcpy(out.data() + i, &wa, 8);
    }
    return out;
}

/** XOR src into dst in place. */
inline void
xorInto(uint8_t *dst, const uint8_t *src, size_t len)
{
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        uint64_t wd, ws;
        std::memcpy(&wd, dst + i, 8);
        std::memcpy(&ws, src + i, 8);
        wd ^= ws;
        std::memcpy(dst + i, &wd, 8);
    }
    for (; i < len; ++i)
        dst[i] ^= src[i];
}

/**
 * Constant-time byte-buffer equality for MAC tags, digests and other
 * secret-dependent comparisons. An early-exit comparison (memcmp,
 * operator== on std::array) leaks the length of the matching prefix
 * through timing, which is how real HMAC verifiers have been broken
 * byte by byte; this accumulates the whole difference before testing.
 *
 * tools/lint/repo_lint.py flags direct ==/!= comparisons of
 * MAC/digest values so new verification code goes through here.
 */
inline bool
ctEqual(const uint8_t *a, const uint8_t *b, size_t len)
{
    volatile uint8_t acc = 0;
    for (size_t i = 0; i < len; ++i)
        acc = acc | static_cast<uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

/** Constant-time equality of two equal-length byte containers. */
template <typename C>
bool
ctEqual(const C &a, const C &b)
{
    static_assert(std::tuple_size<C>::value > 0,
                  "ctEqual needs fixed-size containers");
    return ctEqual(a.data(), b.data(), a.size());
}

/**
 * Zero a buffer in a way the optimizer may not elide, for scrubbing
 * key material after copies (cf. the repo-lint key-copy rule).
 */
inline void
secureZero(uint8_t *buf, size_t len)
{
    volatile uint8_t *p = buf;
    for (size_t i = 0; i < len; ++i)
        p[i] = 0;
}

/** Scrub a fixed-size container holding key material. */
template <typename C>
void
secureZero(C &c)
{
    secureZero(c.data(), c.size());
}

/** Render a byte buffer as lowercase hex. */
inline std::string
toHex(const uint8_t *buf, size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(digits[buf[i] >> 4]);
        out.push_back(digits[buf[i] & 0xf]);
    }
    return out;
}

/** Render a container of bytes as lowercase hex. */
template <typename C>
std::string
toHex(const C &c)
{
    return toHex(c.data(), c.size());
}

/** Parse lowercase/uppercase hex into bytes. */
std::vector<uint8_t> fromHex(const std::string &hex);

inline std::vector<uint8_t>
fromHex(const std::string &hex)
{
    auto nib = [](char c) -> uint8_t {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return c - 'A' + 10;
    };
    std::vector<uint8_t> out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = (nib(hex[2 * i]) << 4) | nib(hex[2 * i + 1]);
    return out;
}

// The little-endian accessors sit on hot paths (every CTR IV build,
// every MD5 preimage/word pack), so on little-endian hosts they must
// compile to a single load/store. The byte-shift loops they replace
// were not reliably merged by the compiler and cost ~10 ns per IV;
// memcpy of a value this size is always a plain move.

/** Store a 32-bit value little-endian. */
inline void
storeLe32(uint8_t *dst, uint32_t v)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(dst, &v, sizeof(v));
    } else {
        for (int i = 0; i < 4; ++i)
            dst[i] = static_cast<uint8_t>(v >> (8 * i));
    }
}

/** Load a 32-bit little-endian value. */
inline uint32_t
loadLe32(const uint8_t *src)
{
    if constexpr (std::endian::native == std::endian::little) {
        uint32_t v;
        std::memcpy(&v, src, sizeof(v));
        return v;
    } else {
        uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | src[i];
        return v;
    }
}

/** Store a 64-bit value little-endian. */
inline void
storeLe64(uint8_t *dst, uint64_t v)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(dst, &v, sizeof(v));
    } else {
        for (int i = 0; i < 8; ++i)
            dst[i] = static_cast<uint8_t>(v >> (8 * i));
    }
}

/** Load a 64-bit little-endian value. */
inline uint64_t
loadLe64(const uint8_t *src)
{
    if constexpr (std::endian::native == std::endian::little) {
        uint64_t v;
        std::memcpy(&v, src, sizeof(v));
        return v;
    } else {
        uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | src[i];
        return v;
    }
}

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_BYTES_HH
