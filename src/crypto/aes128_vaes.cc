/**
 * @file
 * VAES/AVX-512 wide-lane path for Aes128.
 *
 * This translation unit is the only one compiled with
 * -mvaes/-mavx512f/-mavx512bw/-mavx512vl (see src/crypto/CMakeLists.txt),
 * mirroring the AES-NI isolation pattern: the wide intrinsics never leak
 * into code that may run on a CPU without them, and callers reach the
 * path only through detail::vaesEncryptBlocks after Aes128's dispatch
 * has checked vaesCompiledIn() + cpuHasVaes512().
 *
 * One zmm register holds four independent AES states, and
 * _mm512_aesenc_epi128 advances all four per instruction. The main loop
 * keeps four zmm registers (16 blocks) in flight — the same
 * latency-hiding structure as the 8-wide AES-NI loop, but with 4 blocks
 * per instruction instead of 1. Tails shorter than a full register fall
 * back to 128-bit AES-NI lanes (this TU is compiled with -maes too), so
 * vaesAvailable() requires aesniAvailable().
 */

#include "crypto/aes128.hh"
#include "util/logging.hh"

#if defined(OBFUSMEM_HAVE_VAES) && defined(__VAES__) && defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace obfusmem {
namespace crypto {
namespace detail {

#if defined(OBFUSMEM_HAVE_VAES) && defined(__VAES__) && defined(__AVX512F__)

namespace {

inline __m128i
load128(const uint8_t *p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
}

inline void
store128(uint8_t *p, __m128i v)
{
    _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
}

inline __m512i
load512(const Block128 *p)
{
    return _mm512_loadu_si512(reinterpret_cast<const void *>(p));
}

inline void
store512(Block128 *p, __m512i v)
{
    _mm512_storeu_si512(reinterpret_cast<void *>(p), v);
}

} // namespace

bool
vaesCompiledIn()
{
    return true;
}

void
vaesEncryptBlocks(const Aes128::RoundKeys &schedule,
                  const Block128 *in, Block128 *out, size_t n)
{
    // Each round key broadcast to all four 128-bit lanes of a zmm.
    __m512i rk[11];
    __m128i rk128[11];
    for (int r = 0; r < 11; ++r) {
        rk128[r] = load128(schedule[r].data());
        rk[r] = _mm512_broadcast_i32x4(rk128[r]);
    }

    size_t i = 0;
    // 16 blocks (4 zmm) per pass: enough independent aesenc chains to
    // cover the instruction latency at its 1/cycle throughput.
    for (; i + 16 <= n; i += 16) {
        __m512i s0 = _mm512_xor_si512(load512(in + i + 0), rk[0]);
        __m512i s1 = _mm512_xor_si512(load512(in + i + 4), rk[0]);
        __m512i s2 = _mm512_xor_si512(load512(in + i + 8), rk[0]);
        __m512i s3 = _mm512_xor_si512(load512(in + i + 12), rk[0]);
        for (int r = 1; r < 10; ++r) {
            s0 = _mm512_aesenc_epi128(s0, rk[r]);
            s1 = _mm512_aesenc_epi128(s1, rk[r]);
            s2 = _mm512_aesenc_epi128(s2, rk[r]);
            s3 = _mm512_aesenc_epi128(s3, rk[r]);
        }
        store512(out + i + 0, _mm512_aesenclast_epi128(s0, rk[10]));
        store512(out + i + 4, _mm512_aesenclast_epi128(s1, rk[10]));
        store512(out + i + 8, _mm512_aesenclast_epi128(s2, rk[10]));
        store512(out + i + 12, _mm512_aesenclast_epi128(s3, rk[10]));
    }
    for (; i + 4 <= n; i += 4) {
        __m512i s = _mm512_xor_si512(load512(in + i), rk[0]);
        for (int r = 1; r < 10; ++r)
            s = _mm512_aesenc_epi128(s, rk[r]);
        store512(out + i, _mm512_aesenclast_epi128(s, rk[10]));
    }
    // Sub-register tail: plain 128-bit AES-NI lanes.
    for (; i < n; ++i) {
        __m128i s = _mm_xor_si128(load128(in[i].data()), rk128[0]);
        for (int r = 1; r < 10; ++r)
            s = _mm_aesenc_si128(s, rk128[r]);
        store128(out[i].data(), _mm_aesenclast_si128(s, rk128[10]));
    }
}

#else // !OBFUSMEM_HAVE_VAES

// Stub build (-DOBFUSMEM_DISABLE_VAES=ON or a compiler without the
// flags): the dispatch never selects Vaes because vaesCompiledIn() is
// false, but the symbols must exist for the link.

bool
vaesCompiledIn()
{
    return false;
}

void
vaesEncryptBlocks(const Aes128::RoundKeys &, const Block128 *,
                  Block128 *, size_t)
{
    panic("VAES path called in a build without VAES support");
}

#endif // OBFUSMEM_HAVE_VAES

} // namespace detail
} // namespace crypto
} // namespace obfusmem
