/**
 * @file
 * Textbook RSA signatures for the trust architecture.
 *
 * The paper's trust bootstrapping relies on manufacturer-burned
 * public/private key pairs and (in the untrusted-integrator approach)
 * signed measurements. We model those with hash-then-RSA signatures.
 * This is deliberately *textbook* RSA (no OAEP/PSS padding): it models
 * the protocol structure, not a production signature scheme, and key
 * sizes are configurable so tests stay fast.
 */

#ifndef OBFUSMEM_CRYPTO_RSA_HH
#define OBFUSMEM_CRYPTO_RSA_HH

#include <cstdint>
#include <vector>

#include "crypto/bignum.hh"
#include "util/secret.hh"

namespace obfusmem {

class Random;

namespace crypto {

/** RSA public key (n, e). */
struct RsaPublicKey
{
    BigUint modulus;
    BigUint exponent;

    bool operator==(const RsaPublicKey &o) const
    {
        return modulus == o.modulus && exponent == o.exponent;
    }
};

/** RSA key pair. */
class RsaKeyPair
{
  public:
    /**
     * Generate a key pair with a modulus of roughly `bits` bits.
     * e = 65537.
     */
    static RsaKeyPair generate(size_t bits, Random &rng);

    /** Public by definition: blocks taint from the key-pair object. */
    OBF_PUBLIC const RsaPublicKey &publicKey() const { return pub; }

    /** Sign SHA-1(message): returns sig = H(m)^d mod n. */
    BigUint sign(const uint8_t *msg, size_t len) const;

    /** Verify a signature against a public key. */
    static bool verify(const RsaPublicKey &key, const uint8_t *msg,
                       size_t len, const BigUint &signature);

  private:
    /** (n, e) is published with certificates; never secret. */
    OBF_PUBLIC RsaPublicKey pub;
    /** The RSA private exponent d. */
    OBF_SECRET BigUint privateExp;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_RSA_HH
