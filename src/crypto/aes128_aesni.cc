/**
 * @file
 * AES-NI hardware path for Aes128.
 *
 * This translation unit is the only one compiled with -maes (see
 * src/crypto/CMakeLists.txt), so the intrinsics never leak into code
 * that might run on a CPU without the extension; callers reach it
 * through the narrow detail::aesni* interface and must check
 * aesniCompiledIn() + cpuHasAesni() first (Aes128's dispatch does).
 *
 * The key schedule is shared with the portable paths: setKey()
 * expands round keys byte-wise per FIPS-197, and this path simply
 * loads those 11 x 16 bytes into XMM registers. That keeps exactly
 * one key-expansion implementation to audit and makes the three
 * paths interchangeable per block.
 *
 * encryptBlocks runs 8 (then 4) independent blocks through the round
 * loop together. aesenc has multi-cycle latency but single-cycle
 * throughput on every AES-NI core, so interleaving independent
 * blocks fills the pipeline the way the paper's hardware engine fills
 * its 24-stage pipe; this is where the counter-ahead pad prefetcher's
 * batch refills collect their speedup.
 */

#include "crypto/aes128.hh"
#include "util/logging.hh"

#if defined(OBFUSMEM_HAVE_AESNI) && defined(__AES__)
#include <wmmintrin.h>
#endif

namespace obfusmem {
namespace crypto {
namespace detail {

#if defined(OBFUSMEM_HAVE_AESNI) && defined(__AES__)

namespace {

inline __m128i
load(const uint8_t *p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
}

inline void
store(uint8_t *p, __m128i v)
{
    _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
}

inline __m128i
encryptOne(const __m128i rk[11], __m128i s)
{
    s = _mm_xor_si128(s, rk[0]);
    for (int r = 1; r < 10; ++r)
        s = _mm_aesenc_si128(s, rk[r]);
    return _mm_aesenclast_si128(s, rk[10]);
}

inline void
loadRoundKeys(const Aes128::RoundKeys &schedule, __m128i rk[11])
{
    for (int r = 0; r < 11; ++r)
        rk[r] = load(schedule[r].data());
}

} // namespace

bool
aesniCompiledIn()
{
    return true;
}

Block128
aesniEncryptBlock(const Aes128::RoundKeys &schedule,
                  const Block128 &plaintext)
{
    __m128i rk[11];
    loadRoundKeys(schedule, rk);
    Block128 out;
    store(out.data(), encryptOne(rk, load(plaintext.data())));
    return out;
}

void
aesniEncryptBlocks(const Aes128::RoundKeys &schedule,
                   const Block128 *in, Block128 *out, size_t n)
{
    __m128i rk[11];
    loadRoundKeys(schedule, rk);

    size_t i = 0;
    // 8 independent blocks per pass: enough in-flight aesencs to hide
    // the instruction latency behind its 1/cycle throughput.
    for (; i + 8 <= n; i += 8) {
        __m128i s0 = load(in[i + 0].data());
        __m128i s1 = load(in[i + 1].data());
        __m128i s2 = load(in[i + 2].data());
        __m128i s3 = load(in[i + 3].data());
        __m128i s4 = load(in[i + 4].data());
        __m128i s5 = load(in[i + 5].data());
        __m128i s6 = load(in[i + 6].data());
        __m128i s7 = load(in[i + 7].data());
        s0 = _mm_xor_si128(s0, rk[0]);
        s1 = _mm_xor_si128(s1, rk[0]);
        s2 = _mm_xor_si128(s2, rk[0]);
        s3 = _mm_xor_si128(s3, rk[0]);
        s4 = _mm_xor_si128(s4, rk[0]);
        s5 = _mm_xor_si128(s5, rk[0]);
        s6 = _mm_xor_si128(s6, rk[0]);
        s7 = _mm_xor_si128(s7, rk[0]);
        for (int r = 1; r < 10; ++r) {
            s0 = _mm_aesenc_si128(s0, rk[r]);
            s1 = _mm_aesenc_si128(s1, rk[r]);
            s2 = _mm_aesenc_si128(s2, rk[r]);
            s3 = _mm_aesenc_si128(s3, rk[r]);
            s4 = _mm_aesenc_si128(s4, rk[r]);
            s5 = _mm_aesenc_si128(s5, rk[r]);
            s6 = _mm_aesenc_si128(s6, rk[r]);
            s7 = _mm_aesenc_si128(s7, rk[r]);
        }
        store(out[i + 0].data(), _mm_aesenclast_si128(s0, rk[10]));
        store(out[i + 1].data(), _mm_aesenclast_si128(s1, rk[10]));
        store(out[i + 2].data(), _mm_aesenclast_si128(s2, rk[10]));
        store(out[i + 3].data(), _mm_aesenclast_si128(s3, rk[10]));
        store(out[i + 4].data(), _mm_aesenclast_si128(s4, rk[10]));
        store(out[i + 5].data(), _mm_aesenclast_si128(s5, rk[10]));
        store(out[i + 6].data(), _mm_aesenclast_si128(s6, rk[10]));
        store(out[i + 7].data(), _mm_aesenclast_si128(s7, rk[10]));
    }
    for (; i + 4 <= n; i += 4) {
        __m128i s0 = _mm_xor_si128(load(in[i + 0].data()), rk[0]);
        __m128i s1 = _mm_xor_si128(load(in[i + 1].data()), rk[0]);
        __m128i s2 = _mm_xor_si128(load(in[i + 2].data()), rk[0]);
        __m128i s3 = _mm_xor_si128(load(in[i + 3].data()), rk[0]);
        for (int r = 1; r < 10; ++r) {
            s0 = _mm_aesenc_si128(s0, rk[r]);
            s1 = _mm_aesenc_si128(s1, rk[r]);
            s2 = _mm_aesenc_si128(s2, rk[r]);
            s3 = _mm_aesenc_si128(s3, rk[r]);
        }
        store(out[i + 0].data(), _mm_aesenclast_si128(s0, rk[10]));
        store(out[i + 1].data(), _mm_aesenclast_si128(s1, rk[10]));
        store(out[i + 2].data(), _mm_aesenclast_si128(s2, rk[10]));
        store(out[i + 3].data(), _mm_aesenclast_si128(s3, rk[10]));
    }
    for (; i < n; ++i)
        store(out[i].data(), encryptOne(rk, load(in[i].data())));
}

void
aesni4EncryptBlocks(const Aes128::RoundKeys &schedule,
                    const Block128 *in, Block128 *out, size_t n)
{
    // The 4-wide-only rung of the lane ladder: same pipelining idea
    // as the 8-wide loop, half the architectural registers in flight.
    // Kept selectable (AesImpl::Aesni4) so the VAES dispatch has a
    // mid-width fallback to be validated against.
    __m128i rk[11];
    loadRoundKeys(schedule, rk);

    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i s0 = _mm_xor_si128(load(in[i + 0].data()), rk[0]);
        __m128i s1 = _mm_xor_si128(load(in[i + 1].data()), rk[0]);
        __m128i s2 = _mm_xor_si128(load(in[i + 2].data()), rk[0]);
        __m128i s3 = _mm_xor_si128(load(in[i + 3].data()), rk[0]);
        for (int r = 1; r < 10; ++r) {
            s0 = _mm_aesenc_si128(s0, rk[r]);
            s1 = _mm_aesenc_si128(s1, rk[r]);
            s2 = _mm_aesenc_si128(s2, rk[r]);
            s3 = _mm_aesenc_si128(s3, rk[r]);
        }
        store(out[i + 0].data(), _mm_aesenclast_si128(s0, rk[10]));
        store(out[i + 1].data(), _mm_aesenclast_si128(s1, rk[10]));
        store(out[i + 2].data(), _mm_aesenclast_si128(s2, rk[10]));
        store(out[i + 3].data(), _mm_aesenclast_si128(s3, rk[10]));
    }
    for (; i < n; ++i)
        store(out[i].data(), encryptOne(rk, load(in[i].data())));
}

#else // !OBFUSMEM_HAVE_AESNI

// Stub build (-DOBFUSMEM_DISABLE_AESNI=ON or a non-x86 target): the
// dispatch never selects Aesni because aesniCompiledIn() is false,
// but the symbols must exist for the link.

bool
aesniCompiledIn()
{
    return false;
}

Block128
aesniEncryptBlock(const Aes128::RoundKeys &, const Block128 &)
{
    panic("AES-NI path called in a build without AES-NI support");
}

void
aesniEncryptBlocks(const Aes128::RoundKeys &, const Block128 *,
                   Block128 *, size_t)
{
    panic("AES-NI path called in a build without AES-NI support");
}

void
aesni4EncryptBlocks(const Aes128::RoundKeys &, const Block128 *,
                    Block128 *, size_t)
{
    panic("AES-NI path called in a build without AES-NI support");
}

#endif // OBFUSMEM_HAVE_AESNI

} // namespace detail
} // namespace crypto
} // namespace obfusmem
