/**
 * @file
 * Batched short-message MD5: padding, lane transpose and dispatch.
 *
 * The portable part of the lane kernels. Messages are padded per
 * RFC 1321 (0x80, zeros, 64-bit little-endian bit length) directly
 * into the lane-interleaved word layout and handed to the widest
 * compression the build and CPU allow: AVX-512 sixteen at a time,
 * AVX2 eight at a time, with tails — and every message when no wide
 * kernel is available — going through the scalar Md5 context, which
 * is also the oracle the tests pin the kernels against.
 */

#include "crypto/md5_lanes.hh"

#include <cstring>

#include "crypto/bytes.hh"
#include "crypto/cpu_features.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace obfusmem {
namespace crypto {

namespace {

enum class LaneMode { Scalar, Avx2, Avx512 };

/**
 * Lane dispatch, latched once
 * (OBFUSMEM_MD5_LANES=avx512|avx2|scalar).
 */
LaneMode
laneMode()
{
    static const LaneMode mode = [] {
        const bool can512 =
            detail::md5LanesAvx512CompiledIn() && cpuHasAvx512f();
        const bool can2 =
            detail::md5LanesAvx2CompiledIn() && cpuHasAvx2();
        const LaneMode widest = can512 ? LaneMode::Avx512
                                : can2 ? LaneMode::Avx2
                                       : LaneMode::Scalar;
        size_t unset = 3;
        size_t pick = env::choice("OBFUSMEM_MD5_LANES",
                                  {"avx512", "avx2", "scalar"}, unset);
        if (pick == 0) {
            if (can512)
                return LaneMode::Avx512;
            warn("OBFUSMEM_MD5_LANES=avx512 but the AVX-512 kernel "
                 "is unavailable ",
                 detail::md5LanesAvx512CompiledIn()
                     ? "(CPU lacks the instructions)"
                     : "(disabled in this build)",
                 "; using the widest available");
            return widest == LaneMode::Avx512 ? LaneMode::Avx2
                                              : widest;
        }
        if (pick == 1) {
            if (can2)
                return LaneMode::Avx2;
            warn("OBFUSMEM_MD5_LANES=avx2 but the AVX2 kernel is "
                 "unavailable ",
                 detail::md5LanesAvx2CompiledIn()
                     ? "(CPU lacks the instructions)"
                     : "(disabled in this build)",
                 "; using scalar");
            return LaneMode::Scalar;
        }
        if (pick == 2)
            return LaneMode::Scalar;
        return widest;
    }();
    return mode;
}

/**
 * Pad + transpose one W-lane group into the interleaved word layout.
 * The RFC 1321 padding of a short message is mostly zeros, so instead
 * of materializing a 64-byte block per lane and re-reading it, zero
 * the word array once and write only the message words, the 0x80
 * boundary word and the bit length (len <= 55 keeps the boundary word
 * clear of the length words).
 */
template <size_t W>
void
packGroup(const uint8_t *msgs, size_t stride, size_t len,
          OBF_SECRET uint32_t *words) // words[16 * W]
{
    const size_t full = len / 4;
    const size_t rem = len % 4;
    std::memset(words, 0, 16 * W * sizeof(uint32_t));
    for (size_t l = 0; l < W; ++l) {
        const uint8_t *msg = msgs + l * stride;
        for (size_t w = 0; w < full; ++w)
            words[w * W + l] = loadLe32(msg + 4 * w);
        uint32_t boundary = 0x80u << (8 * rem);
        for (size_t b = 0; b < rem; ++b)
            boundary |= static_cast<uint32_t>(msg[4 * full + b])
                        << (8 * b);
        words[full * W + l] = boundary;
        words[14 * W + l] = static_cast<uint32_t>(len) * 8;
    }
}

/** Transpose one W-lane group's finished state back into digests. */
template <size_t W>
void
unpackGroup(OBF_SECRET const uint32_t *state, // state[4 * W]
            OBF_SECRET Md5Digest *out)
{
    for (size_t l = 0; l < W; ++l)
        for (size_t s = 0; s < 4; ++s)
            storeLe32(out[l].data() + 4 * s, state[s * W + l]);
}

/** Digest md5LaneWidth messages through the AVX2 kernel. */
void
digestGroupAvx2(const uint8_t *msgs, size_t stride, size_t len,
                OBF_SECRET Md5Digest *out)
{
    OBF_SECRET uint32_t words[16 * md5LaneWidth];
    OBF_SECRET uint32_t state[4 * md5LaneWidth];
    packGroup<md5LaneWidth>(msgs, stride, len, words);
    detail::md5LanesAvx2Compress8(words, state);
    unpackGroup<md5LaneWidth>(state, out);
}

/** Digest two lane groups through the interleaved-pair kernel. */
void
digestGroupPairAvx2(const uint8_t *msgs, size_t stride, size_t len,
                    OBF_SECRET Md5Digest *out)
{
    OBF_SECRET uint32_t words0[16 * md5LaneWidth];
    OBF_SECRET uint32_t words1[16 * md5LaneWidth];
    OBF_SECRET uint32_t state0[4 * md5LaneWidth];
    OBF_SECRET uint32_t state1[4 * md5LaneWidth];
    packGroup<md5LaneWidth>(msgs, stride, len, words0);
    packGroup<md5LaneWidth>(msgs + md5LaneWidth * stride, stride, len,
                            words1);
    detail::md5LanesAvx2Compress8x2(words0, state0, words1, state1);
    unpackGroup<md5LaneWidth>(state0, out);
    unpackGroup<md5LaneWidth>(state1, out + md5LaneWidth);
}

/** Digest md5LaneWidthZmm messages through the AVX-512 kernel. */
void
digestGroupAvx512(const uint8_t *msgs, size_t stride, size_t len,
                  OBF_SECRET Md5Digest *out)
{
    OBF_SECRET uint32_t words[16 * md5LaneWidthZmm];
    OBF_SECRET uint32_t state[4 * md5LaneWidthZmm];
    packGroup<md5LaneWidthZmm>(msgs, stride, len, words);
    detail::md5LanesAvx512Compress16(words, state);
    unpackGroup<md5LaneWidthZmm>(state, out);
}

/** Digest two 16-lane groups through the interleaved-pair kernel. */
void
digestGroupPairAvx512(const uint8_t *msgs, size_t stride, size_t len,
                      OBF_SECRET Md5Digest *out)
{
    OBF_SECRET uint32_t words0[16 * md5LaneWidthZmm];
    OBF_SECRET uint32_t words1[16 * md5LaneWidthZmm];
    OBF_SECRET uint32_t state0[4 * md5LaneWidthZmm];
    OBF_SECRET uint32_t state1[4 * md5LaneWidthZmm];
    packGroup<md5LaneWidthZmm>(msgs, stride, len, words0);
    packGroup<md5LaneWidthZmm>(msgs + md5LaneWidthZmm * stride, stride,
                               len, words1);
    detail::md5LanesAvx512Compress16x2(words0, state0, words1, state1);
    unpackGroup<md5LaneWidthZmm>(state0, out);
    unpackGroup<md5LaneWidthZmm>(state1, out + md5LaneWidthZmm);
}

} // namespace

bool
md5LanesAvailable()
{
    return (detail::md5LanesAvx2CompiledIn() && cpuHasAvx2())
           || (detail::md5LanesAvx512CompiledIn() && cpuHasAvx512f());
}

void
md5ShortBatch(const uint8_t *msgs, size_t stride, size_t len,
              size_t n, OBF_SECRET Md5Digest *out)
{
    panic_if(len > md5ShortMax,
             "md5ShortBatch message of ", len,
             " bytes does not fit one compression block");

    size_t i = 0;
    LaneMode mode = laneMode();
    if (mode == LaneMode::Avx512) {
        for (; i + 2 * md5LaneWidthZmm <= n; i += 2 * md5LaneWidthZmm)
            digestGroupPairAvx512(msgs + i * stride, stride, len,
                                  out + i);
        for (; i + md5LaneWidthZmm <= n; i += md5LaneWidthZmm)
            digestGroupAvx512(msgs + i * stride, stride, len, out + i);
        // Sub-16 tails drain through the ymm kernel when it exists
        // (every AVX-512F CPU also runs AVX2, but the build may have
        // gated the ymm TU off).
        if (detail::md5LanesAvx2CompiledIn() && cpuHasAvx2())
            mode = LaneMode::Avx2;
    }
    if (mode == LaneMode::Avx2) {
        for (; i + 2 * md5LaneWidth <= n; i += 2 * md5LaneWidth)
            digestGroupPairAvx2(msgs + i * stride, stride, len,
                                out + i);
        for (; i + md5LaneWidth <= n; i += md5LaneWidth)
            digestGroupAvx2(msgs + i * stride, stride, len, out + i);
    }
    for (; i < n; ++i)
        out[i] = Md5::digest(msgs + i * stride, len);
}

} // namespace crypto
} // namespace obfusmem
