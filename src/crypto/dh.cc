/**
 * @file
 * Diffie-Hellman implementation.
 */

#include "crypto/dh.hh"

#include "crypto/bytes.hh"
#include "crypto/md5.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace obfusmem {
namespace crypto {

namespace {

/**
 * Public width bound of a group's private exponents: 256-bit
 * exponents provide ~128-bit security in a 2048-bit group. Also the
 * ladder trip count in powModCt, so it must depend only on the group.
 */
size_t
exponentBits(const DhGroup &group)
{
    return std::min<size_t>(256, group.prime.bitLength() - 2);
}

} // namespace

const DhGroup &
DhGroup::modp2048()
{
    // RFC 3526, group id 14.
    static const DhGroup group = {
        BigUint::fromHex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
            "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
            "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
            "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
            "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
            "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
            "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
            "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
            "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
            "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
            "15728E5A8AACAA68FFFFFFFFFFFFFFFF"),
        BigUint(2),
    };
    return group;
}

const DhGroup &
DhGroup::testGroup256()
{
    // p = 2^255 - 19 (the Curve25519 prime; primality re-checked by a
    // unit test), g = 2. Small enough for fast tests.
    static const DhGroup group = {
        BigUint::fromHex(
            "7fffffffffffffffffffffffffffffff"
            "ffffffffffffffffffffffffffffffed"),
        BigUint(2),
    };
    return group;
}

DhEndpoint::DhEndpoint(const DhGroup &group_, Random &rng)
    : group(group_)
{
    size_t exp_bits = exponentBits(group);
    privateExp = BigUint::randomBits(exp_bits, rng);
    // The exponent is the session's root secret: use the ladder, not
    // square-and-multiply, so deriving the public value does not leak
    // the exponent's Hamming weight or bit positions through timing.
    publicVal =
        group.generator.powModCt(privateExp, group.prime, exp_bits);
}

BigUint
DhEndpoint::computeShared(const BigUint &peer_public) const
{
    fatal_if(peer_public.isZero() || peer_public >= group.prime,
             "DH peer public value out of range");
    fatal_if(peer_public == BigUint(1),
             "DH peer public value is degenerate");
    return peer_public.powModCt(privateExp, group.prime,
                                exponentBits(group));
}

Aes128::Key
DhEndpoint::deriveSessionKey(OBF_SECRET const BigUint &shared)
{
    std::vector<uint8_t> bytes = shared.toBytes();
    Md5Digest d = Md5::digest(bytes.data(), bytes.size());
    Aes128::Key key;
    std::copy(d.begin(), d.end(), key.begin());
    // The serialized shared secret and its digest (== the session
    // key) must not outlive this derivation on the stack/heap.
    secureZero(bytes.data(), bytes.size());
    secureZero(d);
    return key;
}

} // namespace crypto
} // namespace obfusmem
