/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from the specification.
 *
 * This is the functional model of the pipelined AES engine that ObfusMem
 * places on both sides of each memory channel. The paper's synthesis
 * numbers for the engine (24-cycle latency at 4 ns cycle time, one
 * 128-bit pad per cycle throughput, 15.1 mW, 0.204 mm^2) are captured as
 * constants here and consumed by the timing model.
 */

#ifndef OBFUSMEM_CRYPTO_AES128_HH
#define OBFUSMEM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

#include "crypto/bytes.hh"

namespace obfusmem {
namespace crypto {

/** Synthesis figures for the pipelined AES-128 engine (paper Sec. 4). */
struct AesEngineParams
{
    /** Pipeline depth: cycles from input to pad output. */
    static constexpr unsigned pipelineDepth = 24;
    /** Engine cycle time in picoseconds (4 ns). */
    static constexpr uint64_t cycleTimePs = 4000;
    /** Pads produced per cycle once the pipe is full. */
    static constexpr unsigned padsPerCycle = 1;
    /** Power in milliwatts. */
    static constexpr double powerMw = 15.1;
    /** Area in mm^2. */
    static constexpr double areaMm2 = 0.204;
};

/**
 * AES-128 with a fixed key set at construction (or via setKey).
 * Provides single-block encrypt and decrypt.
 */
class Aes128
{
  public:
    using Key = Block128;

    Aes128() = default;
    explicit Aes128(const Key &key) { setKey(key); }

    /** Run the key schedule for a new key. */
    void setKey(const Key &key);

    /** Encrypt one 16-byte block. */
    Block128 encryptBlock(const Block128 &plaintext) const;

    /** Decrypt one 16-byte block (inverse cipher). */
    Block128 decryptBlock(const Block128 &ciphertext) const;

  private:
    /** Expanded round keys: 11 round keys of 16 bytes. */
    std::array<std::array<uint8_t, 16>, 11> roundKeys{};
    bool keyed = false;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_AES128_HH
