/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from the specification.
 *
 * This is the functional model of the pipelined AES engine that ObfusMem
 * places on both sides of each memory channel. The paper's synthesis
 * numbers for the engine (24-cycle latency at 4 ns cycle time, one
 * 128-bit pad per cycle throughput, 15.1 mW, 0.204 mm^2) are captured as
 * constants here and consumed by the timing model.
 *
 * Five encryption implementations are provided:
 *  - Vaes: 512-bit VAES batches (four blocks per zmm register, four
 *    registers in flight) for the widest pad-generation lanes. The
 *    default when the build carries the instructions and the running
 *    CPU advertises VAES + AVX-512 F/BW/VL.
 *  - Aesni: hardware AES via the x86 AES-NI instructions, with 4/8-wide
 *    pipelined batches in encryptBlocks. The default on AES-NI CPUs
 *    without usable VAES.
 *  - Aesni4: the 4-wide-only software-pipelined AES-NI variant, kept
 *    selectable as the mid-rung of the lane-width ladder (and as the
 *    fallback target the VAES dispatch is validated against).
 *  - Ttable: the portable hot path. The 32-bit T-table formulation
 *    fuses SubBytes, ShiftRows and MixColumns into four table lookups
 *    and three XORs per column per round. The tables are generated at
 *    compile time from the S-box, so no runtime initialization (and no
 *    initialization races) exist.
 *  - Reference: the byte-oriented FIPS-197 transcription, kept as the
 *    cross-checked oracle. Tests pin every other path to it.
 *
 * The simulated *hardware* is unchanged either way: implementation
 * choice only affects host throughput, never simulated timing.
 */

#ifndef OBFUSMEM_CRYPTO_AES128_HH
#define OBFUSMEM_CRYPTO_AES128_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/bytes.hh"
#include "util/secret.hh"

namespace obfusmem {
namespace crypto {

/** Synthesis figures for the pipelined AES-128 engine (paper Sec. 4). */
struct AesEngineParams
{
    /** Pipeline depth: cycles from input to pad output. */
    static constexpr unsigned pipelineDepth = 24;
    /** Engine cycle time in picoseconds (4 ns). */
    static constexpr uint64_t cycleTimePs = 4000;
    /** Pads produced per cycle once the pipe is full. */
    static constexpr unsigned padsPerCycle = 1;
    /** Power in milliwatts. */
    static constexpr double powerMw = 15.1;
    /** Area in mm^2. */
    static constexpr double areaMm2 = 0.204;
};

/** Host-side encryption implementation (identical ciphertexts). */
enum class AesImpl
{
    /** Fused 32-bit T-table path (the portable fast path). */
    Ttable,
    /** Byte-oriented FIPS-197 path (the cross-check oracle). */
    Reference,
    /** x86 AES-NI hardware path (8-wide batches). */
    Aesni,
    /** 4-wide software-pipelined AES-NI batches only. */
    Aesni4,
    /** 512-bit VAES batches (the widest pad-generation lanes). */
    Vaes,
};

/** Human-readable name for an implementation (matches the env values). */
const char *aesImplName(AesImpl impl);

/**
 * AES-128 with a fixed key set at construction (or via setKey).
 * Provides single-block and batched encrypt, and single-block decrypt.
 */
class Aes128
{
  public:
    using Key = Block128;
    /** Expanded key schedule: 11 round keys of 16 bytes each. */
    using RoundKeys = std::array<std::array<uint8_t, 16>, 11>;

    Aes128() = default;
    explicit Aes128(const Key &key) { setKey(key); }

    /** Run the key schedule for a new key. */
    void setKey(OBF_SECRET const Key &key);

    /** Encrypt one 16-byte block. */
    Block128 encryptBlock(const Block128 &plaintext) const;

    /**
     * Encrypt `n` blocks in one call. The hot path for pad batches:
     * the implementation dispatch and round-key loads are paid once
     * per batch instead of once per block. `in` and `out` may alias.
     */
    void encryptBlocks(const Block128 *in, Block128 *out,
                       size_t n) const;

    /** Decrypt one 16-byte block (inverse cipher). */
    Block128 decryptBlock(const Block128 &ciphertext) const;

    /**
     * Select the encryption implementation for this instance.
     * Requesting a hardware lane the build or CPU cannot honour warns
     * and steps down the ladder (Vaes -> Aesni -> Ttable) instead of
     * faulting on the first wide instruction.
     */
    void setImpl(AesImpl impl);
    AesImpl impl() const { return implChoice; }

    /**
     * Process-wide default implementation, read once from the
     * OBFUSMEM_AES_IMPL environment variable ("vaes", "aesni",
     * "aesni4", "ttable" or "reference"; stable across threads).
     * Unset: the widest lane the build and the running CPU support —
     * Vaes, then Aesni, then Ttable. An explicit hardware choice that
     * cannot be honoured warns and falls back down the same ladder.
     */
    static AesImpl defaultImpl();

    /** True when the binary contains AES-NI code and the CPU runs it. */
    static bool aesniAvailable();

    /**
     * True when the binary contains the VAES/AVX-512 lanes and the CPU
     * runs them. VAES batches fall back to AES-NI for sub-lane tails,
     * so availability requires aesniAvailable() too.
     */
    static bool vaesAvailable();

  private:
    Block128 encryptTtable(const Block128 &plaintext) const;
    Block128 encryptReference(const Block128 &plaintext) const;

    /** Expanded round keys (byte layout, shared by all impls). */
    OBF_SECRET RoundKeys roundKeys{};
    /** The same schedule as little-endian column words (T-table path). */
    OBF_SECRET std::array<std::array<uint32_t, 4>, 11> roundKeyWords{};
    AesImpl implChoice = defaultImpl();
    bool keyed = false;
};

namespace detail {

/**
 * AES-NI entry points, defined in aes128_aesni.cc — the only
 * translation unit built with -maes, so no intrinsics appear in this
 * header. When the build gates AES-NI off (-DOBFUSMEM_DISABLE_AESNI=ON
 * or a non-x86 target) these compile to panicking stubs and
 * aesniCompiledIn() reports false, which keeps the dispatch honest.
 */
bool aesniCompiledIn();
Block128 aesniEncryptBlock(OBF_SECRET const Aes128::RoundKeys &schedule,
                           const Block128 &plaintext);
void aesniEncryptBlocks(OBF_SECRET const Aes128::RoundKeys &schedule,
                        const Block128 *in, Block128 *out, size_t n);
/** The 4-wide-only software-pipelined variant (AesImpl::Aesni4). */
void aesni4EncryptBlocks(OBF_SECRET const Aes128::RoundKeys &schedule,
                         const Block128 *in, Block128 *out, size_t n);

/**
 * VAES/AVX-512 entry points, defined in aes128_vaes.cc — the only
 * translation unit built with -mvaes/-mavx512*. Same contract as the
 * aesni* set: panicking stubs when the build gates the lanes off
 * (-DOBFUSMEM_DISABLE_VAES=ON or a compiler without the flags), with
 * vaesCompiledIn() reporting false so the dispatch stays honest.
 */
bool vaesCompiledIn();
void vaesEncryptBlocks(OBF_SECRET const Aes128::RoundKeys &schedule,
                       const Block128 *in, Block128 *out, size_t n);

} // namespace detail

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_AES128_HH
