/**
 * @file
 * HMAC implementation (RFC 2104), block size 64 for both hashes.
 */

#include "crypto/hmac.hh"

#include <array>
#include <cstring>

#include "crypto/bytes.hh"

namespace obfusmem {
namespace crypto {

namespace {

constexpr size_t blockSize = 64;

template <typename Ctx, typename Digest>
Digest
hmac(const uint8_t *key, size_t key_len, const uint8_t *msg,
     size_t msg_len)
{
    std::array<uint8_t, blockSize> k{};
    if (key_len > blockSize) {
        Digest kd = Ctx::digest(key, key_len);
        std::memcpy(k.data(), kd.data(), kd.size());
    } else {
        std::memcpy(k.data(), key, key_len);
    }

    std::array<uint8_t, blockSize> ipad, opad;
    for (size_t i = 0; i < blockSize; ++i) {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    Ctx inner;
    inner.update(ipad.data(), ipad.size());
    inner.update(msg, msg_len);
    Digest inner_digest = inner.finalize();

    Ctx outer;
    outer.update(opad.data(), opad.size());
    outer.update(inner_digest.data(), inner_digest.size());
    Digest out = outer.finalize();

    // Key-derived material lived on the stack; scrub it before the
    // frame is released for reuse.
    secureZero(k);
    secureZero(ipad);
    secureZero(opad);
    return out;
}

} // namespace

Md5Digest
hmacMd5(const uint8_t *key, size_t key_len, const uint8_t *msg,
        size_t msg_len)
{
    return hmac<Md5, Md5Digest>(key, key_len, msg, msg_len);
}

Sha1Digest
hmacSha1(const uint8_t *key, size_t key_len, const uint8_t *msg,
         size_t msg_len)
{
    return hmac<Sha1, Sha1Digest>(key, key_len, msg, msg_len);
}

} // namespace crypto
} // namespace obfusmem
