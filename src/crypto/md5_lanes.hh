/**
 * @file
 * Batched MD5 for short messages — the MAC lanes of the SoA pipeline.
 *
 * Every MAC ObfusMem computes covers a fixed 17-byte (cmd|addr|counter)
 * message (MacEngine), which after RFC 1321 padding is exactly one
 * 64-byte compression block. That makes the digest a pure function of
 * one block, and a batch of them embarrassingly lane-parallel: the
 * AVX2 kernel runs eight independent single-block compressions in the
 * eight 32-bit lanes of a ymm register, one MD5 step per instruction
 * group instead of one per message.
 *
 * Layout contract with the AVX2 kernel: both the message words and the
 * chaining state are lane-interleaved, i.e. word `w` of lane `l` lives
 * at index `w * md5LaneWidth + l`, so each of the 16 message words (and
 * each of the 4 state words) is one contiguous, directly loadable
 * 32-byte vector.
 *
 * Bit-identical to Md5::digest per message by construction; the tests
 * pin every lane against the scalar context.
 */

#ifndef OBFUSMEM_CRYPTO_MD5_LANES_HH
#define OBFUSMEM_CRYPTO_MD5_LANES_HH

#include <cstddef>
#include <cstdint>

#include "crypto/md5.hh"
#include "util/secret.hh"

namespace obfusmem {
namespace crypto {

/** Lanes per AVX2 compression (32-bit lanes of a ymm register). */
constexpr size_t md5LaneWidth = 8;

/** Lanes per AVX-512 compression (32-bit lanes of a zmm register). */
constexpr size_t md5LaneWidthZmm = 16;

/** Longest message that still pads into a single compression block. */
constexpr size_t md5ShortMax = 55;

/**
 * One-shot MD5 digests for `n` equal-length short messages
 * (`len <= md5ShortMax`), packed `stride` bytes apart starting at
 * `msgs`. Dispatches to the widest kernel the build and the running
 * CPU allow — AVX-512 16-lane, then AVX2 8-lane, then the scalar Md5
 * context (override with OBFUSMEM_MD5_LANES=avx512|avx2|scalar; a
 * forced avx512 run still drains sub-group tails through the
 * narrower kernels). Output digests are bit-identical on every path.
 */
void md5ShortBatch(const uint8_t *msgs, size_t stride, size_t len,
                   size_t n, OBF_SECRET Md5Digest *out);

/** True when the AVX2 kernel is compiled in and the CPU runs it. */
bool md5LanesAvailable();

namespace detail {

/**
 * AVX2 entry points, defined in md5_lanes_avx2.cc — the only
 * translation unit built with -mavx2, mirroring the aes128_aesni.cc
 * isolation pattern. Panicking stub + false when the build gates the
 * kernel off (-DOBFUSMEM_DISABLE_AVX2=ON or a compiler without the
 * flag).
 */
bool md5LanesAvx2CompiledIn();

/**
 * Eight single-block MD5 compressions from the standard IV. `words`
 * holds the 16 message words of all 8 lanes in the interleaved layout
 * described above; `state` receives the 4 finalized chaining words per
 * lane in the same layout.
 */
void md5LanesAvx2Compress8(OBF_SECRET const uint32_t *words,
                           OBF_SECRET uint32_t *state);

/**
 * Two independent 8-lane compressions interleaved in one pass.
 * Every MD5 step is a serial dependency chain on its own lanes, so a
 * single 8-lane group leaves most execution ports idle; running a
 * second group through the same instruction stream roughly doubles
 * throughput without touching the per-group layout contract.
 */
void md5LanesAvx2Compress8x2(OBF_SECRET const uint32_t *words0,
                             OBF_SECRET uint32_t *state0,
                             OBF_SECRET const uint32_t *words1,
                             OBF_SECRET uint32_t *state1);

/**
 * AVX-512 entry points, defined in md5_lanes_avx512.cc (the only TU
 * built with -mavx512f). The zmm kernel is more than twice the ymm
 * kernel's throughput per group: 16 lanes instead of 8, a native
 * 32-bit rotate, and each round function folded into a single
 * vpternlogd. Layout matches the AVX2 contract with
 * md5LaneWidthZmm-interleaved words (word `w`, lane `l` at
 * `w * md5LaneWidthZmm + l`).
 */
bool md5LanesAvx512CompiledIn();

/** Sixteen single-block MD5 compressions from the standard IV. */
void md5LanesAvx512Compress16(OBF_SECRET const uint32_t *words,
                              OBF_SECRET uint32_t *state);

/** Two independent 16-lane compressions interleaved in one pass. */
void md5LanesAvx512Compress16x2(OBF_SECRET const uint32_t *words0,
                                OBF_SECRET uint32_t *state0,
                                OBF_SECRET const uint32_t *words1,
                                OBF_SECRET uint32_t *state1);

} // namespace detail

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_MD5_LANES_HH
