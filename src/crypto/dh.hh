/**
 * @file
 * Diffie-Hellman key exchange over the RFC 3526 2048-bit MODP group.
 *
 * ObfusMem's trust architecture (paper Sec. 3.1) runs a DH exchange at
 * BIOS time between the processor-side controller and each memory-side
 * controller to derive a per-channel shared session key; all subsequent
 * bus traffic uses symmetric AES-CTR under that key.
 */

#ifndef OBFUSMEM_CRYPTO_DH_HH
#define OBFUSMEM_CRYPTO_DH_HH

#include "crypto/aes128.hh"
#include "crypto/bignum.hh"
#include "util/secret.hh"

namespace obfusmem {

class Random;

namespace crypto {

/** Parameters of a DH group: prime modulus and generator. */
struct DhGroup
{
    BigUint prime;
    BigUint generator;

    /** RFC 3526 group 14 (2048-bit MODP, generator 2). */
    static const DhGroup &modp2048();
    /** A small 256-bit safe-prime group for fast unit tests. */
    static const DhGroup &testGroup256();
};

/**
 * One endpoint of a DH exchange.
 */
class DhEndpoint
{
  public:
    /**
     * Draw a fresh private exponent and compute the public value.
     *
     * @param group DH group to use.
     * @param rng Entropy source for the private exponent.
     */
    DhEndpoint(const DhGroup &group, Random &rng);

    /** Public value g^x mod p to send to the peer. */
    OBF_PUBLIC const BigUint &publicValue() const { return publicVal; }

    /** Shared secret (peer_public)^x mod p. */
    OBF_SECRET BigUint computeShared(const BigUint &peer_public) const;

    /**
     * Derive a 128-bit AES session key from the shared secret via MD5
     * over the secret's byte serialization (a KDF stand-in).
     */
    static OBF_SECRET Aes128::Key
    deriveSessionKey(OBF_SECRET const BigUint &shared);

  private:
    const DhGroup &group;
    /** The DH private exponent: the root secret of a session. */
    OBF_SECRET BigUint privateExp;
    /** g^x mod p is sent on the wire in the clear by protocol. */
    OBF_PUBLIC BigUint publicVal;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_DH_HH
