/**
 * @file
 * AVX-512 16-lane MD5 compression kernel.
 *
 * The only translation unit compiled with -mavx512f (the same
 * isolation pattern as md5_lanes_avx2.cc). Sixteen independent
 * single-block digests run in the sixteen 32-bit lanes of a zmm
 * register, and AVX-512 shortens the step itself relative to the ymm
 * kernel:
 *
 *  - every round function is one vpternlogd. The immediate is the
 *    truth table of f(b, c, d) indexed by (b<<2)|(c<<1)|d:
 *      F: (b&c)|(~b&d)  ->  0xca   (b ? c : d)
 *      G: (b&d)|(c&~d)  ->  0xe4   (d ? b : c)
 *      H: b^c^d         ->  0x96
 *      I: c^(b|~d)      ->  0x39
 *  - the rotate is the native vprolvd instead of the sll/srl/or
 *    triple. The rotate count is public schedule data.
 *
 * Same round constants, shift schedule and message-word order as
 * Md5::processBlock; the equivalence tests pin every lane against the
 * scalar context.
 */

#include "crypto/md5_lanes.hh"
#include "util/logging.hh"

#if defined(OBFUSMEM_HAVE_AVX512) && defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace obfusmem {
namespace crypto {
namespace detail {

#if defined(OBFUSMEM_HAVE_AVX512) && defined(__AVX512F__)

namespace {

// Same tables as md5.cc (RFC 1321); duplicated so the kernel TU stays
// self-contained.
const uint32_t kTable[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

const int shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

/** The per-step round function (public schedule selects the imm). */
inline __m512i
roundFZmm(int i, __m512i b, __m512i c, __m512i d)
{
    if (i < 16)
        return _mm512_ternarylogic_epi32(b, c, d, 0xca);
    if (i < 32)
        return _mm512_ternarylogic_epi32(b, c, d, 0xe4);
    if (i < 48)
        return _mm512_ternarylogic_epi32(b, c, d, 0x96);
    return _mm512_ternarylogic_epi32(b, c, d, 0x39);
}

/** Message-word index for step i (public schedule). */
inline int
roundGZmm(int i)
{
    if (i < 16)
        return i;
    if (i < 32)
        return (5 * i + 1) % 16;
    if (i < 48)
        return (3 * i + 5) % 16;
    return (7 * i) % 16;
}

inline __m512i
stepBZmm(int i, __m512i a, __m512i b, __m512i f, __m512i mg)
{
    __m512i sum = _mm512_add_epi32(
        _mm512_add_epi32(a, f),
        _mm512_add_epi32(
            _mm512_set1_epi32(static_cast<int>(kTable[i])), mg));
    return _mm512_add_epi32(
        b, _mm512_rolv_epi32(sum, _mm512_set1_epi32(shifts[i])));
}

} // namespace

bool
md5LanesAvx512CompiledIn()
{
    return true;
}

void
md5LanesAvx512Compress16(const uint32_t *words, uint32_t *state)
{
    __m512i m[16];
    for (int w = 0; w < 16; ++w) {
        m[w] = _mm512_loadu_si512(words + w * md5LaneWidthZmm);
    }

    const __m512i iv_a = _mm512_set1_epi32(0x67452301);
    const __m512i iv_b = _mm512_set1_epi32(
        static_cast<int>(0xefcdab89u));
    const __m512i iv_c = _mm512_set1_epi32(
        static_cast<int>(0x98badcfeu));
    const __m512i iv_d = _mm512_set1_epi32(0x10325476);

    __m512i a = iv_a, b = iv_b, c = iv_c, d = iv_d;

    for (int i = 0; i < 64; ++i) {
        __m512i f = roundFZmm(i, b, c, d);
        __m512i nb = stepBZmm(i, a, b, f, m[roundGZmm(i)]);
        a = d;
        d = c;
        c = b;
        b = nb;
    }

    _mm512_storeu_si512(state + 0 * md5LaneWidthZmm,
                        _mm512_add_epi32(a, iv_a));
    _mm512_storeu_si512(state + 1 * md5LaneWidthZmm,
                        _mm512_add_epi32(b, iv_b));
    _mm512_storeu_si512(state + 2 * md5LaneWidthZmm,
                        _mm512_add_epi32(c, iv_c));
    _mm512_storeu_si512(state + 3 * md5LaneWidthZmm,
                        _mm512_add_epi32(d, iv_d));
}

void
md5LanesAvx512Compress16x2(const uint32_t *words0, uint32_t *state0,
                           const uint32_t *words1, uint32_t *state1)
{
    // As in the ymm kernel: one group is latency-bound on the serial
    // per-step chain, so a second independent group issues into the
    // bubbles and nearly doubles throughput.
    __m512i m0[16], m1[16];
    for (int w = 0; w < 16; ++w) {
        m0[w] = _mm512_loadu_si512(words0 + w * md5LaneWidthZmm);
        m1[w] = _mm512_loadu_si512(words1 + w * md5LaneWidthZmm);
    }

    const __m512i iv_a = _mm512_set1_epi32(0x67452301);
    const __m512i iv_b = _mm512_set1_epi32(
        static_cast<int>(0xefcdab89u));
    const __m512i iv_c = _mm512_set1_epi32(
        static_cast<int>(0x98badcfeu));
    const __m512i iv_d = _mm512_set1_epi32(0x10325476);

    __m512i a0 = iv_a, b0 = iv_b, c0 = iv_c, d0 = iv_d;
    __m512i a1 = iv_a, b1 = iv_b, c1 = iv_c, d1 = iv_d;

    for (int i = 0; i < 64; ++i) {
        const int g = roundGZmm(i);
        __m512i f0 = roundFZmm(i, b0, c0, d0);
        __m512i f1 = roundFZmm(i, b1, c1, d1);
        __m512i nb0 = stepBZmm(i, a0, b0, f0, m0[g]);
        __m512i nb1 = stepBZmm(i, a1, b1, f1, m1[g]);
        a0 = d0;
        d0 = c0;
        c0 = b0;
        b0 = nb0;
        a1 = d1;
        d1 = c1;
        c1 = b1;
        b1 = nb1;
    }

    _mm512_storeu_si512(state0 + 0 * md5LaneWidthZmm,
                        _mm512_add_epi32(a0, iv_a));
    _mm512_storeu_si512(state0 + 1 * md5LaneWidthZmm,
                        _mm512_add_epi32(b0, iv_b));
    _mm512_storeu_si512(state0 + 2 * md5LaneWidthZmm,
                        _mm512_add_epi32(c0, iv_c));
    _mm512_storeu_si512(state0 + 3 * md5LaneWidthZmm,
                        _mm512_add_epi32(d0, iv_d));
    _mm512_storeu_si512(state1 + 0 * md5LaneWidthZmm,
                        _mm512_add_epi32(a1, iv_a));
    _mm512_storeu_si512(state1 + 1 * md5LaneWidthZmm,
                        _mm512_add_epi32(b1, iv_b));
    _mm512_storeu_si512(state1 + 2 * md5LaneWidthZmm,
                        _mm512_add_epi32(c1, iv_c));
    _mm512_storeu_si512(state1 + 3 * md5LaneWidthZmm,
                        _mm512_add_epi32(d1, iv_d));
}

#else // !OBFUSMEM_HAVE_AVX512

// Stub build (-DOBFUSMEM_DISABLE_AVX512=ON or a compiler without the
// flag): the dispatch never calls in because
// md5LanesAvx512CompiledIn() is false, but the symbols must exist.

bool
md5LanesAvx512CompiledIn()
{
    return false;
}

void
md5LanesAvx512Compress16(const uint32_t *, uint32_t *)
{
    panic("AVX-512 MD5 kernel called in a build without AVX-512 "
          "support");
}

void
md5LanesAvx512Compress16x2(const uint32_t *, uint32_t *,
                           const uint32_t *, uint32_t *)
{
    panic("AVX-512 MD5 kernel called in a build without AVX-512 "
          "support");
}

#endif // OBFUSMEM_HAVE_AVX512

} // namespace detail
} // namespace crypto
} // namespace obfusmem
