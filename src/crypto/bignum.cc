/**
 * @file
 * BigUint implementation: schoolbook arithmetic with Knuth Algorithm D
 * division (TAOCP Vol. 2, 4.3.1).
 */

#include "crypto/bignum.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/random.hh"

namespace obfusmem {
namespace crypto {

void
BigUint::trim()
{
    while (!limbs.empty() && limbs.back() == 0)
        limbs.pop_back();
}

BigUint::BigUint(uint64_t v)
{
    if (v) {
        limbs.push_back(static_cast<uint32_t>(v));
        if (v >> 32)
            limbs.push_back(static_cast<uint32_t>(v >> 32));
    }
}

BigUint
BigUint::fromHex(const std::string &hex)
{
    BigUint out;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    for (char c : hex) {
        if (c == ' ' || c == '\n' || c == '\t')
            continue;
        int v = nibble(c);
        fatal_if(v < 0, "invalid hex digit '", c, "'");
        // out = out * 16 + v
        uint64_t carry = static_cast<uint64_t>(v);
        for (auto &limb : out.limbs) {
            uint64_t cur = (static_cast<uint64_t>(limb) << 4) | carry;
            limb = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
        if (carry)
            out.limbs.push_back(static_cast<uint32_t>(carry));
    }
    out.trim();
    return out;
}

BigUint
BigUint::fromBytes(const uint8_t *data, size_t len)
{
    BigUint out;
    out.limbs.assign((len + 3) / 4, 0);
    for (size_t i = 0; i < len; ++i) {
        // data is big-endian; byte i has weight len-1-i.
        size_t weight = len - 1 - i;
        out.limbs[weight / 4] |=
            static_cast<uint32_t>(data[i]) << (8 * (weight % 4));
    }
    out.trim();
    return out;
}

std::string
BigUint::toHex() const
{
    if (isZero())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (size_t i = limbs.size(); i-- > 0;) {
        for (int shift = 28; shift >= 0; shift -= 4) {
            int nib = (limbs[i] >> shift) & 0xf;
            if (leading && nib == 0)
                continue;
            leading = false;
            out.push_back(digits[nib]);
        }
    }
    return out;
}

std::vector<uint8_t>
BigUint::toBytes(size_t pad_to) const
{
    size_t nbytes = (bitLength() + 7) / 8;
    nbytes = std::max(nbytes, pad_to);
    if (nbytes == 0)
        nbytes = 1;
    std::vector<uint8_t> out(nbytes, 0);
    for (size_t weight = 0; weight < nbytes; ++weight) {
        size_t limb = weight / 4;
        if (limb >= limbs.size())
            break;
        out[nbytes - 1 - weight] =
            static_cast<uint8_t>(limbs[limb] >> (8 * (weight % 4)));
    }
    return out;
}

size_t
BigUint::bitLength() const
{
    if (limbs.empty())
        return 0;
    uint32_t top = limbs.back();
    size_t bits = (limbs.size() - 1) * 32;
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool
BigUint::bit(size_t i) const
{
    size_t limb = i / 32;
    if (limb >= limbs.size())
        return false;
    return (limbs[limb] >> (i % 32)) & 1;
}

int
BigUint::compare(const BigUint &o) const
{
    if (limbs.size() != o.limbs.size())
        return limbs.size() < o.limbs.size() ? -1 : 1;
    for (size_t i = limbs.size(); i-- > 0;) {
        if (limbs[i] != o.limbs[i])
            return limbs[i] < o.limbs[i] ? -1 : 1;
    }
    return 0;
}

BigUint
BigUint::operator+(const BigUint &o) const
{
    BigUint out;
    size_t n = std::max(limbs.size(), o.limbs.size());
    out.limbs.resize(n);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t sum = carry;
        if (i < limbs.size())
            sum += limbs[i];
        if (i < o.limbs.size())
            sum += o.limbs[i];
        out.limbs[i] = static_cast<uint32_t>(sum);
        carry = sum >> 32;
    }
    if (carry)
        out.limbs.push_back(static_cast<uint32_t>(carry));
    return out;
}

BigUint
BigUint::operator-(const BigUint &o) const
{
    panic_if(*this < o, "BigUint underflow in subtraction");
    BigUint out;
    out.limbs.resize(limbs.size());
    int64_t borrow = 0;
    for (size_t i = 0; i < limbs.size(); ++i) {
        int64_t diff = static_cast<int64_t>(limbs[i]) - borrow;
        if (i < o.limbs.size())
            diff -= o.limbs[i];
        if (diff < 0) {
            diff += (int64_t{1} << 32);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs[i] = static_cast<uint32_t>(diff);
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator*(const BigUint &o) const
{
    if (isZero() || o.isZero())
        return BigUint();
    BigUint out;
    out.limbs.assign(limbs.size() + o.limbs.size(), 0);
    for (size_t i = 0; i < limbs.size(); ++i) {
        uint64_t carry = 0;
        uint64_t a = limbs[i];
        for (size_t j = 0; j < o.limbs.size(); ++j) {
            uint64_t cur = out.limbs[i + j] + a * o.limbs[j] + carry;
            out.limbs[i + j] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
        size_t k = i + o.limbs.size();
        while (carry) {
            uint64_t cur = out.limbs[k] + carry;
            out.limbs[k] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator<<(size_t bits) const
{
    if (isZero())
        return BigUint();
    size_t limb_shift = bits / 32;
    size_t bit_shift = bits % 32;
    BigUint out;
    out.limbs.assign(limbs.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs.size(); ++i) {
        uint64_t v = static_cast<uint64_t>(limbs[i]) << bit_shift;
        out.limbs[i + limb_shift] |= static_cast<uint32_t>(v);
        out.limbs[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator>>(size_t bits) const
{
    size_t limb_shift = bits / 32;
    size_t bit_shift = bits % 32;
    if (limb_shift >= limbs.size())
        return BigUint();
    BigUint out;
    out.limbs.assign(limbs.size() - limb_shift, 0);
    for (size_t i = 0; i < out.limbs.size(); ++i) {
        uint64_t v = limbs[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs.size()) {
            v |= static_cast<uint64_t>(limbs[i + limb_shift + 1])
                 << (32 - bit_shift);
        }
        out.limbs[i] = static_cast<uint32_t>(v);
    }
    out.trim();
    return out;
}

std::pair<BigUint, BigUint>
BigUint::divmod(const BigUint &divisor) const
{
    fatal_if(divisor.isZero(), "BigUint division by zero");

    if (*this < divisor)
        return {BigUint(), *this};

    // Single-limb fast path.
    if (divisor.limbs.size() == 1) {
        uint64_t d = divisor.limbs[0];
        BigUint q;
        q.limbs.resize(limbs.size());
        uint64_t rem = 0;
        for (size_t i = limbs.size(); i-- > 0;) {
            uint64_t cur = (rem << 32) | limbs[i];
            q.limbs[i] = static_cast<uint32_t>(cur / d);
            rem = cur % d;
        }
        q.trim();
        return {q, BigUint(rem)};
    }

    // Knuth Algorithm D. Normalize so the divisor's top limb has its
    // high bit set.
    const size_t n = divisor.limbs.size();
    unsigned shift = 0;
    {
        uint32_t top = divisor.limbs.back();
        while (!(top & 0x80000000u)) {
            top <<= 1;
            ++shift;
        }
    }
    BigUint u = *this << shift;
    BigUint v = divisor << shift;
    const size_t m = u.limbs.size() >= n ? u.limbs.size() - n : 0;
    u.limbs.resize(u.limbs.size() + 1, 0); // extra high limb u[m+n]

    BigUint q;
    q.limbs.assign(m + 1, 0);

    const uint64_t base = uint64_t{1} << 32;
    const uint64_t v1 = v.limbs[n - 1];
    const uint64_t v2 = v.limbs[n - 2];

    for (size_t j = m + 1; j-- > 0;) {
        // Estimate q_hat = (u[j+n]*b + u[j+n-1]) / v1.
        uint64_t numerator =
            (static_cast<uint64_t>(u.limbs[j + n]) << 32)
            | u.limbs[j + n - 1];
        uint64_t q_hat = numerator / v1;
        uint64_t r_hat = numerator % v1;

        while (q_hat >= base
               || q_hat * v2 > ((r_hat << 32) | u.limbs[j + n - 2])) {
            --q_hat;
            r_hat += v1;
            if (r_hat >= base)
                break;
        }

        // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
        int64_t borrow = 0;
        uint64_t carry = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t p = q_hat * v.limbs[i] + carry;
            carry = p >> 32;
            int64_t t = static_cast<int64_t>(u.limbs[i + j])
                        - static_cast<int64_t>(p & 0xffffffffu) - borrow;
            if (t < 0) {
                t += static_cast<int64_t>(base);
                borrow = 1;
            } else {
                borrow = 0;
            }
            u.limbs[i + j] = static_cast<uint32_t>(t);
        }
        int64_t t = static_cast<int64_t>(u.limbs[j + n])
                    - static_cast<int64_t>(carry) - borrow;
        if (t < 0) {
            // q_hat was one too large: add back.
            t += static_cast<int64_t>(base);
            --q_hat;
            uint64_t carry2 = 0;
            for (size_t i = 0; i < n; ++i) {
                uint64_t sum = static_cast<uint64_t>(u.limbs[i + j])
                               + v.limbs[i] + carry2;
                u.limbs[i + j] = static_cast<uint32_t>(sum);
                carry2 = sum >> 32;
            }
            t += static_cast<int64_t>(carry2);
            t &= static_cast<int64_t>(base - 1);
        }
        u.limbs[j + n] = static_cast<uint32_t>(t);
        q.limbs[j] = static_cast<uint32_t>(q_hat);
    }

    q.trim();
    u.limbs.resize(n);
    u.trim();
    BigUint r = u >> shift;
    return {q, r};
}

BigUint
BigUint::mulMod(const BigUint &b, const BigUint &m) const
{
    return ((*this) * b) % m;
}

BigUint
BigUint::powMod(const BigUint &e, const BigUint &m) const
{
    fatal_if(m.isZero(), "powMod with zero modulus");
    if (m == BigUint(1))
        return BigUint();

    BigUint result(1);
    BigUint base = *this % m;
    size_t nbits = e.bitLength();
    for (size_t i = 0; i < nbits; ++i) {
        if (e.bit(i))
            result = result.mulMod(base, m);
        base = base.mulMod(base, m);
    }
    return result;
}

void
BigUint::ctSwap(BigUint &a, BigUint &b, bool swap, size_t limbs_n)
{
    a.limbs.resize(limbs_n, 0);
    b.limbs.resize(limbs_n, 0);
    // All-ones when swapping, all-zeros otherwise; the loop body is
    // identical either way, so the swap decision never reaches a
    // branch or a distinguishable store pattern.
    const uint32_t mask = 0u - static_cast<uint32_t>(swap);
    for (size_t i = 0; i < limbs_n; ++i) {
        uint32_t diff = (a.limbs[i] ^ b.limbs[i]) & mask;
        a.limbs[i] ^= diff;
        b.limbs[i] ^= diff;
    }
}

BigUint
BigUint::powModCt(OBF_SECRET const BigUint &e, const BigUint &m,
                  size_t ebits) const
{
    fatal_if(m.isZero(), "powModCt with zero modulus");
    fatal_if(OBF_DECLASSIFY(e.bitLength() > ebits,
                            "reveals only that a public width bound "
                            "was violated, then aborts"),
             "powModCt: exponent wider than its public bound");
    if (m == BigUint(1))
        return BigUint();

    // Montgomery ladder with masked swaps. The invariant is
    // r1 = r0 * base (mod m); each iteration performs exactly one
    // multiply and one square whether the exponent bit is 0 or 1, and
    // the trip count is the public bound `ebits`, not e.bitLength(),
    // so leading zero bits of the exponent cost the same as set bits.
    BigUint r0(1);
    BigUint r1 = *this % m;
    // mulMod results are < m; one spare limb covers the swap padding.
    const size_t width = m.limbs.size() + 1;
    bool swap = false;
    for (size_t i = ebits; i-- > 0;) {
        const bool bit = e.bit(i);
        swap = swap != bit;
        ctSwap(r0, r1, swap, width);
        // ctSwap pads both operands to `width` limbs; restore the
        // no-leading-zero invariant compare()/divmod() rely on.
        r0.trim();
        r1.trim();
        swap = bit;
        r1 = r0.mulMod(r1, m);
        r0 = r0.mulMod(r0, m);
    }
    ctSwap(r0, r1, swap, width);
    r0.trim();
    return r0;
}

BigUint
BigUint::gcd(BigUint a, BigUint b)
{
    while (!b.isZero()) {
        BigUint r = a % b;
        a = b;
        b = r;
    }
    return a;
}

BigUint
BigUint::modInverse(const BigUint &a, const BigUint &m)
{
    // Extended Euclid, tracking coefficients with a sign flag since
    // BigUint is unsigned.
    BigUint old_r = a % m, r = m;
    BigUint old_s(1), s(0);
    bool old_s_neg = false, s_neg = false;

    while (!r.isZero()) {
        BigUint q = old_r / r;

        BigUint new_r = old_r - q * r;
        old_r = r;
        r = new_r;

        // new_s = old_s - q * s  (with signs)
        BigUint qs = q * s;
        BigUint new_s;
        bool new_s_neg;
        if (old_s_neg == s_neg) {
            if (old_s >= qs) {
                new_s = old_s - qs;
                new_s_neg = old_s_neg;
            } else {
                new_s = qs - old_s;
                new_s_neg = !old_s_neg;
            }
        } else {
            new_s = old_s + qs;
            new_s_neg = old_s_neg;
        }
        old_s = s;
        old_s_neg = s_neg;
        s = new_s;
        s_neg = new_s_neg;
    }

    panic_if(old_r != BigUint(1), "modInverse: not invertible");
    if (old_s_neg)
        return m - (old_s % m);
    return old_s % m;
}

BigUint
BigUint::randomBelow(const BigUint &bound, Random &rng)
{
    panic_if(bound.isZero(), "randomBelow(0)");
    size_t nbytes = (bound.bitLength() + 7) / 8;
    std::vector<uint8_t> buf(nbytes);
    for (;;) {
        rng.fillBytes(buf.data(), buf.size());
        BigUint candidate = fromBytes(buf.data(), buf.size());
        if (candidate < bound)
            return candidate;
    }
}

BigUint
BigUint::randomBits(size_t bits, Random &rng)
{
    panic_if(bits == 0, "randomBits(0)");
    size_t nbytes = (bits + 7) / 8;
    std::vector<uint8_t> buf(nbytes);
    rng.fillBytes(buf.data(), buf.size());
    // Clear excess high bits, then force the top bit.
    unsigned excess = static_cast<unsigned>(nbytes * 8 - bits);
    buf[0] &= static_cast<uint8_t>(0xff >> excess);
    buf[0] |= static_cast<uint8_t>(0x80 >> excess);
    return fromBytes(buf.data(), buf.size());
}

bool
BigUint::isProbablePrime(const BigUint &n, Random &rng, int rounds)
{
    if (n < BigUint(2))
        return false;
    static const uint64_t small_primes[] = {2, 3, 5, 7, 11, 13, 17, 19,
                                            23, 29, 31, 37};
    for (uint64_t p : small_primes) {
        BigUint bp(p);
        if (n == bp)
            return true;
        if ((n % bp).isZero())
            return false;
    }

    // Write n - 1 = d * 2^r.
    BigUint n_minus_1 = n - BigUint(1);
    BigUint d = n_minus_1;
    size_t r = 0;
    while (!d.isOdd()) {
        d = d >> 1;
        ++r;
    }

    for (int round = 0; round < rounds; ++round) {
        BigUint a =
            BigUint(2) + randomBelow(n - BigUint(4), rng);
        BigUint x = a.powMod(d, n);
        if (x == BigUint(1) || x == n_minus_1)
            continue;
        bool composite = true;
        for (size_t i = 0; i + 1 < r; ++i) {
            x = x.mulMod(x, n);
            if (x == n_minus_1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

BigUint
BigUint::generatePrime(size_t bits, Random &rng)
{
    panic_if(bits < 8, "prime too small");
    for (;;) {
        BigUint candidate = randomBits(bits, rng);
        if (!candidate.isOdd())
            candidate = candidate + BigUint(1);
        if (isProbablePrime(candidate, rng))
            return candidate;
    }
}

uint64_t
BigUint::toU64() const
{
    uint64_t v = 0;
    if (limbs.size() > 1)
        v = static_cast<uint64_t>(limbs[1]) << 32;
    if (!limbs.empty())
        v |= limbs[0];
    return v;
}

} // namespace crypto
} // namespace obfusmem
