/**
 * @file
 * AES-128: byte-oriented FIPS-197 reference path plus the T-table
 * fast path, and the dispatch that can route to the AES-NI hardware
 * path (compiled separately in aes128_aesni.cc). Every table (S-box,
 * inverse S-box, the four fused encryption tables) is generated at
 * compile time, so there is no lazily initialized mutable state
 * anywhere in this translation unit and instances are safe to use
 * from concurrent sweep-runner jobs.
 */

#include "crypto/aes128.hh"

#include "crypto/cpu_features.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace obfusmem {
namespace crypto {

namespace {

constexpr std::array<uint8_t, 256> sbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

constexpr std::array<uint8_t, 256>
makeInvSbox()
{
    std::array<uint8_t, 256> inv{};
    for (int i = 0; i < 256; ++i)
        inv[sbox[i]] = static_cast<uint8_t>(i);
    return inv;
}

constexpr std::array<uint8_t, 256> invSbox = makeInvSbox();

constexpr uint8_t
xtime(uint8_t x)
{
    return static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr uint32_t
rotl32(uint32_t v, int n)
{
    return (v << n) | (v >> (32 - n));
}

/**
 * The four fused encryption tables. State columns are little-endian
 * 32-bit words (byte 0 = row 0), so enc[r][x] is the MixColumns
 * contribution of S-box output sbox[x] landing on row r after
 * ShiftRows: enc[0][x] packs {2s, s, s, 3s} and each subsequent table
 * is the previous one rotated up a byte.
 */
constexpr std::array<std::array<uint32_t, 256>, 4>
makeEncTables()
{
    std::array<std::array<uint32_t, 256>, 4> enc{};
    for (int i = 0; i < 256; ++i) {
        uint32_t s = sbox[i];
        uint32_t s2 = xtime(sbox[i]);
        uint32_t s3 = s2 ^ s;
        uint32_t w = s2 | (s << 8) | (s << 16) | (s3 << 24);
        for (int r = 0; r < 4; ++r) {
            enc[r][i] = w;
            w = rotl32(w, 8);
        }
    }
    return enc;
}

constexpr std::array<std::array<uint32_t, 256>, 4> encTables =
    makeEncTables();

/** GF(2^8) multiplication. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

void
subBytes(uint8_t *s)
{
    for (int i = 0; i < 16; ++i)
        s[i] = sbox[s[i]];
}

void
invSubBytes(uint8_t *s)
{
    for (int i = 0; i < 16; ++i)
        s[i] = invSbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c.
void
shiftRows(uint8_t *s)
{
    uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
        for (int r = 0; r < 4; ++r)
            t[4 * c + r] = s[4 * ((c + r) % 4) + r];
    }
    for (int i = 0; i < 16; ++i)
        s[i] = t[i];
}

void
invShiftRows(uint8_t *s)
{
    uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
        for (int r = 0; r < 4; ++r)
            t[4 * ((c + r) % 4) + r] = s[4 * c + r];
    }
    for (int i = 0; i < 16; ++i)
        s[i] = t[i];
}

void
mixColumns(uint8_t *s)
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = s + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1)
                                       ^ a2 ^ a3);
        col[1] = static_cast<uint8_t>(a0 ^ xtime(a1)
                                       ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<uint8_t>(a0 ^ a1 ^ xtime(a2)
                                       ^ (xtime(a3) ^ a3));
        col[3] = static_cast<uint8_t>((xtime(a0) ^ a0) ^ a1
                                       ^ a2 ^ xtime(a3));
    }
}

void
invMixColumns(uint8_t *s)
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = s + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d)
                 ^ gmul(a3, 0x09);
        col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b)
                 ^ gmul(a3, 0x0d);
        col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e)
                 ^ gmul(a3, 0x0b);
        col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09)
                 ^ gmul(a3, 0x0e);
    }
}

void
addRoundKey(uint8_t *s, const uint8_t *rk)
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

} // namespace

const char *
aesImplName(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Ttable: return "ttable";
      case AesImpl::Reference: return "reference";
      case AesImpl::Aesni: return "aesni";
      case AesImpl::Aesni4: return "aesni4";
      case AesImpl::Vaes: return "vaes";
    }
    return "unknown";
}

bool
Aes128::aesniAvailable()
{
    return detail::aesniCompiledIn() && cpuHasAesni();
}

bool
Aes128::vaesAvailable()
{
    // Sub-lane batches and single blocks route through the AES-NI
    // path, so VAES is only usable when AES-NI is too (every VAES CPU
    // has AES-NI, but a -DOBFUSMEM_DISABLE_AESNI build does not).
    return detail::vaesCompiledIn() && cpuHasVaes512()
           && aesniAvailable();
}

void
Aes128::setImpl(AesImpl impl)
{
    // Step down the lane-width ladder instead of faulting: an
    // unavailable hardware lane degrades to the next narrower one.
    if (impl == AesImpl::Vaes && !vaesAvailable()) {
        warn("VAES requested but ",
             detail::vaesCompiledIn() ? "this CPU does not support it"
                                      : "this build does not include it",
             "; stepping down to ",
             aesniAvailable() ? "AES-NI" : "the T-table path");
        impl = aesniAvailable() ? AesImpl::Aesni : AesImpl::Ttable;
    }
    if ((impl == AesImpl::Aesni || impl == AesImpl::Aesni4)
        && !aesniAvailable()) {
        warn("AES-NI requested but ",
             detail::aesniCompiledIn() ? "this CPU does not support it"
                                       : "this build does not include it",
             "; using the T-table path");
        impl = AesImpl::Ttable;
    }
    implChoice = impl;
}

AesImpl
Aes128::defaultImpl()
{
    static const AesImpl choice = [] {
        auto widest = [] {
            if (vaesAvailable())
                return AesImpl::Vaes;
            return aesniAvailable() ? AesImpl::Aesni : AesImpl::Ttable;
        };
        size_t unset = 5;
        size_t pick = env::choice(
            "OBFUSMEM_AES_IMPL",
            {"vaes", "aesni", "aesni4", "ttable", "reference"}, unset);
        switch (pick) {
          case 0:
            if (vaesAvailable())
                return AesImpl::Vaes;
            warn("OBFUSMEM_AES_IMPL=vaes but VAES is unavailable ",
                 detail::vaesCompiledIn()
                     ? "(CPU lacks the instructions)"
                     : "(disabled in this build)",
                 "; using ", aesniAvailable() ? "aesni" : "ttable");
            return aesniAvailable() ? AesImpl::Aesni : AesImpl::Ttable;
          case 1:
          case 2:
            if (aesniAvailable())
                return pick == 1 ? AesImpl::Aesni : AesImpl::Aesni4;
            warn("OBFUSMEM_AES_IMPL=aesni", pick == 2 ? "4" : "",
                 " but AES-NI is unavailable ",
                 detail::aesniCompiledIn()
                     ? "(CPU lacks the instructions)"
                     : "(disabled in this build)",
                 "; using ttable");
            return AesImpl::Ttable;
          case 3:
            return AesImpl::Ttable;
          case 4:
            return AesImpl::Reference;
          default:
            return widest();
        }
    }();
    return choice;
}

void
Aes128::setKey(OBF_SECRET const Key &key)
{
    // FIPS-197 key expansion for Nk=4, Nr=10.
    OBF_SECRET uint8_t w[176];
    for (int i = 0; i < 16; ++i)
        w[i] = key[i];

    uint8_t rcon = 0x01;
    for (int i = 16; i < 176; i += 4) {
        uint8_t t[4] = {w[i - 4], w[i - 3], w[i - 2], w[i - 1]};
        if (i % 16 == 0) {
            // RotWord + SubWord + Rcon.
            uint8_t tmp = t[0];
            t[0] = static_cast<uint8_t>(sbox[t[1]] ^ rcon);
            t[1] = sbox[t[2]];
            t[2] = sbox[t[3]];
            t[3] = sbox[tmp];
            rcon = xtime(rcon);
        }
        for (int b = 0; b < 4; ++b)
            w[i + b] = w[i - 16 + b] ^ t[b];
    }

    for (int r = 0; r < 11; ++r) {
        for (int b = 0; b < 16; ++b)
            roundKeys[r][b] = w[16 * r + b];
        for (int c = 0; c < 4; ++c)
            roundKeyWords[r][c] = loadLe32(&roundKeys[r][4 * c]);
    }
    keyed = true;
}

Block128
Aes128::encryptReference(const Block128 &plaintext) const
{
    Block128 state = plaintext;
    uint8_t *s = state.data();

    addRoundKey(s, roundKeys[0].data());
    for (int round = 1; round < 10; ++round) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, roundKeys[round].data());
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, roundKeys[10].data());
    return state;
}

Block128
Aes128::encryptTtable(const Block128 &plaintext) const
{
    const auto &T0 = encTables[0];
    const auto &T1 = encTables[1];
    const auto &T2 = encTables[2];
    const auto &T3 = encTables[3];

    uint32_t w0 = loadLe32(plaintext.data()) ^ roundKeyWords[0][0];
    uint32_t w1 = loadLe32(plaintext.data() + 4) ^ roundKeyWords[0][1];
    uint32_t w2 = loadLe32(plaintext.data() + 8) ^ roundKeyWords[0][2];
    uint32_t w3 = loadLe32(plaintext.data() + 12) ^ roundKeyWords[0][3];

    for (int round = 1; round < 10; ++round) {
        const auto &rk = roundKeyWords[round];
        uint32_t n0 = T0[w0 & 0xff] ^ T1[(w1 >> 8) & 0xff]
                      ^ T2[(w2 >> 16) & 0xff] ^ T3[w3 >> 24] ^ rk[0];
        uint32_t n1 = T0[w1 & 0xff] ^ T1[(w2 >> 8) & 0xff]
                      ^ T2[(w3 >> 16) & 0xff] ^ T3[w0 >> 24] ^ rk[1];
        uint32_t n2 = T0[w2 & 0xff] ^ T1[(w3 >> 8) & 0xff]
                      ^ T2[(w0 >> 16) & 0xff] ^ T3[w1 >> 24] ^ rk[2];
        uint32_t n3 = T0[w3 & 0xff] ^ T1[(w0 >> 8) & 0xff]
                      ^ T2[(w1 >> 16) & 0xff] ^ T3[w2 >> 24] ^ rk[3];
        w0 = n0;
        w1 = n1;
        w2 = n2;
        w3 = n3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    const auto &rk = roundKeyWords[10];
    auto last = [](uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
        return static_cast<uint32_t>(sbox[a & 0xff])
               | (static_cast<uint32_t>(sbox[(b >> 8) & 0xff]) << 8)
               | (static_cast<uint32_t>(sbox[(c >> 16) & 0xff]) << 16)
               | (static_cast<uint32_t>(sbox[d >> 24]) << 24);
    };
    uint32_t f0 = last(w0, w1, w2, w3) ^ rk[0];
    uint32_t f1 = last(w1, w2, w3, w0) ^ rk[1];
    uint32_t f2 = last(w2, w3, w0, w1) ^ rk[2];
    uint32_t f3 = last(w3, w0, w1, w2) ^ rk[3];

    Block128 out;
    storeLe32(out.data(), f0);
    storeLe32(out.data() + 4, f1);
    storeLe32(out.data() + 8, f2);
    storeLe32(out.data() + 12, f3);
    return out;
}

Block128
Aes128::encryptBlock(const Block128 &plaintext) const
{
    panic_if(!keyed, "Aes128 used before setKey");
    switch (implChoice) {
      case AesImpl::Aesni:
      case AesImpl::Aesni4:
      case AesImpl::Vaes:
        // The wide lanes only differ on batches; a lone block is an
        // AES-NI round trip for all three.
        return detail::aesniEncryptBlock(roundKeys, plaintext);
      case AesImpl::Ttable:
        return encryptTtable(plaintext);
      case AesImpl::Reference:
        break;
    }
    return encryptReference(plaintext);
}

void
Aes128::encryptBlocks(const Block128 *in, Block128 *out, size_t n) const
{
    panic_if(!keyed, "Aes128 used before setKey");
    switch (implChoice) {
      case AesImpl::Vaes:
        detail::vaesEncryptBlocks(roundKeys, in, out, n);
        return;
      case AesImpl::Aesni:
        detail::aesniEncryptBlocks(roundKeys, in, out, n);
        return;
      case AesImpl::Aesni4:
        detail::aesni4EncryptBlocks(roundKeys, in, out, n);
        return;
      case AesImpl::Ttable:
        for (size_t i = 0; i < n; ++i)
            out[i] = encryptTtable(in[i]);
        return;
      case AesImpl::Reference:
        break;
    }
    for (size_t i = 0; i < n; ++i)
        out[i] = encryptReference(in[i]);
}

Block128
Aes128::decryptBlock(const Block128 &ciphertext) const
{
    panic_if(!keyed, "Aes128 used before setKey");
    Block128 state = ciphertext;
    uint8_t *s = state.data();

    addRoundKey(s, roundKeys[10].data());
    for (int round = 9; round >= 1; --round) {
        invShiftRows(s);
        invSubBytes(s);
        addRoundKey(s, roundKeys[round].data());
        invMixColumns(s);
    }
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, roundKeys[0].data());
    return state;
}

} // namespace crypto
} // namespace obfusmem
