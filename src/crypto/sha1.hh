/**
 * @file
 * SHA-1 message digest (RFC 3174). The paper names SHA-1 as an
 * alternative MAC hash to MD5; we provide it so the MAC engine is
 * pluggable, and it also serves as the measurement hash for the
 * attestation protocol in src/trust.
 */

#ifndef OBFUSMEM_CRYPTO_SHA1_HH
#define OBFUSMEM_CRYPTO_SHA1_HH

#include <array>
#include <cstdint>
#include <string>

#include "util/secret.hh"

namespace obfusmem {
namespace crypto {

/** 160-bit SHA-1 digest. */
using Sha1Digest = std::array<uint8_t, 20>;

/**
 * Incremental SHA-1 context.
 */
class Sha1
{
  public:
    Sha1() { reset(); }

    void reset();
    void update(const uint8_t *data, size_t len);
    Sha1Digest finalize();

    static Sha1Digest digest(const uint8_t *data, size_t len);
    static Sha1Digest digest(const std::string &s);

  private:
    void processBlock(const uint8_t *block);

    /** Secret for the same reason as Md5::state (see md5.hh). */
    OBF_SECRET std::array<uint32_t, 5> state;
    uint64_t totalLen;
    OBF_SECRET std::array<uint8_t, 64> buffer;
    size_t bufferLen;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_SHA1_HH
