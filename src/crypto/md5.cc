/**
 * @file
 * MD5 implementation following RFC 1321.
 */

#include "crypto/md5.hh"

#include <cstring>

namespace obfusmem {
namespace crypto {

namespace {

const uint32_t kTable[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

const int shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

uint32_t
rotl32(uint32_t x, int s)
{
    return (x << s) | (x >> (32 - s));
}

} // namespace

void
Md5::reset()
{
    state = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
    totalLen = 0;
    bufferLen = 0;
}

void
Md5::update(const uint8_t *data, size_t len)
{
    totalLen += len;
    while (len > 0) {
        size_t take = std::min(len, buffer.size() - bufferLen);
        std::memcpy(buffer.data() + bufferLen, data, take);
        bufferLen += take;
        data += take;
        len -= take;
        if (bufferLen == buffer.size()) {
            processBlock(buffer.data());
            bufferLen = 0;
        }
    }
}

Md5Digest
Md5::finalize()
{
    uint64_t bit_len = totalLen * 8;
    const uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    const uint8_t zero = 0x00;
    while (bufferLen != 56)
        update(&zero, 1);

    uint8_t len_le[8];
    for (int i = 0; i < 8; ++i)
        len_le[i] = static_cast<uint8_t>(bit_len >> (8 * i));
    // update() would recount these; append directly.
    std::memcpy(buffer.data() + 56, len_le, 8);
    processBlock(buffer.data());
    bufferLen = 0;

    Md5Digest out;
    for (int w = 0; w < 4; ++w) {
        for (int b = 0; b < 4; ++b)
            out[4 * w + b] = static_cast<uint8_t>(state[w] >> (8 * b));
    }
    return out;
}

void
Md5::processBlock(const uint8_t *block)
{
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
        m[i] = static_cast<uint32_t>(block[4 * i])
               | (static_cast<uint32_t>(block[4 * i + 1]) << 8)
               | (static_cast<uint32_t>(block[4 * i + 2]) << 16)
               | (static_cast<uint32_t>(block[4 * i + 3]) << 24);
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];

    for (int i = 0; i < 64; ++i) {
        uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        uint32_t tmp = d;
        d = c;
        c = b;
        b = b + rotl32(a + f + kTable[i] + m[g], shifts[i]);
        a = tmp;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
}

Md5Digest
Md5::digest(const uint8_t *data, size_t len)
{
    Md5 ctx;
    ctx.update(data, len);
    return ctx.finalize();
}

Md5Digest
Md5::digest(const std::string &s)
{
    return digest(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

} // namespace crypto
} // namespace obfusmem
