/**
 * @file
 * Textbook RSA implementation.
 */

#include "crypto/rsa.hh"

#include "crypto/sha1.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace obfusmem {
namespace crypto {

namespace {

BigUint
hashToInt(const uint8_t *msg, size_t len, const BigUint &modulus)
{
    Sha1Digest d = Sha1::digest(msg, len);
    BigUint h = BigUint::fromBytes(d.data(), d.size());
    return h % modulus;
}

} // namespace

RsaKeyPair
RsaKeyPair::generate(size_t bits, Random &rng)
{
    fatal_if(bits < 64, "RSA modulus too small");
    const BigUint e(65537);

    for (;;) {
        BigUint p = BigUint::generatePrime(bits / 2, rng);
        BigUint q = BigUint::generatePrime(bits - bits / 2, rng);
        if (p == q)
            continue;
        BigUint n = p * q;
        BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
        if (BigUint::gcd(e, phi) != BigUint(1))
            continue;

        RsaKeyPair kp;
        kp.pub = {n, e};
        kp.privateExp = BigUint::modInverse(e, phi);
        return kp;
    }
}

BigUint
RsaKeyPair::sign(const uint8_t *msg, size_t len) const
{
    BigUint h = hashToInt(msg, len, pub.modulus);
    // d < phi(n) < n, so the modulus width is a public bound on the
    // private exponent; the ladder keeps signing time independent of
    // d's bit pattern (verification keeps powMod: e is public).
    return h.powModCt(privateExp, pub.modulus,
                      pub.modulus.bitLength());
}

bool
RsaKeyPair::verify(const RsaPublicKey &key, const uint8_t *msg,
                   size_t len, const BigUint &signature)
{
    BigUint h = hashToInt(msg, len, key.modulus);
    return signature.powMod(key.exponent, key.modulus) == h;
}

} // namespace crypto
} // namespace obfusmem
