/**
 * @file
 * SHA-1 implementation following RFC 3174.
 */

#include "crypto/sha1.hh"

#include <cstring>

namespace obfusmem {
namespace crypto {

namespace {

uint32_t
rotl32(uint32_t x, int s)
{
    return (x << s) | (x >> (32 - s));
}

} // namespace

void
Sha1::reset()
{
    state = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
             0xc3d2e1f0u};
    totalLen = 0;
    bufferLen = 0;
}

void
Sha1::update(const uint8_t *data, size_t len)
{
    totalLen += len;
    while (len > 0) {
        size_t take = std::min(len, buffer.size() - bufferLen);
        std::memcpy(buffer.data() + bufferLen, data, take);
        bufferLen += take;
        data += take;
        len -= take;
        if (bufferLen == buffer.size()) {
            processBlock(buffer.data());
            bufferLen = 0;
        }
    }
}

Sha1Digest
Sha1::finalize()
{
    uint64_t bit_len = totalLen * 8;
    const uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    const uint8_t zero = 0x00;
    while (bufferLen != 56)
        update(&zero, 1);

    // Length is big-endian in SHA-1.
    for (int i = 0; i < 8; ++i)
        buffer[56 + i] = static_cast<uint8_t>(bit_len >> (8 * (7 - i)));
    processBlock(buffer.data());
    bufferLen = 0;

    Sha1Digest out;
    for (int w = 0; w < 5; ++w) {
        for (int b = 0; b < 4; ++b) {
            out[4 * w + b] =
                static_cast<uint8_t>(state[w] >> (8 * (3 - b)));
        }
    }
    return out;
}

void
Sha1::processBlock(const uint8_t *block)
{
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<uint32_t>(block[4 * i]) << 24)
               | (static_cast<uint32_t>(block[4 * i + 1]) << 16)
               | (static_cast<uint32_t>(block[4 * i + 2]) << 8)
               | static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    uint32_t a = state[0], b = state[1], c = state[2];
    uint32_t d = state[3], e = state[4];

    for (int i = 0; i < 80; ++i) {
        uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdc;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6;
        }
        uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = tmp;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
}

Sha1Digest
Sha1::digest(const uint8_t *data, size_t len)
{
    Sha1 ctx;
    ctx.update(data, len);
    return ctx.finalize();
}

Sha1Digest
Sha1::digest(const std::string &s)
{
    return digest(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

} // namespace crypto
} // namespace obfusmem
