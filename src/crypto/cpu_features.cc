/**
 * @file
 * CPUID feature probing.
 */

#include "crypto/cpu_features.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace obfusmem {
namespace crypto {

namespace {

bool
probeAesni()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    return (ecx & (1u << 25)) != 0; // CPUID.1:ECX.AESNI
#else
    return false;
#endif
}

} // namespace

bool
cpuHasAesni()
{
    static const bool has = probeAesni();
    return has;
}

} // namespace crypto
} // namespace obfusmem
