/**
 * @file
 * CPUID feature probing.
 */

#include "crypto/cpu_features.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace obfusmem {
namespace crypto {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/** XCR0 via xgetbv; valid only after checking OSXSAVE. */
uint64_t
readXcr0()
{
    unsigned lo = 0, hi = 0;
    __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    return (static_cast<uint64_t>(hi) << 32) | lo;
}

/** OSXSAVE set and the given XCR0 state-component bits enabled. */
bool
osSavesState(uint64_t xcr0_mask)
{
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    if (!(ecx & (1u << 27))) // OSXSAVE
        return false;
    return (readXcr0() & xcr0_mask) == xcr0_mask;
}

/** XCR0 bits: x87|SSE|AVX (YMM state). */
constexpr uint64_t xcr0Ymm = 0x7;
/** XCR0 bits: YMM plus opmask|ZMM_Hi256|Hi16_ZMM (AVX-512 state). */
constexpr uint64_t xcr0Zmm = 0xe7;

#endif

bool
probeAesni()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    return (ecx & (1u << 25)) != 0; // CPUID.1:ECX.AESNI
#else
    return false;
#endif
}

bool
probeAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    if (!(ebx & (1u << 5))) // CPUID.7.0:EBX.AVX2
        return false;
    return osSavesState(xcr0Ymm);
#else
    return false;
#endif
}

bool
probeAvx512f()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    if (!(ebx & (1u << 16))) // CPUID.7.0:EBX.AVX512F
        return false;
    return osSavesState(xcr0Zmm);
#else
    return false;
#endif
}

bool
probeVaes512()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    if (!(ecx & (1u << 9))) // CPUID.7.0:ECX.VAES
        return false;
    const unsigned need_ebx = (1u << 16)   // AVX512F
                              | (1u << 30) // AVX512BW
                              | (1u << 31); // AVX512VL
    if ((ebx & need_ebx) != need_ebx)
        return false;
    return osSavesState(xcr0Zmm);
#else
    return false;
#endif
}

} // namespace

bool
cpuHasAesni()
{
    static const bool has = probeAesni();
    return has;
}

bool
cpuHasAvx2()
{
    static const bool has = probeAvx2();
    return has;
}

bool
cpuHasAvx512f()
{
    static const bool has = probeAvx512f();
    return has;
}

bool
cpuHasVaes512()
{
    static const bool has = probeVaes512();
    return has;
}

std::string
cpuFeatureSummary()
{
    std::string out;
    auto append = [&out](const char *flag) {
        if (!out.empty())
            out += ',';
        out += flag;
    };
    if (cpuHasAesni())
        append("aesni");
    if (cpuHasAvx2())
        append("avx2");
    if (cpuHasAvx512f())
        append("avx512f");
    if (cpuHasVaes512())
        append("vaes512");
    if (out.empty())
        out = "none";
    return out;
}

} // namespace crypto
} // namespace obfusmem
