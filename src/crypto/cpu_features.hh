/**
 * @file
 * Runtime CPU feature probes for the crypto fast paths.
 *
 * Compile-time support (the binary carries AES-NI code at all) and
 * runtime support (this machine's CPUID advertises the instructions)
 * are separate questions: a binary built with the AES-NI translation
 * unit may land on a CPU without the extension, and the dispatch in
 * Aes128 must then fall back to the T-table path instead of faulting
 * on the first aesenc.
 */

#ifndef OBFUSMEM_CRYPTO_CPU_FEATURES_HH
#define OBFUSMEM_CRYPTO_CPU_FEATURES_HH

namespace obfusmem {
namespace crypto {

/**
 * True when the running CPU advertises the AES instruction set
 * (CPUID leaf 1, ECX bit 25 on x86). Always false on non-x86 hosts.
 * The probe runs once; the latched answer is stable across threads.
 */
bool cpuHasAesni();

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_CPU_FEATURES_HH
