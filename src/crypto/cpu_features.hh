/**
 * @file
 * Runtime CPU feature probes for the crypto fast paths.
 *
 * Compile-time support (the binary carries AES-NI code at all) and
 * runtime support (this machine's CPUID advertises the instructions)
 * are separate questions: a binary built with the AES-NI translation
 * unit may land on a CPU without the extension, and the dispatch in
 * Aes128 must then fall back to the T-table path instead of faulting
 * on the first aesenc. The same split applies to the wider lanes:
 * VAES/AVX-512 (vaes pad generation) and AVX2 (8-lane MD5).
 */

#ifndef OBFUSMEM_CRYPTO_CPU_FEATURES_HH
#define OBFUSMEM_CRYPTO_CPU_FEATURES_HH

#include <string>

namespace obfusmem {
namespace crypto {

/**
 * True when the running CPU advertises the AES instruction set
 * (CPUID leaf 1, ECX bit 25 on x86). Always false on non-x86 hosts.
 * The probe runs once; the latched answer is stable across threads.
 */
bool cpuHasAesni();

/**
 * True when the CPU advertises AVX2 *and* the OS saves the YMM state
 * (OSXSAVE + XCR0). Gates the 8-lane MD5 MAC kernel.
 */
bool cpuHasAvx2();

/**
 * True when the CPU advertises AVX-512F and the OS saves the ZMM and
 * opmask state. Gates the 16-lane MD5 MAC kernel.
 */
bool cpuHasAvx512f();

/**
 * True when the CPU can run the 512-bit VAES pad generator: VAES,
 * AVX-512 F/BW/VL, and ZMM/opmask state enabled in XCR0. Implies
 * nothing about AES-NI; the dispatch checks both.
 */
bool cpuHasVaes512();

/**
 * Comma-separated summary of the probed flags ("aesni,avx2,vaes512"
 * or any subset; "none" when empty). Emitted into benchmark JSONL
 * host-metadata rows so perf baselines are comparable across machines.
 */
std::string cpuFeatureSummary();

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_CPU_FEATURES_HH
