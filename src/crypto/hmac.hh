/**
 * @file
 * HMAC (RFC 2104) over MD5 or SHA-1. The trust-architecture layer uses
 * HMAC for keyed authentication of the DH handshake transcripts; the
 * per-request bus MAC uses the raw hash over (type|address|counter) as
 * described in the paper, since the counter acts as the freshness/keyed
 * element there.
 */

#ifndef OBFUSMEM_CRYPTO_HMAC_HH
#define OBFUSMEM_CRYPTO_HMAC_HH

#include <cstdint>
#include <vector>

#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "util/secret.hh"

namespace obfusmem {
namespace crypto {

/** HMAC-MD5 of msg under key. The tag is secret MAC material. */
OBF_SECRET Md5Digest hmacMd5(OBF_SECRET const uint8_t *key,
                             size_t key_len, const uint8_t *msg,
                             size_t msg_len);

/** HMAC-SHA1 of msg under key. The tag is secret MAC material. */
OBF_SECRET Sha1Digest hmacSha1(OBF_SECRET const uint8_t *key,
                               size_t key_len, const uint8_t *msg,
                               size_t msg_len);

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_HMAC_HH
