/**
 * @file
 * MD5 message digest (RFC 1321).
 *
 * ObfusMem uses MD5 as its lightweight MAC function for communication
 * authentication (paper Sec. 3.5): the attacker cannot mount chosen-text
 * attacks against the MAC because every MAC input includes a fresh
 * counter value and the message itself is encrypted. The paper's
 * synthesized 64-stage pipelined engine figures are captured in
 * Md5EngineParams for the timing model.
 */

#ifndef OBFUSMEM_CRYPTO_MD5_HH
#define OBFUSMEM_CRYPTO_MD5_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/secret.hh"

namespace obfusmem {
namespace crypto {

/** Synthesis figures for the pipelined MD5 engine (paper Sec. 4). */
struct Md5EngineParams
{
    /** Pipeline stages of the public-domain implementation used. */
    static constexpr unsigned pipelineStages = 64;
    /** Power in milliwatts. */
    static constexpr double powerMw = 12.5;
    /** Area in mm^2. */
    static constexpr double areaMm2 = 0.214;
};

/** 128-bit MD5 digest. */
using Md5Digest = std::array<uint8_t, 16>;

/**
 * Incremental MD5 context.
 */
class Md5
{
  public:
    Md5() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb bytes. */
    void update(const uint8_t *data, size_t len);

    /** Finalize and return the digest; context must be reset after. */
    Md5Digest finalize();

    /** One-shot digest of a buffer. */
    static Md5Digest digest(const uint8_t *data, size_t len);

    /** One-shot digest of a string. */
    static Md5Digest digest(const std::string &s);

  private:
    void processBlock(const uint8_t *block);

    /**
     * Hash state and pending input. Secret whenever the absorbed
     * message is (HMAC keys and transcripts, counter-mode session
     * material); tainting the context keeps key-derived digests
     * tracked through the MAC and KDF paths.
     */
    OBF_SECRET std::array<uint32_t, 4> state;
    uint64_t totalLen;
    OBF_SECRET std::array<uint8_t, 64> buffer;
    size_t bufferLen;
};

} // namespace crypto
} // namespace obfusmem

#endif // OBFUSMEM_CRYPTO_MD5_HH
