/**
 * @file
 * AES-CTR implementation.
 */

#include "crypto/ctr_mode.hh"

namespace obfusmem {
namespace crypto {

AesCtr::AesCtr(const Aes128::Key &key, uint64_t nonce)
{
    setKey(key, nonce);
}

void
AesCtr::setKey(const Aes128::Key &key, uint64_t nonce_)
{
    aes.setKey(key);
    nonce = nonce_;
}

Block128
AesCtr::pad(uint64_t counter) const
{
    Block128 iv;
    storeLe64(iv.data(), nonce);
    storeLe64(iv.data() + 8, counter);
    return aes.encryptBlock(iv);
}

uint64_t
AesCtr::applyKeystream(uint8_t *buf, size_t len, uint64_t counter) const
{
    uint64_t used = 0;
    size_t off = 0;
    while (off < len) {
        Block128 p = pad(counter + used);
        ++used;
        size_t n = std::min<size_t>(16, len - off);
        xorInto(buf + off, p.data(), n);
        off += n;
    }
    return used;
}

Block128
MemoryEncryptionIv::pack() const
{
    Block128 iv;
    storeLe64(iv.data(), pageId);
    iv[8] = static_cast<uint8_t>(pageOffset);
    iv[9] = static_cast<uint8_t>(pageOffset >> 8);
    iv[10] = static_cast<uint8_t>(minorCounter);
    iv[11] = static_cast<uint8_t>(minorCounter >> 8);
    // 32 bits of the major counter fit in the remaining bytes; the
    // major counter is per page and bumps only on minor overflow.
    iv[12] = static_cast<uint8_t>(majorCounter);
    iv[13] = static_cast<uint8_t>(majorCounter >> 8);
    iv[14] = static_cast<uint8_t>(majorCounter >> 16);
    iv[15] = static_cast<uint8_t>(majorCounter >> 24);
    return iv;
}

} // namespace crypto
} // namespace obfusmem
