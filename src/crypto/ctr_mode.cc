/**
 * @file
 * AES-CTR implementation.
 */

#include "crypto/ctr_mode.hh"

namespace obfusmem {
namespace crypto {

AesCtr::AesCtr(const Aes128::Key &key, uint64_t nonce)
{
    setKey(key, nonce);
}

void
AesCtr::setKey(const Aes128::Key &key, uint64_t nonce_)
{
    aes.setKey(key);
    nonce = nonce_;
}

Block128
AesCtr::pad(uint64_t counter) const
{
    Block128 iv;
    storeLe64(iv.data(), nonce);
    storeLe64(iv.data() + 8, counter);
    return aes.encryptBlock(iv);
}

void
AesCtr::genPads(uint64_t counter, Block128 *out, size_t n) const
{
    // Build all IVs in the output buffer, then encrypt in place with
    // one batched call (encryptBlocks allows aliasing).
    for (size_t i = 0; i < n; ++i) {
        storeLe64(out[i].data(), nonce);
        storeLe64(out[i].data() + 8, counter + i);
    }
    aes.encryptBlocks(out, out, n);
}

void
AesCtr::padsForIvs(const Block128 *ivs, Block128 *out, size_t n) const
{
    aes.encryptBlocks(ivs, out, n);
}

uint64_t
AesCtr::applyKeystream(uint8_t *buf, size_t len, uint64_t counter) const
{
    constexpr size_t batch = 8;
    uint64_t used = 0;
    size_t off = 0;
    while (off < len) {
        Block128 pads[batch];
        size_t blocks =
            std::min<size_t>(batch, (len - off + 15) / 16);
        genPads(counter + used, pads, blocks);
        for (size_t b = 0; b < blocks; ++b) {
            size_t n = std::min<size_t>(16, len - off);
            xorInto(buf + off, pads[b].data(), n);
            off += n;
            ++used;
        }
    }
    return used;
}

Block128
MemoryEncryptionIv::pack() const
{
    Block128 iv;
    storeLe64(iv.data(), pageId);
    iv[8] = static_cast<uint8_t>(pageOffset);
    iv[9] = static_cast<uint8_t>(pageOffset >> 8);
    iv[10] = static_cast<uint8_t>(minorCounter);
    iv[11] = static_cast<uint8_t>(minorCounter >> 8);
    // 32 bits of the major counter fit in the remaining bytes; the
    // major counter is per page and bumps only on minor overflow.
    iv[12] = static_cast<uint8_t>(majorCounter);
    iv[13] = static_cast<uint8_t>(majorCounter >> 8);
    iv[14] = static_cast<uint8_t>(majorCounter >> 16);
    iv[15] = static_cast<uint8_t>(majorCounter >> 24);
    return iv;
}

} // namespace crypto
} // namespace obfusmem
