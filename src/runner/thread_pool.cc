/**
 * @file
 * ThreadPool implementation.
 */

#include "runner/thread_pool.hh"

#include "util/assert.hh"

namespace obfusmem {
namespace runner {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    cvJob.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    OBF_ASSERT(job, "null job submitted to thread pool");
    {
        std::unique_lock<std::mutex> lock(mtx);
        OBF_ASSERT(!stopping, "submit() after pool shutdown");
        queue.push_back(std::move(job));
    }
    cvJob.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cvIdle.wait(lock,
                [this] { return queue.empty() && inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvJob.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty()) {
                // stopping && empty: drain finished, worker exits.
                return;
            }
            job = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --inFlight;
            if (queue.empty() && inFlight == 0)
                cvIdle.notify_all();
        }
    }
}

WorkerGroup::WorkerGroup(unsigned n)
{
    if (n == 0)
        n = 1;
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

WorkerGroup::~WorkerGroup()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    cvRound.notify_all();
    for (auto &w : workers)
        w.join();
}

void
WorkerGroup::runRound(const std::function<void(unsigned)> &fn)
{
    OBF_ASSERT(fn, "null round function");
    std::unique_lock<std::mutex> lock(mtx);
    OBF_ASSERT(running == 0 && roundFn == nullptr,
               "reentrant WorkerGroup::runRound");
    roundFn = &fn;
    running = size();
    firstError = nullptr;
    ++generation;
    cvRound.notify_all();
    cvDone.wait(lock, [this] { return running == 0; });
    roundFn = nullptr;
    if (firstError)
        std::rethrow_exception(firstError);
}

void
WorkerGroup::workerLoop(unsigned index)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *fn;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvRound.wait(lock, [this, seen] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            fn = roundFn;
        }
        std::exception_ptr err;
        try {
            (*fn)(index);
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mtx);
            if (err && !firstError)
                firstError = err;
            if (--running == 0)
                cvDone.notify_all();
        }
    }
}

} // namespace runner
} // namespace obfusmem
