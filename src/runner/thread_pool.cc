/**
 * @file
 * ThreadPool implementation.
 */

#include "runner/thread_pool.hh"

#include "util/assert.hh"

namespace obfusmem {
namespace runner {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    cvJob.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    OBF_ASSERT(job, "null job submitted to thread pool");
    {
        std::unique_lock<std::mutex> lock(mtx);
        OBF_ASSERT(!stopping, "submit() after pool shutdown");
        queue.push_back(std::move(job));
    }
    cvJob.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cvIdle.wait(lock,
                [this] { return queue.empty() && inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvJob.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty()) {
                // stopping && empty: drain finished, worker exits.
                return;
            }
            job = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --inFlight;
            if (queue.empty() && inFlight == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace runner
} // namespace obfusmem
