/**
 * @file
 * A minimal fixed-size thread pool for running independent simulation
 * jobs. The simulator itself is single-threaded by design (one
 * EventQueue per System); the pool exists to run *many* self-contained
 * Systems concurrently during parameter sweeps, where each job owns
 * its System outright and shares nothing mutable with its siblings.
 */

#ifndef OBFUSMEM_RUNNER_THREAD_POOL_HH
#define OBFUSMEM_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace obfusmem {
namespace runner {

/**
 * Fixed-size worker pool with a FIFO job queue.
 *
 * Jobs are arbitrary callables; submission order is preserved by the
 * queue but completion order is not — callers that need ordered
 * results index into a pre-sized output vector (see
 * parallelIndexMap() in sweep.hh).
 */
class ThreadPool
{
  public:
    /** Spin up @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not be called after wait() returned. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable cvJob;   // workers wait for jobs
    std::condition_variable cvIdle;  // wait() waits for drain
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    size_t inFlight = 0;
    bool stopping = false;
};

/**
 * Persistent round-based worker group — the ThreadPool generalized
 * for shard workers that rendezvous every epoch.
 *
 * ThreadPool's queue+condvar shape is wrong for a sharded simulation
 * kernel: the kernel needs the *same* worker to own the same shard
 * across tens of thousands of epochs (shard state is thread-confined
 * by construction), with a full barrier between epochs. WorkerGroup
 * keeps N workers parked on a generation counter; runRound(fn)
 * publishes fn, wakes everyone, runs fn(worker_index) exactly once
 * per worker, and returns when the last worker finishes. The
 * mutex/condvar handshake doubles as the memory barrier the epoch
 * exchange protocol relies on: everything a worker wrote during
 * round R happens-before everything any worker reads in round R+1.
 */
class WorkerGroup
{
  public:
    /** Spin up @p n persistent workers (at least one). */
    explicit WorkerGroup(unsigned n);

    /** Joins all workers (any round in progress completes first). */
    ~WorkerGroup();

    WorkerGroup(const WorkerGroup &) = delete;
    WorkerGroup &operator=(const WorkerGroup &) = delete;

    /**
     * Run fn(i) on every worker i in [0, size()) and block until all
     * return. The first exception thrown by any worker is rethrown
     * here after the round completes. Must not be called reentrantly.
     */
    void runRound(const std::function<void(unsigned)> &fn);

    unsigned size() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void workerLoop(unsigned index);

    std::mutex mtx;
    std::condition_variable cvRound;  // workers wait for a new round
    std::condition_variable cvDone;   // runRound waits for the join
    const std::function<void(unsigned)> *roundFn = nullptr;
    uint64_t generation = 0;
    unsigned running = 0;
    bool stopping = false;
    std::exception_ptr firstError;
    std::vector<std::thread> workers;
};

} // namespace runner
} // namespace obfusmem

#endif // OBFUSMEM_RUNNER_THREAD_POOL_HH
