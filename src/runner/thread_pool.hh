/**
 * @file
 * A minimal fixed-size thread pool for running independent simulation
 * jobs. The simulator itself is single-threaded by design (one
 * EventQueue per System); the pool exists to run *many* self-contained
 * Systems concurrently during parameter sweeps, where each job owns
 * its System outright and shares nothing mutable with its siblings.
 */

#ifndef OBFUSMEM_RUNNER_THREAD_POOL_HH
#define OBFUSMEM_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace obfusmem {
namespace runner {

/**
 * Fixed-size worker pool with a FIFO job queue.
 *
 * Jobs are arbitrary callables; submission order is preserved by the
 * queue but completion order is not — callers that need ordered
 * results index into a pre-sized output vector (see
 * parallelIndexMap() in sweep.hh).
 */
class ThreadPool
{
  public:
    /** Spin up @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not be called after wait() returned. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable cvJob;   // workers wait for jobs
    std::condition_variable cvIdle;  // wait() waits for drain
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    size_t inFlight = 0;
    bool stopping = false;
};

} // namespace runner
} // namespace obfusmem

#endif // OBFUSMEM_RUNNER_THREAD_POOL_HH
