/**
 * @file
 * Parallel sweep runner: run a batch of independent simulations
 * across a thread pool and collect results in submission order.
 *
 * Determinism contract: every job builds its own self-contained
 * System (own EventQueue, own Random instances seeded from the
 * config), so a sweep produces *bit-identical* results whether it
 * runs serially or on N threads — the pool only changes wall-clock
 * time, never simulated outcomes. This invariant is enforced by
 * tests/test_runner.cc.
 */

#ifndef OBFUSMEM_RUNNER_SWEEP_HH
#define OBFUSMEM_RUNNER_SWEEP_HH

#include <exception>
#include <type_traits>
#include <vector>

#include "runner/thread_pool.hh"
#include "system/system.hh"

namespace obfusmem {
namespace runner {

/**
 * Job count from the OBFUSMEM_BENCH_JOBS environment knob.
 *
 * Unset, empty or 1 selects the serial path (no pool, no threads —
 * the historical behavior). "0" means "one job per hardware thread".
 * The value is read once and cached.
 */
unsigned jobsFromEnv();

/**
 * Apply @p fn to every index in [0, n) using @p jobs worker threads
 * and return the results ordered by index.
 *
 * With jobs <= 1 (or fewer than two items) this degenerates to a
 * plain serial loop on the calling thread. The result type must be
 * default-constructible (the output vector is pre-sized so each job
 * writes its own slot without synchronization). The first exception
 * thrown by any job is rethrown on the calling thread after all jobs
 * finish.
 */
template <typename Fn>
auto
parallelIndexMap(size_t n, unsigned jobs, Fn &&fn)
    -> std::vector<std::decay_t<decltype(fn(size_t{0}))>>
{
    using Result = std::decay_t<decltype(fn(size_t{0}))>;
    std::vector<Result> results(n);

    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }

    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(jobs);
        for (size_t i = 0; i < n; ++i) {
            pool.submit([&fn, &results, &errors, i] {
                try {
                    results[i] = fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (auto &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
    return results;
}

/**
 * Build, run and tear down one System per config, @p jobs at a time,
 * and return the RunResults in config order.
 */
std::vector<System::RunResult>
runSweep(const std::vector<SystemConfig> &configs, unsigned jobs);

/** runSweep() with the job count from OBFUSMEM_BENCH_JOBS. */
inline std::vector<System::RunResult>
runSweep(const std::vector<SystemConfig> &configs)
{
    return runSweep(configs, jobsFromEnv());
}

} // namespace runner
} // namespace obfusmem

#endif // OBFUSMEM_RUNNER_SWEEP_HH
