/**
 * @file
 * Sweep runner implementation.
 */

#include "runner/sweep.hh"

#include "util/env.hh"

namespace obfusmem {
namespace runner {

unsigned
jobsFromEnv()
{
    // 0 means "one job per hardware thread"; huge values are capped
    // (a sweep never has thousands of points). Latched on first use.
    static const unsigned jobs = env::jobs("OBFUSMEM_BENCH_JOBS", 1);
    return jobs;
}

std::vector<System::RunResult>
runSweep(const std::vector<SystemConfig> &configs, unsigned jobs)
{
    return parallelIndexMap(configs.size(), jobs, [&](size_t i) {
        System sys(configs[i]);
        return sys.run();
    });
}

} // namespace runner
} // namespace obfusmem
