/**
 * @file
 * Sweep runner implementation.
 */

#include "runner/sweep.hh"

#include <thread>

#include "util/env.hh"

namespace obfusmem {
namespace runner {

unsigned
jobsFromEnv()
{
    static const unsigned jobs = [] {
        uint64_t parsed = env::u64("OBFUSMEM_BENCH_JOBS", 1);
        if (parsed == 0) {
            // 0 means "one job per hardware thread".
            unsigned hw = std::thread::hardware_concurrency();
            return hw ? hw : 1u;
        }
        // Cap at a sane bound; a sweep never has thousands of points.
        return static_cast<unsigned>(parsed > 256 ? 256 : parsed);
    }();
    return jobs;
}

std::vector<System::RunResult>
runSweep(const std::vector<SystemConfig> &configs, unsigned jobs)
{
    return parallelIndexMap(configs.size(), jobs, [&](size_t i) {
        System sys(configs[i]);
        return sys.run();
    });
}

} // namespace runner
} // namespace obfusmem
