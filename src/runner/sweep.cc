/**
 * @file
 * Sweep runner implementation.
 */

#include "runner/sweep.hh"

#include <cstdlib>
#include <string>
#include <thread>

namespace obfusmem {
namespace runner {

unsigned
jobsFromEnv()
{
    static const unsigned jobs = [] {
        const char *env = std::getenv("OBFUSMEM_BENCH_JOBS");
        if (!env || !*env)
            return 1u;
        unsigned long parsed = 0;
        try {
            parsed = std::stoul(env);
        } catch (...) {
            return 1u;
        }
        if (parsed == 0) {
            unsigned hw = std::thread::hardware_concurrency();
            return hw ? hw : 1u;
        }
        // Cap at a sane bound; a sweep never has thousands of points.
        return static_cast<unsigned>(parsed > 256 ? 256 : parsed);
    }();
    return jobs;
}

std::vector<System::RunResult>
runSweep(const std::vector<SystemConfig> &configs, unsigned jobs)
{
    return parallelIndexMap(configs.size(), jobs, [&](size_t i) {
        System sys(configs[i]);
        return sys.run();
    });
}

} // namespace runner
} // namespace obfusmem
