/**
 * @file
 * TraceAuditor implementation.
 */

#include "check/trace_auditor.hh"

#include <bit>
#include <iterator>
#include <ostream>
#include <sstream>

#include "util/assert.hh"
#include "util/logging.hh"

namespace obfusmem {
namespace check {

const char *
invariantName(Invariant invariant)
{
    switch (invariant) {
      case Invariant::ReadThenWritePairing:
        return "read-then-write-pairing";
      case Invariant::UniformMessageLength:
        return "uniform-message-length";
      case Invariant::PadFreshness: return "pad-freshness";
      case Invariant::CounterMonotonic: return "counter-monotonic";
      case Invariant::CounterSync: return "counter-sync";
      case Invariant::DummyCoverage: return "dummy-coverage";
      case Invariant::EndpointIncident: return "endpoint-incident";
    }
    return "?";
}

std::ostream &
operator<<(std::ostream &os, const Violation &v)
{
    os << "[audit] invariant=" << invariantName(v.invariant)
       << " channel=" << v.channel << " tick=" << v.when;
    if (v.wireAddr != 0)
        os << " wireAddr=0x" << std::hex << v.wireAddr << std::dec;
    return os << " : " << v.detail;
}

TraceAuditor::TraceAuditor(const Params &params_)
    : params(params_), chans(params_.channels)
{
    OBF_ASSERT(params.channels > 0, "auditor needs >= 1 channel");
    OBF_ASSERT(params.bucketTicks > 0, "bucketTicks must be nonzero");
}

void
TraceAuditor::addViolation(Invariant invariant, unsigned channel,
                           Tick when, uint64_t wire_addr,
                           std::string detail)
{
    ++violationCount;
    ++invariantCounts[static_cast<size_t>(invariant)];
    if (params.warnOnline && violationCount == 1) {
        warn("trace audit: first violation: ",
             invariantName(invariant), " on channel ", channel,
             " at tick ", when, ": ", detail);
    }
    if (findings.size() < params.maxRecordedViolations) {
        findings.push_back(Violation{invariant, channel, when,
                                     wire_addr, std::move(detail)});
    }
}

// --- Wire-level checks ---------------------------------------------

void
TraceAuditor::checkPairing(ChannelAudit &ca, const BusSnoop &snoop)
{
    if (params.uniformPackets) {
        // Uniform scheme: every request message carries a full
        // payload, so all of them must classify as writes.
        if (!snoop.wireIsWrite) {
            addViolation(Invariant::ReadThenWritePairing,
                         snoop.channel, snoop.when, snoop.wireAddr,
                         "payload-less request message under the "
                         "uniform-packet scheme");
        }
        return;
    }
    // Split scheme: strict read-then-write alternation per channel.
    if (ca.phase == 0) {
        if (snoop.wireIsWrite) {
            addViolation(Invariant::ReadThenWritePairing,
                         snoop.channel, snoop.when, snoop.wireAddr,
                         "write message without a preceding read "
                         "(unpaired group)");
            return; // stay in phase 0: next read starts a group
        }
        ca.phase = 1;
        return;
    }
    if (!snoop.wireIsWrite) {
        addViolation(Invariant::ReadThenWritePairing, snoop.channel,
                     snoop.when, snoop.wireAddr,
                     "read message while the previous read's paired "
                     "write is still missing");
        return; // treat this read as the new group's first message
    }
    ca.phase = 0;
}

void
TraceAuditor::checkLength(ChannelAudit &ca, const BusSnoop &snoop)
{
    std::optional<uint32_t> *expect = nullptr;
    const char *klass = nullptr;
    if (snoop.dir == BusDir::ToProcessor) {
        expect = &ca.replyBytes;
        klass = "reply";
    } else if (snoop.wireIsWrite) {
        expect = &ca.writeBytes;
        klass = "request-write";
    } else {
        expect = &ca.readBytes;
        klass = "request-read";
    }
    if (!expect->has_value()) {
        *expect = snoop.bytes;
        return;
    }
    if (**expect != snoop.bytes) {
        std::ostringstream oss;
        oss << klass << " message of " << snoop.bytes
            << " bytes on a channel whose " << klass
            << " messages are " << **expect << " bytes";
        addViolation(Invariant::UniformMessageLength, snoop.channel,
                     snoop.when, snoop.wireAddr, oss.str());
    }
}

void
TraceAuditor::checkFreshness(ChannelAudit &ca, const BusSnoop &snoop)
{
    auto &seen = snoop.dir == BusDir::ToMemory ? ca.toMemWireAddrs
                                               : ca.toProcWireAddrs;
    if (!seen.insert(snoop.wireAddr).second) {
        addViolation(Invariant::PadFreshness, snoop.channel,
                     snoop.when, snoop.wireAddr,
                     "wire header bits repeat on this channel "
                     "(reused pad or plaintext address)");
    }
}

void
TraceAuditor::rolloverBucket(uint64_t new_bucket)
{
    if (currentBucketMask != 0) {
        ++activeBuckets;
        if (std::popcount(currentBucketMask) == 1
            && params.channels > 1) {
            ++soloBuckets;
        }
    }
    currentBucketMask = 0;
    currentBucket = new_bucket;
}

void
TraceAuditor::observe(const BusSnoop &snoop)
{
    if (snoop.channel >= chans.size())
        return; // foreign probe traffic; not ours to judge
    ++messages;
    ChannelAudit &ca = chans[snoop.channel];

    uint64_t bucket = snoop.when / params.bucketTicks;
    if (bucket != currentBucket)
        rolloverBucket(bucket);
    if (snoop.dir == BusDir::ToMemory)
        currentBucketMask |= 1u << snoop.channel;

    if (snoop.dir == BusDir::ToMemory)
        checkPairing(ca, snoop);
    checkLength(ca, snoop);
    checkFreshness(ca, snoop);
}

// --- Endpoint-level checks -----------------------------------------

void
TraceAuditor::StreamLedger::add(uint64_t first, uint64_t count)
{
    padsConsumed += count;
    uint64_t end = first + count;
    if (!runs.empty() && runs.back().second == first)
        runs.back().second = end;
    else
        runs.emplace_back(first, end);
    if (end > nextFree)
        nextFree = end;
}

bool
TraceAuditor::StreamLedger::sameCoverage(
    const StreamLedger &other) const
{
    return padsConsumed == other.padsConsumed && runs == other.runs;
}

void
TraceAuditor::onPadUse(Tick when, unsigned channel,
                       EndpointSide side, CounterStream stream,
                       uint64_t first, uint64_t count)
{
    OBF_DCHECK(count > 0, "empty pad run reported");
    if (channel >= chans.size())
        return;
    StreamLedger &ledger =
        chans[channel].ledgers[static_cast<unsigned>(side)]
                              [static_cast<unsigned>(stream)];
    if (first < ledger.nextFree) {
        std::ostringstream oss;
        oss << endpointSideName(side) << " side consumed "
            << counterStreamName(stream) << " pads [" << first << ", "
            << first + count << ") but the stream cursor is already "
            << "at " << ledger.nextFree
            << " (pad reuse / counter rollback)";
        addViolation(Invariant::CounterMonotonic, channel, when, 0,
                     oss.str());
    }
    ledger.add(first, count);
}

void
TraceAuditor::onIncident(Tick when, unsigned channel,
                         EndpointSide side, ChannelIncident incident)
{
    if (channel >= chans.size())
        return;

    // A completed re-key restarts the reporting side's data-plane
    // counters at zero under the new epoch key. Reset that side's
    // ledgers so post-epoch pad reports don't trip CounterMonotonic;
    // both endpoints report their own completion, so the CounterSync
    // comparison still runs over matching (post-epoch) coverage.
    if (incident == ChannelIncident::RekeyCompleted) {
        auto s = static_cast<unsigned>(side);
        chans[channel].ledgers[s][0] = StreamLedger{};
        chans[channel].ledgers[s][1] = StreamLedger{};
    }

    bool recoverable = incident != ChannelIncident::ChannelQuarantined;
    if (params.tolerateRecoverableIncidents && recoverable) {
        ++tolerated;
        return;
    }
    std::ostringstream oss;
    oss << endpointSideName(side) << " side rejected a message: "
        << channelIncidentName(incident);
    addViolation(Invariant::EndpointIncident, channel, when, 0,
                 oss.str());
}

// --- Post-run pass --------------------------------------------------

uint64_t
TraceAuditor::violationCountFor(Invariant invariant) const
{
    return invariantCounts[static_cast<size_t>(invariant)];
}

double
TraceAuditor::soloBucketFraction() const
{
    uint64_t active = activeBuckets;
    uint64_t solo = soloBuckets;
    if (currentBucketMask != 0) {
        ++active;
        if (std::popcount(currentBucketMask) == 1
            && params.channels > 1) {
            ++solo;
        }
    }
    if (active == 0)
        return 0.0;
    return static_cast<double>(solo) / static_cast<double>(active);
}

bool
TraceAuditor::finalize()
{
    if (finalized)
        return ok();
    finalized = true;

    constexpr auto proc =
        static_cast<unsigned>(EndpointSide::Processor);
    constexpr auto mem = static_cast<unsigned>(EndpointSide::Memory);
    constexpr auto req = static_cast<unsigned>(CounterStream::Request);
    constexpr auto resp =
        static_cast<unsigned>(CounterStream::Response);

    for (unsigned c = 0; c < chans.size(); ++c) {
        const ChannelAudit &ca = chans[c];
        // Skip channels no endpoint reported on (plain path runs).
        if (ca.ledgers[proc][req].padsConsumed == 0
            && ca.ledgers[mem][req].padsConsumed == 0) {
            continue;
        }
        if (!ca.ledgers[proc][req].sameCoverage(
                ca.ledgers[mem][req])) {
            std::ostringstream oss;
            oss << "request-stream counters diverged: proc consumed "
                << ca.ledgers[proc][req].padsConsumed
                << " pads (cursor "
                << ca.ledgers[proc][req].nextFree
                << "), mem consumed "
                << ca.ledgers[mem][req].padsConsumed << " (cursor "
                << ca.ledgers[mem][req].nextFree << ")";
            addViolation(Invariant::CounterSync, c, 0, 0, oss.str());
        }
        if (!ca.ledgers[mem][resp].sameCoverage(
                ca.ledgers[proc][resp])) {
            std::ostringstream oss;
            oss << "response-stream counters diverged: mem consumed "
                << ca.ledgers[mem][resp].padsConsumed
                << " pads (cursor "
                << ca.ledgers[mem][resp].nextFree
                << "), proc consumed "
                << ca.ledgers[proc][resp].padsConsumed << " (cursor "
                << ca.ledgers[proc][resp].nextFree << ")";
            addViolation(Invariant::CounterSync, c, 0, 0, oss.str());
        }
    }

    if (params.channelScheme != ChannelScheme::None
        && params.channels > 1) {
        double solo = soloBucketFraction();
        if (solo > params.maxSoloBucketFraction) {
            std::ostringstream oss;
            oss << "inter-channel correlation visible: "
                << (solo * 100.0)
                << "% of active buckets had exactly one busy channel"
                << " (tolerance "
                << (params.maxSoloBucketFraction * 100.0) << "%)";
            addViolation(Invariant::DummyCoverage, 0, 0, 0,
                         oss.str());
        }
    }
    return ok();
}

bool
TraceAuditor::report(std::ostream &os) const
{
    os << "trace-audit: " << messages << " messages on "
       << params.channels << " channel(s), "
       << (params.uniformPackets ? "uniform" : "split")
       << " scheme\n";
    for (const Violation &v : findings)
        os << "  " << v << "\n";
    if (violationCount > findings.size()) {
        os << "  ... " << (violationCount - findings.size())
           << " further violations not recorded\n";
    }
    for (size_t i = 0; i < std::size(invariantCounts); ++i) {
        if (invariantCounts[i] == 0)
            continue;
        os << "  total "
           << invariantName(static_cast<Invariant>(i)) << ": "
           << invariantCounts[i] << "\n";
    }
    if (tolerated > 0) {
        os << "  recoverable incidents tolerated: " << tolerated
           << "\n";
    }
    os << "trace-audit: "
       << (ok() ? "PASS (all invariants upheld)"
                : "FAIL (" + std::to_string(violationCount)
                      + " violations)")
       << "\n";
    return ok();
}

} // namespace check
} // namespace obfusmem
