/**
 * @file
 * obfus_audit - run a workload with the obliviousness trace auditor
 * attached and exit non-zero if any security invariant was violated.
 *
 * This is the CI entry point for the machine-checked security
 * argument: `obfus_audit` must pass on the obfuscated configurations
 * and must FAIL on the plain path and on injected attacks (drop,
 * replay, tamper), proving the auditor actually detects leakage. See
 * `.github/workflows/ci.yml` for the expected-pass/expected-fail
 * matrix.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "system/system.hh"

using namespace obfusmem;

namespace {

/**
 * Wire-trace dumper: one line per snooped bus message, exactly the
 * attacker's view. CI diffs a recovery-on trace against a recovery-off
 * trace of the same faultless run to prove the recovery layer is
 * wire-invisible until a fault actually occurs.
 */
class TraceDumper : public BusProbe
{
  public:
    explicit TraceDumper(const std::string &path) : out(path)
    {
        if (!out) {
            std::cerr << "cannot open trace file: " << path << "\n";
            std::exit(2);
        }
    }

    void observe(const BusSnoop &snoop) override
    {
        out << snoop.when << ' '
            << (snoop.dir == BusDir::ToMemory ? "toMem" : "toProc")
            << ' ' << snoop.channel << ' ' << snoop.bytes << ' '
            << (snoop.wireIsWrite ? 'W' : 'R') << ' ' << std::hex
            << snoop.wireAddr << std::dec << '\n';
    }

  private:
    std::ofstream out;
};

void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --mode M          obfusmem-auth (default) | obfusmem |\n"
        << "                    encryption | unprotected\n"
        << "  --channels N      memory channels (default 2)\n"
        << "  --cores N         cores (default 2)\n"
        << "  --instr N         instructions per core (default 20000)\n"
        << "  --benchmark NAME  workload profile (default milc)\n"
        << "  --uniform         uniform-packet wire scheme\n"
        << "  --scheme S        inter-channel scheme: none|unopt|opt\n"
        << "  --inject-drop     drop a request group in flight\n"
        << "  --inject-replay   lose a reply (replayed-stream model)\n"
        << "  --inject-tamper   bit-flip request headers in flight\n"
        << "  --no-recovery     disable the link recovery protocol\n"
        << "  --dump-trace F    write the snooped wire trace to F\n"
        << "  --stats           dump full statistics to stderr\n"
        << "fault injection: OBFUSMEM_FAULT_{SEED,DROP,CORRUPT,DELAY,\n"
        << "  DUP,DELAY_NS} env knobs feed a seeded bus fault "
           "injector\n"
        << "exit status: 0 if every invariant held, 1 otherwise\n";
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.mode = ProtectionMode::ObfusMemAuth;
    cfg.channels = 2;
    cfg.cores = 2;
    cfg.instrPerCore = 20000;
    cfg.benchmark = "milc";
    cfg.attachAuditor = true;

    cfg.faults = FaultInjector::Params::fromEnv();

    bool inject_drop = false;
    bool inject_replay = false;
    bool inject_tamper = false;
    bool dump_stats = false;
    std::string trace_path;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage(argv[0]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mode") {
            const std::string m = next_arg(i);
            if (m == "obfusmem-auth") {
                cfg.mode = ProtectionMode::ObfusMemAuth;
            } else if (m == "obfusmem") {
                cfg.mode = ProtectionMode::ObfusMem;
            } else if (m == "encryption") {
                cfg.mode = ProtectionMode::EncryptionOnly;
            } else if (m == "unprotected") {
                cfg.mode = ProtectionMode::Unprotected;
            } else {
                std::cerr << "unknown mode: " << m << "\n";
                return 2;
            }
        } else if (arg == "--channels") {
            cfg.channels =
                static_cast<unsigned>(std::stoul(next_arg(i)));
        } else if (arg == "--cores") {
            cfg.cores =
                static_cast<unsigned>(std::stoul(next_arg(i)));
        } else if (arg == "--instr") {
            cfg.instrPerCore = std::stoull(next_arg(i));
        } else if (arg == "--benchmark") {
            cfg.benchmark = next_arg(i);
        } else if (arg == "--uniform") {
            cfg.obfusmem.uniformPackets = true;
        } else if (arg == "--scheme") {
            const std::string s = next_arg(i);
            if (s == "none") {
                cfg.obfusmem.channelScheme = ChannelScheme::None;
            } else if (s == "unopt") {
                cfg.obfusmem.channelScheme = ChannelScheme::Unopt;
            } else if (s == "opt") {
                cfg.obfusmem.channelScheme = ChannelScheme::Opt;
            } else {
                std::cerr << "unknown scheme: " << s << "\n";
                return 2;
            }
        } else if (arg == "--inject-drop") {
            inject_drop = true;
        } else if (arg == "--inject-replay") {
            inject_replay = true;
        } else if (arg == "--inject-tamper") {
            inject_tamper = true;
        } else if (arg == "--no-recovery") {
            cfg.obfusmem.recovery.enabled = false;
        } else if (arg == "--dump-trace") {
            trace_path = next_arg(i);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }

    const bool obfus_mode = cfg.mode == ProtectionMode::ObfusMem
                            || cfg.mode == ProtectionMode::ObfusMemAuth;
    if ((inject_drop || inject_replay || inject_tamper)
        && !obfus_mode) {
        std::cerr << "injection requires an obfusmem mode\n";
        return 2;
    }

    System sys(cfg);

    std::unique_ptr<TraceDumper> dumper;
    if (!trace_path.empty()) {
        dumper = std::make_unique<TraceDumper>(trace_path);
        for (auto &bus : sys.channelBuses())
            bus->attachProbe(dumper.get());
    }

    if (inject_drop) {
        // An attacker deleting one request group: the memory side's
        // counters run ahead and every later message is garbage.
        sys.memSides()[0]->skewRequestCounter(6);
    }
    if (inject_replay) {
        // One reply lost/replayed: the processor decrypts subsequent
        // replies with the wrong pads.
        sys.procSide()->skewResponseCounter(0, 5);
    }
    if (inject_tamper) {
        // Man-in-the-middle on channel 0: flip one ciphertext header
        // bit on every request message.
        ObfusMemMemSide *side = sys.memSides()[0].get();
        sys.procSide()->setRequestTarget(0,
            [side](WireMessage &&msg) {
                msg.cipherHeader[0] ^= 0x01;
                side->receiveMessage(std::move(msg));
            });
    }

    if (inject_drop || inject_replay || inject_tamper) {
        // Drive traffic by hand: an injected fault kills the channel
        // cryptographically, so victim loads never complete and
        // run()'s drain check would (correctly) panic.
        DataBlock block{};
        for (uint64_t i = 0; i < 8; ++i) {
            block[0] = static_cast<uint8_t>(i);
            sys.timedStore(0, 0x40000 + i * 64, block, [](Tick) {});
        }
        sys.eventQueue().run();
        for (uint64_t i = 0; i < 8; ++i)
            sys.timedLoad(0, 0x80000000ull + i * 64, [](Tick) {});
        sys.eventQueue().run();
    } else {
        sys.run();
    }

    check::TraceAuditor *auditor = sys.auditor();
    auditor->finalize();
    if (dump_stats)
        sys.dumpStats(std::cerr);
    std::cout << "mode=" << protectionModeName(cfg.mode)
              << " channels=" << cfg.channels << "\n";
    return auditor->report(std::cout) ? 0 : 1;
}
