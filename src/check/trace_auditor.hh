/**
 * @file
 * Obliviousness trace auditor.
 *
 * ObfusMem's security argument is an invariant over the bus trace
 * (paper Observations 1-3 and Sec. 3.5): every channel must show
 * indistinguishable read-then-write request groups, all messages of a
 * class must be equal-length ciphertext, per-channel counters must be
 * strictly monotonic and synchronized between the processor and
 * memory endpoints, no pad may ever be consumed twice, and under the
 * UNOPT/OPT inter-channel schemes no channel may carry traffic alone.
 * Membuster-style off-chip attacks recover address bits and access
 * timing the moment any of these silently break.
 *
 * The TraceAuditor machine-checks all of them. It taps the exposed
 * wires as a BusProbe (exactly the attacker's vantage point, so a
 * pass means the *observable* trace is clean) and receives trusted
 * endpoint reports through the AuditHook interface (so counter and
 * pad discipline are checked against what the controllers actually
 * burned). Checks run online as messages cross the bus; finalize()
 * runs the post-run pass (counter synchronization, dummy coverage)
 * and report() renders a structured, CI-greppable diagnostic with a
 * boolean verdict suitable for a non-zero process exit.
 */

#ifndef OBFUSMEM_CHECK_TRACE_AUDITOR_HH
#define OBFUSMEM_CHECK_TRACE_AUDITOR_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mem/channel_bus.hh"
#include "obfusmem/audit_hook.hh"
#include "obfusmem/params.hh"

namespace obfusmem {
namespace check {

/** The machine-checked security invariants. */
enum class Invariant
{
    /**
     * Split scheme: to-memory traffic on each channel is a strict
     * alternation of a payload-less read message and a payload-
     * carrying write message (one request group). Uniform scheme:
     * every request message carries a full payload.
     */
    ReadThenWritePairing,
    /** Every message of a wire class has one fixed size. */
    UniformMessageLength,
    /**
     * Wire proxy for pad freshness: the snooped (ciphertext) header
     * bits never repeat on a channel+direction. A repeat means a
     * reused pad or plaintext on the wires.
     */
    PadFreshness,
    /**
     * Endpoint counter streams advance strictly monotonically; an
     * overlap is a pad consumed twice.
     */
    CounterMonotonic,
    /**
     * Both endpoints of a channel consumed exactly the same counter
     * values per stream (paper Sec. 3.5 synchronization).
     */
    CounterSync,
    /**
     * Under UNOPT/OPT, no more than the configured fraction of active
     * time buckets may show exactly one busy channel.
     */
    DummyCoverage,
    /** A trusted endpoint rejected a message (desync / MAC / tag). */
    EndpointIncident,
};

/** Stable, greppable invariant name. */
const char *invariantName(Invariant invariant);

/** One audit finding, with enough context to locate the packet. */
struct Violation
{
    Invariant invariant;
    unsigned channel;
    /** Simulated tick of the offending event (0 for post-run). */
    Tick when;
    /** Wire address bits of the offending packet (0 if n/a). */
    uint64_t wireAddr;
    std::string detail;
};

std::ostream &operator<<(std::ostream &os, const Violation &v);

/**
 * Online + post-run verifier of the obliviousness invariants.
 */
class TraceAuditor : public BusProbe, public AuditHook
{
  public:
    struct Params
    {
        unsigned channels = 1;
        /** Wire discipline expected on the trace (paper Sec. 3.3/7). */
        bool uniformPackets = false;
        /** Inter-channel scheme the trace claims to implement. */
        ChannelScheme channelScheme = ChannelScheme::Opt;
        /** Time bucket for inter-channel coverage analysis. */
        Tick bucketTicks = 200 * tickPerNs;
        /**
         * Tolerated fraction of active buckets with a single busy
         * channel (run head/tail effects); above it, DummyCoverage
         * fires.
         */
        double maxSoloBucketFraction = 0.05;
        /** Violations recorded verbatim; the rest are counted. */
        size_t maxRecordedViolations = 64;
        /** warn() at the first violation while the run progresses. */
        bool warnOnline = true;
        /**
         * Fault-tolerant runs: endpoint incidents that the recovery
         * protocol handles in-band (desync, MAC mismatch, discarded
         * frames, resyncs, re-keys) are tallied but not violations —
         * under injected faults they are the system *working*. A
         * quarantine still always fires EndpointIncident: it means
         * recovery gave up. The structural wire invariants are never
         * relaxed.
         */
        bool tolerateRecoverableIncidents = false;
    };

    explicit TraceAuditor(const Params &params);

    // --- BusProbe: the attacker's vantage point ----------------------
    void observe(const BusSnoop &snoop) override;

    // --- AuditHook: trusted endpoint reports -------------------------
    void onPadUse(Tick when, unsigned channel, EndpointSide side,
                  CounterStream stream, uint64_t first,
                  uint64_t count) override;
    void onIncident(Tick when, unsigned channel, EndpointSide side,
                    ChannelIncident incident) override;

    /**
     * Post-run pass: counter synchronization across endpoints and
     * inter-channel dummy coverage. Idempotent.
     *
     * @return true when the whole trace upheld every invariant.
     */
    bool finalize();

    /** No violation so far (call after finalize() for the verdict). */
    bool ok() const { return violationCount == 0; }

    /** Recorded findings (capped at maxRecordedViolations). */
    const std::vector<Violation> &violations() const
    {
        return findings;
    }

    /** Total violations including ones beyond the recording cap. */
    uint64_t totalViolations() const { return violationCount; }

    /** Violations of one specific invariant (not subject to the cap). */
    uint64_t violationCountFor(Invariant invariant) const;

    /** Messages audited from the wire tap. */
    uint64_t messagesAudited() const { return messages; }

    /** Endpoint incidents tolerated as recoverable (fault runs). */
    uint64_t toleratedIncidents() const { return tolerated; }

    /** Fraction of active buckets with exactly one busy channel. */
    double soloBucketFraction() const;

    /**
     * Render a structured report.
     * @return ok(), so `return auditor.report(std::cerr) ? 0 : 1;`
     *         is the whole CI exit protocol.
     */
    bool report(std::ostream &os) const;

  private:
    /** Coverage ledger of one (channel, side, stream). */
    struct StreamLedger
    {
        /** Lowest counter value never consumed (monotonic cursor). */
        uint64_t nextFree = 0;
        uint64_t padsConsumed = 0;
        /** Merged [first, end) runs, in consumption order. */
        std::vector<std::pair<uint64_t, uint64_t>> runs;

        void add(uint64_t first, uint64_t count);
        bool sameCoverage(const StreamLedger &other) const;
    };

    struct ChannelAudit
    {
        /** Split-scheme group phase: 0 expects read, 1 write. */
        unsigned phase = 0;
        std::unordered_set<uint64_t> toMemWireAddrs;
        std::unordered_set<uint64_t> toProcWireAddrs;
        /** Established wire sizes per message class. */
        std::optional<uint32_t> readBytes;
        std::optional<uint32_t> writeBytes;
        std::optional<uint32_t> replyBytes;
        /** [side][stream] pad ledgers. */
        StreamLedger ledgers[2][2];
    };

    void addViolation(Invariant invariant, unsigned channel,
                      Tick when, uint64_t wire_addr,
                      std::string detail);
    void checkPairing(ChannelAudit &ca, const BusSnoop &snoop);
    void checkLength(ChannelAudit &ca, const BusSnoop &snoop);
    void checkFreshness(ChannelAudit &ca, const BusSnoop &snoop);
    void rolloverBucket(uint64_t new_bucket);

    Params params;
    std::vector<ChannelAudit> chans;
    std::vector<Violation> findings;
    uint64_t violationCount = 0;
    /** Per-invariant tallies, indexed by the Invariant enum. */
    uint64_t invariantCounts[8] = {};
    uint64_t messages = 0;
    uint64_t tolerated = 0;

    uint64_t currentBucket = 0;
    uint32_t currentBucketMask = 0;
    uint64_t activeBuckets = 0;
    uint64_t soloBuckets = 0;
    bool finalized = false;
};

} // namespace check
} // namespace obfusmem

#endif // OBFUSMEM_CHECK_TRACE_AUDITOR_HH
