/**
 * @file
 * PadPrefetcher / IvPadMemo implementation.
 */

#include "secure/pad_prefetcher.hh"

#include <algorithm>

#include "util/assert.hh"

namespace obfusmem {

void
PadPrefetchStats::regStats(statistics::Group &g)
{
    g.addScalar("padPrefetchHits", &hits,
                "pad groups served from the prefetch ring");
    g.addScalar("padPrefetchMisses", &misses,
                "pad groups generated on demand");
    g.addScalar("padPrefetchRefills", &refills,
                "batched ring refill passes");
    g.addScalar("padPrefetchInvalidations", &invalidations,
                "rings dropped on counter skew");
    g.addScalar("padsPrefetched", &padsPrefetched,
                "pads generated ahead of their use");
}

void
PadPrefetcher::configure(const crypto::AesCtr &cipher_,
                         size_t pads_per_group, size_t depth_groups,
                         PadPrefetchStats *stats_)
{
    OBF_ASSERT(pads_per_group > 0, "empty pad group");
    cipher = &cipher_;
    groupSize = pads_per_group;
    depth = depth_groups;
    stats = stats_;
    ring.assign(depth * groupSize, crypto::Block128{});
    head = 0;
    cached = 0;
    refillPending = false;
}

void
PadPrefetcher::take(uint64_t counter, crypto::Block128 *out)
{
    if (!enabled()) {
        cipher->genPads(counter, out, groupSize);
        return;
    }
    if (cached > 0 && counter == headCounter) {
        std::copy_n(&ring[head * groupSize], groupSize, out);
        head = (head + 1) % depth;
        headCounter += groupSize;
        --cached;
        if (stats)
            ++stats->hits;
        return;
    }
    // First use, or the consumer's counter moved under us: generate
    // this group directly and reposition the (now empty) window right
    // behind it so the next refill runs ahead again.
    if (stats)
        ++stats->misses;
    cached = 0;
    head = 0;
    headCounter = counter + groupSize;
    cipher->genPads(counter, out, groupSize);
}

bool
PadPrefetcher::shouldScheduleRefill()
{
    if (!enabled() || refillPending || cached == depth)
        return false;
    refillPending = true;
    return true;
}

void
PadPrefetcher::refill()
{
    refillPending = false;
    if (!enabled() || cached == depth)
        return;
    if (cached == 0) {
        // Empty ring (startup or post-skew): headCounter already
        // points at the next group the consumer will request.
        head = 0;
    }
    // The empty tail is contiguous in counter space; it wraps the
    // ring at most once, so at most two batched AES calls fill it.
    size_t want = depth - cached;
    uint64_t ctr = headCounter + cached * groupSize;
    size_t slot = (head + cached) % depth;
    size_t first = std::min(want, depth - slot);
    cipher->genPads(ctr, &ring[slot * groupSize], first * groupSize);
    if (want > first) {
        cipher->genPads(ctr + first * groupSize, ring.data(),
                        (want - first) * groupSize);
    }
    cached = depth;
    if (stats) {
        ++stats->refills;
        stats->padsPrefetched += static_cast<double>(want * groupSize);
    }
}

void
PadPrefetcher::invalidate()
{
    if (cached > 0 && stats)
        ++stats->invalidations;
    cached = 0;
    head = 0;
}

void
IvPadMemo::configure(size_t entries)
{
    if (entries == 0) {
        table.clear();
        mask = 0;
        return;
    }
    size_t size = 1;
    while (size < entries)
        size <<= 1;
    table.assign(size, Entry{});
    mask = size - 1;
}

void
IvPadMemo::regStats(statistics::Group &g)
{
    g.addScalar("padMemoHits", &hitCount,
                "memory-encryption pad sets reused from the memo");
    g.addScalar("padMemoMisses", &missCount,
                "memory-encryption pad sets computed");
}

size_t
IvPadMemo::indexOf(const crypto::Block128 &iv) const
{
    uint64_t h = crypto::loadLe64(iv.data()) * 0x9e3779b97f4a7c15ull
                 ^ crypto::loadLe64(iv.data() + 8);
    h ^= h >> 29;
    return static_cast<size_t>(h) & mask;
}

bool
IvPadMemo::lookup(const crypto::Block128 &iv, crypto::Block128 out[4])
{
    if (table.empty()) {
        ++missCount;
        return false;
    }
    const Entry &e = table[indexOf(iv)];
    if (!e.valid || e.iv != iv) {
        ++missCount;
        return false;
    }
    ++hitCount;
    std::copy_n(e.pads.data(), 4, out);
    return true;
}

void
IvPadMemo::insert(const crypto::Block128 &iv,
                  const crypto::Block128 pads[4])
{
    if (table.empty())
        return;
    Entry &e = table[indexOf(iv)];
    e.iv = iv;
    std::copy_n(pads, 4, e.pads.data());
    e.valid = true;
}

} // namespace obfusmem
