/**
 * @file
 * Sparse Merkle tree implementation.
 */

#include "secure/merkle.hh"

#include "crypto/bytes.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace obfusmem {

MerkleTree::MerkleTree(uint64_t num_leaves, unsigned arity_,
                       const Digest &default_leaf)
    : arity(arity_)
{
    fatal_if(num_leaves == 0, "empty Merkle tree");
    fatal_if(arity < 2, "Merkle arity must be >= 2");

    // Round the leaf count up to a full tree.
    leaves = 1;
    numLevels = 1;
    while (leaves < num_leaves) {
        leaves *= arity;
        ++numLevels;
    }

    levelNodes.resize(numLevels);

    // Default digests bottom-up from the untouched-leaf digest.
    defaults.resize(numLevels);
    defaults[0] = default_leaf;
    for (unsigned level = 1; level < numLevels; ++level) {
        crypto::Md5 ctx;
        for (unsigned i = 0; i < arity; ++i) {
            ctx.update(defaults[level - 1].data(),
                       defaults[level - 1].size());
        }
        defaults[level] = ctx.finalize();
    }
}

const MerkleTree::Digest &
MerkleTree::defaultDigest(unsigned level) const
{
    return defaults[level];
}

MerkleTree::Digest
MerkleTree::nodeDigest(unsigned level, uint64_t index) const
{
    const auto &nodes = levelNodes[level];
    auto it = nodes.find(index);
    return it != nodes.end() ? it->second : defaultDigest(level);
}

MerkleTree::Digest
MerkleTree::hashChildren(unsigned child_level,
                         uint64_t first_child) const
{
    crypto::Md5 ctx;
    for (unsigned i = 0; i < arity; ++i) {
        Digest d = nodeDigest(child_level, first_child + i);
        ctx.update(d.data(), d.size());
    }
    return ctx.finalize();
}

void
MerkleTree::update(uint64_t leaf, const Digest &leaf_digest)
{
    panic_if(leaf >= leaves, "leaf index out of range");
    levelNodes[0][leaf] = leaf_digest;

    uint64_t index = leaf;
    for (unsigned level = 1; level < numLevels; ++level) {
        uint64_t parent = index / arity;
        levelNodes[level][parent] =
            hashChildren(level - 1, parent * arity);
        index = parent;
    }
}

bool
MerkleTree::verify(uint64_t leaf, const Digest &leaf_digest) const
{
    panic_if(leaf >= leaves, "leaf index out of range");
    // Digest comparisons on the verification path are constant-time:
    // the attacker controls memory contents and could otherwise probe
    // a match byte by byte through timing.
    if (!crypto::ctEqual(nodeDigest(0, leaf), leaf_digest))
        return false;

    // Recompute the path and compare against the stored interior
    // nodes (which an attacker with memory access could also have
    // modified; the root is the trust anchor held on chip).
    uint64_t index = leaf;
    Digest current = leaf_digest;
    for (unsigned level = 1; level < numLevels; ++level) {
        uint64_t parent = index / arity;
        uint64_t first_child = parent * arity;
        crypto::Md5 ctx;
        for (unsigned i = 0; i < arity; ++i) {
            if (first_child + i == index) {
                ctx.update(current.data(), current.size());
            } else {
                Digest d = nodeDigest(level - 1, first_child + i);
                ctx.update(d.data(), d.size());
            }
        }
        current = ctx.finalize();
        if (!crypto::ctEqual(current, nodeDigest(level, parent)))
            return false;
        index = parent;
    }
    return true;
}

MerkleTree::Digest
MerkleTree::root() const
{
    return nodeDigest(numLevels - 1, 0);
}

void
MerkleTree::tamperLeaf(uint64_t leaf)
{
    panic_if(leaf >= leaves, "leaf index out of range");
    Digest d = nodeDigest(0, leaf);
    d[0] ^= 0xff;
    // Write the corrupted digest WITHOUT recomputing the path: this is
    // the attacker's modification, not a legitimate update.
    levelNodes[0][leaf] = d;
}

} // namespace obfusmem
