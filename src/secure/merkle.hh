/**
 * @file
 * Merkle (hash) tree for memory integrity verification.
 *
 * The paper's baseline secure processor protects memory contents with
 * Merkle-tree integrity verification [43]; ObfusMem additionally
 * authenticates the bus. Following the Bonsai Merkle Tree idea, the
 * tree here covers the *encryption counters* — data itself is
 * implicitly protected because any data tamper decrypts to garbage
 * under the counter-mode pad and is caught by higher-level checks.
 *
 * The tree is sparse: untouched subtrees keep well-known default
 * digests, so an 8 GB memory does not require materializing millions
 * of nodes.
 */

#ifndef OBFUSMEM_SECURE_MERKLE_HH
#define OBFUSMEM_SECURE_MERKLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/md5.hh"

namespace obfusmem {

/**
 * Sparse Merkle tree with a configurable arity.
 */
class MerkleTree
{
  public:
    using Digest = crypto::Md5Digest;

    /**
     * @param num_leaves Number of leaf slots (rounded up internally).
     * @param arity Children per node (default 4: four 16 B digests fit
     *              one 64 B memory block).
     * @param default_leaf Digest of an untouched leaf (e.g. the hash
     *        of an all-zero counter block), so fresh leaves verify.
     */
    explicit MerkleTree(uint64_t num_leaves, unsigned arity = 4,
                        const Digest &default_leaf = Digest{});

    /** Recompute the path after a leaf value changes. */
    void update(uint64_t leaf, const Digest &leaf_digest);

    /**
     * Verify that a claimed leaf digest is consistent with the root.
     *
     * @return true if the path from this leaf hashes to the root.
     */
    bool verify(uint64_t leaf, const Digest &leaf_digest) const;

    /** The current root digest. */
    Digest root() const;

    /** Number of levels (leaf level inclusive, root exclusive). */
    unsigned levels() const { return numLevels; }

    uint64_t leafCount() const { return leaves; }

    /**
     * Corrupt a stored leaf digest (test hook modelling an attacker
     * overwriting counter storage).
     */
    void tamperLeaf(uint64_t leaf);

  private:
    Digest nodeDigest(unsigned level, uint64_t index) const;
    Digest hashChildren(unsigned child_level, uint64_t first_child)
        const;
    const Digest &defaultDigest(unsigned level) const;

    uint64_t leaves;
    unsigned arity;
    unsigned numLevels;

    /** levelNodes[l] maps node index -> digest; level 0 = leaves. */
    std::vector<std::unordered_map<uint64_t, Digest>> levelNodes;
    /** Default digest of an untouched node per level. */
    std::vector<Digest> defaults;
};

} // namespace obfusmem

#endif // OBFUSMEM_SECURE_MERKLE_HH
