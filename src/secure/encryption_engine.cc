/**
 * @file
 * MemoryEncryptionEngine implementation.
 */

#include "secure/encryption_engine.hh"

#include <algorithm>

#include "util/assert.hh"
#include "util/logging.hh"

namespace obfusmem {

MemoryEncryptionEngine::MemoryEncryptionEngine(
    const std::string &name, EventQueue &eq, statistics::Group *parent,
    const EncryptionParams &params_, MemSink &inner_,
    uint64_t data_capacity, uint64_t counter_region_base,
    uint64_t bmt_region_base, const crypto::Aes128::Key &key)
    : SimObject(name, eq, parent), params(params_), inner(inner_),
      dataCapacity(data_capacity),
      counterRegionBase(counter_region_base),
      bmtRegionBase(bmt_region_base), padSource(key, 0),
      tree(data_capacity / params_.pageBytes, 4,
           freshPageDigest(params_.pageBytes)),
      counterCache(CacheParams{params_.counterCacheBytes,
                               params_.counterCacheAssoc,
                               params_.counterCacheLatency}),
      bmtCache(CacheParams{params_.bmtCacheBytes, params_.bmtCacheAssoc,
                           params_.counterCacheLatency})
{
    // Pack interior Merkle levels back to back in the BMT region.
    bmtLevelStart.resize(tree.levels() + 1, 0);
    uint64_t nodes_at_level = tree.leafCount();
    uint64_t offset = 0;
    for (unsigned level = 1; level <= tree.levels(); ++level) {
        nodes_at_level = (nodes_at_level + 3) / 4;
        bmtLevelStart[level] = offset;
        offset += nodes_at_level;
    }

    stats().addScalar("ctrHits", &ctrHits, "counter cache hits");
    stats().addScalar("ctrMisses", &ctrMisses, "counter cache misses");
    stats().addScalar("ctrWritebacks", &ctrWritebacks,
                      "dirty counter blocks written back");
    stats().addScalar("bmtFetches", &bmtFetches,
                      "Merkle node fetches from memory");
    stats().addScalar("bmtWritebacks", &bmtWritebacks,
                      "dirty Merkle nodes written back");
    stats().addScalar("integrityViolations", &integrityViolations,
                      "Merkle verification failures");
    stats().addScalar("blocksEncrypted", &blocksEncrypted,
                      "data blocks encrypted on the write path");
    stats().addScalar("blocksDecrypted", &blocksDecrypted,
                      "data blocks decrypted on the read path");
    stats().addScalar("forwardedReads", &forwardedReads,
                      "reads served from an in-flight write");
    padMemo.configure(params.padMemoEntries);
    padMemo.regStats(stats());
}

MemoryEncryptionEngine::PageCounters &
MemoryEncryptionEngine::countersFor(uint64_t page)
{
    auto it = counters.find(page);
    if (it == counters.end()) {
        PageCounters fresh;
        fresh.minors.assign(params.pageBytes / blockBytes, 0);
        it = counters.emplace(page, std::move(fresh)).first;
    }
    return it->second;
}

const MemoryEncryptionEngine::PageCounters *
MemoryEncryptionEngine::countersForConst(uint64_t page) const
{
    auto it = counters.find(page);
    return it == counters.end() ? nullptr : &it->second;
}

void
MemoryEncryptionEngine::padsFor(uint64_t addr, const PageCounters &ctrs,
                                crypto::Block128 out[4]) const
{
    unsigned block_idx = blockIndexOf(addr);
    OBF_DCHECK(block_idx < ctrs.minors.size(),
               "block index ", block_idx, " outside page counters");
    crypto::MemoryEncryptionIv iv;
    iv.pageId = pageOf(addr);
    iv.pageOffset = block_idx;
    iv.minorCounter = ctrs.minors[block_idx];
    iv.majorCounter = ctrs.major;
    crypto::Block128 base = iv.pack();
    if (padMemo.lookup(base, out))
        return;
    for (unsigned i = 0; i < 4; ++i) {
        out[i] = base;
        // Sub-block index occupies a byte the IV layout leaves free.
        out[i][9] ^= static_cast<uint8_t>(i << 6);
        out[i][10] ^= static_cast<uint8_t>(i);
    }
    // One batched pass over the four sub-block IVs (in place).
    padSource.padsForIvs(out, out, 4);
    padMemo.insert(base, out);
}

DataBlock
MemoryEncryptionEngine::applyPads(uint64_t addr,
                                  const PageCounters &ctrs,
                                  const DataBlock &in) const
{
    crypto::Block128 pads[4];
    padsFor(addr, ctrs, pads);
    DataBlock out = in;
    for (unsigned i = 0; i < 4; ++i)
        crypto::xorInto(out.data() + 16 * i, pads[i].data(), 16);
    return out;
}

crypto::Md5Digest
MemoryEncryptionEngine::freshPageDigest(uint64_t page_bytes)
{
    crypto::Md5 ctx;
    uint8_t buf[8];
    crypto::storeLe64(buf, 0);
    ctx.update(buf, 8);
    uint8_t zeros[4] = {0, 0, 0, 0};
    for (uint64_t i = 0; i < page_bytes / blockBytes; ++i)
        ctx.update(zeros, 4);
    return ctx.finalize();
}

crypto::Md5Digest
MemoryEncryptionEngine::counterDigest(uint64_t page) const
{
    const PageCounters *ctrs = countersForConst(page);
    crypto::Md5 ctx;
    uint8_t buf[8];
    uint64_t major = ctrs ? ctrs->major : 0;
    crypto::storeLe64(buf, major);
    ctx.update(buf, 8);
    if (ctrs) {
        for (uint32_t minor : ctrs->minors) {
            crypto::storeLe64(buf, minor);
            ctx.update(buf, 4);
        }
    } else {
        // Untouched page: all-zero minors.
        uint8_t zeros[4] = {0, 0, 0, 0};
        for (uint64_t i = 0; i < params.pageBytes / blockBytes; ++i)
            ctx.update(zeros, 4);
    }
    return ctx.finalize();
}

void
MemoryEncryptionEngine::bmtVerify(uint64_t page, TickCont k)
{
    if (!params.integrity) {
        k(curTick());
        return;
    }

    // Functional check: the fetched counter block must be consistent
    // with the tree (the root is the on-chip trust anchor).
    if (!tree.verify(page, counterDigest(page)))
        ++integrityViolations;

    // Traffic model: walk up the interior nodes until a cached
    // (trusted) ancestor is found; each miss fetches one node block.
    auto walk = std::make_shared<BmtWalk>();
    walk->level = 1;
    walk->index = page / 4;
    walk->k = std::move(k);
    bmtWalkStep(std::move(walk));
}

void
MemoryEncryptionEngine::bmtWalkStep(std::shared_ptr<BmtWalk> walk)
{
    if (walk->level >= tree.levels()) {
        // Reached the root, which is held on chip.
        walk->k(curTick());
        return;
    }
    uint64_t node_addr = bmtNodeAddr(walk->level, walk->index);
    if (bmtCache.find(node_addr)) {
        // A cached ancestor is trusted; the walk terminates here.
        walk->k(curTick());
        return;
    }
    ++bmtFetches;
    MemPacket pkt;
    pkt.id = nextPktId++;
    pkt.cmd = MemCmd::Read;
    pkt.addr = node_addr;
    pkt.issueTick = curTick();
    inner.access(std::move(pkt),
        [this, walk = std::move(walk), node_addr](MemPacket &&)
            mutable {
            auto victim = bmtCache.insert(node_addr, DataBlock{},
                                          false, false);
            if (victim.valid && victim.dirty) {
                ++bmtWritebacks;
                MemPacket wb;
                wb.id = nextPktId++;
                wb.cmd = MemCmd::Write;
                wb.addr = victim.addr;
                wb.issueTick = curTick();
                inner.access(std::move(wb), [](MemPacket &&) {});
            }
            walk->level += 1;
            walk->index /= 4;
            bmtWalkStep(std::move(walk));
        });
}

void
MemoryEncryptionEngine::bmtUpdate(uint64_t page, Tick when)
{
    if (!params.integrity)
        return;
    tree.update(page, counterDigest(page));

    // Dirty the interior path nodes in the BMT cache; evicted dirty
    // nodes become memory writes.
    uint64_t index = page / 4;
    for (unsigned level = 1; level < tree.levels(); ++level) {
        uint64_t node_addr = bmtNodeAddr(level, index);
        auto victim = bmtCache.insert(node_addr, DataBlock{}, true,
                                      false);
        if (victim.valid && victim.dirty) {
            ++bmtWritebacks;
            MemPacket wb;
            wb.id = nextPktId++;
            wb.cmd = MemCmd::Write;
            wb.addr = victim.addr;
            wb.issueTick = std::max(when, curTick());
            inner.access(std::move(wb), [](MemPacket &&) {});
        }
        index /= 4;
    }
}

void
MemoryEncryptionEngine::writebackCounter(uint64_t ctr_block_addr,
                                         Tick when)
{
    ++ctrWritebacks;
    MemPacket wb;
    wb.id = nextPktId++;
    wb.cmd = MemCmd::Write;
    wb.addr = ctr_block_addr;
    wb.issueTick = std::max(when, curTick());
    inner.access(std::move(wb), [](MemPacket &&) {});
    bmtUpdate((ctr_block_addr - counterRegionBase) / blockBytes, when);
}

void
MemoryEncryptionEngine::withCounter(uint64_t page, TickCont k)
{
    uint64_t ctr_addr = counterBlockAddr(page);
    Tick cache_lat = params.counterCacheLatency * params.corePeriod;

    if (counterCache.find(ctr_addr)) {
        ++ctrHits;
        k(curTick() + cache_lat);
        return;
    }

    auto pending = pendingCounterFetches.find(ctr_addr);
    if (pending != pendingCounterFetches.end()) {
        pending->second.push_back(std::move(k));
        return;
    }

    ++ctrMisses;
    pendingCounterFetches[ctr_addr].push_back(std::move(k));

    MemPacket pkt;
    pkt.id = nextPktId++;
    pkt.cmd = MemCmd::Read;
    pkt.addr = ctr_addr;
    pkt.issueTick = curTick();
    inner.access(std::move(pkt),
        [this, ctr_addr, page](MemPacket &&) {
            // Verification proceeds in the background (speculative
            // use, as in Bonsai Merkle trees): the fetched counter is
            // usable immediately, while the node fetches still cost
            // memory bandwidth and tampering is still flagged.
            bmtVerify(page, [](Tick) {});

            Tick ready = curTick();
            auto victim = counterCache.insert(ctr_addr, DataBlock{},
                                              false, false);
            if (victim.valid && victim.dirty)
                writebackCounter(victim.addr, ready);
            auto waiters = std::move(pendingCounterFetches[ctr_addr]);
            pendingCounterFetches.erase(ctr_addr);
            for (auto &waiter : waiters)
                waiter(ready);
        });
}

void
MemoryEncryptionEngine::access(MemPacket pkt, PacketCallback cb)
{
    panic_if(pkt.addr >= dataCapacity,
             "encryption engine received a non-data address");

    uint64_t page = pageOf(pkt.addr);

    if (pkt.isWrite()) {
        InflightWrite &inflight = inflightWrites[pkt.addr];
        inflight.plaintext = pkt.data;
        ++inflight.count;
        // Bump the minor counter, encrypt and send the write down.
        withCounter(page,
            [this, pkt = std::move(pkt), cb = std::move(cb),
             page](Tick ready) mutable {
                PageCounters &ctrs = countersFor(page);
                unsigned idx = blockIndexOf(pkt.addr);
                ++ctrs.minors[idx];
                panic_if(ctrs.minors[idx] == 0,
                         "minor counter overflow; page re-encryption "
                         "not modelled");
                if (auto *line =
                        counterCache.find(counterBlockAddr(page))) {
                    line->dirty = true;
                }
                ++blocksEncrypted;
                pkt.data = applyPads(pkt.addr, ctrs, pkt.data);
                Tick send = std::max(ready + params.xorLatency,
                                     curTick());
                eventQueue().schedule(send,
                    [this, pkt = std::move(pkt),
                     cb = std::move(cb)]() mutable {
                        uint64_t addr = pkt.addr;
                        inner.access(std::move(pkt),
                            [this, addr, cb = std::move(cb)](
                                MemPacket &&resp) mutable {
                                auto it = inflightWrites.find(addr);
                                if (it != inflightWrites.end()
                                    && --it->second.count == 0) {
                                    inflightWrites.erase(it);
                                }
                                cb(std::move(resp));
                            });
                    });
            });
        return;
    }

    // A read racing an in-flight write is served from the write's
    // plaintext: memory may still hold the old ciphertext while the
    // counter has already advanced.
    if (auto it = inflightWrites.find(pkt.addr);
        it != inflightWrites.end()) {
        pkt.data = it->second.plaintext;
        ++blocksDecrypted;
        ++forwardedReads;
        // Timing: a real controller would still fetch from memory (or
        // its write queue); charge a typical queue-forward latency so
        // this correctness path is not a performance fast-path.
        Tick done = curTick() + params.xorLatency
                    + params.forwardLatency;
        eventQueue().schedule(done,
            [pkt = std::move(pkt), cb = std::move(cb)]() mutable {
                cb(std::move(pkt));
            });
        return;
    }

    // Read: fetch data and counter in parallel; decrypt when both the
    // ciphertext and the pad are available.
    struct Join
    {
        bool dataDone = false;
        bool padDone = false;
        Tick dataTick = 0;
        Tick padTick = 0;
        MemPacket pkt;
        PacketCallback cb;
    };
    auto join = std::make_shared<Join>();
    join->cb = std::move(cb);

    auto finish = [this, join, page]() {
        if (!join->dataDone || !join->padDone)
            return;
        Tick done = std::max(join->dataTick, join->padTick)
                    + params.xorLatency;
        ++blocksDecrypted;
        PageCounters &ctrs = countersFor(page);
        join->pkt.data = applyPads(join->pkt.addr, ctrs,
                                   join->pkt.data);
        Tick fire = std::max(done, curTick());
        eventQueue().schedule(fire, [join]() {
            join->cb(std::move(join->pkt));
        });
    };

    MemPacket req = std::move(pkt);
    withCounter(page, [this, join, finish](Tick ready) {
        join->padTick = ready + params.aesPadLatency;
        join->padDone = true;
        finish();
    });

    inner.access(std::move(req),
        [this, join, finish](MemPacket &&resp) {
            join->pkt = std::move(resp);
            join->dataTick = curTick();
            join->dataDone = true;
            finish();
        });
}

DataBlock
MemoryEncryptionEngine::debugDecrypt(uint64_t addr,
                                     const DataBlock &ciphertext) const
{
    uint64_t page = pageOf(addr);
    const PageCounters *ctrs = countersForConst(page);
    if (!ctrs) {
        PageCounters fresh;
        fresh.minors.assign(params.pageBytes / blockBytes, 0);
        return applyPads(addr, fresh, ciphertext);
    }
    return applyPads(addr, *ctrs, ciphertext);
}

DataBlock
MemoryEncryptionEngine::debugEncrypt(uint64_t addr,
                                     const DataBlock &plaintext) const
{
    // Counter-mode: encrypt and decrypt are the same XOR.
    return debugDecrypt(addr, plaintext);
}

void
MemoryEncryptionEngine::tamperCounter(uint64_t addr)
{
    PageCounters &ctrs = countersFor(pageOf(addr));
    ctrs.minors[blockIndexOf(addr)] ^= 0x1;
    // Deliberately no tree.update(): this models an attacker, so the
    // next verification of this page must fail.
}

} // namespace obfusmem
