/**
 * @file
 * Counter-ahead pad prefetching (paper Observation 4 / Sec. 3.2).
 *
 * Counter-mode pads are pure functions of (key, counter), and both
 * endpoints know every future counter value, so the pads a channel
 * will consume next can be generated before the messages that need
 * them exist. The hardware engine exploits this with its 24-stage
 * pipeline; this host-side analogue keeps a ring of pre-generated
 * pad groups per counter stream, refilled in large batches from
 * zero-delay "idle tick" events so the batched AES path (AES-NI
 * 8-wide, or the T-table loop) is fed full pipelines instead of
 * 5-6 block dribbles in the middle of the protocol.
 *
 * Correctness is by construction: a prefetched pad is byte-identical
 * to one generated on demand, so wire traffic cannot change with the
 * prefetch depth - only host wall time does. Counter skew (the
 * tamper/desync model) invalidates the ring so a desynchronized
 * endpoint decrypts - and fails - exactly as it would without
 * prefetching.
 */

#ifndef OBFUSMEM_SECURE_PAD_PREFETCHER_HH
#define OBFUSMEM_SECURE_PAD_PREFETCHER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "util/env.hh"
#include "util/secret.hh"
#include "util/stats.hh"

namespace obfusmem {

/**
 * Process-wide default prefetch depth in pad groups, read once from
 * OBFUSMEM_PAD_PREFETCH (0 disables prefetching; the traffic on the
 * wire is identical either way).
 */
inline unsigned
defaultPadPrefetchDepth()
{
    static const unsigned depth =
        static_cast<unsigned>(env::u64("OBFUSMEM_PAD_PREFETCH", 8));
    return depth;
}

/**
 * Counters for one controller's prefetchers (tx and rx streams share
 * a struct). Registered into the owning SimObject's stats group.
 */
struct PadPrefetchStats
{
    statistics::Scalar hits, misses, refills, invalidations;
    statistics::Scalar padsPrefetched;

    void regStats(statistics::Group &g);
};

/**
 * A ring of pre-generated pad groups for one counter stream.
 *
 * A "group" is the fixed run of consecutive counter values one
 * protocol unit consumes: six for a request group, five for a read
 * reply. The ring always holds whole groups, contiguous in counter
 * space, starting at the next counter the consumer will ask for.
 */
class PadPrefetcher
{
  public:
    PadPrefetcher() = default;

    /**
     * @param cipher The stream's AES-CTR keystream (must outlive us).
     * @param pads_per_group Counter values per protocol unit.
     * @param depth_groups Ring capacity in groups; 0 disables.
     * @param stats Owner-registered counters (may be shared).
     */
    void configure(const crypto::AesCtr &cipher, size_t pads_per_group,
                   size_t depth_groups, PadPrefetchStats *stats);

    bool enabled() const { return depth != 0; }

    /**
     * Produce the group of pads at `counter` into `out`
     * (pads_per_group blocks). Serves from the ring when `counter` is
     * the expected head; any other counter (first use, or a consumer
     * whose counter was skewed underneath us) is a miss: the group is
     * generated directly and the ring repositions after it.
     */
    void take(uint64_t counter, OBF_SECRET crypto::Block128 *out);

    /**
     * True when a refill is worth scheduling, marking one pending so
     * back-to-back groups in the same tick coalesce into one batch.
     * The caller owns the event plumbing (a zero-delay event that
     * touches no simulated state).
     */
    bool shouldScheduleRefill();

    /** Top the ring back up to `depth` groups ahead, in batch. */
    void refill();

    /**
     * Drop every cached group. Called when the stream's counter is
     * skewed (drop/replay modelling): the cached pads were generated
     * for counters the consumer will no longer ask for in sequence,
     * and desync detection must see exactly the on-demand behavior.
     */
    void invalidate();

  private:
    const crypto::AesCtr *cipher = nullptr;
    size_t groupSize = 0;
    size_t depth = 0;
    /** depth * groupSize pads; group g lives at [g*groupSize, ...). */
    OBF_SECRET std::vector<crypto::Block128> ring;
    /** Ring slot (in groups) of the oldest cached group. */
    size_t head = 0;
    /** Number of valid groups starting at `head`. */
    size_t cached = 0;
    /** Counter of the group at `head` (valid when cached > 0). */
    uint64_t headCounter = 0;
    bool refillPending = false;
    PadPrefetchStats *stats = nullptr;
};

/**
 * A direct-mapped memo of memory-encryption pads, keyed by the base
 * IV (page id, offset, major/minor counter - see MemoryEncryptionIv).
 * The four sub-block pads are a pure function of that IV, so between
 * counter bumps (i.e. between writes to a block) repeated reads reuse
 * the AES work. Like the prefetcher, bit-identical by construction.
 */
class IvPadMemo
{
  public:
    /** @param entries Table size, rounded up to a power of two; 0
     *         disables the memo (every lookup misses). */
    void configure(size_t entries);

    void regStats(statistics::Group &g);

    /** Copy the memoized pads for `iv` into `out[4]` on a hit. */
    bool lookup(const crypto::Block128 &iv,
                OBF_SECRET crypto::Block128 out[4]);

    /** Record freshly computed pads for `iv`. */
    void insert(const crypto::Block128 &iv,
                OBF_SECRET const crypto::Block128 pads[4]);

  private:
    struct Entry
    {
        crypto::Block128 iv{};
        std::array<crypto::Block128, 4> pads{};
        bool valid = false;
    };

    size_t indexOf(const crypto::Block128 &iv) const;

    std::vector<Entry> table;
    size_t mask = 0;
    statistics::Scalar hitCount, missCount;
};

} // namespace obfusmem

#endif // OBFUSMEM_SECURE_PAD_PREFETCHER_HH
