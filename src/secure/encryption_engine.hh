/**
 * @file
 * Counter-mode memory encryption (paper Sec. 2.4), the baseline
 * protection that every secure configuration includes.
 *
 * Data blocks sent to memory are XORed with AES pads derived from a
 * per-page major counter and per-block minor counter. Counters live in
 * memory, cached on chip in the 256 KB counter cache of Table 2;
 * counter-cache misses generate real extra memory reads, dirty
 * counter evictions generate writes, and counter blocks are protected
 * by a Bonsai-style Merkle tree whose node fetches also show up as
 * memory traffic. Pad generation is overlapped with the data fetch,
 * leaving roughly the XOR on the critical path, as in the paper.
 */

#ifndef OBFUSMEM_SECURE_ENCRYPTION_ENGINE_HH
#define OBFUSMEM_SECURE_ENCRYPTION_ENGINE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cpu/cache_hierarchy.hh"
#include "crypto/ctr_mode.hh"
#include "mem/packet.hh"
#include "secure/merkle.hh"
#include "secure/pad_prefetcher.hh"
#include "sim/inline_function.hh"
#include "sim/sim_object.hh"
#include "util/secret.hh"

namespace obfusmem {

/** Parameters of the memory-encryption engine. */
struct EncryptionParams
{
    /** Counter cache: 256 KB, 8-way, 5-cycle (Table 2). */
    uint64_t counterCacheBytes = 256 * 1024;
    unsigned counterCacheAssoc = 8;
    Cycles counterCacheLatency = 5;
    Tick corePeriod = 500;

    /**
     * Pad-generation latency of the processor-side AES pipeline (24
     * stages at the 2 GHz core clock). Small enough that pad
     * generation overlaps the data fetch, leaving only the XOR on the
     * critical path, as the paper requires (Sec. 2.4).
     */
    Tick aesPadLatency = 24 * 500;
    /** XOR of pad and data. */
    Tick xorLatency = 1000;

    /**
     * Latency charged when a read is served from an in-flight write
     * (write-queue forwarding at the memory controller).
     */
    Tick forwardLatency = 40 * tickPerNs;

    /**
     * Enable the Bonsai Merkle tree over counters (functional
     * verification plus node-fetch traffic). Off by default in the
     * performance configurations: the paper's 2.2% memory-encryption
     * overhead does not include integrity traffic, treating
     * verification as speculative/amortized. The integrity ablation
     * bench turns this on.
     */
    bool integrity = false;
    uint64_t bmtCacheBytes = 64 * 1024;
    unsigned bmtCacheAssoc = 8;

    uint64_t pageBytes = 4096;

    /**
     * IV-keyed pad memo entries (0 disables). Pads are pure functions
     * of the block's IV, so the memo reuses AES work across repeated
     * reads of a block between counter bumps without any visible
     * effect on ciphertexts. Follows the pad-prefetch knob so
     * OBFUSMEM_PAD_PREFETCH=0 yields a fully on-demand build.
     */
    unsigned padMemoEntries = defaultPadPrefetchDepth() ? 256u : 0u;
};

/**
 * The encryption engine wraps the path to memory: plaintext above,
 * ciphertext below.
 */
class MemoryEncryptionEngine : public SimObject, public MemSink
{
  public:
    /**
     * @param inner Downstream path (bus adapters / obfuscation).
     * @param data_capacity Size of the protected data region,
     *        starting at address 0.
     * @param counter_region_base Address where counter blocks live.
     * @param bmt_region_base Address where Merkle nodes live.
     * @param key The processor's memory-encryption key.
     */
    MemoryEncryptionEngine(const std::string &name, EventQueue &eq,
                           statistics::Group *parent,
                           const EncryptionParams &params,
                           MemSink &inner, uint64_t data_capacity,
                           uint64_t counter_region_base,
                           uint64_t bmt_region_base,
                           OBF_SECRET const crypto::Aes128::Key &key);

    void access(MemPacket pkt, PacketCallback cb) override;

    /** Decrypt a stored ciphertext block under the current counters. */
    DataBlock debugDecrypt(uint64_t addr,
                           const DataBlock &ciphertext) const;

    /** Encrypt a plaintext block under the current counters. */
    DataBlock debugEncrypt(uint64_t addr,
                           const DataBlock &plaintext) const;

    /**
     * Test hook: corrupt the stored counter for a block without
     * updating the Merkle tree, modelling an attacker flipping bits
     * in counter storage.
     */
    void tamperCounter(uint64_t addr);

    uint64_t integrityViolationCount() const
    {
        return static_cast<uint64_t>(integrityViolations.value());
    }

  private:
    struct PageCounters
    {
        uint64_t major = 0;
        std::vector<uint32_t> minors;
    };

    uint64_t pageOf(uint64_t addr) const
    {
        return addr / params.pageBytes;
    }

    unsigned blockIndexOf(uint64_t addr) const
    {
        return static_cast<unsigned>((addr % params.pageBytes)
                                     / blockBytes);
    }

    uint64_t counterBlockAddr(uint64_t page) const
    {
        return counterRegionBase + page * blockBytes;
    }

    PageCounters &countersFor(uint64_t page);
    const PageCounters *countersForConst(uint64_t page) const;

    /** Generate the 4 pads for one data block. */
    void padsFor(uint64_t addr, const PageCounters &ctrs,
                 OBF_SECRET crypto::Block128 out[4]) const;

    DataBlock applyPads(uint64_t addr, const PageCounters &ctrs,
                        const DataBlock &in) const;

    /** Digest of a page's counter block (Merkle leaf value). */
    crypto::Md5Digest counterDigest(uint64_t page) const;

    /** Digest of an untouched page's counter block. */
    static crypto::Md5Digest freshPageDigest(uint64_t page_bytes);

    /**
     * Continuation resumed with the tick at which its input (counter
     * block, Merkle ancestor) is available. Inline storage sized for
     * the largest capture on the write path (this + MemPacket +
     * PacketCallback + page); anything bigger fails to compile rather
     * than reintroducing a heap hop per counter fetch.
     */
    using TickCont = InlineFunction<void(Tick), 192>;

    /**
     * Ensure the counter block for `page` is on chip; k runs with the
     * tick at which the counters are available.
     */
    void withCounter(uint64_t page, TickCont k);

    /** Model Merkle verification traffic for a fetched counter. */
    void bmtVerify(uint64_t page, TickCont k);

    /** State of an in-progress Merkle path walk. */
    struct BmtWalk
    {
        unsigned level;
        uint64_t index;
        TickCont k;
    };

    /** One async step of the Merkle path walk. */
    void bmtWalkStep(std::shared_ptr<BmtWalk> walk);

    /**
     * Linearized address of an interior Merkle node inside the BMT
     * region (levels packed consecutively, shrinking by the arity).
     */
    uint64_t bmtNodeAddr(unsigned level, uint64_t index) const
    {
        return bmtRegionBase
               + (bmtLevelStart[level] + index) * blockBytes;
    }

    /** Functional tree update + dirty-node traffic on writeback. */
    void bmtUpdate(uint64_t page, Tick when);

    void writebackCounter(uint64_t ctr_block_addr, Tick when);

    EncryptionParams params;
    MemSink &inner;
    uint64_t dataCapacity;
    uint64_t counterRegionBase;
    uint64_t bmtRegionBase;

    /**
     * Pad source for the engine's page/block-counter IVs. Routed
     * through AesCtr's IV passthrough so the crypto dispatch (and the
     * AES-NI batch path) stays behind one construction site in
     * crypto/, with a memo in front for repeated reads.
     */
    crypto::AesCtr padSource;
    mutable IvPadMemo padMemo;
    std::unordered_map<uint64_t, PageCounters> counters;
    MerkleTree tree;
    /** Block offset of each interior level in the BMT region. */
    std::vector<uint64_t> bmtLevelStart;

    FuncCache counterCache;
    FuncCache bmtCache;

    std::unordered_map<uint64_t, std::vector<TickCont>>
        pendingCounterFetches;

    /**
     * Plaintext of writes still travelling to memory, so a racing
     * read never pairs an old ciphertext with a bumped counter.
     */
    struct InflightWrite
    {
        /** Un-encrypted write data: the confidentiality target. */
        OBF_SECRET DataBlock plaintext;
        unsigned count = 0;
    };
    std::unordered_map<uint64_t, InflightWrite> inflightWrites;

    uint64_t nextPktId = 1u << 30;

    statistics::Scalar ctrHits, ctrMisses, ctrWritebacks;
    statistics::Scalar bmtFetches, bmtWritebacks;
    statistics::Scalar integrityViolations;
    statistics::Scalar blocksEncrypted, blocksDecrypted;
    statistics::Scalar forwardedReads;
};

} // namespace obfusmem

#endif // OBFUSMEM_SECURE_ENCRYPTION_ENGINE_HH
