/**
 * @file
 * Memory request/response packets. Packets carry a real 64-byte
 * payload end to end so that the encryption layers can be verified
 * functionally, not just in timing.
 */

#ifndef OBFUSMEM_MEM_PACKET_HH
#define OBFUSMEM_MEM_PACKET_HH

#include <array>
#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace obfusmem {

/** Cache-block payload: 64 bytes (Table 2). */
using DataBlock = std::array<uint8_t, 64>;

/** Size of a cache block / memory burst in bytes. */
constexpr uint64_t blockBytes = 64;

/** Block-aligned address. */
inline uint64_t
blockAlign(uint64_t addr)
{
    return addr & ~(blockBytes - 1);
}

/** Memory command. */
enum class MemCmd : uint8_t { Read, Write };

/**
 * A memory request as it travels from the LLC toward memory (and its
 * response travelling back).
 */
struct MemPacket
{
    /** Unique id for tracing/debugging. */
    uint64_t id = 0;
    MemCmd cmd = MemCmd::Read;
    /** Physical block-aligned address. */
    uint64_t addr = 0;
    /** Issuing core (-1 for system-generated, e.g. counter fetches). */
    int coreId = -1;
    /** Payload (valid for writes and read responses). */
    DataBlock data{};

    /** True for ObfusMem-generated dummy requests. */
    bool isDummy = false;
    /**
     * Bytes this message occupies on the channel data bus. Zero means
     * the message travels on the command path only. Set by the
     * protection layer; defaults match an unprotected DDR-like channel.
     */
    uint32_t wireBytes = 0;
    /** Tick at which the request entered the memory system. */
    Tick issueTick = 0;

    bool isRead() const { return cmd == MemCmd::Read; }
    bool isWrite() const { return cmd == MemCmd::Write; }
};

/** Callback delivering a completed packet (response). */
using PacketCallback = std::function<void(MemPacket &&)>;

/**
 * Anything that can consume timed memory requests: caches, encryption
 * layers, obfuscation controllers, memory controllers.
 */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /**
     * Issue a request. The callback fires when the response is
     * available (reads: with data; writes: as a completion ack).
     */
    virtual void access(MemPacket pkt, PacketCallback cb) = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_PACKET_HH
