/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO'09), the kind of
 * in-memory-controller endurance logic the paper's Sec. 2.2 cites as
 * a reason NVM modules already carry substantial logic - the same
 * logic budget ObfusMem's crypto engines ride on.
 *
 * One spare (gap) row per region; every `movePeriod` row writes the
 * gap walks one position, slowly rotating the logical-to-physical row
 * mapping so that write-heavy rows spread their wear over the whole
 * region.
 */

#ifndef OBFUSMEM_MEM_WEAR_LEVELING_HH
#define OBFUSMEM_MEM_WEAR_LEVELING_HH

#include <cstdint>

namespace obfusmem {

/**
 * Start-Gap remapper for one bank's rows.
 */
class StartGapLeveler
{
  public:
    /**
     * @param rows Logical rows in the region.
     * @param move_period Gap moves once per this many row writes.
     */
    StartGapLeveler(uint64_t rows, unsigned move_period = 100);

    /** Physical row currently backing a logical row. */
    uint64_t map(uint64_t logical_row) const;

    /**
     * Record one row write.
     * @return true if the gap moved (costing one row copy).
     */
    bool recordWrite();

    uint64_t gapMoves() const { return moves; }
    uint64_t startOffset() const { return start; }
    uint64_t gapPosition() const { return gap; }
    uint64_t logicalRows() const { return rows; }
    /** Physical rows = logical + the spare gap row. */
    uint64_t physicalRows() const { return rows + 1; }

  private:
    uint64_t rows;
    unsigned movePeriod;
    uint64_t start = 0;
    uint64_t gap;
    unsigned writesSinceMove = 0;
    uint64_t moves = 0;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_WEAR_LEVELING_HH
