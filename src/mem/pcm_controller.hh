/**
 * @file
 * Per-channel PCM memory controller: FR-FCFS scheduling with read
 * priority and write-queue draining, per-bank row buffers with an
 * open-page policy, and cell writes only on dirty row-buffer eviction
 * (the paper's Table 2 organization, after Lee et al. [32]).
 */

#ifndef OBFUSMEM_MEM_PCM_CONTROLLER_HH
#define OBFUSMEM_MEM_PCM_CONTROLLER_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/packet.hh"
#include "mem/pcm_params.hh"
#include "mem/wear_leveling.hh"
#include "sim/sim_object.hh"

namespace obfusmem {

/**
 * Timing and functional model of one PCM channel behind the bus.
 * access() is called when a request has fully arrived at the memory
 * side; the callback fires when the device access completes (for
 * reads, with the data block filled in).
 */
class PcmController : public SimObject, public MemSink
{
  public:
    PcmController(const std::string &name, EventQueue &eq,
                  statistics::Group *parent, unsigned channel_id,
                  const AddressMap &map, const PcmParams &params,
                  BackingStore &store);

    void access(MemPacket pkt, PacketCallback cb) override;

    /** Outstanding (queued + in-flight) requests. */
    size_t pendingRequests() const
    {
        return readQueue.size() + writeQueue.size() + inFlight;
    }

    /** Most writes any single row has absorbed (wear hot spot). */
    uint64_t maxRowCellWrites() const;

    /** Accumulated PCM array energy in pJ. */
    double energyPj() const { return arrayEnergy.value(); }

    /** Total blocks written to PCM cells. */
    uint64_t cellBlockWrites() const
    {
        return static_cast<uint64_t>(cellWrites.value());
    }

  private:
    struct QueuedRequest
    {
        MemPacket pkt;
        PacketCallback cb;
        DecodedAddr loc;
        Tick enqueued;
    };

    struct Bank
    {
        bool rowOpen = false;
        uint64_t openRow = 0;
        unsigned dirtyBlocks = 0;
        Tick freeAt = 0;
    };

    /** Try to issue queued requests to free banks. */
    void trySchedule();

    /** Issue one request to its bank; returns completion tick. */
    Tick serviceRequest(QueuedRequest &req);

    Bank &bankFor(const DecodedAddr &loc);

    const AddressMap &addrMap;
    PcmParams params;
    BackingStore &store;
    unsigned channel;

    std::deque<QueuedRequest> readQueue;
    std::deque<QueuedRequest> writeQueue;
    std::vector<Bank> banks;
    unsigned inFlight = 0;
    bool drainingWrites = false;
    bool kickScheduled = false;

    /** Cell writes per *physical* row, for wear analysis. */
    std::unordered_map<uint64_t, uint64_t> rowWearMap;

    /** Optional Start-Gap wear leveler per bank. */
    std::vector<StartGapLeveler> levelers;

    statistics::Scalar gapMoves;

    statistics::Scalar readReqs, writeReqs;
    statistics::Scalar rowHits, rowMisses;
    statistics::Scalar cellWrites;
    statistics::Scalar rowActivations;
    statistics::Scalar arrayEnergy;
    statistics::Average readLatencyNs;
    statistics::Average queueOccupancy;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_PCM_CONTROLLER_HH
