/**
 * @file
 * Sparse functional memory: the authoritative contents of the
 * simulated PCM. Only blocks that have ever been written are stored;
 * reads of untouched blocks return a deterministic pseudo-random fill
 * (modelling uninitialized memory without 8 GB of host allocation).
 */

#ifndef OBFUSMEM_MEM_BACKING_STORE_HH
#define OBFUSMEM_MEM_BACKING_STORE_HH

#include <cstdint>
#include <unordered_map>

#include "mem/packet.hh"

namespace obfusmem {

/**
 * Functional backing store keyed by block address.
 */
class BackingStore
{
  public:
    explicit BackingStore(uint64_t capacity_bytes)
        : capacityBytes(capacity_bytes)
    {}

    /** Read a block (deterministic junk if never written). */
    DataBlock read(uint64_t addr) const;

    /** Write a block. */
    void write(uint64_t addr, const DataBlock &data);

    /** Whether the block has ever been written. */
    bool populated(uint64_t addr) const;

    /** Number of distinct blocks written so far. */
    size_t blocksAllocated() const { return blocks.size(); }

    uint64_t capacity() const { return capacityBytes; }

  private:
    uint64_t capacityBytes;
    std::unordered_map<uint64_t, DataBlock> blocks;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_BACKING_STORE_HH
