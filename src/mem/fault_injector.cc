/**
 * @file
 * FaultInjector implementation.
 */

#include "mem/fault_injector.hh"

#include "mem/channel_bus.hh"
#include "util/env.hh"

namespace obfusmem {

FaultInjector::Params
FaultInjector::Params::fromEnv()
{
    Params p;
    p.seed = env::u64("OBFUSMEM_FAULT_SEED", p.seed);
    p.dropProb = env::f64("OBFUSMEM_FAULT_DROP", 0);
    p.corruptProb = env::f64("OBFUSMEM_FAULT_CORRUPT", 0);
    p.delayProb = env::f64("OBFUSMEM_FAULT_DELAY", 0);
    p.dupProb = env::f64("OBFUSMEM_FAULT_DUP", 0);
    p.delayTicks =
        env::u64("OBFUSMEM_FAULT_DELAY_NS", 100) * tickPerNs;
    return p;
}

FaultInjector::FaultInjector(const Params &params_)
    : params(params_), rng(params_.seed)
{
}

void
FaultInjector::regStats(statistics::Group &g)
{
    g.addScalar("dropped", &dropped, "bus messages dropped");
    g.addScalar("corrupted", &corrupted, "bus messages bit-flipped");
    g.addScalar("delayed", &delayed, "bus messages delayed in flight");
    g.addScalar("duplicated", &duplicated,
                "bus messages delivered twice");
}

FaultDecision
FaultInjector::decide(unsigned, BusDir)
{
    FaultDecision d;
    // Always burn the same number of draws per message so one fault
    // class firing does not shift the pattern of the others.
    bool drop = rng.chance(params.dropProb);
    bool corrupt = rng.chance(params.corruptProb);
    bool delay = rng.chance(params.delayProb);
    bool dup = rng.chance(params.dupProb);
    d.entropy = rng.next();

    if (drop) {
        d.drop = true;
        ++dropped;
        return d; // a dropped message cannot also corrupt/delay/dup
    }
    if (corrupt) {
        d.corrupt = true;
        ++corrupted;
    }
    if (delay) {
        d.extraDelay = params.delayTicks;
        ++delayed;
    }
    if (dup) {
        d.duplicate = true;
        ++duplicated;
    }
    return d;
}

} // namespace obfusmem
