/**
 * @file
 * PCM device timing and energy parameters from the paper's Table 2
 * (DDR-based PCM, parameters from Lee et al. [32]).
 */

#ifndef OBFUSMEM_MEM_PCM_PARAMS_HH
#define OBFUSMEM_MEM_PCM_PARAMS_HH

#include "sim/types.hh"

namespace obfusmem {

/**
 * Timing, energy and scheduling parameters for one PCM channel.
 */
struct PcmParams
{
    /** Array read (activate a row into the row buffer): tRCD, 60 ns. */
    Tick tRCD = 60 * tickPerNs;
    /** Row-buffer access (CAS) latency: tCL, 13.75 ns. */
    Tick tCL = 13750;
    /** Cell write of a dirty row buffer on eviction: tRP/tWR, 150 ns. */
    Tick tWR = 150 * tickPerNs;
    /** Data burst for one 64 B block at 12.8 GB/s: tBURST, 5 ns. */
    Tick tBURST = 5 * tickPerNs;

    /** Write-queue drain thresholds (entries). */
    unsigned drainHighWatermark = 32;
    unsigned drainLowWatermark = 8;

    /**
     * Normalized per-block energies. Only the ratio matters for the
     * paper's Sec. 5.2 analysis: PCM cell writes cost 6.8x reads.
     */
    double readEnergyPj = 100.0;
    double writeEnergyPj = 680.0;

    /** PCM cell endurance (writes per cell) for lifetime estimates. */
    double cellEndurance = 1e8;

    /**
     * Start-Gap wear leveling inside the module's controller logic
     * (Sec. 2.2): spreads row wear at the cost of a periodic row
     * copy.
     */
    bool wearLeveling = false;
    /** Row writes between gap movements. */
    unsigned gapMovePeriod = 100;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_PCM_PARAMS_HH
