/**
 * @file
 * Physical address decoding with the RoRaBaChCo mapping from the
 * paper's Table 2: from most to least significant bits the address is
 * split into Row | Rank | Bank | Channel | Column | block offset, so
 * channels interleave at row-buffer granularity.
 */

#ifndef OBFUSMEM_MEM_ADDRESS_MAP_HH
#define OBFUSMEM_MEM_ADDRESS_MAP_HH

#include <cstdint>
#include <string>

namespace obfusmem {

/** Decoded location of a block in the memory system. */
struct DecodedAddr
{
    unsigned channel;
    unsigned rank;
    unsigned bank;
    uint64_t row;
    unsigned column;
};

/**
 * RoRaBaChCo address mapper.
 */
class AddressMap
{
  public:
    /**
     * @param capacity_bytes Total memory capacity.
     * @param channels Number of channels (1/2/4/8 in the paper).
     * @param ranks_per_channel Ranks per channel (2).
     * @param banks_per_rank Banks per rank (8).
     * @param row_buffer_bytes Row buffer size (1 KB).
     */
    AddressMap(uint64_t capacity_bytes, unsigned channels,
               unsigned ranks_per_channel = 2,
               unsigned banks_per_rank = 8,
               uint64_t row_buffer_bytes = 1024);

    DecodedAddr decode(uint64_t addr) const;

    /** Inverse of decode(): build the block address of a location. */
    uint64_t encode(const DecodedAddr &loc) const;

    unsigned channels() const { return numChannels; }
    unsigned ranksPerChannel() const { return numRanks; }
    unsigned banksPerRank() const { return numBanks; }
    uint64_t rowBufferBytes() const { return rowBytes; }
    uint64_t capacity() const { return capacityBytes; }
    /** Number of rows per bank implied by the geometry. */
    uint64_t rowsPerBank() const { return numRows; }
    /** Blocks per row buffer. */
    unsigned blocksPerRow() const { return colsPerRow; }

    std::string describe() const;

  private:
    uint64_t capacityBytes;
    unsigned numChannels;
    unsigned numRanks;
    unsigned numBanks;
    uint64_t rowBytes;
    unsigned colsPerRow;
    uint64_t numRows;

    unsigned colBits, chBits, baBits, raBits;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_ADDRESS_MAP_HH
