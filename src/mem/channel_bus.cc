/**
 * @file
 * ChannelBus implementation.
 */

#include "mem/channel_bus.hh"

#include <cmath>

#include "mem/fault_injector.hh"
#include "util/assert.hh"

namespace obfusmem {

ChannelBus::ChannelBus(const std::string &name, EventQueue &eq,
                       statistics::Group *parent, unsigned channel_id,
                       const Params &params_)
    : SimObject(name, eq, parent), params(params_), channel(channel_id)
{
    stats().addScalar("messages", &messagesSent,
                      "messages transmitted on the bus");
    stats().addScalar("bytes", &bytesSent, "data-bus bytes transmitted");
    stats().addScalar("busyTicks", &busBusyTicks,
                      "ticks the data bus was occupied");
    stats().addAverage("queueDelayNs", &queueDelayNs,
                       "per-message arbitration queueing delay");
}

Tick
ChannelBus::occupancy(uint32_t bytes) const
{
    if (bytes == 0)
        return params.commandSlot;
    double ns = bytes / params.bytesPerNs;
    return static_cast<Tick>(std::ceil(ns * tickPerNs));
}

void
ChannelBus::send(BusDir dir, uint32_t bytes, uint64_t snoop_addr,
                 bool snoop_is_write,
                 std::function<void(const BusFault &)> deliver)
{
    OBF_ASSERT(deliver != nullptr, "bus message without a receiver");
    // A message is at most header + 64-byte payload + MAC; anything
    // larger means a wire-size accounting bug upstream, which would
    // silently skew every bandwidth and obfuscation result.
    OBF_DCHECK(bytes <= 4096, "implausible bus message of ", bytes,
               " bytes on channel ", channel);
    pending.push_back(Message{dir, bytes, snoop_addr, snoop_is_write,
                              std::move(deliver)});
    enqueueTicks.push_back(curTick());
    if (!transferring)
        startNext();
}

void
ChannelBus::startNext()
{
    if (pending.empty()) {
        transferring = false;
        return;
    }
    transferring = true;

    Message msg = std::move(pending.front());
    pending.pop_front();
    Tick enq = enqueueTicks.front();
    enqueueTicks.pop_front();
    queueDelayNs.sample(ticksToNs(curTick() - enq));

    Tick busy = occupancy(msg.bytes);
    ++messagesSent;
    bytesSent += msg.bytes;
    busBusyTicks += busy;

    // The attacker sees the message as it starts appearing on the bus.
    BusSnoop snoop{curTick(), msg.dir, msg.bytes, msg.snoopAddr,
                   msg.snoopIsWrite, channel};
    for (auto *p : probes)
        p->observe(snoop);

    // Faults apply after the snoop: the transmitted burst was on the
    // wires either way; only what the far end latches differs.
    FaultDecision fd =
        faults ? faults->decide(channel, msg.dir) : FaultDecision{};

    // The bus frees after the burst; propagation overlaps the next
    // message's burst.
    Tick done = busy + params.propagationDelay + fd.extraDelay;
    if (!fd.drop) {
        BusFault fault{fd.corrupt, fd.duplicate, fd.entropy};
        scheduleAfter(done, [d = std::move(msg.deliver), fault]() {
            d(fault);
        });
    }
    scheduleAfter(busy, [this]() { startNext(); });
}

double
ChannelBus::utilization() const
{
    Tick now = curTick();
    if (now == 0)
        return 0.0;
    return busBusyTicks.value() / static_cast<double>(now);
}

} // namespace obfusmem
