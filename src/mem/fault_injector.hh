/**
 * @file
 * Deterministic, seeded fault injection for the exposed channel bus.
 *
 * Models an active adversary (or a marginal link) that drops,
 * corrupts, delays or duplicates individual bus messages. All
 * randomness flows through one seeded PRNG so a faulty run is exactly
 * reproducible: the same seed and the same message sequence produce
 * the same fault pattern. Probabilities come from the
 * OBFUSMEM_FAULT_* knobs and default to zero, so an unconfigured
 * injector never perturbs the wire.
 */

#ifndef OBFUSMEM_MEM_FAULT_INJECTOR_HH
#define OBFUSMEM_MEM_FAULT_INJECTOR_HH

#include <cstdint>

#include "sim/types.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace obfusmem {

enum class BusDir : uint8_t;

/** The injector's verdict for one bus message. */
struct FaultDecision
{
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    /** Extra propagation delay (retimed link, not reordered). */
    Tick extraDelay = 0;
    /** Deterministic entropy for the receiver (e.g. which bit flips). */
    uint64_t entropy = 0;
};

/**
 * Seeded per-system fault source consulted by every ChannelBus as a
 * message starts its burst. Faults are independent per message; the
 * draw order is the bus arbitration order, which is deterministic.
 */
class FaultInjector
{
  public:
    struct Params
    {
        uint64_t seed = 0x0bf5;
        double dropProb = 0;
        double corruptProb = 0;
        double delayProb = 0;
        double dupProb = 0;
        /** Extra delay applied when a delay fault fires. */
        Tick delayTicks = 100 * tickPerNs;

        /** Read the OBFUSMEM_FAULT_* knobs (latched per call). */
        static Params fromEnv();

        bool any() const
        {
            return dropProb > 0 || corruptProb > 0 || delayProb > 0
                   || dupProb > 0;
        }
    };

    explicit FaultInjector(const Params &params);

    /** Decide the fate of one message; advances the PRNG. */
    FaultDecision decide(unsigned channel, BusDir dir);

    void regStats(statistics::Group &g);

    const Params &config() const { return params; }

  private:
    Params params;
    Random rng;

    statistics::Scalar dropped;
    statistics::Scalar corrupted;
    statistics::Scalar delayed;
    statistics::Scalar duplicated;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_FAULT_INJECTOR_HH
