/**
 * @file
 * A slab/free-list recycler for in-flight memory requests.
 *
 * A MemPacket plus its completion callback is ~150 bytes — far past
 * the small-buffer storage of std::function — so a closure that
 * captures the pair by value heap-allocates on every hop. Components
 * that thread a request through a chain of bus/controller callbacks
 * instead park the pair in a pool slot and carry the 4-byte handle:
 * the closures shrink to {this, channel, handle} (16 bytes, inside
 * std::function's SBO), and the steady-state request flow stops
 * touching the global allocator. Slots are recycled through an
 * intrusive free list; the pool grows by whole slabs only when
 * exhausted, so the slab vector is quiescent after warm-up.
 */

#ifndef OBFUSMEM_MEM_PACKET_POOL_HH
#define OBFUSMEM_MEM_PACKET_POOL_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mem/packet.hh"
#include "util/assert.hh"
#include "util/stats.hh"

namespace obfusmem {

/**
 * Pool of in-flight {packet, callback} slots addressed by uint32
 * handles. Per-System (single-threaded, like the event queue).
 */
class PacketPool
{
  public:
    using Handle = uint32_t;
    static constexpr Handle nil = 0xffffffffu;

    /** One in-flight request. Live between acquire() and release(). */
    struct Slot
    {
        MemPacket pkt;
        PacketCallback cb;
        uint32_t nextFree = nil;
    };

    /** Park a request; returns the handle to carry through closures. */
    Handle
    acquire(MemPacket &&pkt, PacketCallback &&cb)
    {
        if (freeHead == nil)
            grow();
        const Handle h = freeHead;
        Slot &s = at(h);
        freeHead = s.nextFree;
        s.pkt = std::move(pkt);
        s.cb = std::move(cb);
        if (++liveSlots > highWater_) {
            highWater_ = liveSlots;
            statHighWater.set(static_cast<double>(highWater_));
        }
        return h;
    }

    /** Access a live slot (e.g. to move the packet out and back in). */
    Slot &
    at(Handle h)
    {
        return slabs[h >> slabShift][h & (slabSlots - 1)];
    }

    /**
     * Move the slot contents into the out-params and recycle the
     * handle. Out-params (not a returned Slot&) so the caller can
     * safely invoke the callback even if it re-enters the pool and
     * reuses this slot.
     */
    void
    release(Handle h, MemPacket &pkt_out, PacketCallback &cb_out)
    {
        Slot &s = at(h);
        pkt_out = std::move(s.pkt);
        cb_out = std::move(s.cb);
        s.cb = nullptr;
        s.nextFree = freeHead;
        freeHead = h;
        OBF_DCHECK(liveSlots > 0, "releasing into an empty pool");
        --liveSlots;
    }

    /** Maximum simultaneously in-flight requests seen. */
    size_t highWater() const { return highWater_; }

    /** Current pool capacity, in slots. */
    size_t capacity() const { return slabs.size() * slabSlots; }

    /** Requests currently in flight. */
    size_t inFlight() const { return liveSlots; }

    /** Register pool counters as a `pktpool` group under `parent`. */
    void
    attachStats(statistics::Group &parent)
    {
        OBF_ASSERT(statGroup == nullptr, "packet pool stats attached twice");
        statGroup =
            std::make_unique<statistics::Group>("pktpool", &parent);
        statHighWater.set(static_cast<double>(highWater_));
        statSlots.set(static_cast<double>(capacity()));
        statGroup->addScalar("inflightHighWater", &statHighWater,
                             "max simultaneously pooled requests");
        statGroup->addScalar("slots", &statSlots,
                             "packet pool capacity");
    }

  private:
    static constexpr unsigned slabShift = 8;
    static constexpr size_t slabSlots = size_t(1) << slabShift;

    void
    grow()
    {
        OBF_ASSERT(slabs.size() < (size_t(nil) >> slabShift),
                   "packet pool exhausted");
        auto slab = std::make_unique<Slot[]>(slabSlots);
        const Handle base =
            static_cast<Handle>(slabs.size() << slabShift);
        for (size_t i = slabSlots; i-- > 0;) {
            slab[i].nextFree = freeHead;
            freeHead = base + static_cast<Handle>(i);
        }
        slabs.push_back(std::move(slab));
        statSlots.set(static_cast<double>(capacity()));
    }

    std::vector<std::unique_ptr<Slot[]>> slabs;
    Handle freeHead = nil;
    size_t liveSlots = 0;
    size_t highWater_ = 0;

    std::unique_ptr<statistics::Group> statGroup;
    statistics::Scalar statHighWater;
    statistics::Scalar statSlots;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_PACKET_POOL_HH
