/**
 * @file
 * BackingStore implementation.
 */

#include "mem/backing_store.hh"

#include "util/logging.hh"

namespace obfusmem {

DataBlock
BackingStore::read(uint64_t addr) const
{
    uint64_t key = blockAlign(addr);
    panic_if(key >= capacityBytes, "read beyond capacity");
    auto it = blocks.find(key);
    if (it != blocks.end())
        return it->second;

    // Deterministic "uninitialized" fill derived from the address.
    DataBlock junk;
    uint64_t x = key ^ 0xdeadbeefcafef00dULL;
    for (size_t i = 0; i < junk.size(); ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        junk[i] = static_cast<uint8_t>(x);
    }
    return junk;
}

void
BackingStore::write(uint64_t addr, const DataBlock &data)
{
    uint64_t key = blockAlign(addr);
    panic_if(key >= capacityBytes, "write beyond capacity");
    blocks[key] = data;
}

bool
BackingStore::populated(uint64_t addr) const
{
    return blocks.count(blockAlign(addr)) != 0;
}

} // namespace obfusmem
