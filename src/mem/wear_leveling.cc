/**
 * @file
 * Start-Gap implementation.
 */

#include "mem/wear_leveling.hh"

#include "util/logging.hh"

namespace obfusmem {

StartGapLeveler::StartGapLeveler(uint64_t rows_, unsigned move_period)
    : rows(rows_), movePeriod(move_period), gap(rows_)
{
    fatal_if(rows == 0, "empty wear-leveling region");
    fatal_if(movePeriod == 0, "gap move period must be positive");
}

uint64_t
StartGapLeveler::map(uint64_t logical_row) const
{
    panic_if(logical_row >= rows, "logical row out of range");
    uint64_t pa = (logical_row + start) % rows;
    if (pa >= gap)
        pa += 1;
    return pa;
}

bool
StartGapLeveler::recordWrite()
{
    if (++writesSinceMove < movePeriod)
        return false;
    writesSinceMove = 0;
    ++moves;

    if (gap == 0) {
        // The gap wrapped: one full rotation step completes.
        gap = rows;
        start = (start + 1) % rows;
    } else {
        // Copy the row below the gap into the gap; the gap moves
        // down one position.
        gap -= 1;
    }
    return true;
}

} // namespace obfusmem
