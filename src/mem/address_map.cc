/**
 * @file
 * RoRaBaChCo address mapping implementation.
 */

#include "mem/address_map.hh"

#include <sstream>

#include "mem/packet.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace obfusmem {

AddressMap::AddressMap(uint64_t capacity_bytes, unsigned channels,
                       unsigned ranks_per_channel,
                       unsigned banks_per_rank,
                       uint64_t row_buffer_bytes)
    : capacityBytes(capacity_bytes), numChannels(channels),
      numRanks(ranks_per_channel), numBanks(banks_per_rank),
      rowBytes(row_buffer_bytes)
{
    fatal_if(!isPowerOf2(capacity_bytes), "capacity must be power of 2");
    fatal_if(!isPowerOf2(channels) || !isPowerOf2(ranks_per_channel)
             || !isPowerOf2(banks_per_rank)
             || !isPowerOf2(row_buffer_bytes),
             "memory geometry must be powers of 2");
    fatal_if(row_buffer_bytes < blockBytes,
             "row buffer smaller than a block");

    colsPerRow = static_cast<unsigned>(rowBytes / blockBytes);
    colBits = floorLog2(colsPerRow);
    chBits = floorLog2(numChannels);
    baBits = floorLog2(numBanks);
    raBits = floorLog2(numRanks);

    uint64_t blocks = capacityBytes / blockBytes;
    uint64_t blocks_per_row_all =
        static_cast<uint64_t>(colsPerRow) * numChannels * numBanks
        * numRanks;
    numRows = blocks / blocks_per_row_all;
    fatal_if(numRows == 0, "capacity too small for geometry");
}

DecodedAddr
AddressMap::decode(uint64_t addr) const
{
    fatal_if(addr >= capacityBytes, "address out of range");
    uint64_t block = addr / blockBytes;

    DecodedAddr out;
    out.column = static_cast<unsigned>(bits(block, 0, colBits));
    block >>= colBits;
    out.channel = static_cast<unsigned>(bits(block, 0, chBits));
    block >>= chBits;
    out.bank = static_cast<unsigned>(bits(block, 0, baBits));
    block >>= baBits;
    out.rank = static_cast<unsigned>(bits(block, 0, raBits));
    block >>= raBits;
    out.row = block;
    return out;
}

uint64_t
AddressMap::encode(const DecodedAddr &loc) const
{
    uint64_t block = loc.row;
    block = (block << raBits) | loc.rank;
    block = (block << baBits) | loc.bank;
    block = (block << chBits) | loc.channel;
    block = (block << colBits) | loc.column;
    return block * blockBytes;
}

std::string
AddressMap::describe() const
{
    std::ostringstream oss;
    oss << capacityBytes / (1024 * 1024 * 1024) << "GB, " << numChannels
        << " channel(s), " << numRanks << " rank(s)/ch, " << numBanks
        << " bank(s)/rank, " << rowBytes << "B rows, RoRaBaChCo";
    return oss.str();
}

} // namespace obfusmem
