/**
 * @file
 * PcmController implementation.
 */

#include "mem/pcm_controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace obfusmem {

PcmController::PcmController(const std::string &name, EventQueue &eq,
                             statistics::Group *parent,
                             unsigned channel_id, const AddressMap &map,
                             const PcmParams &params_,
                             BackingStore &store_)
    : SimObject(name, eq, parent), addrMap(map), params(params_),
      store(store_), channel(channel_id),
      banks(map.ranksPerChannel() * map.banksPerRank())
{
    stats().addScalar("readReqs", &readReqs, "read requests serviced");
    stats().addScalar("writeReqs", &writeReqs,
                      "write requests serviced");
    stats().addScalar("rowHits", &rowHits, "row buffer hits");
    stats().addScalar("rowMisses", &rowMisses, "row buffer misses");
    stats().addScalar("cellWrites", &cellWrites,
                      "blocks written to PCM cells (wear)");
    stats().addScalar("rowActivations", &rowActivations,
                      "row activations (array reads)");
    stats().addScalar("arrayEnergyPj", &arrayEnergy,
                      "PCM array energy (pJ, normalized)");
    stats().addAverage("readLatencyNs", &readLatencyNs,
                       "device-level read latency");
    stats().addAverage("queueOccupancy", &queueOccupancy,
                       "requests queued at enqueue time");
    stats().addScalar("gapMoves", &gapMoves,
                      "Start-Gap wear-leveling row copies");

    if (params.wearLeveling) {
        for (size_t b = 0; b < banks.size(); ++b) {
            levelers.emplace_back(map.rowsPerBank(),
                                  params.gapMovePeriod);
        }
    }
}

PcmController::Bank &
PcmController::bankFor(const DecodedAddr &loc)
{
    return banks[loc.rank * addrMap.banksPerRank() + loc.bank];
}

void
PcmController::access(MemPacket pkt, PacketCallback cb)
{
    panic_if(pkt.isDummy, "dummy request reached the PCM banks");
    DecodedAddr loc = addrMap.decode(pkt.addr);
    panic_if(loc.channel != channel, "request routed to wrong channel");

    queueOccupancy.sample(
        static_cast<double>(readQueue.size() + writeQueue.size()));

    if (pkt.isRead()) {
        // Read-under-write forwarding: a younger read must observe the
        // data of the youngest queued write to the same block.
        for (auto it = writeQueue.rbegin(); it != writeQueue.rend();
             ++it) {
            const auto &w = *it;
            if (w.pkt.addr == pkt.addr) {
                pkt.data = w.pkt.data;
                ++readReqs;
                readLatencyNs.sample(ticksToNs(params.tCL));
                scheduleAfter(params.tCL,
                              [cb = std::move(cb),
                               resp = std::move(pkt)]() mutable {
                                  cb(std::move(resp));
                              });
                return;
            }
        }
        readQueue.push_back({std::move(pkt), std::move(cb), loc,
                             curTick()});
    } else {
        writeQueue.push_back({std::move(pkt), std::move(cb), loc,
                              curTick()});
    }
    trySchedule();
}

void
PcmController::trySchedule()
{
    // Hysteresis on write draining.
    if (writeQueue.size() >= params.drainHighWatermark)
        drainingWrites = true;
    if (writeQueue.size() <= params.drainLowWatermark)
        drainingWrites = false;

    auto issuable = [this](const QueuedRequest &req) {
        return bankFor(req.loc).freeAt <= curTick();
    };

    auto pickFrom = [this, &issuable](std::deque<QueuedRequest> &queue)
        -> std::deque<QueuedRequest>::iterator {
        // FR-FCFS: oldest row-buffer hit first, else oldest issuable.
        auto best = queue.end();
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (!issuable(*it))
                continue;
            Bank &bank = bankFor(it->loc);
            bool hit = bank.rowOpen && bank.openRow == it->loc.row;
            if (hit)
                return it;
            if (best == queue.end())
                best = it;
        }
        return best;
    };

    bool progress = true;
    while (progress) {
        progress = false;

        bool serve_writes =
            drainingWrites || (readQueue.empty() && !writeQueue.empty());
        auto &primary = serve_writes ? writeQueue : readQueue;
        auto &secondary = serve_writes ? readQueue : writeQueue;

        auto it = pickFrom(primary);
        bool from_primary = it != primary.end();
        if (!from_primary)
            it = pickFrom(secondary);
        auto &queue = from_primary ? primary : secondary;
        if (it == queue.end())
            break;

        QueuedRequest req = std::move(*it);
        queue.erase(it);
        serviceRequest(req);
        progress = true;
    }

    // If work remains but all target banks are busy, kick when the
    // earliest one frees.
    if (!kickScheduled && (!readQueue.empty() || !writeQueue.empty())) {
        Tick earliest = maxTick;
        for (const auto &r : readQueue)
            earliest = std::min(earliest, bankFor(r.loc).freeAt);
        for (const auto &w : writeQueue)
            earliest = std::min(earliest, bankFor(w.loc).freeAt);
        if (earliest != maxTick && earliest > curTick()) {
            kickScheduled = true;
            eventQueue().schedule(earliest, [this]() {
                kickScheduled = false;
                trySchedule();
            });
        }
    }
}

Tick
PcmController::serviceRequest(QueuedRequest &req)
{
    Bank &bank = bankFor(req.loc);
    panic_if(bank.freeAt > curTick(), "issuing to a busy bank");

    Tick t = curTick();
    bool hit = bank.rowOpen && bank.openRow == req.loc.row;

    if (hit) {
        ++rowHits;
    } else {
        ++rowMisses;
        if (bank.rowOpen && bank.dirtyBlocks > 0) {
            // Evict the dirty row buffer: the only point where PCM
            // cells are written (Table 2 / Lee et al. [32]).
            t += params.tWR;
            cellWrites += bank.dirtyBlocks;
            arrayEnergy += bank.dirtyBlocks * params.writeEnergyPj;

            size_t bank_idx =
                req.loc.rank * addrMap.banksPerRank() + req.loc.bank;
            uint64_t physical_row = bank.openRow;
            if (params.wearLeveling) {
                StartGapLeveler &lvl = levelers[bank_idx];
                physical_row = lvl.map(bank.openRow);
                if (lvl.recordWrite()) {
                    // One row copy: read + write a whole row, and
                    // the bank is busy for the copy.
                    ++gapMoves;
                    t += params.tRCD + params.tWR;
                    arrayEnergy +=
                        params.readEnergyPj
                        + addrMap.blocksPerRow()
                              * params.writeEnergyPj;
                    cellWrites += addrMap.blocksPerRow();
                }
            }
            uint64_t row_id =
                (static_cast<uint64_t>(req.loc.rank) << 40)
                | (static_cast<uint64_t>(req.loc.bank) << 32)
                | physical_row;
            rowWearMap[row_id] += bank.dirtyBlocks;
        }
        // Activate: array read of the target row into the row buffer.
        t += params.tRCD;
        ++rowActivations;
        arrayEnergy += params.readEnergyPj;
        bank.rowOpen = true;
        bank.openRow = req.loc.row;
        bank.dirtyBlocks = 0;
    }

    Tick done;
    if (req.pkt.isRead()) {
        done = t + params.tCL + params.tBURST;
        ++readReqs;
    } else {
        // Write lands in the row buffer.
        done = t + params.tCL;
        ++writeReqs;
        if (bank.dirtyBlocks < addrMap.blocksPerRow())
            ++bank.dirtyBlocks;
    }
    bank.freeAt = done;

    ++inFlight;
    Tick enq = req.enqueued;
    MemPacket pkt = std::move(req.pkt);
    PacketCallback cb = std::move(req.cb);
    eventQueue().schedule(done,
        [this, enq, pkt = std::move(pkt),
         cb = std::move(cb)]() mutable {
            if (pkt.isRead()) {
                pkt.data = store.read(pkt.addr);
                readLatencyNs.sample(ticksToNs(curTick() - enq));
            } else {
                store.write(pkt.addr, pkt.data);
            }
            --inFlight;
            cb(std::move(pkt));
            trySchedule();
        });
    return done;
}

uint64_t
PcmController::maxRowCellWrites() const
{
    uint64_t max_writes = 0;
    for (const auto &[row, writes] : rowWearMap)
        max_writes = std::max(max_writes, writes);
    return max_writes;
}

} // namespace obfusmem
