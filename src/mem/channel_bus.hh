/**
 * @file
 * The exposed processor-memory channel: a half-duplex data bus with
 * finite bandwidth (12.8 GB/s per channel in Table 2). This is the
 * only part of the system an external attacker can observe, so every
 * message carries the bytes that would really appear on the wires and
 * bus observers (src/obfusmem/observer.hh) can tap it.
 */

#ifndef OBFUSMEM_MEM_CHANNEL_BUS_HH
#define OBFUSMEM_MEM_CHANNEL_BUS_HH

#include <deque>
#include <functional>

#include "sim/sim_object.hh"

namespace obfusmem {

/** Direction of a bus message. */
enum class BusDir : uint8_t { ToMemory, ToProcessor };

/** What an attacker probing the bus wires can see of one message. */
struct BusSnoop
{
    Tick when;
    BusDir dir;
    uint32_t bytes;
    /** Address bits as they appear on the wires (possibly ciphertext). */
    uint64_t wireAddr;
    /** Command bit as it appears on the wires. */
    bool wireIsWrite;
    unsigned channel;
};

/** Passive observer interface (the attacker's probe). */
class BusProbe
{
  public:
    virtual ~BusProbe() = default;
    virtual void observe(const BusSnoop &snoop) = 0;
};

class FaultInjector;

/**
 * What happened to a message in flight, handed to the receiver at
 * delivery. The wire already carried the original burst (the snoop
 * fires before the fault is applied — an attacker injecting faults
 * still saw the transmitted bytes), so corruption and duplication are
 * modeled at the receiving pin: `corrupted` means the receiver
 * latched a flipped bit, `duplicated` means the link retransmitted
 * and the receiver latched the frame twice back-to-back.
 */
struct BusFault
{
    bool corrupted = false;
    bool duplicated = false;
    /** Deterministic entropy (e.g. which header bit flipped). */
    uint64_t entropy = 0;
};

/**
 * One memory channel's exposed bus. Messages are serialized FIFO;
 * a message occupies the bus for bytes/bandwidth (plus a fixed
 * propagation delay), and zero-byte messages model command-bus-only
 * traffic that does not consume data-bus bandwidth.
 */
class ChannelBus : public SimObject
{
  public:
    struct Params
    {
        /** Data bandwidth in bytes per nanosecond (12.8 GB/s). */
        double bytesPerNs = 12.8;
        /** Wire propagation + SerDes delay per message. */
        Tick propagationDelay = 1 * tickPerNs;
        /** Time a zero-byte (command-only) message occupies. */
        Tick commandSlot = 1250; // one 800 MHz bus cycle
    };

    ChannelBus(const std::string &name, EventQueue &eq,
               statistics::Group *parent, unsigned channel_id,
               const Params &params);

    /**
     * Transmit a message. `deliver` fires when the last byte arrives
     * at the far end; a dropped message never delivers.
     *
     * @param dir Direction of travel.
     * @param bytes Data-bus bytes the message occupies.
     * @param snoop_addr Address bits visible on the wires.
     * @param snoop_is_write Command bit visible on the wires.
     * @param deliver Called at delivery time with the fault verdict
     *                (all-clear when no injector is attached).
     */
    void send(BusDir dir, uint32_t bytes, uint64_t snoop_addr,
              bool snoop_is_write,
              std::function<void(const BusFault &)> deliver);

    /** Attach a passive probe (attacker or analysis). */
    void attachProbe(BusProbe *probe) { probes.push_back(probe); }

    /** Attach a fault source (nullptr detaches). Not owned. */
    void setFaultInjector(FaultInjector *inj) { faults = inj; }

    /** True if nothing is in flight or queued. */
    bool idle() const { return !transferring && pending.empty(); }

    /** Fraction of elapsed time the data bus was busy. */
    double utilization() const;

    unsigned channelId() const { return channel; }

  private:
    struct Message
    {
        BusDir dir;
        uint32_t bytes;
        uint64_t snoopAddr;
        bool snoopIsWrite;
        std::function<void(const BusFault &)> deliver;
    };

    void startNext();
    Tick occupancy(uint32_t bytes) const;

    Params params;
    unsigned channel;
    std::deque<Message> pending;
    std::deque<Tick> enqueueTicks;
    bool transferring = false;
    std::vector<BusProbe *> probes;
    FaultInjector *faults = nullptr;

    statistics::Scalar messagesSent;
    statistics::Scalar bytesSent;
    statistics::Scalar busBusyTicks;
    statistics::Average queueDelayNs;
};

} // namespace obfusmem

#endif // OBFUSMEM_MEM_CHANNEL_BUS_HH
