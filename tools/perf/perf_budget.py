#!/usr/bin/env python3
"""CI perf budget: compare bench JSONL wall times against a baseline.

The benches emit one JSONL row per measurement when OBFUSMEM_BENCH_JSON
is set; every binary also appends a `total_wall` summary row covering
its whole lifetime (bench_common.hh Session). This script compares the
rows named in the checked-in baseline against a fresh run and fails on
regressions past the tolerance, so a change that quietly serializes the
batch pipeline or regresses the event kernel fails in CI rather than in
the next paper-figure sweep.

Usage:
    perf_budget.py run.jsonl [more.jsonl ...] [--baseline FILE]
                   [--update]

The baseline (tools/perf/perf_budget_baseline.json) maps
"bench|config|workload" keys to reference wall_ms values plus a shared
relative tolerance. `--update` rewrites the baselined values from the
given run (tolerance and key set are kept), which is how the numbers
are refreshed after an intentional perf change.

Escape hatches (for noisy or differently-sized runners):
    OBFUSMEM_PERF_BUDGET_SKIP=1        skip the comparison entirely
    OBFUSMEM_PERF_BUDGET_TOLERANCE=x   override the relative tolerance
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__),
                                "perf_budget_baseline.json")


def load_rows(paths):
    """Last wall_ms per bench|config|workload key across the run."""
    rows = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                key = "|".join((row.get("bench", ""),
                                row.get("config", ""),
                                row.get("workload", "")))
                if "wall_ms" in row:
                    rows[key] = float(row["wall_ms"])
    return rows


def main():
    ap = argparse.ArgumentParser(
        description="Bench wall-time budget gate")
    ap.add_argument("jsonl", nargs="+", help="bench JSONL run files")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--update", action="store_true",
                    help="rewrite baselined values from this run")
    args = ap.parse_args()

    if os.environ.get("OBFUSMEM_PERF_BUDGET_SKIP") == "1":
        print("perf-budget: skipped (OBFUSMEM_PERF_BUDGET_SKIP=1)")
        return 0

    with open(args.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    tolerance = float(os.environ.get("OBFUSMEM_PERF_BUDGET_TOLERANCE",
                                     baseline.get("tolerance", 0.10)))
    entries = baseline.get("entries", {})
    rows = load_rows(args.jsonl)

    if args.update:
        missing = [k for k in entries if k not in rows]
        if missing:
            for k in missing:
                print(f"perf-budget: --update run is missing {k}",
                      file=sys.stderr)
            return 1
        for key in entries:
            entries[key]["wall_ms"] = round(rows[key], 3)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump({"tolerance": baseline.get("tolerance", 0.10),
                       "entries": entries}, fh, indent=2)
            fh.write("\n")
        print(f"perf-budget: baseline updated ({len(entries)} "
              f"entries)")
        return 0

    failures = []
    print(f"{'key':<44} {'base ms':>9} {'run ms':>9} {'delta':>8}")
    for key, ref in sorted(entries.items()):
        base = float(ref["wall_ms"])
        if key not in rows:
            print(f"{key:<44} {base:>9.1f} {'absent':>9} {'--':>8}")
            failures.append(f"{key}: missing from the run (bench "
                            "renamed or JSONL sink broken?)")
            continue
        wall = rows[key]
        delta = wall / base - 1.0
        print(f"{key:<44} {base:>9.1f} {wall:>9.1f} {delta:>+7.1%}")
        if delta > tolerance:
            failures.append(
                f"{key}: {wall:.1f} ms vs baseline {base:.1f} ms "
                f"({delta:+.1%} > +{tolerance:.0%})")
    if failures:
        print(f"\nperf-budget: FAIL ({len(failures)} regression(s), "
              f"tolerance +{tolerance:.0%}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("  (intentional? refresh with perf_budget.py --update; "
              "noisy runner? OBFUSMEM_PERF_BUDGET_SKIP=1)",
              file=sys.stderr)
        return 1
    print(f"perf-budget: OK ({len(entries)} entries within "
          f"+{tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
