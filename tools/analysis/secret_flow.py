#!/usr/bin/env python3
"""
Secret-flow static analyzer for the ObfusMem tree.

Interprocedural taint analysis from OBF_SECRET annotation sources
(src/util/secret.hh) to constant-time-violating sinks. See
tools/analysis/secretflow/ for the engine and DESIGN.md Sec. 11 for
the annotation taxonomy.

Usage:
    tools/analysis/secret_flow.py [paths...]          # default: src/
    tools/analysis/secret_flow.py --self-test         # corpus check
    tools/analysis/secret_flow.py --frontend clang src/crypto

Output format (one finding per line):
    path:line: [rule] message

Exit status: number of findings not covered by the baseline (0-125),
126 on baseline misuse (empty justification is a hard error).

Frontends:
    lite   -- built-in tokenizer, reads raw source; no toolchain
              needed. The default when clang++ is not installed.
    clang  -- consumes `clang++ -fsyntax-only -Xclang
              -ast-dump=json`; the reference frontend, used in CI.
              AST dumps are cached under --cache-dir keyed by file
              hash, keeping repeat CI runs fast.
    auto   -- clang if available, else lite.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from secretflow import baseline as baseline_mod  # noqa: E402
from secretflow import clang_frontend, lite_frontend  # noqa: E402
from secretflow.ir import Program, RULES  # noqa: E402
from secretflow.taint import analyze  # noqa: E402

SOURCE_EXTS = (".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h")


def repo_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def collect_files(paths: list[str], root: str) -> list[str]:
    files: list[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, _, names in os.walk(ap):
                for n in sorted(names):
                    if n.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, n))
        else:
            print(f"secret-flow: no such path: {p}", file=sys.stderr)
    return files


def pick_frontend(requested: str, clangxx: str) -> str:
    if requested != "auto":
        return requested
    return "clang" if shutil.which(clangxx) else "lite"


def build_program(files: list[str], frontend: str, root: str,
                  clangxx: str, clang_flags: list[str],
                  cache_dir: str | None) -> Program:
    prog = Program()
    for path in files:
        rel = os.path.relpath(path, root)
        if frontend == "clang" and path.endswith(
                (".cc", ".cpp", ".cxx")):
            prog.merge(clang_frontend.parse_file(
                path, clang_flags, display_path=rel,
                clangxx=clangxx, cache_dir=cache_dir))
        elif frontend == "clang":
            # Headers are not TUs; their annotations reach clang via
            # the including .cc, but header-inline bodies are only
            # covered by the lite frontend. Run it as a supplement so
            # neither frontend silently skips them.
            prog.merge(lite_frontend.parse_file(
                path, display_path=rel))
        else:
            prog.merge(lite_frontend.parse_file(
                path, display_path=rel))
    return prog


def run_analysis(paths, args, root) -> int:
    frontend = pick_frontend(args.frontend, args.clangxx)
    files = collect_files(paths, root)
    if not files:
        print("secret-flow: nothing to analyze", file=sys.stderr)
        return 0
    clang_flags = ["-std=c++20", "-I", os.path.join(root, "src"),
                   *args.clang_flag]
    prog = build_program(files, frontend, root, args.clangxx,
                         clang_flags, args.cache_dir)
    findings = analyze(prog)
    # Only report findings inside the requested paths (the program
    # may pull in more files for interprocedural context).
    wanted = {os.path.relpath(f, root) for f in files}
    findings = [f for f in findings if f.file in wanted]

    bl = baseline_mod.Baseline()
    if args.baseline and os.path.exists(args.baseline):
        try:
            bl = baseline_mod.load(args.baseline)
        except baseline_mod.BaselineError as exc:
            print(f"secret-flow: {exc}", file=sys.stderr)
            return 126

    reported = 0
    suppressed = 0
    for f in findings:
        if bl.suppresses(f):
            suppressed += 1
            if args.show_baselined:
                print(f"{f.format()}  [baselined]")
        else:
            print(f.format())
            reported += 1
    for e in bl.unused():
        print(f"secret-flow: warning: unused baseline entry "
              f"({args.baseline}:{e.lineno}): "
              f"{e.rule}|{e.path}|{e.function}", file=sys.stderr)
    print(f"secret-flow[{frontend}]: {len(files)} file(s), "
          f"{reported} finding(s), {suppressed} baselined",
          file=sys.stderr)
    return min(reported, 125)


def run_self_test(args, root) -> int:
    """Known-bad corpus must be caught (every `// FLAG: rule` line),
    known-good must be clean."""
    frontend = pick_frontend(args.frontend, args.clangxx)
    corpus = os.path.join(root, "tools", "analysis", "corpus")
    clang_flags = ["-std=c++20", "-I", os.path.join(root, "src"),
                   *args.clang_flag]
    failures = 0
    checked = 0
    for name in sorted(os.listdir(corpus)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(corpus, name)
        rel = os.path.relpath(path, root)
        prog = build_program([path], frontend, root, args.clangxx,
                             clang_flags, args.cache_dir)
        findings = analyze(prog)
        by_line = {}
        for f in findings:
            by_line.setdefault((f.rule, f.line), []).append(f)
        expected = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if "// FLAG:" in line:
                    rule = line.split("// FLAG:")[1].strip()
                    assert rule in RULES, \
                        f"{rel}:{lineno}: unknown rule '{rule}'"
                    expected.append((rule, lineno))
        checked += 1
        if name.startswith("bad_"):
            assert expected, f"{rel}: bad corpus file without FLAGs"
            for rule, lineno in expected:
                if (rule, lineno) in by_line:
                    continue
                failures += 1
                print(f"SELF-TEST FAIL: {rel}:{lineno}: expected "
                      f"[{rule}] finding, analyzer reported: "
                      + (", ".join(
                          f"{f.rule}@{f.line}" for f in findings)
                          or "nothing"))
        elif name.startswith("good_"):
            assert not expected, f"{rel}: good corpus file with FLAGs"
            for f in findings:
                failures += 1
                print(f"SELF-TEST FAIL: {rel}: expected clean, got "
                      + f.format())
    status = "PASS" if failures == 0 else "FAIL"
    print(f"secret-flow[{frontend}] self-test: {status} "
          f"({checked} corpus files, {failures} failure(s))")
    return 0 if failures == 0 else 1


def main() -> int:
    ap = argparse.ArgumentParser(
        prog="secret_flow.py",
        description="Secret-flow (taint) analyzer for constant-time "
                    "discipline.")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src/)")
    ap.add_argument("--root", default=repo_root(),
                    help="repository root for relative paths")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "lite", "clang"))
    ap.add_argument("--clangxx", default="clang++",
                    help="clang++ binary for the clang frontend")
    ap.add_argument("--clang-flag", action="append", default=[],
                    help="extra flag for the clang AST dump")
    ap.add_argument("--cache-dir", default=None,
                    help="AST dump cache directory (clang frontend)")
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root(), "tools",
                                         "analysis", "baseline.txt"),
                    help="baseline/allowlist file ('' to disable)")
    ap.add_argument("--show-baselined", action="store_true",
                    help="also print suppressed findings")
    ap.add_argument("--self-test", action="store_true",
                    help="run the known-good/known-bad corpus")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(args, root)
    # Default scope: the annotated crypto/secure/obfusmem stack.
    # Unannotated simulator plumbing (cpu/, sim/, mem/) has no
    # secret sources and only adds noise; pass `src` explicitly to
    # sweep everything.
    paths = args.paths or ["src/crypto", "src/secure",
                           "src/obfusmem", "src/trust", "src/check",
                           "src/util"]
    return run_analysis(paths, args, root)


if __name__ == "__main__":
    sys.exit(main())
