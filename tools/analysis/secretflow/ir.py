"""
Frontend-neutral IR for the secret-flow analyzer.

A `Program` is a bag of `Function`s plus the annotation side tables.
Variables are opaque strings: the lite frontend uses source-level
identifiers (scoped per function), the clang frontend uses AST decl
ids, which are globally unique. The taint engine only ever compares
them for equality, so either works.
"""

from __future__ import annotations

from dataclasses import dataclass, field


SECRET = "secret"
PUBLIC = "public"

# Calls whose implementations are constant-time by construction.
# They act as taint barriers: no findings at the call site and the
# result is untainted (ctEqual's bool is the classic deliberately
# public comparison outcome).
CT_SAFE_CALLS = {
    "ctEqual",
    "secureZero",
    "ctSwap",
    "powModCt",
}

# Variable-time library calls (rule: variable-time).
VARIABLE_TIME_CALLS = {
    "memcmp",
    "strcmp",
    "strncmp",
    "strcasecmp",
    "strncasecmp",
    "bcmp",
}

# External observation points (rule: secret-sink): the repo's logging
# macros, stats hooks and stdio. Stream output to cout/cerr is
# detected separately (Event.kind == "stream").
SINK_CALLS = {
    "panic",
    "fatal",
    "fatal_if",
    "panic_if",
    "warn",
    "warn_if",
    "inform",
    "hack",
    "printf",
    "fprintf",
    "sprintf",
    "snprintf",
    "puts",
    "fputs",
    "putchar",
    "writeJsonl",
    "recordStat",
}

RULES = ("secret-branch", "secret-index", "variable-time", "secret-sink")


@dataclass
class Event:
    """One taint-relevant operation inside a function body."""

    kind: str  # assign | branch | index | call | binop | return | stream
    line: int
    # assign: ids written; branch/index/binop/return/stream: ids read.
    ids: set[str] = field(default_factory=set)
    # assign only: ids read on the right-hand side.
    rhs: set[str] = field(default_factory=set)
    # call only.
    callee: str = ""
    args: list[set[str]] = field(default_factory=list)
    # call: synthetic id holding the call result (so nested uses of
    # the result -- branch conditions, subscripts -- see its taint).
    result: str = ""
    # branch: if/while/for/switch/ternary; binop: % or /.
    detail: str = ""


@dataclass
class Function:
    name: str  # last component, e.g. "setKey"
    qualifier: str  # enclosing class, "" for free functions
    file: str
    line: int
    # Parameter variables in positional order.
    params: list[str] = field(default_factory=list)
    # var -> SECRET | PUBLIC, from annotations on params/locals.
    annots: dict[str, str] = field(default_factory=dict)
    returns_secret: bool = False  # OBF_SECRET on the return type
    returns_public: bool = False  # OBF_PUBLIC on the return type
    events: list[Event] = field(default_factory=list)

    @property
    def display(self) -> str:
        return f"{self.qualifier}::{self.name}" if self.qualifier \
            else self.name


@dataclass
class Program:
    functions: list[Function] = field(default_factory=list)
    # (class, member-or-declid) -> SECRET | PUBLIC for annotated
    # members. The lite frontend scopes by class name; the clang
    # frontend uses ("", decl-id) since ids are globally unique.
    members: dict[tuple[str, str], str] = field(default_factory=dict)
    # Summaries from declarations without bodies (headers):
    # name -> (returns_secret, returns_public, {pos: annot}).
    decl_summaries: dict[str, tuple[bool, bool, dict[int, str]]] = \
        field(default_factory=dict)
    # file -> lines containing OBF_DECLASSIFY (findings suppressed).
    declassified: dict[str, set[int]] = field(default_factory=dict)

    def merge(self, other: "Program") -> None:
        self.functions.extend(other.functions)
        self.members.update(other.members)
        for name, (rs, rp, pa) in other.decl_summaries.items():
            ors, orp, opa = self.decl_summaries.get(
                name, (False, False, {}))
            merged = dict(opa)
            merged.update(pa)
            self.decl_summaries[name] = (rs or ors, rp or orp, merged)
        for f, lines in other.declassified.items():
            self.declassified.setdefault(f, set()).update(lines)


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str
    line: int
    function: str  # display name of the enclosing function
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
