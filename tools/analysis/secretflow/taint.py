"""
Interprocedural taint engine.

Flow-insensitive fixpoint over the frontend-neutral IR:

  - Seeds: OBF_SECRET parameters, locals and class members; results
    of calls to functions whose return type is OBF_SECRET.
  - Propagation: assignments, call arguments into callee parameters
    (re-analyzed until stable), and callee return-taint summaries.
    Calls to unknown functions conservatively pass taint from any
    argument to the result.
  - Barriers: OBF_PUBLIC annotations force a variable/return public;
    the CT_SAFE_CALLS set (ctEqual, secureZero, ctSwap, powModCt)
    neither leaks nor propagates; OBF_DECLASSIFY suppresses findings
    on its source line (handled by the driver via
    Program.declassified).

Deliberate imprecision (documented in DESIGN.md Sec. 11): receiver
taint makes a method call's *result* tainted but is not pushed into
the callee's member state, and overloads sharing a name share one
summary. Both err on the side the baseline can absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import (CT_SAFE_CALLS, Finding, Function, Program, SECRET,
                 PUBLIC, SINK_CALLS, VARIABLE_TIME_CALLS)


@dataclass
class Summary:
    returns_secret: bool = False
    returns_public: bool = False
    param_annots: dict[int, str] = field(default_factory=dict)
    inferred_taint: set[int] = field(default_factory=set)
    defined: bool = False


def _display_ids(ids: set[str]) -> str:
    names = sorted({i.split("#", 1)[0] for i in ids
                    if not i.startswith("__call")})
    if not names:
        return "a secret-derived call result"
    return "'" + "', '".join(names) + "'"


class Engine:
    def __init__(self, prog: Program):
        self.prog = prog
        self.summaries: dict[str, Summary] = {}
        self._final_taint: dict[int, set[str]] = {}
        self._build_summaries()

    def _build_summaries(self) -> None:
        for name, (rs, rp, annots) in \
                self.prog.decl_summaries.items():
            s = self.summaries.setdefault(name, Summary())
            s.returns_secret |= rs
            s.returns_public |= rp
            for pos, a in annots.items():
                s.param_annots.setdefault(pos, a)
        for fn in self.prog.functions:
            s = self.summaries.setdefault(fn.name, Summary())
            s.defined = True
            s.returns_secret |= fn.returns_secret
            s.returns_public |= fn.returns_public
            for pos, p in enumerate(fn.params):
                a = fn.annots.get(p)
                if a:
                    s.param_annots.setdefault(pos, a)

    # ---- per-function propagation ----------------------------------

    def _seeds(self, fn: Function) -> tuple[set[str], set[str]]:
        tainted: set[str] = set()
        public: set[str] = set()
        summary = self.summaries[fn.name]
        for pos, p in enumerate(fn.params):
            annot = fn.annots.get(p) or summary.param_annots.get(pos)
            if annot == PUBLIC:
                public.add(p)
            elif annot == SECRET or pos in summary.inferred_taint:
                tainted.add(p)
        for var, annot in fn.annots.items():
            if annot == SECRET:
                tainted.add(var)
            elif annot == PUBLIC:
                public.add(var)
        for (cls, var), annot in self.prog.members.items():
            if cls and cls != fn.qualifier:
                continue
            if annot == SECRET:
                tainted.add(var)
            else:
                public.add(var)
        tainted -= public
        return tainted, public

    def _map_args(self, args: list[set[str]], summary: Summary,
                  nparams: int) -> list[tuple[int, set[str]]]:
        """Pair call-site arguments with callee parameter positions,
        dropping a leading receiver entry when present."""
        start = 1 if len(args) == nparams + 1 else 0
        return [(pos, argids)
                for pos, argids in enumerate(args[start:])
                if pos < nparams]

    def _run_function(self, fn: Function) -> bool:
        """One pass; returns True if any global summary changed."""
        tainted, public = self._seeds(fn)
        changed_global = False
        summary = self.summaries[fn.name]
        nparams = {f.name: len(f.params)
                   for f in self.prog.functions}
        for _ in range(64):  # local fixpoint; converges fast
            before = len(tainted)
            for ev in fn.events:
                if ev.kind == "assign":
                    if ev.rhs & tainted:
                        tainted |= ev.ids - public
                elif ev.kind == "call":
                    cs = self.summaries.get(ev.callee)
                    if ev.callee in CT_SAFE_CALLS:
                        continue
                    arg_tainted = any(a & tainted for a in ev.args)
                    result_secret = False
                    if cs and cs.returns_public:
                        result_secret = False
                    elif cs and cs.returns_secret:
                        result_secret = True
                    elif arg_tainted:
                        result_secret = True
                    if result_secret and ev.result:
                        tainted.add(ev.result)
                    # OBF_SECRET out-params taint the caller's
                    # argument (pads, derived keys written through
                    # references).
                    if cs:
                        np = nparams.get(ev.callee, len(ev.args))
                        for pos, argids in self._map_args(
                                ev.args, cs, np):
                            if cs.param_annots.get(pos) == SECRET:
                                tainted |= argids - public
                    # Push taint into a defined callee's params.
                    if cs and cs.defined and arg_tainted:
                        np = nparams.get(ev.callee, len(ev.args))
                        for pos, argids in self._map_args(
                                ev.args, cs, np):
                            if not argids & tainted:
                                continue
                            if cs.param_annots.get(pos) == PUBLIC:
                                continue
                            if pos not in cs.inferred_taint:
                                cs.inferred_taint.add(pos)
                                changed_global = True
                elif ev.kind == "return":
                    if ev.ids & tainted and not fn.returns_public \
                            and not summary.returns_public:
                        if not summary.returns_secret:
                            summary.returns_secret = True
                            changed_global = True
            if len(tainted) == before:
                break
        self._final_taint[id(fn)] = tainted
        return changed_global

    # ---- driver ----------------------------------------------------

    def run(self) -> None:
        for _ in range(32):  # global fixpoint
            changed = False
            for fn in self.prog.functions:
                changed |= self._run_function(fn)
            if not changed:
                break

    def findings(self) -> list[Finding]:
        out: list[Finding] = []
        seen: set[tuple] = set()

        def emit(rule, fn, line, msg):
            if line in self.prog.declassified.get(fn.file, set()):
                return
            key = (rule, fn.file, line)
            if key in seen:
                return
            seen.add(key)
            out.append(Finding(rule, fn.file, line, fn.display, msg))

        for fn in self.prog.functions:
            tainted = self._final_taint.get(id(fn), set())
            if not tainted:
                continue
            for ev in fn.events:
                hot = ev.ids & tainted
                if ev.kind == "branch" and hot:
                    what = ("loop bound or condition"
                            if ev.detail in ("for", "while")
                            else "branch condition")
                    emit("secret-branch", fn, ev.line,
                         f"{what} depends on secret-tainted "
                         f"{_display_ids(hot)} "
                         f"(in {fn.display})")
                elif ev.kind == "index" and hot:
                    emit("secret-index", fn, ev.line,
                         "memory indexed by secret-tainted "
                         f"{_display_ids(hot)} (in {fn.display}); "
                         "secret-dependent addresses leak through "
                         "the cache")
                elif ev.kind == "binop" and hot:
                    emit("variable-time", fn, ev.line,
                         f"'{ev.detail}' on secret-tainted "
                         f"{_display_ids(hot)} (in {fn.display}); "
                         "division latency is operand-dependent")
                elif ev.kind == "stream" and hot:
                    emit("secret-sink", fn, ev.line,
                         "secret-tainted "
                         f"{_display_ids(hot)} written to an "
                         f"output stream (in {fn.display})")
                elif ev.kind == "call":
                    if ev.callee in CT_SAFE_CALLS:
                        continue
                    hot_args: set[str] = set()
                    for a in ev.args:
                        hot_args |= a & tainted
                    if not hot_args:
                        continue
                    if ev.callee in VARIABLE_TIME_CALLS:
                        emit("variable-time", fn, ev.line,
                             f"variable-time call {ev.callee}() on "
                             "secret-tainted "
                             f"{_display_ids(hot_args)} "
                             f"(in {fn.display}); use "
                             "crypto::ctEqual instead")
                    elif ev.callee in SINK_CALLS:
                        emit("secret-sink", fn, ev.line,
                             "secret-tainted "
                             f"{_display_ids(hot_args)} passed to "
                             f"external sink {ev.callee}() "
                             f"(in {fn.display})")
        out.sort(key=lambda f: (f.file, f.line, f.rule))
        return out


def analyze(prog: Program) -> list[Finding]:
    eng = Engine(prog)
    eng.run()
    return eng.findings()
