"""
secretflow: interprocedural secret-flow (taint) analysis for the
ObfusMem tree.

Sources are `OBF_SECRET` annotations (src/util/secret.hh); sinks are
the four constant-time rules:

  secret-branch  -- branch / loop bound / ternary on a tainted value
  secret-index   -- array subscript or pointer arithmetic with a
                    tainted index
  variable-time  -- memcmp/strcmp-family call or %, / operator on a
                    tainted operand
  secret-sink    -- tainted value reaching an unannotated external
                    sink (logging, stats, stream output)

Two interchangeable frontends produce the same IR (`secretflow.ir`):

  clang_frontend -- consumes `clang++ -fsyntax-only -Xclang
                    -ast-dump=json` output; the reference frontend,
                    used in CI.
  lite_frontend  -- a built-in tokenizer that reads raw C++ source
                    (the annotation macros themselves); used where
                    clang is unavailable and as a cross-check.

`secretflow.taint` runs the interprocedural fixpoint over either
IR; `secretflow.baseline` applies the allowlist with mandatory
justifications.
"""

__all__ = ["ir", "baseline", "lite_frontend", "clang_frontend", "taint"]
