"""
Clang frontend: builds the secretflow IR from
`clang++ -fsyntax-only -Xclang -ast-dump=json` output.

Variables are identified by AST decl id (globally unique within a
translation unit), rendered as "name#0xID" so diagnostics stay
readable while equality stays precise. Annotations come from
`AnnotateAttr` nodes carrying the strings "obf_secret" / "obf_public"
emitted by src/util/secret.hh under clang.

Clang's JSON dump elides source locations that repeat the previous
one, so the walker threads (file, line) state through the traversal.
Only declarations spelled in the translation unit's main file are
lowered; included headers still contribute annotation side tables.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess

from .ir import Event, Function, Program

_FN_KINDS = {
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl",
}

_BRANCH_KINDS = {
    "IfStmt": "if",
    "WhileStmt": "while",
    "DoStmt": "while",
    "ForStmt": "for",
    "CXXForRangeStmt": "for",
    "SwitchStmt": "switch",
    "ConditionalOperator": "ternary",
}


class ClangError(Exception):
    pass


def dump_ast(path: str, flags: list[str], clangxx: str = "clang++",
             cache_dir: str | None = None) -> dict:
    """Run clang and return the parsed JSON AST, with optional
    on-disk caching keyed by (file bytes, flags, compiler)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    key = hashlib.sha256(
        blob + "\0".join([clangxx, *flags]).encode()).hexdigest()
    cache_file = None
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        cache_file = os.path.join(cache_dir, key + ".json")
        if os.path.exists(cache_file):
            with open(cache_file, "r", encoding="utf-8") as fh:
                return json.load(fh)
    cmd = [clangxx, "-fsyntax-only", "-Xclang", "-ast-dump=json",
           *flags, path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0 or not proc.stdout:
        raise ClangError(
            f"clang AST dump failed for {path}:\n{proc.stderr[-2000:]}")
    ast = json.loads(proc.stdout)
    if cache_file:
        tmp = cache_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(ast, fh)
        os.replace(tmp, cache_file)
    return ast


def _annotation(node: dict) -> str | None:
    """Extract obf_secret/obf_public from a decl's AnnotateAttr, if
    any. The annotation string lands in different places across
    clang versions, so fall back to a subtree text search."""
    for attr in node.get("inner", []) or []:
        if attr.get("kind") != "AnnotateAttr":
            continue
        text = json.dumps(attr)
        if "obf_secret" in text:
            return "secret"
        if "obf_public" in text:
            return "public"
    return None


class _Walker:
    def __init__(self, main_file: str, display_path: str):
        self.main_file = main_file
        self.display = display_path
        self.prog = Program()
        self.cur_file = ""
        self.cur_line = 0
        self._temp = 0

    # -- location state ----------------------------------------------

    def _update_loc(self, node: dict) -> None:
        loc = node.get("loc") or {}
        for sub in (loc.get("spellingLoc"), loc.get("expansionLoc"),
                    loc):
            if not isinstance(sub, dict):
                continue
            if "file" in sub:
                self.cur_file = sub["file"]
            if "line" in sub:
                self.cur_line = sub["line"]
        rng = node.get("range") or {}
        begin = rng.get("begin") or {}
        for sub in (begin.get("spellingLoc"),
                    begin.get("expansionLoc"), begin):
            if not isinstance(sub, dict):
                continue
            if "file" in sub:
                self.cur_file = sub["file"]
            if "line" in sub:
                self.cur_line = sub["line"]

    def _in_main_file(self) -> bool:
        return os.path.realpath(self.cur_file) == self.main_file \
            if self.cur_file else False

    # -- id collection -----------------------------------------------

    def _var(self, name: str, declid: str) -> str:
        return f"{name}#{declid}"

    def _collect_refs(self, node, out: set[str]) -> None:
        if isinstance(node, list):
            for n in node:
                self._collect_refs(n, out)
            return
        if not isinstance(node, dict):
            return
        kind = node.get("kind")
        if kind == "DeclRefExpr":
            ref = node.get("referencedDecl") or {}
            out.add(self._var(ref.get("name", "?"),
                              ref.get("id", "?")))
        elif kind == "MemberExpr":
            out.add(self._var(node.get("name", "?"),
                              node.get("referencedMemberDecl", "?")))
        self._collect_refs(node.get("inner", []), out)

    def _callee_name(self, node: dict) -> str:
        """Name of the function a CallExpr resolves to."""
        if not isinstance(node, dict):
            return ""
        kind = node.get("kind")
        if kind in ("DeclRefExpr", "MemberExpr"):
            if kind == "DeclRefExpr":
                return (node.get("referencedDecl") or {}).get(
                    "name", "")
            return node.get("name", "").lstrip("->.")
        for child in node.get("inner", []) or []:
            name = self._callee_name(child)
            if name:
                return name
        return ""

    # -- statement lowering ------------------------------------------

    def _fresh(self) -> str:
        self._temp += 1
        return f"__call{self._temp}"

    def _subscript_ids(self, node) -> set[str]:
        """Refs used as subscript indices anywhere in a subtree;
        excluded from the ids an assignment *writes*."""
        out: set[str] = set()
        if isinstance(node, list):
            for c in node:
                out |= self._subscript_ids(c)
            return out
        if not isinstance(node, dict):
            return out
        if node.get("kind") == "ArraySubscriptExpr":
            inner = node.get("inner") or []
            if len(inner) >= 2:
                self._collect_refs(inner[1], out)
        out |= self._subscript_ids(node.get("inner", []))
        return out

    def _lower(self, node, fn: Function) -> set[str]:
        """Lower an expression/statement subtree into events; returns
        the ids the subtree's value depends on."""
        if isinstance(node, list):
            ids: set[str] = set()
            for n in node:
                ids |= self._lower(n, fn)
            return ids
        if not isinstance(node, dict):
            return set()
        self._update_loc(node)
        line = self.cur_line
        kind = node.get("kind", "")
        inner = node.get("inner", []) or []

        if kind in _BRANCH_KINDS:
            cond = self._branch_cond(kind, node)
            cond_ids = self._lower(cond, fn) if cond else set()
            if cond_ids:
                fn.events.append(Event(
                    "branch", self.cur_line, ids=cond_ids,
                    detail=_BRANCH_KINDS[kind]))
            rest = [c for c in inner if c is not cond]
            body_ids = self._lower(rest, fn)
            return cond_ids | body_ids

        if kind == "ArraySubscriptExpr" and len(inner) >= 2:
            base_ids = self._lower(inner[0], fn)
            idx_ids = self._lower(inner[1], fn)
            if idx_ids:
                fn.events.append(Event("index", line, ids=idx_ids))
            return base_ids | idx_ids

        if kind in ("BinaryOperator", "CompoundAssignOperator"):
            op = node.get("opcode", "")
            lhs = self._lower(inner[0], fn) if inner else set()
            rhs = self._lower(inner[1:], fn)
            if op in ("%", "/", "%=", "/="):
                hot = lhs | rhs
                if hot:
                    fn.events.append(Event(
                        "binop", line, ids=hot, detail=op.rstrip("=")))
            if op in ("=",) or op.endswith("="):
                if op not in ("==", "!=", "<=", ">="):
                    write = lhs - self._subscript_ids(
                        inner[0] if inner else {})
                    fn.events.append(Event(
                        "assign", line, ids=write, rhs=rhs | (
                            lhs if op != "=" else set())))
            return lhs | rhs

        if kind in ("CallExpr", "CXXMemberCallExpr",
                    "CXXOperatorCallExpr"):
            callee_node = inner[0] if inner else None
            callee = self._callee_name(callee_node or {})
            args: list[set[str]] = []
            for child in inner:
                child_ids = self._lower(child, fn)
                args.append(child_ids)
            # inner[0] is the callee expression; for member calls its
            # refs include the receiver, which _map_args treats as a
            # possible leading receiver entry.
            if callee == "operator<<":
                streamy = any("cout#" in i or "cerr#" in i
                              or "clog#" in i
                              for a in args for i in a)
                flat = set().union(*args) if args else set()
                if streamy and flat:
                    fn.events.append(Event("stream", line, ids=flat))
            tmp = self._fresh()
            fn.events.append(Event("call", line, callee=callee,
                                   args=args, result=tmp))
            return {tmp} | (set().union(*args) if args else set())

        if kind == "ReturnStmt":
            ids = self._lower(inner, fn)
            fn.events.append(Event("return", line, ids=ids))
            return ids

        if kind == "DeclStmt":
            ids: set[str] = set()
            for child in inner:
                if child.get("kind") == "VarDecl":
                    var = self._var(child.get("name", "?"),
                                    child.get("id", "?"))
                    annot = _annotation(child)
                    if annot:
                        fn.annots[var] = annot
                    init_ids = self._lower(
                        child.get("inner", []), fn)
                    if init_ids:
                        fn.events.append(Event(
                            "assign", self.cur_line, ids={var},
                            rhs=init_ids))
                    ids |= init_ids
                else:
                    ids |= self._lower(child, fn)
            return ids

        if kind == "DeclRefExpr" or kind == "MemberExpr":
            out: set[str] = set()
            self._collect_refs(node, out)
            return out

        return self._lower(inner, fn)

    def _branch_cond(self, kind: str, node: dict):
        inner = [c for c in (node.get("inner") or [])
                 if isinstance(c, dict)]
        if not inner:
            return None
        if kind in ("IfStmt", "WhileStmt", "SwitchStmt",
                    "ConditionalOperator"):
            return inner[0]
        if kind == "DoStmt":
            return inner[-1]
        if kind == "ForStmt" and len(inner) >= 3:
            # [init, cond-decl?, cond, inc, body]
            return inner[-3]
        if kind == "CXXForRangeStmt":
            return None
        return None

    # -- declaration walking -----------------------------------------

    def walk(self, ast: dict) -> Program:
        self._walk_decls(ast.get("inner", []) or [], qualifier="")
        return self.prog

    def _walk_decls(self, nodes, qualifier: str) -> None:
        for node in nodes:
            if not isinstance(node, dict):
                continue
            self._update_loc(node)
            kind = node.get("kind", "")
            if kind in ("NamespaceDecl", "LinkageSpecDecl",
                        "ExternCContextDecl"):
                self._walk_decls(node.get("inner", []) or [],
                                 qualifier)
            elif kind == "CXXRecordDecl":
                name = node.get("name", qualifier)
                for child in node.get("inner", []) or []:
                    if not isinstance(child, dict):
                        continue
                    self._update_loc(child)
                    ckind = child.get("kind")
                    if ckind == "FieldDecl":
                        annot = _annotation(child)
                        if annot:
                            var = self._var(child.get("name", "?"),
                                            child.get("id", "?"))
                            # decl ids are unique: scope globally.
                            self.prog.members[("", var)] = annot
                    elif ckind in _FN_KINDS:
                        self._lower_function(child, name)
                    elif ckind == "CXXRecordDecl":
                        self._walk_decls([child], name)
            elif kind in _FN_KINDS:
                self._lower_function(node, qualifier)
            elif kind == "VarDecl":
                annot = _annotation(node)
                if annot:
                    var = self._var(node.get("name", "?"),
                                    node.get("id", "?"))
                    self.prog.members[("", var)] = annot

    def _lower_function(self, node: dict, qualifier: str) -> None:
        self._update_loc(node)
        name = node.get("name", "")
        if not name:
            return
        in_main = self._in_main_file()
        line = self.cur_line
        params: list[str] = []
        annots: dict[str, str] = {}
        body = None
        for child in node.get("inner", []) or []:
            if not isinstance(child, dict):
                continue
            ckind = child.get("kind")
            if ckind == "ParmVarDecl":
                self._update_loc(child)
                var = self._var(child.get("name",
                                          f"arg{len(params)}"),
                                child.get("id", "?"))
                params.append(var)
                a = _annotation(child)
                if a:
                    annots[var] = a
            elif ckind == "CompoundStmt":
                body = child
        ret_annot = _annotation(node)
        if body is None or not in_main:
            # Declaration (or out-of-main definition): record the
            # positional summary so call sites see the annotations.
            pa = {pos: annots[p] for pos, p in enumerate(params)
                  if p in annots}
            rs, rp, merged = self.prog.decl_summaries.get(
                name, (False, False, {}))
            merged.update(pa)
            self.prog.decl_summaries[name] = (
                rs or ret_annot == "secret",
                rp or ret_annot == "public", merged)
            return
        fn = Function(name=name, qualifier=qualifier,
                      file=self.display, line=line, params=params,
                      annots=annots,
                      returns_secret=ret_annot == "secret",
                      returns_public=ret_annot == "public")
        self._lower(body, fn)
        self.prog.functions.append(fn)


def parse_file(path: str, flags: list[str],
               display_path: str | None = None,
               clangxx: str = "clang++",
               cache_dir: str | None = None) -> Program:
    ast = dump_ast(path, flags, clangxx=clangxx, cache_dir=cache_dir)
    display = display_path or path
    walker = _Walker(os.path.realpath(path), display)
    prog = walker.walk(ast)
    # OBF_DECLASSIFY is invisible in the AST (it expands to its
    # argument), so declassified lines come from the raw source in
    # both frontends.
    import re
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = {i for i, text in enumerate(fh.read().splitlines(),
                                            start=1)
                 if re.search(r"\bOBF_DECLASSIFY\s*\(", text)}
    if lines:
        prog.declassified[display] = lines
    return prog
