"""
Built-in ("lite") frontend: a line-accurate C++ tokenizer plus a
pragmatic recognizer for the subset of C++ this repo uses. It reads
raw source, so the OBF_SECRET / OBF_PUBLIC / OBF_DECLASSIFY macro
tokens are visible directly -- no compiler needed.

This is deliberately an over-approximation: identifiers are not
type-resolved, expressions are scanned linearly, and flow is ignored.
Precision comes from the taint engine's annotation discipline and the
baseline's mandatory justifications, not from full parsing. The clang
frontend (CI) is the precise reference; this one keeps the gate
usable everywhere.
"""

from __future__ import annotations

import re

from .ir import Event, Function, Program

# --------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<str>"(?:\\.|[^"\\\n])*"|'(?:\\.|[^'\\\n])*')
  | (?P<id>[A-Za-z_]\w*)
  | (?P<num>\d[\w']*(?:\.\w*)?)
  | (?P<punct><<=|>>=|\.\.\.|->\*|::|->|\+\+|--|<<|>>|<=|>=|==|!=
       |&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=
       |[-+*/%&|^!<>=~?:;,.(){}\[\]#\\@$`])
  | (?P<nl>\n)
  | (?P<ws>[ \t\r\f\v]+)
  | (?P<other>.)
    """,
    re.VERBOSE | re.DOTALL,
)

# Keywords and ubiquitous vocabulary types that can never carry taint;
# filtering them keeps casts and declarations from polluting id sets.
_NOISE_IDS = frozenset("""
    if else for while do switch case default break continue return goto
    try catch throw new delete sizeof alignof decltype typeid
    const constexpr consteval constinit static inline extern mutable
    volatile register thread_local virtual override final explicit
    friend public private protected using namespace template typename
    class struct enum union operator this true false nullptr
    static_cast dynamic_cast reinterpret_cast const_cast
    void bool char wchar_t char8_t char16_t char32_t short int long
    float double signed unsigned auto
    int8_t int16_t int32_t int64_t uint8_t uint16_t uint32_t uint64_t
    size_t ssize_t ptrdiff_t uintptr_t intptr_t
    std vector array string deque list map set unordered_map
    unordered_set pair tuple optional unique_ptr shared_ptr span
    string_view initializer_list function
    noexcept requires concept co_await co_return co_yield
    OBF_SECRET OBF_PUBLIC OBF_DECLASSIFY
    Tick
""".split())


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Tok({self.kind},{self.text!r},{self.line})"


def tokenize(source: str) -> list[Tok]:
    """Lex to significant tokens; skips whitespace, comments and
    preprocessor directives while keeping exact line numbers."""
    toks: list[Tok] = []
    line = 1
    at_line_start = True
    in_pp = False
    for m in _TOKEN_RE.finditer(source):
        kind = m.lastgroup or "other"
        text = m.group()
        if kind == "nl":
            line += 1
            # A backslash-newline continues a preprocessor line; the
            # backslash token itself was consumed below.
            if in_pp and not toks_pp_continues(toks):
                in_pp = False
            at_line_start = True
            continue
        if kind == "ws":
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if in_pp:
            line += text.count("\n")
            if kind == "punct" and text == "\\":
                toks.append(Tok("ppcont", text, line))
            continue
        if kind == "punct" and text == "#" and at_line_start:
            in_pp = True
            continue
        at_line_start = False
        toks.append(Tok(kind, text, line))
        line += text.count("\n")
    return toks


def toks_pp_continues(toks: list[Tok]) -> bool:
    """True if the last consumed preprocessor token was the
    line-continuation backslash (and eat it)."""
    if toks and toks[-1].kind == "ppcont":
        toks.pop()
        return True
    return False


# --------------------------------------------------------------------
# Declaration-level scanning
# --------------------------------------------------------------------

_SKIP_HEAD = frozenset({"if", "for", "while", "switch", "catch",
                        "return", "do", "else"})


def _match_group(toks, i, open_t, close_t):
    """toks[i] is `open_t`; return index just past its match."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _collect_ids(toks) -> set[str]:
    return {t.text for t in toks
            if t.kind == "id" and t.text not in _NOISE_IDS}


def _bracket_ids(toks) -> set[str]:
    """Ids appearing inside `[...]` groups: subscript indices are
    *read* by an lvalue like `out[i]`, never written."""
    ids: set[str] = set()
    depth = 0
    for t in toks:
        if t.text == "[":
            depth += 1
        elif t.text == "]":
            depth = max(0, depth - 1)
        elif depth > 0 and t.kind == "id" and \
                t.text not in _NOISE_IDS:
            ids.add(t.text)
    return ids


class _Parser:
    def __init__(self, file: str):
        self.file = file
        self.prog = Program()
        self._temp = 0

    # ----- expression / statement scanning inside function bodies ---

    def _fresh(self) -> str:
        self._temp += 1
        return f"__call{self._temp}"

    def scan_expr(self, toks, events) -> set[str]:
        """Linear scan of an expression token run. Emits call/index/
        binop/stream events into `events`; returns the ids whose taint
        the expression's value depends on (including call-result
        temps)."""
        ids: set[str] = set()
        i = 0
        n = len(toks)
        last_operand: str | None = None
        while i < n:
            t = toks[i]
            nxt = toks[i + 1] if i + 1 < n else None
            if t.kind == "id" and t.text == "OBF_DECLASSIFY" and \
                    nxt and nxt.text == "(":
                # OBF_DECLASSIFY(expr, reason) launders taint: skip
                # the whole argument list. (The line is additionally
                # recorded for finding suppression by the driver.)
                i = _match_group(toks, i + 1, "(", ")")
                last_operand = None
                continue
            if t.kind == "id" and nxt and nxt.text == "(" and \
                    t.text not in _SKIP_HEAD:
                # Call: f(...) or recv.f(...) / recv->f(...).
                end = _match_group(toks, i + 1, "(", ")")
                inner = toks[i + 2:end - 1]
                args = self._split_args(inner, events)
                # Leading receiver chain: a.b.f( / a->f(.
                j = i - 1
                recv: set[str] = set()
                while j >= 1 and toks[j].text in (".", "->", "::") \
                        and toks[j - 1].kind == "id":
                    if toks[j].text != "::" and \
                            toks[j - 1].text not in _NOISE_IDS:
                        recv.add(toks[j - 1].text)
                    j -= 2
                if recv:
                    args.insert(0, recv)
                tmp = self._fresh()
                events.append(Event("call", t.line, callee=t.text,
                                    args=args, result=tmp))
                ids.add(tmp)
                last_operand = tmp
                i = end
                continue
            if t.text == "[" and i > 0 and (
                    toks[i - 1].kind == "id"
                    or toks[i - 1].text in ("]", ")")):
                # Subscript (not a lambda capture / attribute).
                end = _match_group(toks, i, "[", "]")
                inner = toks[i + 1:end - 1]
                idx_ids = self.scan_expr(inner, events)
                if idx_ids:
                    events.append(Event("index", t.line, ids=idx_ids))
                ids |= idx_ids
                i = end
                continue
            if t.text in ("%", "/", "%=", "/="):
                operands: set[str] = set()
                if last_operand:
                    operands.add(last_operand)
                k = i + 1
                while k < n and toks[k].text in ("(", "*", "&", "-",
                                                 "+", "~", "!"):
                    k += 1
                if k < n and toks[k].kind == "id" and \
                        toks[k].text not in _NOISE_IDS:
                    operands.add(toks[k].text)
                if operands:
                    events.append(Event(
                        "binop", t.line, ids=operands, detail=t.text))
                i += 1
                continue
            if t.text == "?":
                # Ternary: everything scanned so far in this run is
                # (an over-approximation of) the condition.
                if ids:
                    events.append(Event("branch", t.line, ids=set(ids),
                                        detail="ternary"))
                i += 1
                last_operand = None
                continue
            if t.kind == "id":
                if t.text not in _NOISE_IDS:
                    ids.add(t.text)
                    last_operand = t.text
                elif t.text in ("cout", "cerr", "clog"):
                    last_operand = None
                i += 1
                continue
            if t.text in (";", ","):
                last_operand = None
            i += 1
        return ids

    def _split_args(self, toks, events) -> list[set[str]]:
        args: list[set[str]] = []
        depth = 0
        start = 0
        for k, t in enumerate(toks):
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                args.append(self.scan_expr(toks[start:k], events))
                start = k + 1
        if toks[start:] or args:
            args.append(self.scan_expr(toks[start:], events))
        return args

    def scan_statement(self, toks, events, fn: Function) -> None:
        if not toks:
            return
        head = toks[0]
        # Local annotation: OBF_SECRET <type> name ...;
        if head.text in ("OBF_SECRET", "OBF_PUBLIC"):
            annot = "secret" if head.text == "OBF_SECRET" else "public"
            name = None
            for t in toks[1:]:
                if t.text in ("[", "=", "{", ";", "("):
                    break
                if t.kind == "id" and t.text not in _NOISE_IDS:
                    name = t.text
            if name:
                fn.annots[name] = annot
            toks = toks[1:]
        # Assignment: split at the first top-level `=`.
        depth = 0
        eq = -1
        for k, t in enumerate(toks):
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and t.text == "=" and eq < 0:
                eq = k
        stream = any(t.text in ("cout", "cerr", "clog")
                     for t in toks) and \
            any(t.text == "<<" for t in toks)
        if eq > 0:
            lhs, rhs = toks[:eq], toks[eq + 1:]
            lhs_ids = self.scan_expr(lhs, events) \
                - _bracket_ids(lhs)
            rhs_ids = self.scan_expr(rhs, events)
            events.append(Event("assign", toks[eq].line, ids=lhs_ids,
                                rhs=rhs_ids))
        elif any(t.text in ("+=", "-=", "*=", "&=", "|=", "^=",
                            "<<=", ">>=") for t in toks):
            for k, t in enumerate(toks):
                if t.text in ("+=", "-=", "*=", "&=", "|=", "^=",
                              "<<=", ">>="):
                    lhs_ids = self.scan_expr(toks[:k], events) \
                        - _bracket_ids(toks[:k])
                    rhs_ids = self.scan_expr(toks[k + 1:], events)
                    events.append(Event("assign", t.line, ids=lhs_ids,
                                        rhs=rhs_ids | lhs_ids))
                    break
        else:
            ids = self.scan_expr(toks, events)
            if stream and ids:
                events.append(Event("stream", head.line, ids=ids))

    def scan_body(self, toks, fn: Function) -> None:
        """Scan the token run of a function body (braces excluded)."""
        events = fn.events
        i = 0
        n = len(toks)
        stmt_start = 0

        def flush(upto):
            nonlocal stmt_start
            run = toks[stmt_start:upto]
            if run:
                self.scan_statement(run, events, fn)
            stmt_start = upto + 1

        while i < n:
            t = toks[i]
            nxt = toks[i + 1] if i + 1 < n else None
            if t.kind == "id" and t.text in ("if", "while", "switch") \
                    and nxt and nxt.text == "(":
                end = _match_group(toks, i + 1, "(", ")")
                inner = toks[i + 2:end - 1]
                cond_ids = self.scan_expr(inner, events)
                if cond_ids:
                    events.append(Event("branch", t.line, ids=cond_ids,
                                        detail=t.text))
                stmt_start = end
                i = end
                continue
            if t.kind == "id" and t.text == "for" and nxt and \
                    nxt.text == "(":
                end = _match_group(toks, i + 1, "(", ")")
                inner = toks[i + 2:end - 1]
                # Split into init; cond; inc (or range-for).
                parts, depth, start = [], 0, 0
                for k, u in enumerate(inner):
                    if u.text in ("(", "[", "{"):
                        depth += 1
                    elif u.text in (")", "]", "}"):
                        depth -= 1
                    elif u.text == ";" and depth == 0:
                        parts.append(inner[start:k])
                        start = k + 1
                parts.append(inner[start:])
                if len(parts) >= 2:
                    for p in (parts[0], *parts[2:]):
                        self.scan_statement(p, events, fn)
                    cond_ids = self.scan_expr(parts[1], events)
                    if cond_ids:
                        events.append(Event(
                            "branch", t.line, ids=cond_ids,
                            detail="for"))
                else:
                    # Range-for: `for (decl : range)`.
                    self.scan_statement(inner, events, fn)
                stmt_start = end
                i = end
                continue
            if t.kind == "id" and t.text == "return":
                k = i + 1
                depth = 0
                while k < n and (depth > 0 or toks[k].text != ";"):
                    if toks[k].text in ("(", "[", "{"):
                        depth += 1
                    elif toks[k].text in (")", "]", "}"):
                        depth -= 1
                    k += 1
                ids = self.scan_expr(toks[i + 1:k], events)
                events.append(Event("return", t.line, ids=ids))
                stmt_start = k + 1
                i = k + 1
                continue
            if t.text in (";", "{", "}"):
                if t.text == ";":
                    flush(i)
                else:
                    # Block structure: statements end at braces too
                    # (the brace-enclosed contents are scanned
                    # inline as part of the same linear walk).
                    run = toks[stmt_start:i]
                    if run:
                        self.scan_statement(run, events, fn)
                    stmt_start = i + 1
                i += 1
                continue
            i += 1
        run = toks[stmt_start:]
        if run:
            self.scan_statement(run, events, fn)

    # ----- top level -------------------------------------------------

    def parse(self, toks: list[Tok]) -> Program:
        self._scan_scope(toks, 0, len(toks), class_name="")
        return self.prog

    def _scan_scope(self, toks, i, end, class_name: str) -> None:
        """Scan a namespace/class/TU scope for declarations."""
        while i < end:
            t = toks[i]
            if t.kind == "id" and t.text == "namespace":
                j = i + 1
                while j < end and toks[j].text != "{" and \
                        toks[j].text != ";":
                    j += 1
                if j < end and toks[j].text == "{":
                    close = _match_group(toks, j, "{", "}")
                    self._scan_scope(toks, j + 1, close - 1,
                                     class_name)
                    i = close
                    continue
                i = j + 1
                continue
            if t.kind == "id" and t.text in ("class", "struct") and \
                    i + 1 < end and toks[i + 1].kind == "id":
                name = toks[i + 1].text
                j = i + 2
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    close = _match_group(toks, j, "{", "}")
                    self._scan_scope(toks, j + 1, close - 1, name)
                    i = close
                    continue
                i = j + 1
                continue
            if t.kind == "id" and t.text in ("enum", "union"):
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    i = _match_group(toks, j, "{", "}")
                else:
                    i = j + 1
                continue
            # Generic declaration: collect until `;` or a `{` at
            # relative depth 0.
            j = i
            depth = 0
            while j < end:
                u = toks[j].text
                if u in ("(", "["):
                    depth += 1
                elif u in (")", "]"):
                    depth -= 1
                elif depth == 0 and u in (";", "{"):
                    break
                j += 1
            decl = toks[i:j]
            if j >= end:
                break
            if toks[j].text == ";":
                self._handle_decl(decl, class_name, body=None)
                i = j + 1
            else:
                close = _match_group(toks, j, "{", "}")
                consumed = self._handle_decl(
                    decl, class_name, body=(j + 1, close - 1),
                    toks=toks)
                if consumed:
                    i = close
                else:
                    # Braced initializer of a variable: skip the
                    # braces, then pick up the trailing `;`.
                    self._handle_decl(decl, class_name, body=None)
                    i = close
            continue
        return

    def _find_fn_paren(self, decl) -> int:
        """Index of the parameter-list `(` in a declaration, or -1."""
        for k, t in enumerate(decl):
            if t.text != "(" or k == 0:
                continue
            prev = decl[k - 1]
            if prev.kind == "id" and prev.text not in _SKIP_HEAD:
                return k
            # operator() / operator== etc.
            b = k - 1
            while b > 0 and decl[b].kind == "punct" and \
                    decl[b].text not in (")", "]"):
                b -= 1
            if decl[b].kind == "id" and decl[b].text == "operator":
                return k
        return -1

    def _handle_decl(self, decl, class_name, body, toks=None) -> bool:
        """Process one declaration. Returns True if a function body
        was consumed."""
        if not decl:
            return body is not None  # stray block: just skip it
        paren = self._find_fn_paren(decl)
        if paren < 0:
            # Variable / member declaration.
            annot = None
            for t in decl:
                if t.text == "OBF_SECRET":
                    annot = "secret"
                elif t.text == "OBF_PUBLIC":
                    annot = "public"
            if annot:
                name = None
                for t in decl:
                    if t.text in ("[", "=", "{"):
                        break
                    if t.kind == "id" and t.text not in _NOISE_IDS:
                        name = t.text
                if name:
                    self.prog.members[(class_name, name)] = annot
            return False
        # Function declaration or definition.
        name_tok = decl[paren - 1]
        name = name_tok.text
        if name_tok.kind != "id":  # operator overload
            b = paren - 1
            sym = ""
            while b > 0 and decl[b].kind == "punct":
                sym = decl[b].text + sym
                b -= 1
            name = "operator" + sym
        qualifier = class_name
        if paren >= 3 and decl[paren - 2].text == "::" and \
                decl[paren - 3].kind == "id":
            qualifier = decl[paren - 3].text
        head = decl[:max(0, paren - 1)]
        returns_secret = any(t.text == "OBF_SECRET" for t in head)
        returns_public = any(t.text == "OBF_PUBLIC" for t in head)
        close = _match_group(decl, paren, "(", ")")
        params = self._parse_params(decl[paren + 1:close - 1])
        if body is None:
            rs, rp, pa = self.prog.decl_summaries.get(
                name, (False, False, {}))
            annots = dict(pa)
            for pos, (_, pannot) in enumerate(params):
                if pannot:
                    annots[pos] = pannot
            self.prog.decl_summaries[name] = (
                rs or returns_secret, rp or returns_public, annots)
            return False
        fn = Function(name=name, qualifier=qualifier, file=self.file,
                      line=name_tok.line,
                      returns_secret=returns_secret,
                      returns_public=returns_public)
        for pname, pannot in params:
            if pname:
                fn.params.append(pname)
                if pannot:
                    fn.annots[pname] = pannot
            else:
                fn.params.append(f"__unnamed{len(fn.params)}")
        start, stop = body
        self.scan_body(toks[start:stop], fn)
        self.prog.functions.append(fn)
        return True

    def _parse_params(self, toks):
        """[(name, annot)] from a parameter token run."""
        params = []
        depth = 0
        start = 0
        groups = []
        for k, t in enumerate(toks):
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth = max(0, depth - 1)
            elif t.text == "," and depth == 0:
                groups.append(toks[start:k])
                start = k + 1
        if toks[start:] or groups:
            groups.append(toks[start:])
        for g in groups:
            if not g or (len(g) == 1 and g[0].text == "void"):
                continue
            annot = None
            name = None
            for t in g:
                if t.text == "OBF_SECRET":
                    annot = "secret"
                elif t.text == "OBF_PUBLIC":
                    annot = "public"
                elif t.text == "=":
                    break
                elif t.kind == "id" and t.text not in _NOISE_IDS:
                    name = t.text
            params.append((name, annot))
        return params


# --------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------

_DECLASSIFY_RE = re.compile(r"\bOBF_DECLASSIFY\s*\(")


def parse_file(path: str, display_path: str | None = None) -> Program:
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        source = fh.read()
    display = display_path or path
    toks = tokenize(source)
    parser = _Parser(display)
    prog = parser.parse(toks)
    lines = {i for i, text in enumerate(source.splitlines(), start=1)
             if _DECLASSIFY_RE.search(text)}
    if lines:
        prog.declassified[display] = lines
    return prog
