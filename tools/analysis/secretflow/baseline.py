"""
Baseline (allowlist) handling for the secret-flow analyzer.

Format, one entry per line:

    rule|path|function|justification

  - `rule` is one of the analyzer rules, or `*`.
  - `path` is the repo-relative file path, or `*`.
  - `function` is the display name of the enclosing function
    (`Class::method` or a free-function name), or `*`.
  - `justification` is MANDATORY prose explaining why the finding is
    acceptable. An empty justification is a hard error: the analyzer
    refuses to run rather than silently honoring an unexplained
    suppression.

`#` starts a comment; blank lines are ignored. Entries that match no
finding are reported so the baseline cannot rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import RULES, Finding


class BaselineError(Exception):
    """Malformed baseline file (bad syntax or empty justification)."""


@dataclass
class Entry:
    rule: str
    path: str
    function: str
    justification: str
    lineno: int
    hits: int = 0

    def matches(self, f: Finding) -> bool:
        return ((self.rule == "*" or self.rule == f.rule)
                and (self.path == "*" or self.path == f.file)
                and (self.function == "*"
                     or self.function == f.function))


@dataclass
class Baseline:
    entries: list[Entry] = field(default_factory=list)

    def suppresses(self, f: Finding) -> bool:
        hit = False
        for e in self.entries:
            if e.matches(f):
                e.hits += 1
                hit = True
        return hit

    def unused(self) -> list[Entry]:
        return [e for e in self.entries if e.hits == 0]


def parse(text: str, origin: str = "<baseline>") -> Baseline:
    bl = Baseline()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4:
            raise BaselineError(
                f"{origin}:{lineno}: expected "
                f"'rule|path|function|justification', got {len(parts)}"
                " field(s)")
        rule, path, function, justification = parts
        if rule != "*" and rule not in RULES:
            raise BaselineError(
                f"{origin}:{lineno}: unknown rule '{rule}' "
                f"(expected one of {', '.join(RULES)} or *)")
        if not justification:
            raise BaselineError(
                f"{origin}:{lineno}: baseline entry for "
                f"'{rule}|{path}|{function}' has an EMPTY "
                "justification; every suppression must say why it is "
                "safe")
        bl.entries.append(
            Entry(rule, path, function, justification, lineno))
    return bl


def load(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as fh:
        return parse(fh.read(), origin=path)
