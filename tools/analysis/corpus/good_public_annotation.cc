// Known-good: OBF_PUBLIC stops propagation. Wire counters and epoch
// numbers travel in the clear by design, so branching on them is
// fine even where they mix with annotated structures.
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

struct Counter
{
    OBF_PUBLIC uint64_t value = 0;

    uint64_t next() { return ++value; }
};

int
branchOnPublic(OBF_PUBLIC uint32_t epoch)
{
    if (epoch & 1)
        return 1;
    return 0;
}

} // namespace corpus
