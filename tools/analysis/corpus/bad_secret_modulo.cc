// Known-bad: integer division/modulo latency depends on operand
// values on most microarchitectures, so `%` on a secret is
// variable-time even without a branch.
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

uint32_t
reduceExponent(OBF_SECRET uint32_t exponent, uint32_t modulus)
{
    return exponent % modulus; // FLAG: variable-time
}

} // namespace corpus
