// Known-bad: a secret value escapes through an external sink
// (stdio logging). Even "debug only" prints of key material are
// findings; release through OBF_DECLASSIFY if truly intended.
#include <cstdint>
#include <cstdio>

#include "util/secret.hh"

namespace corpus {

void
debugDumpKey(OBF_SECRET uint64_t key_word)
{
    printf("key word: %llx\n", (unsigned long long)key_word); // FLAG: secret-sink
}

} // namespace corpus
