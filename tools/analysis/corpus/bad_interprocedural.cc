// Known-bad: the leaking function carries no annotation at all --
// taint must flow through the call from the annotated caller into
// the helper's parameter for the branch to be caught.
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

int
helperBranches(uint32_t word)
{
    if (word & 0x80000000u) // FLAG: secret-branch
        return 1;
    return 0;
}

int
expandKey(OBF_SECRET uint32_t key_word)
{
    return helperBranches(key_word);
}

} // namespace corpus
