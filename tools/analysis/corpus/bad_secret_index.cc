// Known-bad: table lookup indexed by a secret. The cache line
// touched depends on the secret value (the classic T-table leak).
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

extern const uint8_t kSbox[256];

uint8_t
tableLookup(OBF_SECRET uint8_t idx)
{
    return kSbox[idx]; // FLAG: secret-index
}

} // namespace corpus
