// Known-bad: early-exit comparison of a secret MAC. memcmp returns
// at the first differing byte, so the match length leaks.
#include <cstdint>
#include <cstring>

#include "util/secret.hh"

namespace corpus {

bool
macEqual(OBF_SECRET const uint8_t *mac, const uint8_t *expect)
{
    return memcmp(mac, expect, 16) == 0; // FLAG: variable-time
}

} // namespace corpus
