// Known-bad: loop trip count derived from a secret. Total runtime
// is proportional to the secret, the coarsest timing channel.
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

int
iterateSecretTimes(OBF_SECRET uint32_t secret_len)
{
    int acc = 0;
    for (uint32_t i = 0; i < secret_len; ++i) // FLAG: secret-branch
        ++acc;
    return acc;
}

} // namespace corpus
