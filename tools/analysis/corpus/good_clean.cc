// Known-good: straight-line secret handling. XORing a pad into a
// buffer with public indices and public trip counts is the pattern
// the whole data path is built on; it must never be flagged.
#include <cstddef>
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

void
xorPad(OBF_SECRET const uint8_t *pad, const uint8_t *in, uint8_t *out,
       size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = in[i] ^ pad[i];
}

uint64_t
foldPublic(const uint64_t *words, size_t n)
{
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc ^= words[i];
    return acc;
}

} // namespace corpus
