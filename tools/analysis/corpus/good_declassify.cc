// Known-good: deliberate, audited releases through OBF_DECLASSIFY.
// The macro compiles to its expression; the analyzer treats the
// marked line as reviewed and suppresses findings there.
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

bool
keyIsWeak(OBF_SECRET uint64_t key_word)
{
    return OBF_DECLASSIFY(key_word == 0, "weak-key policy check");
}

int
declassifiedBranch(OBF_SECRET uint32_t tag)
{
    if (OBF_DECLASSIFY(tag & 1, "public experiment arm bit"))
        return 1;
    return 0;
}

} // namespace corpus
