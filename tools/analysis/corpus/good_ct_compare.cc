// Known-good: secret comparison through the constant-time barrier.
// ctEqual is in the analyzer's CT-safe set: it neither leaks nor
// propagates taint (its boolean is the deliberately public outcome).
#include <cstddef>
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

bool ctEqual(const uint8_t *a, const uint8_t *b, size_t n);

bool
macCheck(OBF_SECRET const uint8_t *mac, const uint8_t *expect)
{
    bool ok = ctEqual(mac, expect, 16);
    if (!ok)
        return false;
    return true;
}

} // namespace corpus
