// Known-bad: control flow conditioned on secret data. The branch
// direction is observable through timing and the branch predictor.
#include <cstdint>

#include "util/secret.hh"

namespace corpus {

int
branchOnKeyByte(OBF_SECRET const uint8_t *key, int n)
{
    int acc = 0;
    for (int i = 0; i < n; ++i) {
        if (key[i] & 1) // FLAG: secret-branch
            acc += i;
    }
    return acc;
}

} // namespace corpus
