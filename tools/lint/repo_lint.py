#!/usr/bin/env python3
"""Repo-specific security lints for the ObfusMem simulator.

Four rules, each encoding an invariant the generic toolchain cannot
know about:

  weak-rng        rand()/std::rand() anywhere outside src/util/random:
                  the simulator's reproducibility and the crypto layer
                  both depend on the seeded Xoshiro PRNG.
  non-ct-compare  ==/!= on MAC or digest values in src/: verification
                  must go through crypto::ctEqual so a mismatch costs
                  the same time regardless of the first differing byte.
  key-scrub       a file that memcpy()s key material must also call
                  secureZero(): key bytes must not outlive their use on
                  the stack or heap.
  include-guard   headers guard with OBFUSMEM_<PATH>_HH derived from
                  the path, so guards can never collide.

Exit status is the number of findings (0 == clean). Run from anywhere;
paths resolve relative to the repo root. `--self-test` checks the
rules still catch known-bad exemplars (including the pre-ctEqual
MacEngine::verify pattern).
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

SOURCE_GLOBS = ("src/**/*.cc", "src/**/*.hh", "tests/*.cc",
                "bench/*.cc", "examples/*.cc")

RAND_RE = re.compile(r"\b(?:std::)?rand\s*\(\s*\)")
RAND_ALLOWED = ("src/util/random",)

# An ==/!= where one operand looks like MAC/digest material. The
# whitelist below keeps counters and statistics (macVerifyFailures,
# digestCount, ...) out of scope: those end in a quantity word.
CT_COMPARE_RE = re.compile(
    r"[=!]=\s*[\w.:>-]*(?:mac|digest)\b[\w.()]*"
    r"|[\w.:>-]*\b(?:mac|digest)\b[\w.()]*\s*[=!]=",
    re.IGNORECASE)
CT_QUANTITY_RE = re.compile(
    r"(?:mac|digest)\w*(?:count|fail|failures|errors|bytes|size|len|"
    r"latency|hex|name|mode|kind)", re.IGNORECASE)

MEMCPY_KEY_RE = re.compile(r"memcpy\s*\([^;]*\bkey\w*\b", re.IGNORECASE)

GUARD_RE = re.compile(r"^#ifndef\s+(\w+)", re.MULTILINE)


def finding(path, line_no, rule, message):
    rel = path if isinstance(path, str) else path.relative_to(REPO_ROOT)
    return f"{rel}:{line_no}: [{rule}] {message}"


def lint_weak_rng(rel, lines):
    if any(rel.startswith(p) for p in RAND_ALLOWED):
        return
    for no, line in lines:
        if RAND_RE.search(line):
            yield no, "weak-rng", \
                "rand() is forbidden; use util/random.hh (Xoshiro256)"


def lint_ct_compare(rel, lines):
    if not rel.startswith("src/"):
        return  # tests/bench may compare digests directly
    for no, line in lines:
        m = CT_COMPARE_RE.search(line)
        if not m:
            continue
        if "ctEqual" in line or CT_QUANTITY_RE.search(m.group(0)):
            continue
        yield no, "non-ct-compare", \
            "compare MAC/digest values with crypto::ctEqual, " \
            "not ==/!= (timing side channel)"


def lint_key_scrub(rel, lines, text):
    if not rel.startswith("src/"):
        return
    if "secureZero" in text:
        return
    for no, line in lines:
        if MEMCPY_KEY_RE.search(line):
            yield no, "key-scrub", \
                "file copies key material but never calls " \
                "crypto::secureZero on it"


def expected_guard(rel):
    stem = rel[len("src/"):]
    return "OBFUSMEM_" + re.sub(r"[/.]", "_", stem).upper()


def lint_include_guard(rel, text):
    if not (rel.startswith("src/") and rel.endswith(".hh")):
        return
    m = GUARD_RE.search(text)
    want = expected_guard(rel)
    if not m:
        yield 1, "include-guard", f"missing include guard {want}"
    elif m.group(1) != want:
        yield GUARD_RE.search(text).string[:m.start()].count("\n") + 1, \
            "include-guard", \
            f"guard {m.group(1)} should be {want}"


def lint_text(rel, text):
    """All findings for one file's contents (testable entry point)."""
    lines = [(i + 1, l) for i, l in enumerate(text.splitlines())
             if "NOLINT" not in l]
    out = []
    out.extend(lint_weak_rng(rel, lines))
    out.extend(lint_ct_compare(rel, lines))
    out.extend(lint_key_scrub(rel, lines, text))
    out.extend(lint_include_guard(rel, text))
    return out


def run(paths):
    findings = []
    for path in paths:
        rel = path.relative_to(REPO_ROOT).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        for no, rule, msg in lint_text(rel, text):
            findings.append(finding(path, no, rule, msg))
    return findings


SELF_TEST_CASES = [
    # The pre-ctEqual MacEngine::verify body must be flagged.
    ("src/obfusmem/mac_engine.cc",
     "    return compute(hdr, counter) == mac;\n",
     "non-ct-compare"),
    ("src/secure/merkle.cc",
     "    if (computed != node.digest) return false;\n",
     "non-ct-compare"),
    ("src/cpu/core.cc",
     "    int r = std::rand();\n",
     "weak-rng"),
    ("src/crypto/aes.cc",
     "    std::memcpy(round_keys, key.data(), 16);\n",
     "key-scrub"),
    ("src/check/trace_auditor.hh",
     "#ifndef TRACE_AUDITOR_H\n#define TRACE_AUDITOR_H\n",
     "include-guard"),
]

SELF_TEST_CLEAN = [
    ("src/obfusmem/mac_engine.cc",
     "    return crypto::ctEqual(compute(hdr, counter), mac);\n"),
    ("src/obfusmem/observer.cc",
     "    stats.macVerifyFailures == 0;\n"),
    ("tests/test_crypto_hash.cc",
     "    EXPECT_TRUE(digest == expected);\n"),
]


def self_test():
    failures = 0
    for rel, snippet, rule in SELF_TEST_CASES:
        rules = {r for _, r, _ in lint_text(rel, snippet)}
        if rule not in rules:
            print(f"self-test FAIL: {rule} not raised for {rel!r}")
            failures += 1
    for rel, snippet in SELF_TEST_CLEAN:
        hits = lint_text(rel, snippet)
        if hits:
            print(f"self-test FAIL: false positive for {rel!r}: {hits}")
            failures += 1
    print("self-test " + ("FAILED" if failures else "passed"))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules catch known-bad code")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    paths = sorted(p for g in SOURCE_GLOBS for p in REPO_ROOT.glob(g))
    findings = run(paths)
    for f in findings:
        print(f)
    print(f"repo-lint: {len(paths)} files, {len(findings)} finding(s)")
    return len(findings)


if __name__ == "__main__":
    sys.exit(main())
