#!/usr/bin/env python3
"""Repo-specific security lints for the ObfusMem simulator.

Eight rules, each encoding an invariant the generic toolchain cannot
know about:

  weak-rng        rand()/std::rand() anywhere outside src/util/random:
                  the simulator's reproducibility and the crypto layer
                  both depend on the seeded Xoshiro PRNG.
  non-ct-compare  ==/!= on MAC or digest values in src/: verification
                  must go through crypto::ctEqual so a mismatch costs
                  the same time regardless of the first differing byte.
  ct-compare      memcmp()/strcmp()/strncmp() inside src/crypto/,
                  src/secure/ or src/obfusmem/ (outside bytes.hh,
                  where ctEqual itself lives): libc comparisons bail
                  out at the first differing byte, so anything they
                  touch in the crypto stack is a timing oracle. The
                  secret-flow analyzer (tools/analysis) catches the
                  tainted subset of these; this rule bans the whole
                  pattern in the stack regardless of taint.
  key-scrub       a file that memcpy()s key material must also call
                  secureZero(): key bytes must not outlive their use on
                  the stack or heap.
  include-guard   headers guard with OBFUSMEM_<PATH>_HH derived from
                  the path, so guards can never collide.
  packet-capture  a lambda in src/ that captures a MemPacket by value:
                  packets are ~176 bytes with their data block, and the
                  hot path moves them through pooled storage — a plain
                  `pkt` capture silently reintroduces a copy (and a
                  heap allocation) per hop. Capture with std::move, by
                  reference, or carry a PacketPool handle.
  aes-dispatch    a direct Aes128 object, or a raw MD5 lane-kernel
                  call, in src/ outside src/crypto/: raw block-cipher
                  use bypasses the runtime AES implementation dispatch
                  (vaes/aesni4/aesni/ttable/reference) and the
                  counter-mode pad plumbing that the prefetch pipeline
                  and the trace auditor's pad ledgers hang off, and a
                  direct md5Lanes*Compress* call skips the latched
                  width dispatch. Consume AesCtr / PadPrefetcher /
                  IvPadMemo / md5ShortBatch instead; nested types
                  (Aes128::Key) stay fine.
  wire-shape      an assignment to a WireMessage field (cipherHeader,
                  hasData, cipherData, hasMac, mac) in src/ outside
                  src/obfusmem/wire_format.*: every frame on the
                  channel — including recovery retransmits and the
                  re-key control handshake — must be built through
                  makeHeaderMessage / makeDataMessage / attachMac so
                  a hand-rolled frame can never differ in shape from
                  normal traffic and leak through the obliviousness
                  argument.

Exit status is the number of findings (0 == clean). Run from anywhere;
paths resolve relative to the repo root. `--self-test` checks the
rules still catch known-bad exemplars (including the pre-ctEqual
MacEngine::verify pattern).
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

SOURCE_GLOBS = ("src/**/*.cc", "src/**/*.hh", "tests/*.cc",
                "bench/*.cc", "examples/*.cc")

RAND_RE = re.compile(r"\b(?:std::)?rand\s*\(\s*\)")
RAND_ALLOWED = ("src/util/random",)

# An ==/!= where one operand looks like MAC/digest material. The
# whitelist below keeps counters and statistics (macVerifyFailures,
# digestCount, ...) out of scope: those end in a quantity word.
CT_COMPARE_RE = re.compile(
    r"[=!]=\s*[\w.:>-]*(?:mac|digest)\b[\w.()]*"
    r"|[\w.:>-]*\b(?:mac|digest)\b[\w.()]*\s*[=!]=",
    re.IGNORECASE)
CT_QUANTITY_RE = re.compile(
    r"(?:mac|digest)\w*(?:count|fail|failures|errors|bytes|size|len|"
    r"latency|hex|name|mode|kind)", re.IGNORECASE)

MEMCPY_KEY_RE = re.compile(r"memcpy\s*\([^;]*\bkey\w*\b", re.IGNORECASE)

# A variable-time libc comparison call. `\b` plus the lookbehind keeps
# ctEqual-style wrappers (whose *names* merely contain "cmp") and
# member calls like ledger.memcmpCount out of scope.
LIBC_CMP_RE = re.compile(r"(?<![\w.>])(?:std\s*::\s*)?"
                         r"(memcmp|strcmp|strncmp|strcasecmp|"
                         r"strncasecmp|bcmp)\s*\(")
CT_COMPARE_SCOPE = ("src/crypto/", "src/secure/", "src/obfusmem/")
CT_COMPARE_ALLOWED = ("src/crypto/bytes.hh", "src/crypto/bytes.cc")

GUARD_RE = re.compile(r"^#ifndef\s+(\w+)", re.MULTILINE)

# A lambda capture list (multi-line tolerated) followed by a parameter
# list, body, or `mutable`. The trailing context keeps array indexing
# (`queue[i] = x`) out of scope.
LAMBDA_CAPTURE_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\(|\{|mutable\b)")
PKT_NAME_RE = re.compile(r"\b\w*pkt\w*\b", re.IGNORECASE)

# `Aes128` as the raw cipher type (constructed, declared, or passed),
# as opposed to a nested type like Aes128::Key / Aes128::RoundKeys.
AES_DIRECT_RE = re.compile(r"\b(?:crypto\s*::\s*)?Aes128\b(?!\s*::)")
# A raw lane-kernel entry point (md5LanesAvx2Compress8,
# md5LanesAvx512Compress16x2, ...) outside the dispatch's home TU.
LANE_KERNEL_RE = re.compile(r"\bmd5Lanes\w*Compress\w*\s*\(")
AES_ALLOWED = ("src/crypto/",)
COMMENT_RE = re.compile(r"^\s*(?://|\*|/\*)")

# A plain assignment to a WireMessage field. The negative lookahead
# keeps comparisons (==) out; compound operators (^=, |=) never match
# because the field name must be followed directly by `=`.
WIRE_SHAPE_RE = re.compile(
    r"\.(cipherHeader|hasData|cipherData|hasMac|mac)\s*=(?!=)")
WIRE_SHAPE_ALLOWED = ("src/obfusmem/wire_format.",)


def finding(path, line_no, rule, message):
    rel = path if isinstance(path, str) else path.relative_to(REPO_ROOT)
    return f"{rel}:{line_no}: [{rule}] {message}"


def lint_weak_rng(rel, lines):
    if any(rel.startswith(p) for p in RAND_ALLOWED):
        return
    for no, line in lines:
        if RAND_RE.search(line):
            yield no, "weak-rng", \
                "rand() is forbidden; use util/random.hh (Xoshiro256)"


def lint_ct_compare(rel, lines):
    if not rel.startswith("src/"):
        return  # tests/bench may compare digests directly
    for no, line in lines:
        m = CT_COMPARE_RE.search(line)
        if not m:
            continue
        if "ctEqual" in line or CT_QUANTITY_RE.search(m.group(0)):
            continue
        yield no, "non-ct-compare", \
            "compare MAC/digest values with crypto::ctEqual, " \
            "not ==/!= (timing side channel)"


def lint_libc_compare(rel, lines):
    if not any(rel.startswith(p) for p in CT_COMPARE_SCOPE):
        return
    if rel in CT_COMPARE_ALLOWED:
        return  # ctEqual's own home may build on byte primitives
    for no, line in lines:
        if COMMENT_RE.match(line):
            continue
        m = LIBC_CMP_RE.search(line)
        if m:
            yield no, "ct-compare", \
                f"{m.group(1)}() bails out at the first differing " \
                "byte; in the crypto/secure/obfusmem stack compare " \
                "with crypto::ctEqual"


def lint_key_scrub(rel, lines, text):
    if not rel.startswith("src/"):
        return
    if "secureZero" in text:
        return
    for no, line in lines:
        if MEMCPY_KEY_RE.search(line):
            yield no, "key-scrub", \
                "file copies key material but never calls " \
                "crypto::secureZero on it"


def expected_guard(rel):
    stem = rel[len("src/"):]
    return "OBFUSMEM_" + re.sub(r"[/.]", "_", stem).upper()


def lint_include_guard(rel, text):
    if not (rel.startswith("src/") and rel.endswith(".hh")):
        return
    m = GUARD_RE.search(text)
    want = expected_guard(rel)
    if not m:
        yield 1, "include-guard", f"missing include guard {want}"
    elif m.group(1) != want:
        yield GUARD_RE.search(text).string[:m.start()].count("\n") + 1, \
            "include-guard", \
            f"guard {m.group(1)} should be {want}"


def split_captures(capture_list):
    """Split a capture list on top-level commas (paren/brace aware)."""
    items, depth, cur = [], 0, []
    for ch in capture_list:
        if ch in "({":
            depth += 1
        elif ch in ")}":
            depth -= 1
        if ch == "," and depth == 0:
            items.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    items.append("".join(cur))
    return items


def lint_packet_capture(rel, text):
    if not rel.startswith("src/"):
        return  # tests may copy packets to compare against
    all_lines = text.splitlines()
    for m in LAMBDA_CAPTURE_RE.finditer(text):
        line_no = text[:m.start()].count("\n") + 1
        if "NOLINT" in all_lines[line_no - 1]:
            continue
        for item in split_captures(m.group(1)):
            item = item.strip()
            if not item or item.startswith("&"):
                continue  # reference captures don't copy
            if "std::move" in item or not PKT_NAME_RE.search(item):
                continue
            yield line_no, "packet-capture", \
                f"by-value MemPacket capture `{item}` copies ~176 " \
                "bytes per hop; capture with std::move, by reference, " \
                "or carry a PacketPool handle"


def lint_aes_dispatch(rel, lines):
    if not rel.startswith("src/"):
        return  # tests/bench exercise the raw cipher on purpose
    if any(rel.startswith(p) for p in AES_ALLOWED):
        return
    for no, line in lines:
        if COMMENT_RE.match(line):
            continue
        if AES_DIRECT_RE.search(line):
            yield no, "aes-dispatch", \
                "direct Aes128 use outside src/crypto/ bypasses the " \
                "runtime AES dispatch and pad-prefetch plumbing; go " \
                "through crypto::AesCtr (nested types like " \
                "Aes128::Key are fine)"
        if LANE_KERNEL_RE.search(line):
            yield no, "aes-dispatch", \
                "direct MD5 lane-kernel call outside src/crypto/ " \
                "bypasses the latched width dispatch (and its " \
                "CPU/build availability checks); go through " \
                "crypto::md5ShortBatch"


def lint_wire_shape(rel, lines):
    if not rel.startswith("src/"):
        return  # tests corrupt and hand-build frames on purpose
    if any(rel.startswith(p) for p in WIRE_SHAPE_ALLOWED):
        return  # the builders' home
    for no, line in lines:
        if COMMENT_RE.match(line):
            continue
        m = WIRE_SHAPE_RE.search(line)
        if m:
            yield no, "wire-shape", \
                f"direct assignment to WireMessage field " \
                f"`{m.group(1)}`; build frames through " \
                "makeHeaderMessage/makeDataMessage/attachMac so " \
                "recovery and control traffic keep the exact shape " \
                "of normal traffic"


def lint_text(rel, text):
    """All findings for one file's contents (testable entry point)."""
    lines = [(i + 1, l) for i, l in enumerate(text.splitlines())
             if "NOLINT" not in l]
    out = []
    out.extend(lint_weak_rng(rel, lines))
    out.extend(lint_ct_compare(rel, lines))
    out.extend(lint_libc_compare(rel, lines))
    out.extend(lint_key_scrub(rel, lines, text))
    out.extend(lint_include_guard(rel, text))
    out.extend(lint_packet_capture(rel, text))
    out.extend(lint_aes_dispatch(rel, lines))
    out.extend(lint_wire_shape(rel, lines))
    return out


def run(paths):
    findings = []
    for path in paths:
        rel = path.relative_to(REPO_ROOT).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        for no, rule, msg in lint_text(rel, text):
            findings.append(finding(path, no, rule, msg))
    return findings


SELF_TEST_CASES = [
    # The pre-ctEqual MacEngine::verify body must be flagged.
    ("src/obfusmem/mac_engine.cc",
     "    return compute(hdr, counter) == mac;\n",
     "non-ct-compare"),
    ("src/secure/merkle.cc",
     "    if (computed != node.digest) return false;\n",
     "non-ct-compare"),
    ("src/cpu/core.cc",
     "    int r = std::rand();\n",
     "weak-rng"),
    # libc comparisons anywhere in the crypto stack are a timing
    # oracle, tainted or not.
    ("src/crypto/hmac.cc",
     "    return std::memcmp(a.data(), b.data(), a.size()) == 0;\n",
     "ct-compare"),
    ("src/obfusmem/mac_engine.cc",
     "    if (memcmp(&mac, &expected, sizeof(mac)) != 0)\n",
     "ct-compare"),
    ("src/secure/merkle.cc",
     "    ok = strncmp(label, node.label, 8) == 0;\n",
     "ct-compare"),
    ("src/crypto/aes.cc",
     "    std::memcpy(round_keys, key.data(), 16);\n",
     "key-scrub"),
    ("src/check/trace_auditor.hh",
     "#ifndef TRACE_AUDITOR_H\n#define TRACE_AUDITOR_H\n",
     "include-guard"),
    # The pre-rewrite PlainPath closure chain: a plain `pkt` in a
    # capture list copies the packet once per hop.
    ("src/obfusmem/plain_path.cc",
     "    bus->send(BusDir::ToMemory, 0, pkt.addr, false,\n"
     "        [this, channel, pkt, cb = std::move(cb)]() mutable {\n"
     "            pcm->access(std::move(pkt), std::move(cb));\n"
     "        });\n",
     "packet-capture"),
    ("src/mem/pcm_controller.cc",
     "    scheduleAfter(t, [cb, resp = pkt]() mutable "
     "{ cb(std::move(resp)); });\n",
     "packet-capture"),
    # The pre-prefetch EncryptionEngine held the block cipher raw.
    ("src/secure/encryption_engine.hh",
     "    crypto::Aes128 aes;\n",
     "aes-dispatch"),
    ("src/obfusmem/mem_side.cc",
     "    Aes128 cipher(session_key);\n",
     "aes-dispatch"),
    # Calling a width-specific kernel directly skips the latched
    # dispatch and its availability probing.
    ("src/obfusmem/mac_engine.cc",
     "    detail::md5LanesAvx512Compress16(words, state);\n",
     "aes-dispatch"),
    # A hand-rolled frame skips the fixed-shape builders; a recovery
    # path doing this would leak through the obliviousness argument.
    ("src/obfusmem/proc_side.cc",
     "    msg.cipherHeader = encryptHeaderWithPad(pads.header, hdr);\n",
     "wire-shape"),
    ("src/obfusmem/recovery.cc",
     "    frame.hasMac = false;\n",
     "wire-shape"),
    ("src/mem/channel_bus.cc",
     "    out.mac = computed;\n",
     "wire-shape"),
]

SELF_TEST_CLEAN = [
    ("src/obfusmem/mac_engine.cc",
     "    return crypto::ctEqual(compute(hdr, counter), mac);\n"),
    ("src/obfusmem/observer.cc",
     "    stats.macVerifyFailures == 0;\n"),
    ("tests/test_crypto_hash.cc",
     "    EXPECT_TRUE(digest == expected);\n"),
    # ctEqual's own home, the rest of src/, tests, wrapper names and
    # member accesses are out of ct-compare's scope.
    ("src/crypto/bytes.cc",
     "    return memcmp(a, b, n) == 0; // reference, not shipped\n"),
    ("src/sim/trace.cc",
     "    if (memcmp(rec, prev, sizeof rec) == 0) dedupe++;\n"),
    ("tests/test_crypto_aes.cc",
     "    EXPECT_EQ(0, memcmp(out, expected, 16));\n"),
    ("src/crypto/hmac.cc",
     "    return ctMemcmp(a, b, n);\n"),
    ("src/obfusmem/observer.cc",
     "    stats.memcmpCount++; auto v = ledger.memcmp(x);\n"),
    # Moved and reference captures, and plain array indexing, are fine.
    ("src/obfusmem/plain_path.cc",
     "    eventQueue().schedule(done,\n"
     "        [this, pkt = std::move(pkt), cb = std::move(cb)]() "
     "mutable {\n"
     "            cb(std::move(pkt));\n"
     "        });\n"),
    ("src/mem/pcm_controller.cc",
     "    inner.access(std::move(pkt),\n"
     "        [&pkt](MemPacket &&resp) { pkt = std::move(resp); });\n"),
    ("src/mem/channel_bus.cc",
     "    pktQueue[channel] = {std::move(msg)};\n"),
    # Nested types, crypto/-internal use and tests stay in scope.
    ("src/obfusmem/proc_side.cc",
     "    const std::vector<crypto::Aes128::Key> &session_keys;\n"),
    ("src/crypto/ctr_mode.cc",
     "    Aes128 aes;\n"),
    ("tests/test_crypto_aes.cc",
     "    Aes128 aes(key);\n"),
    ("src/secure/encryption_engine.cc",
     "    // pads come from Aes128 behind the AesCtr dispatch\n"),
    # The builders' home, reads, comparisons, and deliberate test
    # corruption stay out of wire-shape's scope.
    ("src/obfusmem/wire_format.cc",
     "    msg.cipherHeader = encryptHeaderWithPad(hdr_pad, hdr);\n"
     "    msg.hasData = true;\n"),
    ("src/obfusmem/mem_side.cc",
     "    if (!msg.hasData) return;\n"
     "    bool ok = crypto::ctEqual(msg.mac, expected);\n"),
    ("tests/test_recovery.cc",
     "    msg.cipherHeader[0] ^= 0x01;\n"
     "    msg.hasMac = false;\n"),
]


def self_test():
    failures = 0
    for rel, snippet, rule in SELF_TEST_CASES:
        rules = {r for _, r, _ in lint_text(rel, snippet)}
        if rule not in rules:
            print(f"self-test FAIL: {rule} not raised for {rel!r}")
            failures += 1
    for rel, snippet in SELF_TEST_CLEAN:
        hits = lint_text(rel, snippet)
        if hits:
            print(f"self-test FAIL: false positive for {rel!r}: {hits}")
            failures += 1
    print("self-test " + ("FAILED" if failures else "passed"))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules catch known-bad code")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    paths = sorted(p for g in SOURCE_GLOBS for p in REPO_ROOT.glob(g))
    findings = run(paths)
    for f in findings:
        print(f)
    print(f"repo-lint: {len(paths)} files, {len(findings)} finding(s)")
    return len(findings)


if __name__ == "__main__":
    sys.exit(main())
