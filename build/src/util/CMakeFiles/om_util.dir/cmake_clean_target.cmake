file(REMOVE_RECURSE
  "libom_util.a"
)
