# Empty compiler generated dependencies file for om_util.
# This may be replaced when dependencies are built.
