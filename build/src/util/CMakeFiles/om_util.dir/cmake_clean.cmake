file(REMOVE_RECURSE
  "CMakeFiles/om_util.dir/logging.cc.o"
  "CMakeFiles/om_util.dir/logging.cc.o.d"
  "CMakeFiles/om_util.dir/random.cc.o"
  "CMakeFiles/om_util.dir/random.cc.o.d"
  "CMakeFiles/om_util.dir/stats.cc.o"
  "CMakeFiles/om_util.dir/stats.cc.o.d"
  "libom_util.a"
  "libom_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
