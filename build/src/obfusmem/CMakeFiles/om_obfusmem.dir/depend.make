# Empty dependencies file for om_obfusmem.
# This may be replaced when dependencies are built.
