file(REMOVE_RECURSE
  "libom_obfusmem.a"
)
