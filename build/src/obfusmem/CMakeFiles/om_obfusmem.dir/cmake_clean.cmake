file(REMOVE_RECURSE
  "CMakeFiles/om_obfusmem.dir/mac_engine.cc.o"
  "CMakeFiles/om_obfusmem.dir/mac_engine.cc.o.d"
  "CMakeFiles/om_obfusmem.dir/mem_side.cc.o"
  "CMakeFiles/om_obfusmem.dir/mem_side.cc.o.d"
  "CMakeFiles/om_obfusmem.dir/observer.cc.o"
  "CMakeFiles/om_obfusmem.dir/observer.cc.o.d"
  "CMakeFiles/om_obfusmem.dir/plain_path.cc.o"
  "CMakeFiles/om_obfusmem.dir/plain_path.cc.o.d"
  "CMakeFiles/om_obfusmem.dir/proc_side.cc.o"
  "CMakeFiles/om_obfusmem.dir/proc_side.cc.o.d"
  "CMakeFiles/om_obfusmem.dir/wire_format.cc.o"
  "CMakeFiles/om_obfusmem.dir/wire_format.cc.o.d"
  "libom_obfusmem.a"
  "libom_obfusmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_obfusmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
