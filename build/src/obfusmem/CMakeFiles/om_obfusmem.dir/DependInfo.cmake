
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obfusmem/mac_engine.cc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/mac_engine.cc.o" "gcc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/mac_engine.cc.o.d"
  "/root/repo/src/obfusmem/mem_side.cc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/mem_side.cc.o" "gcc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/mem_side.cc.o.d"
  "/root/repo/src/obfusmem/observer.cc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/observer.cc.o" "gcc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/observer.cc.o.d"
  "/root/repo/src/obfusmem/plain_path.cc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/plain_path.cc.o" "gcc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/plain_path.cc.o.d"
  "/root/repo/src/obfusmem/proc_side.cc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/proc_side.cc.o" "gcc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/proc_side.cc.o.d"
  "/root/repo/src/obfusmem/wire_format.cc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/wire_format.cc.o" "gcc" "src/obfusmem/CMakeFiles/om_obfusmem.dir/wire_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/om_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/om_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/om_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/om_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
