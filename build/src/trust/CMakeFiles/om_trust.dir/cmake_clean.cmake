file(REMOVE_RECURSE
  "CMakeFiles/om_trust.dir/boot.cc.o"
  "CMakeFiles/om_trust.dir/boot.cc.o.d"
  "CMakeFiles/om_trust.dir/identity.cc.o"
  "CMakeFiles/om_trust.dir/identity.cc.o.d"
  "libom_trust.a"
  "libom_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
