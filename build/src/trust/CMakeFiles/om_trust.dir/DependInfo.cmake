
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/boot.cc" "src/trust/CMakeFiles/om_trust.dir/boot.cc.o" "gcc" "src/trust/CMakeFiles/om_trust.dir/boot.cc.o.d"
  "/root/repo/src/trust/identity.cc" "src/trust/CMakeFiles/om_trust.dir/identity.cc.o" "gcc" "src/trust/CMakeFiles/om_trust.dir/identity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/om_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/om_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
