# Empty dependencies file for om_trust.
# This may be replaced when dependencies are built.
