file(REMOVE_RECURSE
  "libom_trust.a"
)
