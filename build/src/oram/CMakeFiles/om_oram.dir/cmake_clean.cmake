file(REMOVE_RECURSE
  "CMakeFiles/om_oram.dir/oram_controller.cc.o"
  "CMakeFiles/om_oram.dir/oram_controller.cc.o.d"
  "CMakeFiles/om_oram.dir/path_oram.cc.o"
  "CMakeFiles/om_oram.dir/path_oram.cc.o.d"
  "libom_oram.a"
  "libom_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
