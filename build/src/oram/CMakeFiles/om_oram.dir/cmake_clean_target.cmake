file(REMOVE_RECURSE
  "libom_oram.a"
)
