# Empty compiler generated dependencies file for om_oram.
# This may be replaced when dependencies are built.
