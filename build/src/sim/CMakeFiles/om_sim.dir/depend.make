# Empty dependencies file for om_sim.
# This may be replaced when dependencies are built.
