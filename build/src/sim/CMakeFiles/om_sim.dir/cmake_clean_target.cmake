file(REMOVE_RECURSE
  "libom_sim.a"
)
