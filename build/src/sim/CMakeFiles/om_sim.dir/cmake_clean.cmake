file(REMOVE_RECURSE
  "CMakeFiles/om_sim.dir/event_queue.cc.o"
  "CMakeFiles/om_sim.dir/event_queue.cc.o.d"
  "libom_sim.a"
  "libom_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
