# Empty dependencies file for om_system.
# This may be replaced when dependencies are built.
