file(REMOVE_RECURSE
  "CMakeFiles/om_system.dir/system.cc.o"
  "CMakeFiles/om_system.dir/system.cc.o.d"
  "libom_system.a"
  "libom_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
