file(REMOVE_RECURSE
  "libom_system.a"
)
