# Empty compiler generated dependencies file for om_cpu.
# This may be replaced when dependencies are built.
