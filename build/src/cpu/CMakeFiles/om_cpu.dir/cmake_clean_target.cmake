file(REMOVE_RECURSE
  "libom_cpu.a"
)
