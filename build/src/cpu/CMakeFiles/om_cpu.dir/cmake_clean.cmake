file(REMOVE_RECURSE
  "CMakeFiles/om_cpu.dir/cache_hierarchy.cc.o"
  "CMakeFiles/om_cpu.dir/cache_hierarchy.cc.o.d"
  "CMakeFiles/om_cpu.dir/core.cc.o"
  "CMakeFiles/om_cpu.dir/core.cc.o.d"
  "CMakeFiles/om_cpu.dir/trace_workload.cc.o"
  "CMakeFiles/om_cpu.dir/trace_workload.cc.o.d"
  "CMakeFiles/om_cpu.dir/workload.cc.o"
  "CMakeFiles/om_cpu.dir/workload.cc.o.d"
  "libom_cpu.a"
  "libom_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
