
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/om_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/bignum.cc" "src/crypto/CMakeFiles/om_crypto.dir/bignum.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/bignum.cc.o.d"
  "/root/repo/src/crypto/ctr_mode.cc" "src/crypto/CMakeFiles/om_crypto.dir/ctr_mode.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/ctr_mode.cc.o.d"
  "/root/repo/src/crypto/dh.cc" "src/crypto/CMakeFiles/om_crypto.dir/dh.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/dh.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/om_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/md5.cc" "src/crypto/CMakeFiles/om_crypto.dir/md5.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/md5.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/crypto/CMakeFiles/om_crypto.dir/rsa.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/rsa.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/crypto/CMakeFiles/om_crypto.dir/sha1.cc.o" "gcc" "src/crypto/CMakeFiles/om_crypto.dir/sha1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/om_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
