# Empty dependencies file for om_crypto.
# This may be replaced when dependencies are built.
