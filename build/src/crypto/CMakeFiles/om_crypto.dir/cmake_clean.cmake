file(REMOVE_RECURSE
  "CMakeFiles/om_crypto.dir/aes128.cc.o"
  "CMakeFiles/om_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/om_crypto.dir/bignum.cc.o"
  "CMakeFiles/om_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/om_crypto.dir/ctr_mode.cc.o"
  "CMakeFiles/om_crypto.dir/ctr_mode.cc.o.d"
  "CMakeFiles/om_crypto.dir/dh.cc.o"
  "CMakeFiles/om_crypto.dir/dh.cc.o.d"
  "CMakeFiles/om_crypto.dir/hmac.cc.o"
  "CMakeFiles/om_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/om_crypto.dir/md5.cc.o"
  "CMakeFiles/om_crypto.dir/md5.cc.o.d"
  "CMakeFiles/om_crypto.dir/rsa.cc.o"
  "CMakeFiles/om_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/om_crypto.dir/sha1.cc.o"
  "CMakeFiles/om_crypto.dir/sha1.cc.o.d"
  "libom_crypto.a"
  "libom_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
