file(REMOVE_RECURSE
  "libom_crypto.a"
)
