# Empty compiler generated dependencies file for om_secure.
# This may be replaced when dependencies are built.
