file(REMOVE_RECURSE
  "libom_secure.a"
)
