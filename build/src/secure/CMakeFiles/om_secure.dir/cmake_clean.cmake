file(REMOVE_RECURSE
  "CMakeFiles/om_secure.dir/encryption_engine.cc.o"
  "CMakeFiles/om_secure.dir/encryption_engine.cc.o.d"
  "CMakeFiles/om_secure.dir/merkle.cc.o"
  "CMakeFiles/om_secure.dir/merkle.cc.o.d"
  "libom_secure.a"
  "libom_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
