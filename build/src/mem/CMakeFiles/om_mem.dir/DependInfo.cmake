
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/mem/CMakeFiles/om_mem.dir/address_map.cc.o" "gcc" "src/mem/CMakeFiles/om_mem.dir/address_map.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/om_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/om_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/channel_bus.cc" "src/mem/CMakeFiles/om_mem.dir/channel_bus.cc.o" "gcc" "src/mem/CMakeFiles/om_mem.dir/channel_bus.cc.o.d"
  "/root/repo/src/mem/pcm_controller.cc" "src/mem/CMakeFiles/om_mem.dir/pcm_controller.cc.o" "gcc" "src/mem/CMakeFiles/om_mem.dir/pcm_controller.cc.o.d"
  "/root/repo/src/mem/wear_leveling.cc" "src/mem/CMakeFiles/om_mem.dir/wear_leveling.cc.o" "gcc" "src/mem/CMakeFiles/om_mem.dir/wear_leveling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/om_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/om_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
