# Empty compiler generated dependencies file for om_mem.
# This may be replaced when dependencies are built.
