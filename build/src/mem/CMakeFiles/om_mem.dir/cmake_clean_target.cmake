file(REMOVE_RECURSE
  "libom_mem.a"
)
