file(REMOVE_RECURSE
  "CMakeFiles/om_mem.dir/address_map.cc.o"
  "CMakeFiles/om_mem.dir/address_map.cc.o.d"
  "CMakeFiles/om_mem.dir/backing_store.cc.o"
  "CMakeFiles/om_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/om_mem.dir/channel_bus.cc.o"
  "CMakeFiles/om_mem.dir/channel_bus.cc.o.d"
  "CMakeFiles/om_mem.dir/pcm_controller.cc.o"
  "CMakeFiles/om_mem.dir/pcm_controller.cc.o.d"
  "CMakeFiles/om_mem.dir/wear_leveling.cc.o"
  "CMakeFiles/om_mem.dir/wear_leveling.cc.o.d"
  "libom_mem.a"
  "libom_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
