# Empty compiler generated dependencies file for bus_snooper.
# This may be replaced when dependencies are built.
