file(REMOVE_RECURSE
  "CMakeFiles/bus_snooper.dir/bus_snooper.cpp.o"
  "CMakeFiles/bus_snooper.dir/bus_snooper.cpp.o.d"
  "bus_snooper"
  "bus_snooper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_snooper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
