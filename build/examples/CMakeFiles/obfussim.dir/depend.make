# Empty dependencies file for obfussim.
# This may be replaced when dependencies are built.
