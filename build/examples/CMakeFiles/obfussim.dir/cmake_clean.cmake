file(REMOVE_RECURSE
  "CMakeFiles/obfussim.dir/obfussim.cpp.o"
  "CMakeFiles/obfussim.dir/obfussim.cpp.o.d"
  "obfussim"
  "obfussim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obfussim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
