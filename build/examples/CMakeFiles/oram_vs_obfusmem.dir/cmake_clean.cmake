file(REMOVE_RECURSE
  "CMakeFiles/oram_vs_obfusmem.dir/oram_vs_obfusmem.cpp.o"
  "CMakeFiles/oram_vs_obfusmem.dir/oram_vs_obfusmem.cpp.o.d"
  "oram_vs_obfusmem"
  "oram_vs_obfusmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oram_vs_obfusmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
