# Empty dependencies file for oram_vs_obfusmem.
# This may be replaced when dependencies are built.
