file(REMOVE_RECURSE
  "CMakeFiles/nvm_lifetime.dir/nvm_lifetime.cpp.o"
  "CMakeFiles/nvm_lifetime.dir/nvm_lifetime.cpp.o.d"
  "nvm_lifetime"
  "nvm_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
