# Empty compiler generated dependencies file for nvm_lifetime.
# This may be replaced when dependencies are built.
