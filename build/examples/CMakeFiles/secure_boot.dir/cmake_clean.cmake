file(REMOVE_RECURSE
  "CMakeFiles/secure_boot.dir/secure_boot.cpp.o"
  "CMakeFiles/secure_boot.dir/secure_boot.cpp.o.d"
  "secure_boot"
  "secure_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
