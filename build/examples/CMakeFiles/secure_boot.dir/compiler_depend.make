# Empty compiler generated dependencies file for secure_boot.
# This may be replaced when dependencies are built.
