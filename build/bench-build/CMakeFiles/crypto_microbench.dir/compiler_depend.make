# Empty compiler generated dependencies file for crypto_microbench.
# This may be replaced when dependencies are built.
