file(REMOVE_RECURSE
  "../bench/crypto_microbench"
  "../bench/crypto_microbench.pdb"
  "CMakeFiles/crypto_microbench.dir/crypto_microbench.cc.o"
  "CMakeFiles/crypto_microbench.dir/crypto_microbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
