# Empty compiler generated dependencies file for fig5_channels.
# This may be replaced when dependencies are built.
