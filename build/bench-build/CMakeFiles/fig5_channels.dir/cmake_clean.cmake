file(REMOVE_RECURSE
  "../bench/fig5_channels"
  "../bench/fig5_channels.pdb"
  "CMakeFiles/fig5_channels.dir/fig5_channels.cc.o"
  "CMakeFiles/fig5_channels.dir/fig5_channels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
