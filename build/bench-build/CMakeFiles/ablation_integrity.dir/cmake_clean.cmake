file(REMOVE_RECURSE
  "../bench/ablation_integrity"
  "../bench/ablation_integrity.pdb"
  "CMakeFiles/ablation_integrity.dir/ablation_integrity.cc.o"
  "CMakeFiles/ablation_integrity.dir/ablation_integrity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
