file(REMOVE_RECURSE
  "../bench/ablation_packet_scheme"
  "../bench/ablation_packet_scheme.pdb"
  "CMakeFiles/ablation_packet_scheme.dir/ablation_packet_scheme.cc.o"
  "CMakeFiles/ablation_packet_scheme.dir/ablation_packet_scheme.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packet_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
