# Empty compiler generated dependencies file for ablation_packet_scheme.
# This may be replaced when dependencies are built.
