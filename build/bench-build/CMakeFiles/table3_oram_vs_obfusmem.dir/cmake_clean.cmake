file(REMOVE_RECURSE
  "../bench/table3_oram_vs_obfusmem"
  "../bench/table3_oram_vs_obfusmem.pdb"
  "CMakeFiles/table3_oram_vs_obfusmem.dir/table3_oram_vs_obfusmem.cc.o"
  "CMakeFiles/table3_oram_vs_obfusmem.dir/table3_oram_vs_obfusmem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_oram_vs_obfusmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
