# Empty compiler generated dependencies file for table3_oram_vs_obfusmem.
# This may be replaced when dependencies are built.
