# Empty dependencies file for ablation_dummy_policy.
# This may be replaced when dependencies are built.
