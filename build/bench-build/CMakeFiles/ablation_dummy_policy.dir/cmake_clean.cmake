file(REMOVE_RECURSE
  "../bench/ablation_dummy_policy"
  "../bench/ablation_dummy_policy.pdb"
  "CMakeFiles/ablation_dummy_policy.dir/ablation_dummy_policy.cc.o"
  "CMakeFiles/ablation_dummy_policy.dir/ablation_dummy_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dummy_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
