file(REMOVE_RECURSE
  "../bench/ablation_mac_mode"
  "../bench/ablation_mac_mode.pdb"
  "CMakeFiles/ablation_mac_mode.dir/ablation_mac_mode.cc.o"
  "CMakeFiles/ablation_mac_mode.dir/ablation_mac_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mac_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
