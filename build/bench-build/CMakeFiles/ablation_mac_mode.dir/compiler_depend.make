# Empty compiler generated dependencies file for ablation_mac_mode.
# This may be replaced when dependencies are built.
