# Empty dependencies file for sec52_energy_lifetime.
# This may be replaced when dependencies are built.
