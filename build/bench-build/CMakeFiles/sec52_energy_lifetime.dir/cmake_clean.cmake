file(REMOVE_RECURSE
  "../bench/sec52_energy_lifetime"
  "../bench/sec52_energy_lifetime.pdb"
  "CMakeFiles/sec52_energy_lifetime.dir/sec52_energy_lifetime.cc.o"
  "CMakeFiles/sec52_energy_lifetime.dir/sec52_energy_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_energy_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
