file(REMOVE_RECURSE
  "../bench/fig4_overhead_breakdown"
  "../bench/fig4_overhead_breakdown.pdb"
  "CMakeFiles/fig4_overhead_breakdown.dir/fig4_overhead_breakdown.cc.o"
  "CMakeFiles/fig4_overhead_breakdown.dir/fig4_overhead_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
